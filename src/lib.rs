//! # crisp-repro
//!
//! Umbrella crate for the reproduction of **CRISP: Critical Slice
//! Prefetching** (Litz, Ayers, Ranganathan — ASPLOS 2022). It hosts the
//! workspace-level integration tests (`tests/`) and runnable examples
//! (`examples/`), and re-exports the member crates for one-stop access:
//!
//! * [`crisp_isa`] — the mini-ISA, static programs and dynamic traces;
//! * [`crisp_emu`] — the functional emulator (the DynamoRIO stand-in);
//! * [`crisp_workloads`] — 16 synthetic SPEC2017/Xhpcg/Tailbench kernels;
//! * [`crisp_uarch`] — TAGE, BTB, RAS, indirect prediction;
//! * [`crisp_mem`] — caches, DDR4 DRAM, BOP/stream/stride prefetchers;
//! * [`crisp_sim`] — the cycle-level OOO core with the CRISP age-matrix
//!   scheduler;
//! * [`crisp_profile`] — the simulated-PMU classifier (Section 3.2);
//! * [`crisp_slicer`] — load/branch slice extraction and annotation
//!   (Sections 3.3–3.5);
//! * [`crisp_ibda`] — the hardware IBDA baseline (Figure 7);
//! * [`crisp_core`] — the end-to-end FDO pipeline (Figure 5).
//!
//! See README.md for a guided tour and EXPERIMENTS.md for the
//! paper-vs-measured record of every reproduced table and figure.

pub use crisp_core;
pub use crisp_emu;
pub use crisp_ibda;
pub use crisp_isa;
pub use crisp_mem;
pub use crisp_profile;
pub use crisp_sim;
pub use crisp_slicer;
pub use crisp_uarch;
pub use crisp_workloads;
