//! FNV-1a 128-bit hashing and key formatting.
//!
//! The store's cache keys are 128-bit FNV-1a hashes of the canonical key
//! material (cell spec, result-schema version, binary semver). FNV-1a is
//! not a cryptographic hash — the store defends against *accidental*
//! collisions and drift (the birthday bound at 128 bits is far beyond any
//! realistic cell count), not against an adversary crafting collisions.

/// FNV-1a 128-bit offset basis.
const OFFSET_BASIS: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a 128-bit prime (2^88 + 2^8 + 0x3b).
const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// FNV-1a 128-bit hash of `data`.
pub fn fnv1a128(data: &[u8]) -> u128 {
    let mut h = OFFSET_BASIS;
    for &b in data {
        h ^= u128::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Canonical 32-hex-digit rendering of a store key.
pub fn key_hex(key: u128) -> String {
    format!("{key:032x}")
}

/// Parses a 32-hex-digit store key (shorter strings are accepted and
/// zero-extended, matching `u128::from_str_radix`).
pub fn parse_key(s: &str) -> Option<u128> {
    if s.is_empty() || s.len() > 32 {
        return None;
    }
    u128::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_hashes_to_the_offset_basis() {
        assert_eq!(fnv1a128(b""), OFFSET_BASIS);
    }

    #[test]
    fn single_byte_matches_a_hand_computed_step() {
        let expected = (OFFSET_BASIS ^ u128::from(b'a')).wrapping_mul(PRIME);
        assert_eq!(fnv1a128(b"a"), expected);
    }

    #[test]
    fn one_bit_of_input_flips_many_bits_of_output() {
        let a = fnv1a128(b"fig1/pointer_chase scale=Fast cells-v1");
        let b = fnv1a128(b"fig1/pointer_chase scale=Fast cells-v2");
        assert_ne!(a, b);
        // Both halves of the key must carry entropy, or the content
        // addressing degrades to 64 bits.
        assert_ne!(a as u64, b as u64);
        assert_ne!((a >> 64) as u64, (b >> 64) as u64);
    }

    #[test]
    fn keys_round_trip_through_hex() {
        for key in [0u128, 1, u128::MAX, fnv1a128(b"spec")] {
            assert_eq!(parse_key(&key_hex(key)), Some(key));
        }
        assert_eq!(parse_key(""), None);
        assert_eq!(parse_key("not hex"), None);
        assert_eq!(parse_key(&"f".repeat(33)), None);
    }
}
