//! # crisp-store
//!
//! A crash-safe, content-addressed result store for sweep cells. Each
//! entry is one cell's result payload, keyed by a 128-bit FNV-1a hash of
//! the cell's canonical key material (spec fingerprint, workload id,
//! result-schema version, binary semver — assembled by the harness) and
//! stored under `objects/<hh>/<32-hex-key>.cell` in a versioned,
//! CRC-checked container (see [`entry`]).
//!
//! Robustness invariants:
//!
//! - **publication is atomic** — tmp + fsync + rename + directory sync;
//!   a SIGKILL mid-write leaves debris, never a torn entry under a real
//!   name;
//! - **corruption is quarantined, never served** — any integrity failure
//!   on read moves the entry to `quarantine/` and reports a miss, so the
//!   cell is transparently re-simulated;
//! - **concurrent sweeps coordinate, not conflict** — advisory per-cell
//!   lock files ([`lock`]) with dead-PID detection and stale-lease
//!   recovery serialize simulation of one cell across processes, while
//!   atomic publication keeps even a lost lock benign.
//!
//! Layout under the store root:
//!
//! ```text
//! store/
//!   objects/<hh>/<key>.cell    entries (hh = first two hex digits)
//!   objects/<hh>/<key>.touch   advisory access stamps (hits, last use)
//!   quarantine/                corrupt entries, preserved for forensics
//!   locks/<key>.lock           advisory per-cell leases
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod entry;
pub mod hash;
pub mod lock;

pub use entry::{decode_entry, encode_entry, read_entry, write_entry, CellEntry, STORE_VERSION};
pub use hash::{fnv1a128, key_hex, parse_key};
pub use lock::{acquire, CellLock, LockOptions};

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use std::time::{Duration, SystemTime};

/// CRC-32 (IEEE 802.3, reflected) over `bytes` — shared by the entry
/// container here and the harness's checkpoint container.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Why a store operation failed or an entry was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// Filesystem failure (create, read, write, fsync, rename, scan).
    Io {
        /// The path involved.
        path: PathBuf,
        /// The OS error, contextualised.
        message: String,
    },
    /// The file ends before (or extends past) its declared content.
    Torn {
        /// The entry path.
        path: PathBuf,
        /// Where the truncation or overrun was detected.
        detail: String,
    },
    /// The file does not start with the entry magic.
    BadMagic {
        /// The entry path.
        path: PathBuf,
    },
    /// The file uses a different container format version.
    VersionMismatch {
        /// The entry path.
        path: PathBuf,
        /// Version found in the file.
        found: u64,
        /// Version this build writes and reads.
        expected: u64,
    },
    /// The entry's recorded key does not match its content address —
    /// a renamed file or drifted addressing, not bit rot.
    KeyMismatch {
        /// The entry path.
        path: PathBuf,
        /// Key recorded inside the file.
        found: u128,
        /// Key derived from the file's address.
        expected: u128,
    },
    /// The header region failed its CRC — bit-level corruption.
    HeaderCrc {
        /// The entry path.
        path: PathBuf,
    },
    /// The payload failed its CRC — bit-level corruption.
    PayloadCrc {
        /// The entry path.
        path: PathBuf,
    },
    /// A lock acquisition outwaited its configured patience.
    LockTimeout {
        /// The lock file path.
        path: PathBuf,
        /// How long the acquirer waited.
        waited_ms: u64,
    },
}

impl StoreError {
    pub(crate) fn io(path: &Path, what: &str, e: &std::io::Error) -> StoreError {
        StoreError::Io {
            path: path.to_path_buf(),
            message: format!("{what} failed: {e}"),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, message } => {
                write!(f, "store {}: {message}", path.display())
            }
            StoreError::Torn { path, detail } => {
                write!(f, "store entry {} is torn ({detail})", path.display())
            }
            StoreError::BadMagic { path } => {
                write!(f, "store entry {}: not a cell entry", path.display())
            }
            StoreError::VersionMismatch {
                path,
                found,
                expected,
            } => write!(
                f,
                "store entry {}: container version {found}, this build reads {expected}",
                path.display()
            ),
            StoreError::KeyMismatch {
                path,
                found,
                expected,
            } => write!(
                f,
                "store entry {}: recorded key {found:032x} does not match its address \
                 {expected:032x}",
                path.display()
            ),
            StoreError::HeaderCrc { path } => {
                write!(f, "store entry {}: header failed its CRC", path.display())
            }
            StoreError::PayloadCrc { path } => {
                write!(f, "store entry {}: payload failed its CRC", path.display())
            }
            StoreError::LockTimeout { path, waited_ms } => write!(
                f,
                "lock {}: still held after {waited_ms} ms",
                path.display()
            ),
        }
    }
}

impl std::error::Error for StoreError {}

/// Result of probing the store for a key.
#[derive(Debug)]
pub enum Lookup {
    /// A verified entry was found.
    Hit(CellEntry),
    /// No entry exists for the key.
    Miss,
    /// An entry existed but failed verification; it has been moved to
    /// `quarantine/` (best-effort) and the caller must re-simulate.
    Quarantined {
        /// The integrity failure that condemned it.
        error: Box<StoreError>,
        /// Where the corpse went, if the move succeeded.
        moved_to: Option<PathBuf>,
    },
}

/// Aggregate store health, as reported by `crisp cache stats`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Verified-format entries present (every `*.cell` file).
    pub entries: usize,
    /// Total bytes across entries.
    pub bytes: u64,
    /// Sum of recorded hit counts (advisory sidecars).
    pub hits: u64,
    /// Files sitting in `quarantine/`.
    pub quarantined: usize,
    /// Orphaned `*.tmp.*` debris from interrupted writers.
    pub debris: usize,
}

/// Result of a full-store scrub (`crisp cache verify`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Entries examined.
    pub checked: usize,
    /// Entries that verified clean.
    pub ok: usize,
    /// Entries that failed and were quarantined: (original path, error).
    pub quarantined: Vec<(PathBuf, String)>,
}

/// Age/occupancy policy for [`Store::gc`].
#[derive(Clone, Copy, Debug, Default)]
pub struct GcPolicy {
    /// Evict entries whose last access (or creation) is older than this.
    pub max_age: Option<Duration>,
    /// After age eviction, keep at most this many entries, evicting the
    /// least recently used beyond it.
    pub max_entries: Option<usize>,
}

/// What [`Store::gc`] did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Entries examined.
    pub scanned: usize,
    /// Entries removed.
    pub evicted: usize,
    /// Bytes reclaimed.
    pub reclaimed_bytes: u64,
}

/// A content-addressed result store rooted at one directory.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    lock_opts: LockOptions,
}

fn unix_secs() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

impl Store {
    /// Opens (creating if needed) the store rooted at `root`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the store directories cannot be created.
    pub fn open(root: &Path) -> Result<Store, StoreError> {
        Store::open_with(root, LockOptions::default())
    }

    /// Opens the store with explicit lock behaviour (tests and tools).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the store directories cannot be created.
    pub fn open_with(root: &Path, lock_opts: LockOptions) -> Result<Store, StoreError> {
        for sub in ["objects", "quarantine", "locks"] {
            let dir = root.join(sub);
            std::fs::create_dir_all(&dir).map_err(|e| StoreError::io(&dir, "create", &e))?;
        }
        Ok(Store {
            root: root.to_path_buf(),
            lock_opts,
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Cheap existence probe: whether an entry file for `key` is
    /// present, *without* reading or verifying it. Admission planning
    /// (e.g. counting warm cells for a submitted job) uses this; anything
    /// that serves payloads must go through [`Store::lookup`], which
    /// verifies integrity and quarantines corruption.
    pub fn contains(&self, key: u128) -> bool {
        self.entry_path(key).is_file()
    }

    /// Where an entry for `key` lives (whether or not it exists).
    pub fn entry_path(&self, key: u128) -> PathBuf {
        let hex = key_hex(key);
        self.root
            .join("objects")
            .join(&hex[..2])
            .join(format!("{hex}.cell"))
    }

    fn touch_path(entry: &Path) -> PathBuf {
        entry.with_extension("touch")
    }

    /// Where corrupt entries are preserved.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.root.join("quarantine")
    }

    fn lock_path(&self, key: u128) -> PathBuf {
        self.root
            .join("locks")
            .join(format!("{}.lock", key_hex(key)))
    }

    /// Acquires the advisory per-cell lock for `key` (see [`lock`]).
    ///
    /// # Errors
    ///
    /// [`StoreError::LockTimeout`] or [`StoreError::Io`] (see [`acquire`]).
    pub fn lock(&self, key: u128) -> Result<CellLock, StoreError> {
        acquire(&self.lock_path(key), &self.lock_opts)
    }

    /// Probes the store for `key`, verifying any entry found and
    /// quarantining corruption.
    ///
    /// # Errors
    ///
    /// Only [`StoreError::Io`] for filesystem failures other than
    /// not-found; integrity failures become [`Lookup::Quarantined`].
    pub fn lookup(&self, key: u128) -> Result<Lookup, StoreError> {
        let path = self.entry_path(key);
        match read_entry(&path, Some(key)) {
            Ok(entry) => {
                self.touch(&path);
                Ok(Lookup::Hit(entry))
            }
            Err(e @ StoreError::Io { .. }) => {
                if path.exists() {
                    Err(e)
                } else {
                    Ok(Lookup::Miss)
                }
            }
            Err(error) => {
                let moved_to = self.quarantine(&path);
                Ok(Lookup::Quarantined {
                    error: Box::new(error),
                    moved_to,
                })
            }
        }
    }

    /// Publishes `payload` under `key` atomically. Overwrites any
    /// existing entry (identical content for honest callers, a repaired
    /// entry after quarantine).
    ///
    /// # Errors
    ///
    /// Only [`StoreError::Io`].
    pub fn publish(&self, key: u128, spec: &str, payload: &[f64]) -> Result<(), StoreError> {
        let path = self.entry_path(key);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| StoreError::io(dir, "create", &e))?;
        }
        write_entry(
            &path,
            &CellEntry {
                key,
                created_unix: unix_secs(),
                spec: spec.to_string(),
                payload: payload.to_vec(),
            },
        )
    }

    /// Removes the entry for `key`; returns whether one existed.
    pub fn evict(&self, key: u128) -> bool {
        let path = self.entry_path(key);
        let _ = std::fs::remove_file(Self::touch_path(&path));
        std::fs::remove_file(&path).is_ok()
    }

    /// Bumps the advisory access stamp for an entry: hit count plus
    /// last-use time, feeding `gc`'s recency order and `stats`' hit
    /// totals. Best-effort and unsynchronized — losing a count under a
    /// concurrent-sweep race costs nothing but GC-ordering precision.
    fn touch(&self, entry: &Path) {
        let path = Self::touch_path(entry);
        let hits = std::fs::read_to_string(&path)
            .ok()
            .and_then(|s| {
                s.lines()
                    .find_map(|l| l.strip_prefix("hits=").and_then(|v| v.parse::<u64>().ok()))
            })
            .unwrap_or(0);
        let _ = std::fs::write(
            &path,
            format!("hits={}\nlast_unix={}\n", hits + 1, unix_secs()),
        );
    }

    /// Every entry file currently in `objects/`, with its address key.
    fn scan_entries(&self) -> Result<Vec<(u128, PathBuf)>, StoreError> {
        let objects = self.root.join("objects");
        let mut found = Vec::new();
        let shards =
            std::fs::read_dir(&objects).map_err(|e| StoreError::io(&objects, "scan", &e))?;
        for shard in shards {
            let shard = shard.map_err(|e| StoreError::io(&objects, "scan", &e))?;
            if !shard.path().is_dir() {
                continue;
            }
            let entries = std::fs::read_dir(shard.path())
                .map_err(|e| StoreError::io(&shard.path(), "scan", &e))?;
            for f in entries {
                let f = f.map_err(|e| StoreError::io(&shard.path(), "scan", &e))?;
                let path = f.path();
                let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                    continue;
                };
                if let Some(key) = name
                    .strip_suffix(".cell")
                    .filter(|stem| stem.len() == 32)
                    .and_then(parse_key)
                {
                    found.push((key, path));
                }
            }
        }
        found.sort_unstable();
        Ok(found)
    }

    /// Counts orphaned writer debris (`*.tmp.*`) under `objects/`.
    fn count_debris(&self) -> usize {
        let mut n = 0;
        let Ok(shards) = std::fs::read_dir(self.root.join("objects")) else {
            return 0;
        };
        for shard in shards.flatten() {
            let Ok(entries) = std::fs::read_dir(shard.path()) else {
                continue;
            };
            n += entries
                .flatten()
                .filter(|f| f.file_name().to_string_lossy().contains(".tmp."))
                .count();
        }
        n
    }

    /// Aggregate counts for `crisp cache stats`.
    ///
    /// # Errors
    ///
    /// Only [`StoreError::Io`] if the store cannot be scanned.
    pub fn stats(&self) -> Result<StoreStats, StoreError> {
        let mut stats = StoreStats::default();
        for (_, path) in self.scan_entries()? {
            stats.entries += 1;
            if let Ok(m) = std::fs::metadata(&path) {
                stats.bytes += m.len();
            }
            if let Ok(s) = std::fs::read_to_string(Self::touch_path(&path)) {
                stats.hits += s
                    .lines()
                    .find_map(|l| l.strip_prefix("hits=").and_then(|v| v.parse::<u64>().ok()))
                    .unwrap_or(0);
            }
        }
        stats.quarantined = std::fs::read_dir(self.quarantine_dir())
            .map(|d| d.flatten().count())
            .unwrap_or(0);
        stats.debris = self.count_debris();
        Ok(stats)
    }

    /// Full-store scrub: reads and verifies every entry, quarantining
    /// failures (`crisp cache verify`).
    ///
    /// # Errors
    ///
    /// Only [`StoreError::Io`] if the store cannot be scanned; per-entry
    /// failures are reported in the [`ScrubReport`], not raised.
    pub fn verify(&self) -> Result<ScrubReport, StoreError> {
        let mut report = ScrubReport::default();
        for (key, path) in self.scan_entries()? {
            report.checked += 1;
            match read_entry(&path, Some(key)) {
                Ok(_) => report.ok += 1,
                Err(error) => {
                    self.quarantine(&path);
                    report.quarantined.push((path, error.to_string()));
                }
            }
        }
        Ok(report)
    }

    /// Evicts by age and/or occupancy (`crisp cache gc`). Recency is the
    /// advisory last-use stamp, falling back to the entry's mtime.
    ///
    /// # Errors
    ///
    /// Only [`StoreError::Io`] if the store cannot be scanned.
    pub fn gc(&self, policy: GcPolicy) -> Result<GcReport, StoreError> {
        let now = unix_secs();
        let mut report = GcReport::default();
        // (last-use, key, path, bytes), oldest first after the sort.
        let mut survivors: Vec<(u64, u128, PathBuf, u64)> = Vec::new();
        for (key, path) in self.scan_entries()? {
            report.scanned += 1;
            let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            let last_use = std::fs::read_to_string(Self::touch_path(&path))
                .ok()
                .and_then(|s| {
                    s.lines().find_map(|l| {
                        l.strip_prefix("last_unix=")
                            .and_then(|v| v.parse::<u64>().ok())
                    })
                })
                .or_else(|| {
                    std::fs::metadata(&path)
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|t| t.duration_since(SystemTime::UNIX_EPOCH).ok())
                        .map(|d| d.as_secs())
                })
                .unwrap_or(0);
            survivors.push((last_use, key, path, bytes));
        }
        survivors.sort_unstable_by_key(|(last_use, key, ..)| (*last_use, *key));
        let evict_one = |path: &Path, bytes: u64, report: &mut GcReport| {
            let _ = std::fs::remove_file(Self::touch_path(path));
            if std::fs::remove_file(path).is_ok() {
                report.evicted += 1;
                report.reclaimed_bytes += bytes;
            }
        };
        if let Some(max_age) = policy.max_age {
            let cutoff = now.saturating_sub(max_age.as_secs());
            survivors.retain(|(last_use, _, path, bytes)| {
                if *last_use < cutoff {
                    evict_one(path, *bytes, &mut report);
                    false
                } else {
                    true
                }
            });
        }
        if let Some(max_entries) = policy.max_entries {
            while survivors.len() > max_entries {
                let (_, _, path, bytes) = survivors.remove(0);
                evict_one(&path, bytes, &mut report);
            }
        }
        Ok(report)
    }

    /// Moves a condemned entry into `quarantine/` under a unique name,
    /// preserving the bytes for forensics. Best-effort: a concurrent
    /// process may have moved it first.
    fn quarantine(&self, path: &Path) -> Option<PathBuf> {
        let mut name = path.file_name().unwrap_or_default().to_os_string();
        name.push(format!(".{}.{}", std::process::id(), unix_secs()));
        let dest = self.quarantine_dir().join(name);
        let _ = std::fs::remove_file(Self::touch_path(path));
        std::fs::rename(path, &dest).ok().map(|()| dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> (PathBuf, Store) {
        let dir = std::env::temp_dir().join(format!("crisp-store-lib-{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        let store = Store::open(&dir).unwrap();
        (dir, store)
    }

    #[test]
    fn crc32_matches_the_reference_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn publish_then_lookup_hits_with_the_exact_payload() {
        let (dir, store) = temp_store("roundtrip");
        let key = fnv1a128(b"cell-a");
        assert!(matches!(store.lookup(key).unwrap(), Lookup::Miss));
        let payload = [1.5, -2.25, 1.0 / 3.0];
        store.publish(key, "cell-a spec", &payload).unwrap();
        match store.lookup(key).unwrap() {
            Lookup::Hit(entry) => {
                assert_eq!(entry.payload, payload);
                assert_eq!(entry.spec, "cell-a spec");
                assert_eq!(entry.key, key);
            }
            other => panic!("expected a hit, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn contains_probes_existence_without_verification() {
        let (dir, store) = temp_store("contains");
        let key = fnv1a128(b"cell-probe");
        assert!(!store.contains(key));
        store.publish(key, "cell-probe spec", &[1.0]).unwrap();
        assert!(store.contains(key));
        // contains() is a pure stat — even a corrupted entry still
        // "exists"; only lookup() decides whether it is servable.
        std::fs::write(store.entry_path(key), b"garbage").unwrap();
        assert!(store.contains(key));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_is_quarantined_then_reads_as_miss() {
        let (dir, store) = temp_store("quarantine");
        let key = fnv1a128(b"cell-b");
        store.publish(key, "cell-b spec", &[4.0, 5.0]).unwrap();
        let path = store.entry_path(key);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 20;
        bytes[last] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();

        match store.lookup(key).unwrap() {
            Lookup::Quarantined { moved_to, .. } => {
                let corpse = moved_to.expect("quarantine move succeeds");
                assert!(corpse.starts_with(store.quarantine_dir()));
                assert!(corpse.exists(), "bytes preserved for forensics");
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        assert!(matches!(store.lookup(key).unwrap(), Lookup::Miss));
        // Re-publication repairs the slot.
        store.publish(key, "cell-b spec", &[4.0, 5.0]).unwrap();
        assert!(matches!(store.lookup(key).unwrap(), Lookup::Hit(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_scrubs_the_whole_store() {
        let (dir, store) = temp_store("verify");
        for i in 0..5u64 {
            store
                .publish(
                    fnv1a128(&i.to_le_bytes()),
                    &format!("cell-{i}"),
                    &[i as f64],
                )
                .unwrap();
        }
        let bad_key = fnv1a128(&2u64.to_le_bytes());
        let victim = store.entry_path(bad_key);
        let mut bytes = std::fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&victim, &bytes).unwrap();

        let report = store.verify().unwrap();
        assert_eq!(report.checked, 5);
        assert_eq!(report.ok, 4);
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].0, victim);
        // The scrub already moved the corpse: a second scrub is clean.
        let report = store.verify().unwrap();
        assert_eq!((report.checked, report.ok), (4, 4));
        assert!(report.quarantined.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_count_entries_hits_and_quarantine() {
        let (dir, store) = temp_store("stats");
        let key = fnv1a128(b"hot-cell");
        store.publish(key, "hot", &[1.0]).unwrap();
        for _ in 0..3 {
            assert!(matches!(store.lookup(key).unwrap(), Lookup::Hit(_)));
        }
        std::fs::write(store.quarantine_dir().join("corpse"), b"x").unwrap();
        let stats = store.stats().unwrap();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.quarantined, 1);
        assert!(stats.bytes > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_evicts_by_occupancy_in_recency_order() {
        let (dir, store) = temp_store("gc");
        let keys: Vec<u128> = (0..4u64).map(|i| fnv1a128(&i.to_le_bytes())).collect();
        for (i, key) in keys.iter().enumerate() {
            store
                .publish(*key, &format!("cell-{i}"), &[i as f64])
                .unwrap();
        }
        // Touch two entries so they are the most recently used; fake the
        // other two as ancient so recency order is deterministic.
        for key in &keys[..2] {
            assert!(matches!(store.lookup(*key).unwrap(), Lookup::Hit(_)));
        }
        for key in &keys[2..] {
            let touch = Store::touch_path(&store.entry_path(*key));
            std::fs::write(&touch, "hits=1\nlast_unix=1\n").unwrap();
        }
        let report = store
            .gc(GcPolicy {
                max_age: None,
                max_entries: Some(2),
            })
            .unwrap();
        assert_eq!(report.scanned, 4);
        assert_eq!(report.evicted, 2);
        assert!(report.reclaimed_bytes > 0);
        for key in &keys[..2] {
            assert!(matches!(store.lookup(*key).unwrap(), Lookup::Hit(_)));
        }
        for key in &keys[2..] {
            assert!(matches!(store.lookup(*key).unwrap(), Lookup::Miss));
        }
        // Age-based: everything accessed before "now - 0s" goes.
        let report = store
            .gc(GcPolicy {
                max_age: Some(Duration::from_secs(0)),
                max_entries: None,
            })
            .unwrap();
        assert_eq!(report.scanned, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn evict_removes_exactly_one_key() {
        let (dir, store) = temp_store("evict");
        let a = fnv1a128(b"a");
        let b = fnv1a128(b"b");
        store.publish(a, "a", &[1.0]).unwrap();
        store.publish(b, "b", &[2.0]).unwrap();
        assert!(store.evict(a));
        assert!(!store.evict(a), "second evict finds nothing");
        assert!(matches!(store.lookup(a).unwrap(), Lookup::Miss));
        assert!(matches!(store.lookup(b).unwrap(), Lookup::Hit(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn the_cell_lock_round_trips_through_the_store() {
        let (dir, store) = temp_store("lock");
        let key = fnv1a128(b"locked-cell");
        let guard = store.lock(key).unwrap();
        assert!(guard.path().starts_with(dir.join("locks")));
        drop(guard);
        let _again = store.lock(key).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
