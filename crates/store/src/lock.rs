//! Advisory per-cell lock files with stale-lease recovery.
//!
//! Concurrent sweep processes sharing one store coordinate through lock
//! files created with `O_EXCL`: whoever creates `locks/<key>.lock` owns
//! the right to simulate that cell; everyone else waits and re-probes the
//! store when the lock clears (the holder usually published the result).
//!
//! Leases recover from dead holders without human intervention:
//!
//! - **dead-PID detection** — the lock records its holder's PID; on Linux
//!   a holder whose `/proc/<pid>` is gone is dead, and its lock is stolen
//!   immediately (a SIGKILLed sweep never wedges the store);
//! - **age fallback** — a lock older than `stale_after` is stolen even if
//!   the PID cannot be judged (non-Linux hosts, unreadable lock file, or
//!   PID reuse), bounding the damage of any detection gap.
//!
//! Stealing renames the lock to a process-unique debris name before
//! unlinking, so two stealers cannot both think they removed it and race
//! a third process's fresh lock.
//!
//! The locks are an *optimization*, never a correctness boundary: entry
//! publication is an atomic rename of deterministic content, so the worst
//! outcome of a lost or stolen lock is one duplicated simulation whose
//! result bytes are identical.

use crate::StoreError;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant, SystemTime};

/// How lock acquisition waits and when it declares a holder dead.
#[derive(Clone, Debug)]
pub struct LockOptions {
    /// Age beyond which a lock is stolen regardless of its holder's PID
    /// state — the fallback for hosts where liveness cannot be checked.
    pub stale_after: Duration,
    /// Poll interval while waiting for a held lock.
    pub poll: Duration,
    /// Give up waiting after this long (`None` = wait until the lock is
    /// released or its holder dies; safe because dead holders are stolen).
    pub wait_timeout: Option<Duration>,
}

impl Default for LockOptions {
    fn default() -> LockOptions {
        LockOptions {
            stale_after: Duration::from_secs(600),
            poll: Duration::from_millis(20),
            wait_timeout: None,
        }
    }
}

/// Distinguishes this process's acquisitions so release never unlinks a
/// lock stolen and re-created by someone else.
static ACQUIRE_SEQ: AtomicU64 = AtomicU64::new(0);

/// A held cell lock; released (best-effort) on drop.
#[derive(Debug)]
pub struct CellLock {
    path: PathBuf,
    token: String,
}

impl CellLock {
    /// The lock file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Renews the lease: rewrites the lock file (refreshing its mtime,
    /// which the age-fallback staleness check reads) — but only while
    /// the file still carries this holder's token. Returns `false` if
    /// the lease was already stolen; the holder should treat its claim
    /// as lost and stop publishing under it.
    pub fn renew(&self) -> bool {
        match std::fs::read_to_string(&self.path) {
            Ok(content) if content.contains(&self.token) => {}
            _ => return false,
        }
        std::fs::write(
            &self.path,
            format!(
                "pid={}\n{}\nrenewed_unix={}\n",
                std::process::id(),
                self.token,
                unix_secs()
            ),
        )
        .is_ok()
    }
}

impl Drop for CellLock {
    fn drop(&mut self) {
        // Unlink only if the file still carries our token: if the lease
        // was stolen (we out-slept `stale_after` on a host without PID
        // checks), the lock now belongs to someone else.
        if let Ok(content) = std::fs::read_to_string(&self.path) {
            if content.contains(&self.token) {
                let _ = std::fs::remove_file(&self.path);
            }
        }
    }
}

fn unix_secs() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Whether the lock at `path` is held by a dead or expired owner.
fn holder_is_stale(path: &Path, opts: &LockOptions) -> bool {
    // PID liveness: authoritative where /proc exists.
    if cfg!(target_os = "linux") {
        if let Ok(content) = std::fs::read_to_string(path) {
            if let Some(pid) = content
                .lines()
                .find_map(|l| l.strip_prefix("pid="))
                .and_then(|p| p.trim().parse::<u32>().ok())
            {
                return !Path::new(&format!("/proc/{pid}")).exists();
            }
        }
    }
    // Age fallback: mtime survives even when the content is unreadable.
    match std::fs::metadata(path).and_then(|m| m.modified()) {
        Ok(modified) => modified
            .elapsed()
            .map(|age| age > opts.stale_after)
            .unwrap_or(false),
        // Vanished between polls — the next create_new attempt decides.
        Err(_) => false,
    }
}

/// Removes a stale lock via rename-to-debris, so concurrent stealers
/// cannot double-unlink across a third process's fresh acquisition.
fn steal(path: &Path) {
    let seq = ACQUIRE_SEQ.fetch_add(1, Ordering::Relaxed);
    let mut debris = path.file_name().unwrap_or_default().to_os_string();
    debris.push(format!(".stale.{}.{}", std::process::id(), seq));
    let debris = path.with_file_name(debris);
    if std::fs::rename(path, &debris).is_ok() {
        let _ = std::fs::remove_file(&debris);
    }
}

/// Acquires the lock file at `path`, waiting out (or stealing from) any
/// current holder per `opts`.
///
/// # Errors
///
/// [`StoreError::LockTimeout`] when `wait_timeout` elapses first, or
/// [`StoreError::Io`] when the lock file cannot be created at all (e.g.
/// the locks directory is missing).
pub fn acquire(path: &Path, opts: &LockOptions) -> Result<CellLock, StoreError> {
    let started = Instant::now();
    let token = format!(
        "token={}-{}",
        std::process::id(),
        ACQUIRE_SEQ.fetch_add(1, Ordering::Relaxed)
    );
    loop {
        match OpenOptions::new().write(true).create_new(true).open(path) {
            Ok(mut file) => {
                // Lock metadata is advisory (liveness + forensics); a
                // crash between create and write leaves an empty lock
                // that the age fallback reclaims.
                let _ = writeln!(
                    file,
                    "pid={}\n{token}\nacquired_unix={}",
                    std::process::id(),
                    unix_secs()
                );
                let _ = file.sync_data();
                return Ok(CellLock {
                    path: path.to_path_buf(),
                    token,
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                if holder_is_stale(path, opts) {
                    steal(path);
                    continue;
                }
                if let Some(limit) = opts.wait_timeout {
                    if started.elapsed() >= limit {
                        return Err(StoreError::LockTimeout {
                            path: path.to_path_buf(),
                            waited_ms: u64::try_from(started.elapsed().as_millis())
                                .unwrap_or(u64::MAX),
                        });
                    }
                }
                std::thread::sleep(opts.poll);
            }
            Err(e) => return Err(StoreError::io(path, "create lock", &e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("crisp-store-lock-{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn fast_opts() -> LockOptions {
        LockOptions {
            stale_after: Duration::from_secs(600),
            poll: Duration::from_millis(2),
            wait_timeout: Some(Duration::from_millis(60)),
        }
    }

    #[test]
    fn acquire_release_acquire_succeeds() {
        let dir = temp_dir("basic");
        let path = dir.join("cell.lock");
        let guard = acquire(&path, &fast_opts()).unwrap();
        assert!(path.exists());
        drop(guard);
        assert!(!path.exists(), "drop releases the lock");
        let _again = acquire(&path, &fast_opts()).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_held_lock_blocks_until_timeout() {
        let dir = temp_dir("held");
        let path = dir.join("cell.lock");
        let _guard = acquire(&path, &fast_opts()).unwrap();
        let err = acquire(&path, &fast_opts()).unwrap_err();
        assert!(matches!(err, StoreError::LockTimeout { .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_dead_holders_lock_is_stolen() {
        let dir = temp_dir("dead-pid");
        let path = dir.join("cell.lock");
        // A PID from a process that cannot exist: PIDs are bounded by
        // /proc/sys/kernel/pid_max (<= 2^22 by default, always < 2^31).
        std::fs::write(&path, "pid=2147000001\ntoken=ghost\n").unwrap();
        if !cfg!(target_os = "linux") {
            return; // liveness detection is /proc-based
        }
        let guard = acquire(&path, &fast_opts()).expect("steal from a dead holder");
        drop(guard);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn an_aged_unreadable_lock_is_stolen() {
        let dir = temp_dir("aged");
        let path = dir.join("cell.lock");
        std::fs::write(&path, "gibberish, no pid line").unwrap();
        let opts = LockOptions {
            stale_after: Duration::from_millis(0),
            ..fast_opts()
        };
        // mtime age > 0ms after the sleep below, so the age fallback fires.
        std::thread::sleep(Duration::from_millis(5));
        let guard = acquire(&path, &opts).expect("steal by age");
        drop(guard);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn renew_refreshes_a_held_lease_and_refuses_a_stolen_one() {
        let dir = temp_dir("renew");
        let path = dir.join("cell.lock");
        let guard = acquire(&path, &fast_opts()).unwrap();
        assert!(guard.renew(), "holder renews its own lease");
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("renewed_unix="), "{content}");
        // Another process steals and re-acquires: renew must refuse.
        std::fs::write(&path, "pid=1\ntoken=1-0\n").unwrap();
        assert!(!guard.renew(), "a stolen lease cannot be renewed");
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("token=1-0"), "thief's lock untouched");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn release_leaves_a_stolen_and_replaced_lock_alone() {
        let dir = temp_dir("stolen");
        let path = dir.join("cell.lock");
        let guard = acquire(&path, &fast_opts()).unwrap();
        // Simulate a steal + re-acquisition by another process.
        std::fs::write(&path, "pid=1\ntoken=1-0\n").unwrap();
        drop(guard);
        assert!(path.exists(), "release must not unlink someone else's lock");
        std::fs::remove_dir_all(&dir).ok();
    }
}
