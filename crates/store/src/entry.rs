//! The on-disk cell-entry container and its codec.
//!
//! One store entry wraps one cell's result payload in a versioned,
//! integrity-checked binary envelope, following the checkpoint
//! container's discipline (magic, version, CRCs, end marker, typed torn
//! errors, atomic tmp+fsync+rename writes):
//!
//! ```text
//! magic "CRSPCELL"           8 bytes
//! format version             u64 LE
//! key (low half)             u64 LE   128-bit content-address key
//! key (high half)            u64 LE
//! created (unix seconds)     u64 LE
//! spec length (bytes)        u64 LE
//! spec bytes                 zero-padded to an 8-byte boundary
//! payload length (f64 count) u64 LE
//! header CRC-32              u64 LE   over every byte after the magic
//! payload f64 bit patterns   u64 LE each
//! payload CRC-32             u64 LE   over the payload bytes
//! end marker "CRSPDEND"      8 bytes
//! ```
//!
//! Every byte of the file is covered by a check: the magic and end marker
//! by direct comparison, the header (including the human-readable spec
//! and both key halves) by the header CRC, and the payload by its own
//! CRC. A single bit flipped at *any* offset is detected on read and
//! reported as a typed [`StoreError`] — never mis-decoded, never served.

use crate::crc32;
use crate::StoreError;
use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Entry container format version, bumped on incompatible changes.
pub const STORE_VERSION: u64 = 1;

const MAGIC: &[u8; 8] = b"CRSPCELL";
const END_MARKER: &[u8; 8] = b"CRSPDEND";

/// One decoded store entry: a cell's result payload plus its identity.
#[derive(Clone, Debug, PartialEq)]
pub struct CellEntry {
    /// 128-bit content-address key (hash of the canonical key material).
    pub key: u128,
    /// Unix seconds when the entry was published (for age-based GC).
    pub created_unix: u64,
    /// Human-readable key material (cell spec, schema, binary version) —
    /// lets `verify` and post-mortems name what a hash stands for.
    pub spec: String,
    /// The cell's result vector, bit-exact.
    pub payload: Vec<f64>,
}

/// Encodes an entry into its container bytes.
pub fn encode_entry(entry: &CellEntry) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&STORE_VERSION.to_le_bytes());
    out.extend_from_slice(&(entry.key as u64).to_le_bytes());
    out.extend_from_slice(&((entry.key >> 64) as u64).to_le_bytes());
    out.extend_from_slice(&entry.created_unix.to_le_bytes());
    out.extend_from_slice(&(entry.spec.len() as u64).to_le_bytes());
    out.extend_from_slice(entry.spec.as_bytes());
    while out.len() % 8 != 0 {
        out.push(0);
    }
    out.extend_from_slice(&(entry.payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&u64::from(crc32(&out[8..])).to_le_bytes());
    let mut payload = Vec::with_capacity(entry.payload.len() * 8);
    for x in &entry.payload {
        payload.extend_from_slice(&x.to_bits().to_le_bytes());
    }
    out.extend_from_slice(&payload);
    out.extend_from_slice(&u64::from(crc32(&payload)).to_le_bytes());
    out.extend_from_slice(END_MARKER);
    out
}

struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    path: &'a Path,
}

impl<'a> ByteReader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], StoreError> {
        if self.bytes.len() - self.pos < n {
            return Err(StoreError::Torn {
                path: self.path.to_path_buf(),
                detail: format!(
                    "file ends at byte {} while reading {what}",
                    self.bytes.len()
                ),
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u64(&mut self, what: &str) -> Result<u64, StoreError> {
        let s = self.take(8, what)?;
        Ok(u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }
}

/// Decodes and fully verifies an entry's container bytes. When
/// `expected_key` is given, the decoded key must match it (a mismatch
/// means the file was renamed or the store's addressing drifted).
///
/// # Errors
///
/// Every integrity failure is typed: [`StoreError::Torn`] for truncation
/// or trailing garbage, [`StoreError::BadMagic`] /
/// [`StoreError::VersionMismatch`] for envelope mismatches,
/// [`StoreError::HeaderCrc`] / [`StoreError::PayloadCrc`] for bit-level
/// corruption, and [`StoreError::KeyMismatch`] for a mis-addressed file.
pub fn decode_entry(
    bytes: &[u8],
    path: &Path,
    expected_key: Option<u128>,
) -> Result<CellEntry, StoreError> {
    let mut r = ByteReader {
        bytes,
        pos: 0,
        path,
    };
    let magic = r.take(8, "magic")?;
    if magic != MAGIC {
        return Err(StoreError::BadMagic {
            path: path.to_path_buf(),
        });
    }
    let version = r.u64("version")?;
    if version != STORE_VERSION {
        return Err(StoreError::VersionMismatch {
            path: path.to_path_buf(),
            found: version,
            expected: STORE_VERSION,
        });
    }
    let key_lo = r.u64("key (low half)")?;
    let key_hi = r.u64("key (high half)")?;
    let key = (u128::from(key_hi) << 64) | u128::from(key_lo);
    let created_unix = r.u64("created stamp")?;
    let spec_len = r.u64("spec length")? as usize;
    let spec_bytes = r.take(spec_len, "spec")?;
    let pad = (8 - spec_len % 8) % 8;
    r.take(pad, "spec padding")?;
    let payload_len = r.u64("payload length")?;
    let header_end = r.pos;
    let stored_header_crc = r.u64("header crc")?;
    if u64::from(crc32(&bytes[8..header_end])) != stored_header_crc {
        return Err(StoreError::HeaderCrc {
            path: path.to_path_buf(),
        });
    }
    // Only now that the header checksums clean do its fields mean
    // anything — spec UTF-8 or key mismatches past this point are real
    // addressing errors, not corruption.
    let spec = String::from_utf8(spec_bytes.to_vec()).map_err(|_| StoreError::Torn {
        path: path.to_path_buf(),
        detail: "spec is not UTF-8".to_string(),
    })?;
    if let Some(expected) = expected_key {
        if key != expected {
            return Err(StoreError::KeyMismatch {
                path: path.to_path_buf(),
                found: key,
                expected,
            });
        }
    }
    let payload_bytes = r.take(
        (payload_len as usize)
            .checked_mul(8)
            .ok_or_else(|| StoreError::Torn {
                path: path.to_path_buf(),
                detail: "payload declares an absurd length".to_string(),
            })?,
        "payload",
    )?;
    let stored_payload_crc = r.u64("payload crc")?;
    if u64::from(crc32(payload_bytes)) != stored_payload_crc {
        return Err(StoreError::PayloadCrc {
            path: path.to_path_buf(),
        });
    }
    let end = r.take(8, "end marker")?;
    if end != END_MARKER {
        return Err(StoreError::Torn {
            path: path.to_path_buf(),
            detail: "end marker missing or corrupt".to_string(),
        });
    }
    if r.pos != bytes.len() {
        return Err(StoreError::Torn {
            path: path.to_path_buf(),
            detail: format!(
                "{} trailing bytes after the end marker",
                bytes.len() - r.pos
            ),
        });
    }
    let payload = payload_bytes
        .chunks_exact(8)
        .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
        .collect();
    Ok(CellEntry {
        key,
        created_unix,
        spec,
        payload,
    })
}

/// Reads and fully verifies the entry at `path` (see [`decode_entry`]).
///
/// # Errors
///
/// [`StoreError::Io`] if the file cannot be read, else any decode error.
pub fn read_entry(path: &Path, expected_key: Option<u128>) -> Result<CellEntry, StoreError> {
    let bytes = fs::read(path).map_err(|e| StoreError::io(path, "read", &e))?;
    decode_entry(&bytes, path, expected_key)
}

/// Writes `entry` to `path` atomically: the container is assembled under
/// a process-unique `.tmp` name, fsync'd, renamed over the final path,
/// and the parent directory is synced. A SIGKILL at any point leaves
/// either the previous entry or an orphaned `.tmp` — never a torn file
/// under the real name.
///
/// # Errors
///
/// Only [`StoreError::Io`] — encoding cannot fail.
pub fn write_entry(path: &Path, entry: &CellEntry) -> Result<(), StoreError> {
    let bytes = encode_entry(entry);
    let tmp = tmp_path(path);
    let mut file = File::create(&tmp).map_err(|e| StoreError::io(&tmp, "create", &e))?;
    file.write_all(&bytes)
        .map_err(|e| StoreError::io(&tmp, "write", &e))?;
    file.sync_data()
        .map_err(|e| StoreError::io(&tmp, "fsync", &e))?;
    drop(file);
    fs::rename(&tmp, path).map_err(|e| StoreError::io(path, "rename", &e))?;
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// The process-unique temp name `write_entry` assembles under: two
/// concurrent writers of the same cell never clobber each other's
/// half-written bytes, and the loser's rename just republishes identical
/// content.
fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".tmp.{}", std::process::id()));
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entry() -> CellEntry {
        CellEntry {
            key: 0xdead_beef_0123_4567_89ab_cdef_fedc_ba98,
            created_unix: 1_754_000_000,
            spec: "fig1/pointer_chase scale=Fast cells-v1".to_string(),
            payload: vec![1.25, -0.5, f64::MIN_POSITIVE, 1.0 / 3.0, 8.4e300],
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("crisp-store-entry-{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn entries_round_trip_exactly() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("cell.cell");
        let entry = sample_entry();
        write_entry(&path, &entry).unwrap();
        assert_eq!(read_entry(&path, Some(entry.key)).unwrap(), entry);
        assert_eq!(read_entry(&path, None).unwrap(), entry);
        assert!(
            !tmp_path(&path).exists(),
            "tmp file must be renamed away on success"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_payload_and_empty_spec_round_trip() {
        let entry = CellEntry {
            key: 1,
            created_unix: 0,
            spec: String::new(),
            payload: vec![],
        };
        let bytes = encode_entry(&entry);
        assert_eq!(
            decode_entry(&bytes, Path::new("x"), Some(1)).unwrap(),
            entry
        );
    }

    #[test]
    fn a_flip_of_any_single_bit_is_detected() {
        let entry = sample_entry();
        let bytes = encode_entry(&entry);
        let path = Path::new("flipped.cell");
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[byte] ^= 1 << bit;
                let res = decode_entry(&corrupt, path, Some(entry.key));
                assert!(
                    res.is_err(),
                    "flip at byte {byte} bit {bit} decoded as {res:?}"
                );
            }
        }
    }

    #[test]
    fn every_truncation_point_is_typed() {
        let bytes = encode_entry(&sample_entry());
        let path = Path::new("cut.cell");
        for cut in 0..bytes.len() {
            let err = decode_entry(&bytes[..cut], path, None).unwrap_err();
            assert!(
                matches!(err, StoreError::Torn { .. } | StoreError::BadMagic { .. }),
                "cut at {cut}: unexpected error {err}"
            );
        }
    }

    #[test]
    fn key_and_version_mismatches_are_typed() {
        let entry = sample_entry();
        let bytes = encode_entry(&entry);
        let path = Path::new("cell.cell");
        assert!(matches!(
            decode_entry(&bytes, path, Some(entry.key ^ 1)).unwrap_err(),
            StoreError::KeyMismatch { .. }
        ));
        let mut versioned = bytes.clone();
        versioned[8] = 99;
        // The version check fires before the header CRC: a future format
        // must be reported as such, not as corruption.
        assert!(matches!(
            decode_entry(&versioned, path, None).unwrap_err(),
            StoreError::VersionMismatch { found: 99, .. }
        ));
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(
            decode_entry(&trailing, path, None).unwrap_err(),
            StoreError::Torn { .. }
        ));
    }
}
