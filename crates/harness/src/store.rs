//! Supervisor-facing surface of the content-addressed result store.
//!
//! The store itself ([`crisp_store`]) is a dependency-free crate shared
//! with the `crisp` CLI; this module owns the *keying policy* — what a
//! cell's identity is made of — and the configuration type that threads
//! the store through [`crate::SupervisorOptions`].
//!
//! A cell's key hashes four ingredients, any of which invalidates cached
//! results when it changes:
//!
//! 1. the job id (figure and workload, e.g. `fig7/mcf`);
//! 2. the full cell spec string (scale, config, cell-format version);
//! 3. [`RESULT_SCHEMA`] — the payload-layout version, bumped whenever
//!    the meaning or order of a cell's result vector changes;
//! 4. the binary semver (`CARGO_PKG_VERSION`) — a new release never
//!    serves results simulated by an older one.
//!
//! The canonical key material is also stored *inside* each entry as its
//! human-readable `spec`, so `crisp cache verify` and post-mortems can
//! name what a 32-hex-digit key stands for.

pub use crisp_store::{
    acquire, crc32, decode_entry, encode_entry, fnv1a128, key_hex, parse_key, read_entry,
    write_entry, CellEntry, CellLock, GcPolicy, GcReport, LockOptions, Lookup, ScrubReport, Store,
    StoreError, StoreStats, STORE_VERSION,
};

use std::path::PathBuf;

/// Version of the cell result-vector layout. Bump when a figure's payload
/// changes meaning, order or length — stale store entries (and manifest
/// payloads) must never be reinterpreted under a new layout.
pub const RESULT_SCHEMA: u32 = 2;

/// Canonical key material for one sweep cell — the exact string whose
/// 128-bit FNV-1a hash addresses the cell's store entry.
pub fn cell_key_material(job_id: &str, spec: &str) -> String {
    format!(
        "crisp-cell-key-v1\njob={job_id}\nspec={spec}\nschema={RESULT_SCHEMA}\nbinary={}\n",
        env!("CARGO_PKG_VERSION")
    )
}

/// The 128-bit content-address key for one sweep cell.
pub fn cell_key(job_id: &str, spec: &str) -> u128 {
    fnv1a128(cell_key_material(job_id, spec).as_bytes())
}

/// Store configuration carried by [`crate::SupervisorOptions`].
#[derive(Clone, Debug)]
pub struct ResultStoreConfig {
    /// Store root directory (created on first use).
    pub dir: PathBuf,
    /// Advisory-lock behaviour for cross-process cell coordination.
    pub lock_options: LockOptions,
}

impl ResultStoreConfig {
    /// Store at `dir` with default lock behaviour.
    pub fn new(dir: impl Into<PathBuf>) -> ResultStoreConfig {
        ResultStoreConfig {
            dir: dir.into(),
            lock_options: LockOptions::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_key_ingredient_changes_the_key() {
        let base = cell_key("fig7/mcf", "fig7/mcf scale=Fast cells-v1");
        assert_ne!(base, cell_key("fig7/lbm", "fig7/mcf scale=Fast cells-v1"));
        assert_ne!(base, cell_key("fig7/mcf", "fig7/mcf scale=Full cells-v1"));
        // Schema and binary versions are compile-time constants; assert
        // they are present in the material so bumping them re-keys.
        let material = cell_key_material("fig7/mcf", "s");
        assert!(material.contains(&format!("schema={RESULT_SCHEMA}")));
        assert!(material.contains(&format!("binary={}", env!("CARGO_PKG_VERSION"))));
    }

    #[test]
    fn keys_are_stable_across_calls() {
        assert_eq!(cell_key("a", "b"), cell_key("a", "b"));
    }
}
