//! Failure taxonomy: which job failures are worth retrying.
//!
//! The split follows the PR's robustness contract: *transient* failures
//! (wall-clock timeouts, watchdog deadlocks, panics — anything an injected
//! fault or scheduling hiccup can cause) earn bounded retries with
//! backoff; *deterministic* failures (rejected configs, unknown workloads,
//! cycle-budget overruns) would fail identically every time, so the
//! supervisor fails them fast and salvages the rest of the sweep.

use crisp_core::CrispError;
use crisp_sim::SimError;
use std::fmt;

/// The class of a failed job attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FailureClass {
    /// The job's runner panicked (caught by the supervisor's isolation).
    Panic,
    /// The per-job wall-clock deadline expired
    /// ([`SimError::DeadlineExceeded`]).
    Timeout,
    /// The simulator's no-retire-progress watchdog fired
    /// ([`SimError::Deadlock`]).
    Deadlock,
    /// The job was cancelled from outside (sweep shutdown, not a fault).
    Cancelled,
    /// The deterministic cycle budget ran out
    /// ([`SimError::CycleBudgetExhausted`]).
    CycleBudget,
    /// A configuration was rejected by validation.
    Config,
    /// The workload name is not registered.
    UnknownWorkload,
    /// A checkpoint failed integrity or compatibility checks (torn file,
    /// fingerprint/version mismatch, restore rejection). Deterministic:
    /// retrying would re-read the same bytes, so it fails fast.
    Checkpoint,
    /// A pool worker process died mid-cell (SIGKILL/SIGSEGV/OOM, frame
    /// corruption, or a missed lease heartbeat). Transient from the
    /// cell's point of view — the next attempt runs on a fresh worker.
    WorkerCrash,
    /// The cell killed enough consecutive workers to be quarantined.
    /// Deterministic by declaration: retrying would burn another worker.
    Poisoned,
    /// Any other pipeline error (emulation, annotation, invariant
    /// violation, map mismatch).
    Runtime,
}

impl FailureClass {
    /// Whether the supervisor should retry this class (with backoff)
    /// rather than fail the job permanently.
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            FailureClass::Panic
                | FailureClass::Timeout
                | FailureClass::Deadlock
                | FailureClass::WorkerCrash
        )
    }

    /// Stable journal identifier.
    pub fn name(&self) -> &'static str {
        match self {
            FailureClass::Panic => "panic",
            FailureClass::Timeout => "timeout",
            FailureClass::Deadlock => "deadlock",
            FailureClass::Cancelled => "cancelled",
            FailureClass::CycleBudget => "cycle-budget",
            FailureClass::Config => "config",
            FailureClass::UnknownWorkload => "unknown-workload",
            FailureClass::Checkpoint => "checkpoint",
            FailureClass::WorkerCrash => "worker-crash",
            FailureClass::Poisoned => "poisoned",
            FailureClass::Runtime => "runtime",
        }
    }

    /// Inverse of [`FailureClass::name`], for journal decoding.
    pub fn from_name(name: &str) -> Option<FailureClass> {
        Some(match name {
            "panic" => FailureClass::Panic,
            "timeout" => FailureClass::Timeout,
            "deadlock" => FailureClass::Deadlock,
            "cancelled" => FailureClass::Cancelled,
            "cycle-budget" => FailureClass::CycleBudget,
            "config" => FailureClass::Config,
            "unknown-workload" => FailureClass::UnknownWorkload,
            "checkpoint" => FailureClass::Checkpoint,
            "worker-crash" => FailureClass::WorkerCrash,
            "poisoned" => FailureClass::Poisoned,
            "runtime" => FailureClass::Runtime,
            _ => return None,
        })
    }

    /// Classifies a pipeline error.
    pub fn classify(e: &CrispError) -> FailureClass {
        match e {
            CrispError::UnknownWorkload(_) => FailureClass::UnknownWorkload,
            CrispError::Checkpoint(_) => FailureClass::Checkpoint,
            CrispError::Config(_) => FailureClass::Config,
            CrispError::Simulation(sim) => match sim {
                SimError::Deadlock(_) => FailureClass::Deadlock,
                SimError::SnapshotRestore { .. } => FailureClass::Checkpoint,
                SimError::DeadlineExceeded { .. } => FailureClass::Timeout,
                SimError::Cancelled { .. } => FailureClass::Cancelled,
                SimError::CycleBudgetExhausted { .. } => FailureClass::CycleBudget,
                SimError::Config(_) => FailureClass::Config,
                _ => FailureClass::Runtime,
            },
            CrispError::Emulation(_) | CrispError::Annotation(_) => FailureClass::Runtime,
        }
    }
}

impl fmt::Display for FailureClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_core::ConfigError;

    #[test]
    fn retryability_follows_the_contract() {
        let retryable = [
            FailureClass::Panic,
            FailureClass::Timeout,
            FailureClass::Deadlock,
            FailureClass::WorkerCrash,
        ];
        let fatal = [
            FailureClass::Cancelled,
            FailureClass::CycleBudget,
            FailureClass::Config,
            FailureClass::UnknownWorkload,
            FailureClass::Checkpoint,
            FailureClass::Poisoned,
            FailureClass::Runtime,
        ];
        for c in retryable {
            assert!(c.retryable(), "{c}");
        }
        for c in fatal {
            assert!(!c.retryable(), "{c}");
        }
    }

    #[test]
    fn names_round_trip() {
        for c in [
            FailureClass::Panic,
            FailureClass::Timeout,
            FailureClass::Deadlock,
            FailureClass::Cancelled,
            FailureClass::CycleBudget,
            FailureClass::Config,
            FailureClass::UnknownWorkload,
            FailureClass::Checkpoint,
            FailureClass::WorkerCrash,
            FailureClass::Poisoned,
            FailureClass::Runtime,
        ] {
            assert_eq!(FailureClass::from_name(c.name()), Some(c));
        }
        assert_eq!(FailureClass::from_name("no-such-class"), None);
    }

    #[test]
    fn pipeline_errors_classify_by_variant() {
        assert_eq!(
            FailureClass::classify(&CrispError::UnknownWorkload("x".into())),
            FailureClass::UnknownWorkload
        );
        assert_eq!(
            FailureClass::classify(&CrispError::Config(ConfigError::new("f", "bad"))),
            FailureClass::Config
        );
        assert_eq!(
            FailureClass::classify(&CrispError::Simulation(SimError::DeadlineExceeded {
                cycle: 1,
                retired: 0,
                total: 10
            })),
            FailureClass::Timeout
        );
        assert_eq!(
            FailureClass::classify(&CrispError::Simulation(SimError::CycleBudgetExhausted {
                budget: 5,
                retired: 0,
                total: 10
            })),
            FailureClass::CycleBudget
        );
        assert_eq!(
            FailureClass::classify(&CrispError::Annotation("empty map".into())),
            FailureClass::Runtime
        );
        assert_eq!(
            FailureClass::classify(&CrispError::Checkpoint("torn file".into())),
            FailureClass::Checkpoint
        );
        assert_eq!(
            FailureClass::classify(&CrispError::Simulation(SimError::SnapshotRestore {
                section: "engine".into(),
                message: "truncated".into()
            })),
            FailureClass::Checkpoint
        );
    }
}
