//! Multi-process worker pool: cell execution with real fault isolation.
//!
//! The supervisor's in-process runner keeps one wedged or pathological
//! cell inside the daemon's own address space. This module moves cell
//! execution into supervised *worker processes* — one `crisp-worker`
//! per pool slot, spoken to over stdin/stdout with length-prefixed JSON
//! frames — and enforces the robustness contract end to end:
//!
//! - **crash containment** — a worker SIGKILL/SIGSEGV/OOM or a corrupt
//!   frame marks only that cell attempt failed (classified
//!   [`FailureClass::WorkerCrash`], retryable), never the supervisor;
//!   the slot respawns a fresh worker;
//! - **lease-based assignment** — every dispatched cell claims a lease
//!   in the pool's [`LeaseTable`] and renews it (plus the store's
//!   on-disk advisory lock, via [`RunContext::lease`]) on each worker
//!   heartbeat, so a dead worker's cell is stolen and reassigned within
//!   one lease period;
//! - **poison-cell quarantine** — a cell that kills
//!   [`PoolOptions::poison_threshold`] consecutive workers is refused
//!   further dispatch and fails as [`FailureClass::Poisoned`] with a
//!   forensic record (argv, last heartbeat, exit status, stderr tail)
//!   instead of burning retries forever;
//! - **version-skew refusal** — workers handshake with their binary
//!   semver and `RESULT_SCHEMA`; a mismatch is refused at startup so a
//!   half-upgraded host can never publish wrong-keyed results.
//!
//! ## Frame protocol (v1)
//!
//! Every frame is a 4-byte big-endian length followed by that many
//! bytes of JSON (one object), capped at [`MAX_FRAME`] bytes:
//!
//! ```text
//! worker -> pool   {"type":"hello","version":SEMVER,"schema":N,"pid":P}
//! pool -> worker   {"type":"accept"} | {"type":"refuse","reason":R}
//! pool -> worker   {"type":"run","id":ID,"spec":SPEC,"attempt":A, ...extras}
//! worker -> pool   {"type":"heartbeat","cycles":C,"instrs":I}   (repeated)
//! worker -> pool   {"type":"ok","payload":[f64...]}
//! worker -> pool   {"type":"fail","class":NAME,"error":MSG,"detail":{...}?}
//! pool -> worker   {"type":"shutdown"}
//! ```

use crate::class::FailureClass;
use crate::json::{parse, Value};
use crate::supervisor::{RunContext, RunError};
use crisp_sim::AbortReason;
use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Frame size cap: a cell payload is a few dozen floats, so anything
/// near this bound is protocol corruption, not data.
pub const MAX_FRAME: usize = 4 << 20;

/// Writes one length-prefixed JSON frame.
///
/// # Errors
///
/// Any I/O failure on the underlying writer, or a frame over
/// [`MAX_FRAME`] bytes (reported as `InvalidData`).
pub fn write_frame(w: &mut impl Write, v: &Value) -> std::io::Result<()> {
    let body = v.encode();
    if body.len() > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds cap", body.len()),
        ));
    }
    let len = body.len() as u32;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

/// Reads one length-prefixed JSON frame. `Ok(None)` is a clean EOF at a
/// frame boundary; EOF mid-frame, an oversized length, or unparsable
/// JSON are `InvalidData` errors (protocol corruption).
///
/// # Errors
///
/// Any I/O failure on the underlying reader, or `InvalidData` on a
/// corrupt frame.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Value>> {
    let mut head = [0u8; 4];
    let mut filled = 0;
    while filled < head.len() {
        match r.read(&mut head[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "EOF inside frame header",
                ));
            }
            n => filled += n,
        }
    }
    let len = u32::from_be_bytes(head) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let text = std::str::from_utf8(&body)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, format!("frame: {e}")))?;
    parse(text)
        .map(Some)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, format!("frame: {e}")))
}

/// What [`LeaseTable::claim`] decided.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Claim {
    /// The cell was free (or released); the claimant now holds it.
    Granted,
    /// A previous holder's lease had expired; the claimant stole it.
    Stolen,
    /// Someone else holds a live lease; the claim is refused.
    Held,
}

/// An in-memory lease state machine over a logical clock.
///
/// The pool claims a lease per dispatched cell, renews it on worker
/// heartbeats, and force-expires it when the worker dies, so the
/// retry's re-dispatch observably *steals* the dead worker's claim.
/// Invariants (property-tested in `crates/harness/tests`): a cell never
/// has two concurrent live holders, and a claimed cell is never lost —
/// it stays in the table, held or expired, until explicitly released.
#[derive(Debug)]
pub struct LeaseTable {
    ttl: u64,
    now: u64,
    leases: BTreeMap<String, Lease>,
}

#[derive(Debug)]
struct Lease {
    holder: String,
    expires: u64,
}

impl LeaseTable {
    /// A table whose leases live `ttl` logical ticks past their last
    /// claim or renewal (`ttl` is clamped to at least 1).
    pub fn new(ttl: u64) -> LeaseTable {
        LeaseTable {
            ttl: ttl.max(1),
            now: 0,
            leases: BTreeMap::new(),
        }
    }

    /// Advances the logical clock.
    pub fn tick(&mut self, dt: u64) {
        self.now = self.now.saturating_add(dt);
    }

    /// The current logical time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Claims `cell` for `holder`: granted when free or released, stolen
    /// when the previous lease expired, refused while a live lease (by
    /// anyone, including `holder` itself) exists.
    pub fn claim(&mut self, cell: &str, holder: &str) -> Claim {
        let expires = self.now.saturating_add(self.ttl);
        match self.leases.get_mut(cell) {
            None => {
                self.leases.insert(
                    cell.to_string(),
                    Lease {
                        holder: holder.to_string(),
                        expires,
                    },
                );
                Claim::Granted
            }
            Some(lease) if lease.expires <= self.now => {
                lease.holder = holder.to_string();
                lease.expires = expires;
                Claim::Stolen
            }
            Some(_) => Claim::Held,
        }
    }

    /// Renews `holder`'s live lease on `cell`. `false` when the lease is
    /// gone, expired, or held by someone else — the holder must treat
    /// its claim as lost.
    pub fn renew(&mut self, cell: &str, holder: &str) -> bool {
        let now = self.now;
        let expires = now.saturating_add(self.ttl);
        match self.leases.get_mut(cell) {
            Some(lease) if lease.holder == holder && lease.expires > now => {
                lease.expires = expires;
                true
            }
            _ => false,
        }
    }

    /// Releases `holder`'s lease on `cell` (live or expired), removing
    /// the entry. `false` when the cell is not held by `holder`.
    pub fn release(&mut self, cell: &str, holder: &str) -> bool {
        match self.leases.get(cell) {
            Some(lease) if lease.holder == holder => {
                self.leases.remove(cell);
                true
            }
            _ => false,
        }
    }

    /// Force-expires `cell`'s lease (the pool observed its holder die),
    /// making the next claim a steal.
    pub fn expire(&mut self, cell: &str) {
        if let Some(lease) = self.leases.get_mut(cell) {
            lease.expires = self.now;
        }
    }

    /// The live holder of `cell`, if any.
    pub fn holder(&self, cell: &str) -> Option<&str> {
        self.leases
            .get(cell)
            .filter(|l| l.expires > self.now)
            .map(|l| l.holder.as_str())
    }

    /// Every cell present in the table (held or expired-awaiting-steal).
    pub fn cells(&self) -> Vec<&str> {
        self.leases.keys().map(String::as_str).collect()
    }

    /// Live leases (holder still within its ttl).
    pub fn live(&self) -> usize {
        self.leases
            .values()
            .filter(|l| l.expires > self.now)
            .count()
    }
}

/// Shared pool gauges, exported into the daemon's `/stats` and `/readyz`.
#[derive(Debug, Default)]
pub struct PoolStatus {
    /// All workers handshook; the pool accepts dispatches.
    pub ready: AtomicBool,
    /// Live worker processes.
    pub workers_alive: AtomicUsize,
    /// Workers currently executing a cell.
    pub workers_busy: AtomicUsize,
    /// Live leases in the pool's table.
    pub leases_held: AtomicUsize,
    /// Leases stolen from dead or wedged workers.
    pub steals: AtomicUsize,
    /// Cells quarantined as poisonous.
    pub poisoned: AtomicUsize,
    /// Workers that died mid-cell (SIGKILL/SIGSEGV/OOM/protocol), each
    /// replaced by a fresh spawn — the `/metrics` crash counter.
    pub crashes: AtomicUsize,
    pids: Mutex<Vec<u32>>,
}

impl PoolStatus {
    /// PIDs of the live workers (chaos tests pick SIGKILL victims here).
    pub fn pids(&self) -> Vec<u32> {
        self.pids.lock().expect("pids lock").clone()
    }

    fn add_pid(&self, pid: u32) {
        self.pids.lock().expect("pids lock").push(pid);
    }

    fn remove_pid(&self, pid: u32) {
        self.pids.lock().expect("pids lock").retain(|p| *p != pid);
    }
}

/// Pool configuration.
#[derive(Clone, Debug)]
pub struct PoolOptions {
    /// Path to the worker binary (`crisp-worker`).
    pub worker_bin: PathBuf,
    /// Worker process count (clamped to at least 1).
    pub workers: usize,
    /// The binary semver workers must report in their hello frame.
    pub expect_version: String,
    /// The `RESULT_SCHEMA` workers must report.
    pub expect_schema: u64,
    /// Consecutive worker deaths after which a cell is quarantined as
    /// poisonous. Aligns with the retry budget: with the default
    /// [`crate::retry::RetryPolicy`] (3 retries, 4 attempts), a
    /// threshold of 3 quarantines on the final attempt.
    pub poison_threshold: u32,
    /// Lease period: a worker that emits no frame for this long is
    /// declared wedged, killed, and its cell's lease stolen.
    pub lease: Duration,
    /// Heartbeat cadence workers are asked to publish at.
    pub heartbeat: Duration,
    /// Handshake deadline per worker.
    pub handshake_timeout: Duration,
    /// Stderr lines retained per worker for crash forensics.
    pub stderr_tail: usize,
}

impl Default for PoolOptions {
    fn default() -> PoolOptions {
        PoolOptions {
            worker_bin: PathBuf::from("crisp-worker"),
            workers: 1,
            expect_version: env!("CARGO_PKG_VERSION").to_string(),
            expect_schema: u64::from(crate::store::RESULT_SCHEMA),
            poison_threshold: 3,
            lease: Duration::from_secs(5),
            heartbeat: Duration::from_millis(100),
            handshake_timeout: Duration::from_secs(10),
            stderr_tail: 16,
        }
    }
}

/// One worker process and its plumbing.
struct Worker {
    child: Child,
    stdin: std::process::ChildStdin,
    frames: mpsc::Receiver<std::io::Result<Value>>,
    stderr_tail: Arc<Mutex<VecDeque<String>>>,
    pid: u32,
}

impl Worker {
    /// Last stderr lines, newest last.
    fn tail(&self) -> Vec<String> {
        self.stderr_tail
            .lock()
            .expect("stderr tail lock")
            .iter()
            .cloned()
            .collect()
    }
}

/// Per-cell crash bookkeeping for poison quarantine.
#[derive(Clone, Debug, Default)]
struct CrashRecord {
    consecutive: u32,
    last_exit: String,
    last_stderr: Vec<String>,
    last_heartbeat: (u64, u64),
}

/// The multi-process executor. Construct once with [`WorkerPool::spawn`]
/// (it handshakes every worker), then use it as the body of a supervisor
/// [`crate::supervisor::JobRunner`] via [`WorkerPool::run_cell`]. The
/// pool is `Sync`: each dispatch checks a worker out of the free list,
/// so concurrent supervisor threads drive distinct workers.
pub struct WorkerPool {
    opts: PoolOptions,
    free: Mutex<Vec<Worker>>,
    available: Condvar,
    crashes: Mutex<BTreeMap<String, CrashRecord>>,
    leases: Mutex<LeaseTable>,
    started: Instant,
    status: Arc<PoolStatus>,
    shutting_down: AtomicBool,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.opts.workers)
            .field("worker_bin", &self.opts.worker_bin)
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Spawns and handshakes every worker. Fails if any worker cannot be
    /// started or reports a mismatched version/schema (the whole pool is
    /// refused — a half-upgraded host must not run at all).
    ///
    /// # Errors
    ///
    /// A one-line message naming the worker and the failure.
    pub fn spawn(opts: PoolOptions) -> Result<WorkerPool, String> {
        let status = Arc::new(PoolStatus::default());
        let mut workers = Vec::new();
        for i in 0..opts.workers.max(1) {
            let w = spawn_worker(&opts, &status).map_err(|e| format!("worker {i}: {e}"))?;
            workers.push(w);
        }
        status.workers_alive.store(workers.len(), Ordering::SeqCst);
        status.ready.store(true, Ordering::SeqCst);
        let lease_ms = u64::try_from(opts.lease.as_millis()).unwrap_or(u64::MAX);
        Ok(WorkerPool {
            free: Mutex::new(workers),
            available: Condvar::new(),
            crashes: Mutex::new(BTreeMap::new()),
            leases: Mutex::new(LeaseTable::new(lease_ms.max(1))),
            started: Instant::now(),
            status,
            shutting_down: AtomicBool::new(false),
            opts,
        })
    }

    /// The pool's live gauges (shared with the daemon's `/stats`).
    pub fn status(&self) -> Arc<PoolStatus> {
        Arc::clone(&self.status)
    }

    /// Advances the lease table's logical clock to wall-time-since-start
    /// and returns the table lock.
    fn leases_now(&self) -> std::sync::MutexGuard<'_, LeaseTable> {
        let mut t = self.leases.lock().expect("lease table lock");
        let now = u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX);
        let behind = now.saturating_sub(t.now());
        t.tick(behind);
        t
    }

    fn sync_lease_gauge(&self) {
        let live = self.leases_now().live();
        self.status.leases_held.store(live, Ordering::SeqCst);
    }

    /// Runs one cell attempt on a pooled worker. This is the body of a
    /// supervisor job runner: failures come back pre-classified
    /// ([`RunError::Classified`]) through the retry taxonomy. `extra`
    /// must be a JSON object; its fields are merged into the run frame
    /// (scale, chaos flags — whatever the worker binary understands).
    ///
    /// # Errors
    ///
    /// Worker crashes map to [`FailureClass::WorkerCrash`] (retryable),
    /// quarantined cells to [`FailureClass::Poisoned`] (fatal), abort
    /// requests to `Cancelled`/`Timeout`, and worker-reported failures
    /// to their self-declared class.
    pub fn run_cell(
        &self,
        job_id: &str,
        job_spec: &str,
        ctx: &RunContext,
        extra: &Value,
    ) -> Result<Vec<f64>, RunError> {
        // Poison gate: a cell that has killed `poison_threshold`
        // consecutive workers is refused before it can take another.
        if let Some(rec) = self.crashes.lock().expect("crash map lock").get(job_id) {
            if rec.consecutive >= self.opts.poison_threshold {
                self.status.poisoned.fetch_add(1, Ordering::SeqCst);
                return Err(poison_error(job_id, rec, &self.opts));
            }
        }

        let mut worker = self.checkout(ctx)?;
        self.status.workers_busy.fetch_add(1, Ordering::SeqCst);
        let holder = format!("worker-{}", worker.pid);
        let claim = self.leases_now().claim(job_id, &holder);
        if claim == Claim::Stolen {
            self.status.steals.fetch_add(1, Ordering::SeqCst);
        }
        self.sync_lease_gauge();

        let outcome = self.drive(&mut worker, job_id, job_spec, ctx, extra);

        // Bookkeeping: release or expire the lease, then return the
        // worker (or bury it and respawn a replacement).
        let worker_died = matches!(outcome, DriveOutcome::Crashed { .. });
        {
            let mut leases = self.leases_now();
            if worker_died {
                leases.expire(job_id);
            } else {
                leases.release(job_id, &holder);
            }
        }
        self.sync_lease_gauge();
        self.status.workers_busy.fetch_sub(1, Ordering::SeqCst);

        match outcome {
            DriveOutcome::Ok(payload) => {
                self.crashes.lock().expect("crash map lock").remove(job_id);
                self.checkin(worker);
                Ok(payload)
            }
            DriveOutcome::Fail {
                class,
                error,
                detail,
            } => {
                self.crashes.lock().expect("crash map lock").remove(job_id);
                self.checkin(worker);
                Err(RunError::Classified {
                    class,
                    error,
                    detail,
                })
            }
            DriveOutcome::Aborted(reason) => {
                // The attempt was cancelled from outside mid-cell; the
                // worker is mid-simulation with no way to stop, so it is
                // killed and replaced. Not the cell's fault: no crash
                // count.
                self.bury(worker, "aborted");
                let (class, error) = match reason {
                    AbortReason::Cancelled => {
                        (FailureClass::Cancelled, "attempt cancelled".to_string())
                    }
                    AbortReason::DeadlineExceeded => (
                        FailureClass::Timeout,
                        "attempt deadline expired (worker killed)".to_string(),
                    ),
                };
                Err(RunError::Classified {
                    class,
                    error,
                    detail: None,
                })
            }
            DriveOutcome::Crashed { reason } => {
                self.status.crashes.fetch_add(1, Ordering::SeqCst);
                let tail = worker.tail();
                let exit = self.bury(worker, &reason);
                let record = {
                    let mut crashes = self.crashes.lock().expect("crash map lock");
                    let rec = crashes.entry(job_id.to_string()).or_default();
                    rec.consecutive += 1;
                    rec.last_exit = exit.clone();
                    rec.last_stderr = tail;
                    rec.last_heartbeat = ctx.progress.read();
                    rec.clone()
                };
                let detail = crash_detail(&record, &reason, &self.opts);
                Err(RunError::Classified {
                    class: FailureClass::WorkerCrash,
                    error: format!(
                        "worker died mid-cell ({reason}; {exit}; {} consecutive)",
                        record.consecutive
                    ),
                    detail: Some(detail),
                })
            }
        }
    }

    /// Takes a worker from the free list, waiting while all are busy.
    fn checkout(&self, ctx: &RunContext) -> Result<Worker, RunError> {
        let mut free = self.free.lock().expect("free list lock");
        loop {
            if let Some(w) = free.pop() {
                return Ok(w);
            }
            if self.status.workers_alive.load(Ordering::SeqCst) == 0 {
                return Err(RunError::Classified {
                    class: FailureClass::Runtime,
                    error: "worker pool has no live workers".to_string(),
                    detail: None,
                });
            }
            if let Some(reason) = ctx.cancel.should_abort() {
                let class = match reason {
                    AbortReason::Cancelled => FailureClass::Cancelled,
                    AbortReason::DeadlineExceeded => FailureClass::Timeout,
                };
                return Err(RunError::Classified {
                    class,
                    error: "aborted while waiting for a pool worker".to_string(),
                    detail: None,
                });
            }
            let (guard, _) = self
                .available
                .wait_timeout(free, Duration::from_millis(25))
                .expect("free list lock");
            free = guard;
        }
    }

    /// Returns a healthy worker to the free list.
    fn checkin(&self, worker: Worker) {
        self.free.lock().expect("free list lock").push(worker);
        self.available.notify_one();
    }

    /// Kills and reaps a dead-or-condemned worker, returns its exit
    /// status description, and (unless shutting down) spawns a
    /// replacement into the free list.
    fn bury(&self, mut worker: Worker, why: &str) -> String {
        let _ = worker.child.kill();
        let exit = match worker.child.wait() {
            Ok(status) => describe_exit(&status),
            Err(e) => format!("unreaped ({e})"),
        };
        self.status.remove_pid(worker.pid);
        self.status.workers_alive.fetch_sub(1, Ordering::SeqCst);
        if self.shutting_down.load(Ordering::SeqCst) {
            return exit;
        }
        match spawn_worker(&self.opts, &self.status) {
            Ok(fresh) => {
                self.status.workers_alive.fetch_add(1, Ordering::SeqCst);
                self.checkin(fresh);
            }
            Err(e) => {
                eprintln!("[pool] respawn after {why} failed: {e}");
            }
        }
        exit
    }

    /// Sends the run frame and pumps worker frames to completion.
    fn drive(
        &self,
        worker: &mut Worker,
        job_id: &str,
        job_spec: &str,
        ctx: &RunContext,
        extra: &Value,
    ) -> DriveOutcome {
        let mut pairs = vec![
            ("type".to_string(), Value::Str("run".to_string())),
            ("id".to_string(), Value::Str(job_id.to_string())),
            ("spec".to_string(), Value::Str(job_spec.to_string())),
            ("attempt".to_string(), Value::Num(f64::from(ctx.attempt))),
            (
                "heartbeat_ms".to_string(),
                Value::Num(self.opts.heartbeat.as_millis() as f64),
            ),
        ];
        if let Value::Obj(extra_pairs) = extra {
            pairs.extend(extra_pairs.clone());
        }
        if write_frame(&mut worker.stdin, &Value::Obj(pairs)).is_err() {
            return DriveOutcome::Crashed {
                reason: "run frame write failed".to_string(),
            };
        }
        let mut last_frame = Instant::now();
        loop {
            if let Some(reason) = ctx.cancel.should_abort() {
                return DriveOutcome::Aborted(reason);
            }
            match worker.frames.recv_timeout(Duration::from_millis(25)) {
                Ok(Ok(frame)) => {
                    last_frame = Instant::now();
                    match frame.get("type").and_then(Value::as_str) {
                        Some("heartbeat") => {
                            let cycles = frame.get("cycles").and_then(Value::as_u64).unwrap_or(0);
                            let instrs = frame.get("instrs").and_then(Value::as_u64).unwrap_or(0);
                            ctx.progress.publish(cycles, instrs);
                            // Renew both leases: the pool's table and the
                            // store's on-disk advisory lock.
                            let holder = format!("worker-{}", worker.pid);
                            self.leases_now().renew(job_id, &holder);
                            ctx.lease.renew();
                        }
                        Some("ok") => {
                            let payload = frame
                                .get("payload")
                                .and_then(Value::as_arr)
                                .map(|a| a.iter().filter_map(Value::as_f64).collect::<Vec<f64>>());
                            match payload {
                                Some(p) => return DriveOutcome::Ok(p),
                                None => {
                                    return DriveOutcome::Crashed {
                                        reason: "ok frame without payload".to_string(),
                                    };
                                }
                            }
                        }
                        Some("fail") => {
                            let class = frame
                                .get("class")
                                .and_then(Value::as_str)
                                .and_then(FailureClass::from_name)
                                .unwrap_or(FailureClass::Runtime);
                            let error = frame
                                .get("error")
                                .and_then(Value::as_str)
                                .unwrap_or("worker-reported failure")
                                .to_string();
                            return DriveOutcome::Fail {
                                class,
                                error,
                                detail: frame.get("detail").cloned(),
                            };
                        }
                        other => {
                            return DriveOutcome::Crashed {
                                reason: format!("unexpected frame type {other:?}"),
                            };
                        }
                    }
                }
                Ok(Err(e)) => {
                    // Reader thread hit EOF mid-frame or corrupt bytes.
                    return DriveOutcome::Crashed {
                        reason: format!("frame protocol error: {e}"),
                    };
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if last_frame.elapsed() > self.opts.lease {
                        return DriveOutcome::Crashed {
                            reason: format!(
                                "lease expired: no frame for {} ms",
                                last_frame.elapsed().as_millis()
                            ),
                        };
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return DriveOutcome::Crashed {
                        reason: "worker exited mid-cell".to_string(),
                    };
                }
            }
        }
    }

    /// Shuts the pool down: asks every idle worker to exit, kills the
    /// rest. Safe to call more than once.
    pub fn shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        self.status.ready.store(false, Ordering::SeqCst);
        let mut free = self.free.lock().expect("free list lock");
        for mut w in free.drain(..) {
            let _ = write_frame(
                &mut w.stdin,
                &Value::Obj(vec![(
                    "type".to_string(),
                    Value::Str("shutdown".to_string()),
                )]),
            );
            // Give it a beat to exit cleanly, then make sure.
            let deadline = Instant::now() + Duration::from_millis(500);
            loop {
                match w.child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    _ => {
                        let _ = w.child.kill();
                        let _ = w.child.wait();
                        break;
                    }
                }
            }
            self.status.remove_pid(w.pid);
            self.status.workers_alive.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// What one dispatch produced, before pool bookkeeping.
enum DriveOutcome {
    Ok(Vec<f64>),
    Fail {
        class: FailureClass,
        error: String,
        detail: Option<Value>,
    },
    Aborted(AbortReason),
    Crashed {
        reason: String,
    },
}

fn describe_exit(status: &std::process::ExitStatus) -> String {
    match status.code() {
        Some(code) => format!("exit code {code}"),
        None => format!("killed by signal ({status})"),
    }
}

/// The quarantine error for a poisoned cell, with full forensics.
fn poison_error(job_id: &str, rec: &CrashRecord, opts: &PoolOptions) -> RunError {
    RunError::Classified {
        class: FailureClass::Poisoned,
        error: format!(
            "cell {job_id} quarantined: killed {} consecutive worker(s) (last: {})",
            rec.consecutive, rec.last_exit
        ),
        detail: Some(crash_detail(rec, "poison quarantine", opts)),
    }
}

/// Forensic record for a worker crash / poison quarantine: what the
/// DEGRADED manifest line carries.
fn crash_detail(rec: &CrashRecord, reason: &str, opts: &PoolOptions) -> Value {
    Value::Obj(vec![
        ("kind".to_string(), Value::Str("worker-crash".to_string())),
        ("reason".to_string(), Value::Str(reason.to_string())),
        (
            "consecutive_crashes".to_string(),
            Value::Num(f64::from(rec.consecutive)),
        ),
        (
            "argv".to_string(),
            Value::Str(opts.worker_bin.display().to_string()),
        ),
        ("exit".to_string(), Value::Str(rec.last_exit.clone())),
        (
            "stderr_tail".to_string(),
            Value::Arr(
                rec.last_stderr
                    .iter()
                    .map(|l| Value::Str(l.clone()))
                    .collect(),
            ),
        ),
        (
            "last_heartbeat_cycles".to_string(),
            Value::Num(rec.last_heartbeat.0 as f64),
        ),
        (
            "last_heartbeat_instrs".to_string(),
            Value::Num(rec.last_heartbeat.1 as f64),
        ),
    ])
}

/// Spawns one worker process and runs the version handshake.
fn spawn_worker(opts: &PoolOptions, status: &Arc<PoolStatus>) -> Result<Worker, String> {
    let mut child = Command::new(&opts.worker_bin)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", opts.worker_bin.display()))?;
    let pid = child.id();
    let stdin = child.stdin.take().expect("piped stdin");
    let mut stdout = child.stdout.take().expect("piped stdout");
    let stderr = child.stderr.take().expect("piped stderr");

    // Reader thread: frames land in a channel so the pool can recv with
    // a timeout (lease enforcement) and observe EOF as a disconnect.
    let (tx, frames) = mpsc::channel();
    std::thread::spawn(move || loop {
        match read_frame(&mut stdout) {
            Ok(Some(frame)) => {
                if tx.send(Ok(frame)).is_err() {
                    return;
                }
            }
            Ok(None) => return, // clean EOF: channel disconnects
            Err(e) => {
                let _ = tx.send(Err(e));
                return;
            }
        }
    });

    // Stderr tail collector for crash forensics.
    let tail: Arc<Mutex<VecDeque<String>>> = Arc::new(Mutex::new(VecDeque::new()));
    let tail_writer = Arc::clone(&tail);
    let keep = opts.stderr_tail.max(1);
    std::thread::spawn(move || {
        use std::io::BufRead;
        let reader = std::io::BufReader::new(stderr);
        for line in reader.lines() {
            let Ok(line) = line else { return };
            let mut t = tail_writer.lock().expect("stderr tail lock");
            if t.len() >= keep {
                t.pop_front();
            }
            t.push_back(line);
        }
    });

    let mut worker = Worker {
        child,
        stdin,
        frames,
        stderr_tail: tail,
        pid,
    };

    // Handshake: hello within the deadline, matching version + schema.
    let hello = match worker.frames.recv_timeout(opts.handshake_timeout) {
        Ok(Ok(frame)) => frame,
        Ok(Err(e)) => {
            let _ = worker.child.kill();
            let _ = worker.child.wait();
            return Err(format!("handshake frame error: {e}"));
        }
        Err(_) => {
            let _ = worker.child.kill();
            let _ = worker.child.wait();
            return Err(format!(
                "no hello within {} ms",
                opts.handshake_timeout.as_millis()
            ));
        }
    };
    let version = hello.get("version").and_then(Value::as_str).unwrap_or("?");
    let schema = hello.get("schema").and_then(Value::as_u64).unwrap_or(0);
    let is_hello = hello.get("type").and_then(Value::as_str) == Some("hello");
    if !is_hello || version != opts.expect_version || schema != opts.expect_schema {
        let reason = format!(
            "version skew: worker reports {version}/schema {schema}, \
             pool expects {}/schema {} — refusing",
            opts.expect_version, opts.expect_schema
        );
        let _ = write_frame(
            &mut worker.stdin,
            &Value::Obj(vec![
                ("type".to_string(), Value::Str("refuse".to_string())),
                ("reason".to_string(), Value::Str(reason.clone())),
            ]),
        );
        let _ = worker.child.wait();
        return Err(reason);
    }
    write_frame(
        &mut worker.stdin,
        &Value::Obj(vec![("type".to_string(), Value::Str("accept".to_string()))]),
    )
    .map_err(|e| format!("accept frame: {e}"))?;
    status.add_pid(pid);
    Ok(worker)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let v = Value::Obj(vec![
            ("type".to_string(), Value::Str("ok".to_string())),
            (
                "payload".to_string(),
                Value::Arr(vec![Value::Num(1.5), Value::Num(-2.0)]),
            ),
        ]);
        let mut buf = Vec::new();
        write_frame(&mut buf, &v).unwrap();
        write_frame(&mut buf, &v).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), Some(v.clone()));
        assert_eq!(read_frame(&mut r).unwrap(), Some(v));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn torn_and_oversized_frames_are_protocol_errors() {
        // EOF inside the header.
        let mut r: &[u8] = &[0, 0];
        assert!(read_frame(&mut r).is_err());
        // EOF inside the body.
        let mut r: &[u8] = &[0, 0, 0, 9, b'{', b'}'];
        assert!(read_frame(&mut r).is_err());
        // A length over the cap.
        let huge = (MAX_FRAME as u32 + 1).to_be_bytes();
        let mut r: &[u8] = &huge;
        assert!(read_frame(&mut r).is_err());
        // Unparsable JSON.
        let mut buf = vec![0, 0, 0, 3];
        buf.extend_from_slice(b"nop");
        let mut r = &buf[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn lease_claims_renewals_and_steals() {
        let mut t = LeaseTable::new(10);
        assert_eq!(t.claim("cell", "a"), Claim::Granted);
        assert_eq!(t.claim("cell", "b"), Claim::Held, "live lease refuses");
        assert_eq!(t.claim("cell", "a"), Claim::Held, "even to the holder");
        assert!(t.renew("cell", "a"));
        assert!(!t.renew("cell", "b"), "only the holder renews");
        assert_eq!(t.holder("cell"), Some("a"));

        // Renewal extends: 9 ticks in, a renews; 9 more and it's alive.
        t.tick(9);
        assert!(t.renew("cell", "a"));
        t.tick(9);
        assert_eq!(t.holder("cell"), Some("a"));
        assert_eq!(t.claim("cell", "b"), Claim::Held);

        // Expiry: 1 more tick and b steals.
        t.tick(1);
        assert_eq!(t.holder("cell"), None, "expired lease has no live holder");
        assert_eq!(t.claim("cell", "b"), Claim::Stolen);
        assert!(!t.renew("cell", "a"), "the old holder lost its claim");
        assert!(t.renew("cell", "b"));

        // Release frees the cell for a clean grant.
        assert!(!t.release("cell", "a"));
        assert!(t.release("cell", "b"));
        assert_eq!(t.claim("cell", "a"), Claim::Granted);
    }

    #[test]
    fn force_expiry_turns_the_next_claim_into_a_steal() {
        let mut t = LeaseTable::new(1000);
        assert_eq!(t.claim("cell", "dead-worker"), Claim::Granted);
        t.expire("cell");
        assert_eq!(t.live(), 0);
        assert_eq!(t.cells(), vec!["cell"], "the cell is never lost");
        assert_eq!(t.claim("cell", "successor"), Claim::Stolen);
        assert_eq!(t.holder("cell"), Some("successor"));
    }

    #[test]
    fn spawn_refuses_a_missing_worker_binary() {
        let opts = PoolOptions {
            worker_bin: PathBuf::from("/nonexistent/crisp-worker"),
            ..PoolOptions::default()
        };
        let err = WorkerPool::spawn(opts).unwrap_err();
        assert!(err.contains("spawn"), "{err}");
    }

    #[test]
    fn spawn_refuses_a_silent_worker() {
        // `cat` never sends a hello frame: the handshake must time out
        // and the pool must refuse to come up.
        let opts = PoolOptions {
            worker_bin: PathBuf::from("/bin/cat"),
            handshake_timeout: Duration::from_millis(100),
            ..PoolOptions::default()
        };
        let err = WorkerPool::spawn(opts).unwrap_err();
        assert!(err.contains("no hello"), "{err}");
    }
}
