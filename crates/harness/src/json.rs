//! A minimal JSON encoder/parser for the run-manifest journal.
//!
//! The workspace builds with no external crates (everything is vendored),
//! so the journal cannot use `serde`. Records are flat — strings, small
//! integers, arrays of finite `f64` — and this module implements exactly
//! the JSON subset they need, both directions, with deterministic output:
//! object keys keep insertion order, and numbers are printed with Rust's
//! shortest-round-trip `f64` formatting so a decoded payload is
//! bit-identical to the encoded one.

use std::fmt::Write as _;

/// A JSON value. Objects preserve key order (deterministic encoding).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null` (also used for non-finite floats, which JSON cannot carry).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact nonnegative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Encodes the value as compact JSON (no whitespace).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.is_finite() {
                    // Rust's float Display is shortest-round-trip; integral
                    // values print without a fraction ("3"), which is valid
                    // JSON and parses back to the same f64.
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => encode_str(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.encode_into(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_str(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn encode_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Default nesting-depth ceiling for [`parse`]: deep enough for any
/// document this workspace writes, shallow enough that the recursive
/// parser can never blow the stack on adversarial input.
pub const DEFAULT_MAX_DEPTH: usize = 128;

/// Input bounds for [`parse_with_limits`] — the knobs the network-facing
/// service tightens for untrusted payloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum array/object nesting depth.
    pub max_depth: usize,
    /// Maximum input size in bytes (`None` = unbounded; trusted local
    /// files only).
    pub max_bytes: Option<usize>,
}

impl Default for ParseLimits {
    fn default() -> ParseLimits {
        ParseLimits {
            max_depth: DEFAULT_MAX_DEPTH,
            max_bytes: None,
        }
    }
}

/// Why a document was rejected. `TooDeep`/`TooLarge` are resource-bound
/// violations (the document may be well-formed JSON); `Syntax` is not.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The input exceeds the configured byte limit (checked up front, so
    /// oversized payloads cost nothing to reject).
    TooLarge {
        /// Input size.
        bytes: usize,
        /// The configured ceiling.
        limit: usize,
    },
    /// Nesting exceeds the configured depth limit.
    TooDeep {
        /// The configured ceiling.
        limit: usize,
        /// Byte offset of the bracket that crossed it.
        at: usize,
    },
    /// Malformed JSON.
    Syntax {
        /// Byte offset of the first error.
        at: usize,
        /// What was wrong there.
        message: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::TooLarge { bytes, limit } => {
                write!(f, "document too large ({bytes} bytes, limit {limit})")
            }
            ParseError::TooDeep { limit, at } => {
                write!(f, "nesting deeper than {limit} at byte {at}")
            }
            ParseError::Syntax { at, message } => write!(f, "{message} at byte {at}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else)
/// under [`ParseLimits::default`] — bounded recursion, unbounded size.
///
/// # Errors
///
/// A [`ParseError`] naming the byte offset of the first problem.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    parse_with_limits(input, ParseLimits::default())
}

/// Parses one JSON document under explicit resource limits — the entry
/// point for untrusted network input.
///
/// # Errors
///
/// [`ParseError::TooLarge`]/[`ParseError::TooDeep`] when a limit is
/// exceeded, [`ParseError::Syntax`] for malformed documents.
pub fn parse_with_limits(input: &str, limits: ParseLimits) -> Result<Value, ParseError> {
    if let Some(max) = limits.max_bytes {
        if input.len() > max {
            return Err(ParseError::TooLarge {
                bytes: input.len(),
                limit: max,
            });
        }
    }
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
        max_depth: limits.max_depth,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.fail("trailing garbage"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
    max_depth: usize,
}

impl<'a> Parser<'a> {
    fn fail(&self, message: impl Into<String>) -> ParseError {
        ParseError::Syntax {
            at: self.pos,
            message: message.into(),
        }
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > self.max_depth {
            return Err(ParseError::TooDeep {
                limit: self.max_depth,
                at: self.pos,
            });
        }
        Ok(())
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.fail("bad literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.fail("unexpected input")),
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| ParseError::Syntax {
                at: start,
                message: format!("bad number `{text}`"),
            })
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.fail("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.fail("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.fail("bad \\u escape"))?;
                            // Surrogate pairs are not needed by the journal
                            // (encode_str never emits them); map lone
                            // surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.fail("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.fail("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.enter()?;
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.fail("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for (text, v) in [
            ("null", Value::Null),
            ("true", Value::Bool(true)),
            ("false", Value::Bool(false)),
            ("3", Value::Num(3.0)),
            ("-2.5", Value::Num(-2.5)),
            ("\"hi\"", Value::Str("hi".into())),
        ] {
            assert_eq!(parse(text).unwrap(), v, "{text}");
            assert_eq!(parse(&v.encode()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn nested_document_round_trips() {
        let v = Value::Obj(vec![
            ("job".into(), Value::Str("fig7/mcf".into())),
            ("attempt".into(), Value::Num(2.0)),
            (
                "payload".into(),
                Value::Arr(vec![Value::Num(1.5), Value::Num(-0.125), Value::Num(1e-9)]),
            ),
            ("done".into(), Value::Bool(true)),
        ]);
        let text = v.encode();
        assert_eq!(parse(&text).unwrap(), v);
        assert_eq!(
            text,
            r#"{"job":"fig7/mcf","attempt":2,"payload":[1.5,-0.125,0.000000001],"done":true}"#
        );
    }

    #[test]
    fn strings_with_escapes_round_trip() {
        for s in [
            "plain",
            "with \"quotes\" and \\backslash",
            "newline\nand\ttab",
            "control\u{1}byte",
            "unicode: µops über 数",
        ] {
            let v = Value::Str(s.to_string());
            assert_eq!(parse(&v.encode()).unwrap(), v, "{s:?}");
        }
    }

    #[test]
    fn f64_payloads_round_trip_exactly() {
        for n in [
            0.0,
            -0.0,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1.234567890123456e300,
            -9.87654321e-12,
            2f64.powi(53),
        ] {
            let v = Value::Num(n);
            let back = parse(&v.encode()).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), n.to_bits(), "{n}");
        }
    }

    #[test]
    fn non_finite_numbers_encode_as_null() {
        assert_eq!(Value::Num(f64::NAN).encode(), "null");
        assert_eq!(Value::Num(f64::INFINITY).encode(), "null");
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "\"unterminated",
            "nulL",
            "1 2",
            "{\"a\":1,}",
            "[1]]",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn deeply_nested_input_is_rejected_not_overflowed() {
        // 10k open brackets would blow the stack without the depth guard.
        let hostile = "[".repeat(10_000);
        match parse(&hostile) {
            Err(ParseError::TooDeep { limit, .. }) => assert_eq!(limit, DEFAULT_MAX_DEPTH),
            other => panic!("expected TooDeep, got {other:?}"),
        }
        let hostile_obj = "{\"k\":".repeat(10_000);
        assert!(matches!(
            parse(&hostile_obj),
            Err(ParseError::TooDeep { .. })
        ));
    }

    #[test]
    fn depth_exactly_at_limit_parses() {
        let n = 5;
        let doc = format!("{}{}{}", "[".repeat(n), "1", "]".repeat(n));
        let limits = ParseLimits {
            max_depth: n,
            max_bytes: None,
        };
        assert!(parse_with_limits(&doc, limits).is_ok());
        let deeper = format!("{}{}{}", "[".repeat(n + 1), "1", "]".repeat(n + 1));
        assert!(matches!(
            parse_with_limits(&deeper, limits),
            Err(ParseError::TooDeep { limit, .. }) if limit == n
        ));
    }

    #[test]
    fn oversized_input_is_rejected_before_parsing() {
        let limits = ParseLimits {
            max_depth: DEFAULT_MAX_DEPTH,
            max_bytes: Some(8),
        };
        assert!(parse_with_limits("[1,2]", limits).is_ok());
        match parse_with_limits("[1,2,3,4,5]", limits) {
            Err(ParseError::TooLarge { bytes, limit }) => {
                assert_eq!(bytes, 11);
                assert_eq!(limit, 8);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn parse_errors_display_their_position() {
        let err = parse("[1,]").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { .. }));
        assert!(err.to_string().contains("at byte"), "{err}");
    }

    #[test]
    fn object_get_and_accessors() {
        let v = parse(r#"{"n":4,"s":"x","a":[1,2]}"#).unwrap();
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(4));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x"));
        assert_eq!(
            v.get("a").and_then(Value::as_arr).map(<[Value]>::len),
            Some(2)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Num(1.5).as_u64(), None);
        assert_eq!(Value::Num(-1.0).as_u64(), None);
    }
}
