//! The append-only JSONL run manifest.
//!
//! One line per event, flushed *and fsync'd* per record so the manifest
//! survives a SIGKILL with at most one torn trailing line. The first line
//! is a sweep header carrying the sweep's spec string (scale, targets);
//! every later line is a job-attempt record. Loading tolerates a torn
//! tail — any line that does not parse is counted and skipped, never
//! fatal — which is exactly what `--resume` needs after a crash.

use crate::class::FailureClass;
use crate::json::{parse, Value};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Journal format version, bumped on incompatible record changes.
///
/// Version history:
///
/// - v1 — 64-bit spec fingerprints (16 hex digits in `hash`);
/// - v2 — 128-bit fingerprints (32 hex digits) and an optional `cached`
///   field on `ok` records naming the store entry a payload came from.
///
/// Loading still accepts v1 lines: a 16-digit hash widens losslessly into
/// the low half of a `u128`, and resume compares against both widths.
pub const JOURNAL_VERSION: u64 = 2;

/// Oldest journal version the tolerant loader still decodes.
pub const JOURNAL_VERSION_MIN: u64 = 1;

fn known_version(v: u64) -> bool {
    (JOURNAL_VERSION_MIN..=JOURNAL_VERSION).contains(&v)
}

/// FNV-1a 64-bit hash — the v1 job-spec fingerprint, kept for decoding
/// old manifests and for seeding the retry-backoff jitter.
pub fn fnv1a64(data: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in data.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The first line of every manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepHeader {
    /// Human-readable sweep spec (scale, targets, workload filter).
    pub spec: String,
    /// Number of jobs in the sweep.
    pub jobs: usize,
}

/// One job attempt's outcome.
#[derive(Clone, Debug, PartialEq)]
pub enum AttemptOutcome {
    /// The attempt completed; `payload` is the cell's result vector.
    Ok {
        /// Figure-specific result values (layout documented per cell).
        payload: Vec<f64>,
        /// When the payload was served from the result store instead of
        /// simulated, the store key it came from — provenance for audits
        /// and the cache hit-rate accounting. `None` for computed cells.
        cached: Option<u128>,
    },
    /// The attempt failed.
    Fail {
        /// Failure classification (drives retry-vs-fatal).
        class: FailureClass,
        /// The error message, single line.
        error: String,
        /// Structured failure payload — deadlock-report fields, the panic
        /// message, checkpoint diagnostics — so DEGRADED tables can cite
        /// *why* a cell is missing. `None` when the failure carries no
        /// structure beyond `error`.
        detail: Option<Value>,
    },
}

/// One journal line: job identity plus one attempt's outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct AttemptRecord {
    /// Job id, e.g. `fig7/mcf`.
    pub job: String,
    /// FNV-1a 128-bit hash of the job's spec string (v1 lines decode
    /// their 64-bit hash into the low half).
    pub hash: u128,
    /// 1-based attempt number.
    pub attempt: u32,
    /// What happened.
    pub outcome: AttemptOutcome,
}

impl AttemptRecord {
    /// Encodes the record as one JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut pairs = vec![
            ("v".to_string(), Value::Num(JOURNAL_VERSION as f64)),
            ("kind".to_string(), Value::Str("attempt".into())),
            ("job".to_string(), Value::Str(self.job.clone())),
            (
                "hash".to_string(),
                Value::Str(format!("{:032x}", self.hash)),
            ),
            ("attempt".to_string(), Value::Num(f64::from(self.attempt))),
        ];
        match &self.outcome {
            AttemptOutcome::Ok { payload, cached } => {
                pairs.push(("outcome".into(), Value::Str("ok".into())));
                pairs.push((
                    "payload".into(),
                    Value::Arr(payload.iter().map(|&x| Value::Num(x)).collect()),
                ));
                if let Some(key) = cached {
                    pairs.push(("cached".into(), Value::Str(format!("{key:032x}"))));
                }
            }
            AttemptOutcome::Fail {
                class,
                error,
                detail,
            } => {
                pairs.push(("outcome".into(), Value::Str("fail".into())));
                pairs.push(("class".into(), Value::Str(class.name().into())));
                pairs.push(("error".into(), Value::Str(error.clone())));
                if let Some(d) = detail {
                    pairs.push(("detail".into(), d.clone()));
                }
            }
        }
        Value::Obj(pairs).encode()
    }

    /// Decodes one JSON line; `None` for anything malformed or from a
    /// different journal version (the tolerant-load contract).
    pub fn decode(line: &str) -> Option<AttemptRecord> {
        let v = parse(line).ok()?;
        if !known_version(v.get("v")?.as_u64()?) || v.get("kind")?.as_str()? != "attempt" {
            return None;
        }
        let job = v.get("job")?.as_str()?.to_string();
        // v1 hashes are 16 hex digits, v2 are 32; both widen into a u128.
        let hash = u128::from_str_radix(v.get("hash")?.as_str()?, 16).ok()?;
        let attempt = u32::try_from(v.get("attempt")?.as_u64()?).ok()?;
        let outcome = match v.get("outcome")?.as_str()? {
            "ok" => AttemptOutcome::Ok {
                payload: v
                    .get("payload")?
                    .as_arr()?
                    .iter()
                    .map(|x| x.as_f64())
                    .collect::<Option<Vec<f64>>>()?,
                cached: match v.get("cached") {
                    Some(key) => Some(u128::from_str_radix(key.as_str()?, 16).ok()?),
                    None => None,
                },
            },
            "fail" => AttemptOutcome::Fail {
                class: FailureClass::from_name(v.get("class")?.as_str()?)?,
                error: v.get("error")?.as_str()?.to_string(),
                detail: v.get("detail").cloned(),
            },
            _ => return None,
        };
        Some(AttemptRecord {
            job,
            hash,
            attempt,
            outcome,
        })
    }
}

/// A heartbeat line: the last observed progress of a running job, written
/// by the supervisor's monitor thread between attempt records. Progress
/// records are advisory — they never affect resume decisions — but they
/// let a post-mortem reader see how far a cell got before it timed out,
/// deadlocked or was SIGKILLed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgressRecord {
    /// Job id, e.g. `fig7/mcf`.
    pub job: String,
    /// Simulated cycles elapsed at the last beacon publish.
    pub cycles: u64,
    /// Instructions retired at the last beacon publish.
    pub instrs: u64,
    /// Wall-clock milliseconds since the attempt started.
    pub wall_ms: u64,
}

impl ProgressRecord {
    /// Encodes the record as one JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        Value::Obj(vec![
            ("v".into(), Value::Num(JOURNAL_VERSION as f64)),
            ("kind".into(), Value::Str("progress".into())),
            ("job".into(), Value::Str(self.job.clone())),
            ("cycles".into(), Value::Num(self.cycles as f64)),
            ("instrs".into(), Value::Num(self.instrs as f64)),
            ("wall_ms".into(), Value::Num(self.wall_ms as f64)),
        ])
        .encode()
    }

    /// Decodes one JSON line; `None` for anything malformed or of a
    /// different kind/version.
    pub fn decode(line: &str) -> Option<ProgressRecord> {
        let v = parse(line).ok()?;
        if !known_version(v.get("v")?.as_u64()?) || v.get("kind")?.as_str()? != "progress" {
            return None;
        }
        Some(ProgressRecord {
            job: v.get("job")?.as_str()?.to_string(),
            cycles: v.get("cycles")?.as_u64()?,
            instrs: v.get("instrs")?.as_u64()?,
            wall_ms: v.get("wall_ms")?.as_u64()?,
        })
    }
}

fn encode_header(h: &SweepHeader) -> String {
    Value::Obj(vec![
        ("v".into(), Value::Num(JOURNAL_VERSION as f64)),
        ("kind".into(), Value::Str("sweep".into())),
        ("spec".into(), Value::Str(h.spec.clone())),
        ("jobs".into(), Value::Num(h.jobs as f64)),
    ])
    .encode()
}

fn decode_header(line: &str) -> Option<SweepHeader> {
    let v = parse(line).ok()?;
    if !known_version(v.get("v")?.as_u64()?) || v.get("kind")?.as_str()? != "sweep" {
        return None;
    }
    Some(SweepHeader {
        spec: v.get("spec")?.as_str()?.to_string(),
        jobs: v.get("jobs")?.as_u64()? as usize,
    })
}

/// I/O or consistency failure of the journal itself (not of a job).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalError {
    /// The manifest path involved.
    pub path: PathBuf,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "manifest {}: {}", self.path.display(), self.message)
    }
}

impl std::error::Error for JournalError {}

/// Result of appending one record (see [`Journal::append`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AppendStatus {
    /// The record is durably on disk.
    Written,
    /// The configured crash point fired: a torn fragment of the record was
    /// written instead, and the journal accepts no further records — the
    /// process behaves as if SIGKILLed mid-write.
    Crashed,
}

/// Append-only, fsync-per-record journal writer.
///
/// Append I/O failures (disk full, short writes) are *contained*: the
/// journal rolls the file back to the last durably-written record
/// boundary and returns a typed [`JournalError`], so a later append can
/// succeed and the manifest never accumulates torn interior lines. The
/// supervisor treats such an error as degrading the affected cell, not
/// as fatal to the sweep — mirroring the store's warn-and-continue
/// policy.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    records: usize,
    crash_after: Option<usize>,
    crashed: bool,
    /// Byte offset of the end of the last cleanly written record; the
    /// rollback target after a failed or injected-failure append.
    clean_len: u64,
    /// Remaining injected append failures (test hook).
    fail_next: usize,
    /// Appends that failed (injected or real) since the journal opened.
    write_failures: usize,
}

impl Journal {
    /// Creates (truncating) a manifest and writes the sweep header.
    pub fn create(path: &Path, header: &SweepHeader) -> Result<Journal, JournalError> {
        let file = File::create(path).map_err(|e| JournalError {
            path: path.to_path_buf(),
            message: format!("create failed: {e}"),
        })?;
        let mut j = Journal {
            file,
            path: path.to_path_buf(),
            records: 0,
            crash_after: None,
            crashed: false,
            clean_len: 0,
            fail_next: 0,
            write_failures: 0,
        };
        j.write_line(&encode_header(header))?;
        Ok(j)
    }

    /// Opens an existing manifest for appending (resume).
    ///
    /// If the file ends in a torn line (a crash mid-write leaves a
    /// fragment with no trailing newline), a newline is appended first so
    /// new records cannot glue onto the fragment and corrupt themselves;
    /// the isolated fragment stays behind as one skipped line for the
    /// tolerant loader.
    pub fn open_append(path: &Path) -> Result<Journal, JournalError> {
        let io = |e: std::io::Error, what: &str| JournalError {
            path: path.to_path_buf(),
            message: format!("{what} failed: {e}"),
        };
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .open(path)
            .map_err(|e| io(e, "open for append"))?;
        let mut len = file.metadata().map_err(|e| io(e, "stat"))?.len();
        if len > 0 {
            let mut last = [0u8; 1];
            file.seek(SeekFrom::Start(len - 1))
                .and_then(|_| std::io::Read::read_exact(&mut file, &mut last))
                .map_err(|e| io(e, "read tail"))?;
            if last[0] != b'\n' {
                file.write_all(b"\n")
                    .and_then(|()| file.sync_data())
                    .map_err(|e| io(e, "torn-tail repair"))?;
                len += 1;
            }
        }
        Ok(Journal {
            file,
            path: path.to_path_buf(),
            records: 0,
            crash_after: None,
            crashed: false,
            clean_len: len,
            fail_next: 0,
            write_failures: 0,
        })
    }

    /// Arms the deterministic crash point: the `n`-th appended attempt
    /// record is torn mid-line and the journal then refuses all writes.
    /// Test hook standing in for a SIGKILL.
    pub fn crash_after_records(&mut self, n: usize) {
        self.crash_after = Some(n);
    }

    /// Whether the crash point has fired.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Arms the injected-I/O-failure hook: the next `k` attempt-record
    /// appends fail like a short write on a full disk (partial bytes hit
    /// the file, then an error), after which the journal recovers. Unlike
    /// [`Journal::crash_after_records`] the journal keeps accepting
    /// records afterwards — this models a *transient* ENOSPC, not a dead
    /// process.
    pub fn fail_appends(&mut self, k: usize) {
        self.fail_next = k;
    }

    /// How many appends have failed (injected or real) since opening.
    pub fn write_failures(&self) -> usize {
        self.write_failures
    }

    /// Appends one attempt record, fsync'd before returning.
    ///
    /// # Errors
    ///
    /// On an I/O failure the file is rolled back to the previous record
    /// boundary and a typed [`JournalError`] is returned; the journal
    /// stays usable for later appends.
    pub fn append(&mut self, rec: &AttemptRecord) -> Result<AppendStatus, JournalError> {
        if self.crashed {
            return Ok(AppendStatus::Crashed);
        }
        let line = rec.encode();
        self.records += 1;
        if self.crash_after.is_some_and(|n| self.records > n) {
            // Tear the record: write roughly half the line, no newline.
            let torn = &line[..line.len() / 2];
            let _ = self.file.write_all(torn.as_bytes());
            let _ = self.file.sync_data();
            self.crashed = true;
            return Ok(AppendStatus::Crashed);
        }
        if self.fail_next > 0 {
            self.fail_next -= 1;
            // Model a short write: part of the line lands, then ENOSPC.
            let _ = self.file.write_all(&line.as_bytes()[..line.len() / 2]);
            self.write_failures += 1;
            self.rollback();
            return Err(JournalError {
                path: self.path.clone(),
                message: "write failed: injected ENOSPC (short write)".into(),
            });
        }
        self.write_line(&line)?;
        Ok(AppendStatus::Written)
    }

    /// Appends one heartbeat record, fsync'd before returning. Progress
    /// lines do not count toward the attempt-record crash point (the
    /// crash hook models "the n-th *attempt* tears"), but a journal that
    /// has already crashed drops them like everything else.
    pub fn append_progress(&mut self, rec: &ProgressRecord) -> Result<AppendStatus, JournalError> {
        if self.crashed {
            return Ok(AppendStatus::Crashed);
        }
        self.write_line(&rec.encode())?;
        Ok(AppendStatus::Written)
    }

    fn write_line(&mut self, line: &str) -> Result<(), JournalError> {
        let result = self
            .file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.write_all(b"\n"))
            .and_then(|()| self.file.sync_data());
        match result {
            Ok(()) => {
                self.clean_len += line.len() as u64 + 1;
                Ok(())
            }
            Err(e) => {
                self.write_failures += 1;
                self.rollback();
                Err(JournalError {
                    path: self.path.clone(),
                    message: format!("write failed: {e}"),
                })
            }
        }
    }

    /// Best-effort truncation back to the last record boundary after a
    /// failed append, so a partial line never sits in the middle of the
    /// manifest. For `O_APPEND` files the seek is a no-op on writes
    /// (harmless); for created files it keeps the cursor off a hole.
    fn rollback(&mut self) {
        let _ = self.file.set_len(self.clean_len);
        let _ = self.file.seek(SeekFrom::Start(self.clean_len));
        let _ = self.file.sync_data();
    }
}

/// Everything a resume needs from an existing manifest.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ManifestSummary {
    /// The sweep header, if the first line parsed as one.
    pub header: Option<SweepHeader>,
    /// Final `Ok` record per job id: `(spec hash, payload, attempt)`.
    /// Completed jobs are final — resume never re-runs them. Hashes from
    /// v1 manifests occupy the low 64 bits of the `u128`.
    pub completed: BTreeMap<String, (u128, Vec<f64>, u32)>,
    /// Highest failed attempt seen per job id (jobs with a later `Ok` are
    /// removed). Failed jobs get a *fresh* retry budget on resume.
    pub failed_attempts: BTreeMap<String, u32>,
    /// Last heartbeat per job id — how far each cell had gotten when the
    /// manifest stopped growing. Advisory; never drives resume decisions.
    pub progress: BTreeMap<String, ProgressRecord>,
    /// Attempt records parsed.
    pub records: usize,
    /// Malformed lines skipped (a crash leaves at most one torn tail).
    pub skipped_lines: usize,
}

/// Loads a manifest, tolerating a torn tail.
///
/// # Errors
///
/// Fails only if the file cannot be read at all — parse problems are
/// per-line and reported via [`ManifestSummary::skipped_lines`].
pub fn load_manifest(path: &Path) -> Result<ManifestSummary, JournalError> {
    let text = std::fs::read_to_string(path).map_err(|e| JournalError {
        path: path.to_path_buf(),
        message: format!("read failed: {e}"),
    })?;
    let mut summary = ManifestSummary::default();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        if i == 0 {
            if let Some(h) = decode_header(line) {
                summary.header = Some(h);
                continue;
            }
        }
        match AttemptRecord::decode(line) {
            Some(rec) => {
                summary.records += 1;
                match rec.outcome {
                    AttemptOutcome::Ok { payload, .. } => {
                        summary.failed_attempts.remove(&rec.job);
                        summary
                            .completed
                            .insert(rec.job, (rec.hash, payload, rec.attempt));
                    }
                    AttemptOutcome::Fail { .. } => {
                        if !summary.completed.contains_key(&rec.job) {
                            let e = summary.failed_attempts.entry(rec.job).or_insert(0);
                            *e = (*e).max(rec.attempt);
                        }
                    }
                }
            }
            None => match ProgressRecord::decode(line) {
                Some(p) => {
                    summary.progress.insert(p.job.clone(), p);
                }
                None => summary.skipped_lines += 1,
            },
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_rec(job: &str, attempt: u32, payload: Vec<f64>) -> AttemptRecord {
        AttemptRecord {
            job: job.into(),
            hash: u128::from(fnv1a64(job)),
            attempt,
            outcome: AttemptOutcome::Ok {
                payload,
                cached: None,
            },
        }
    }

    fn fail_rec(job: &str, attempt: u32, class: FailureClass) -> AttemptRecord {
        AttemptRecord {
            job: job.into(),
            hash: u128::from(fnv1a64(job)),
            attempt,
            outcome: AttemptOutcome::Fail {
                class,
                error: "boom".into(),
                detail: None,
            },
        }
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64("foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn records_round_trip_through_the_serializer() {
        let recs = [
            ok_rec("fig7/mcf", 2, vec![8.4, -0.5, 1.0 / 3.0]),
            fail_rec("fig9/lbm", 1, FailureClass::Deadlock),
            ok_rec("ablations/namd", 1, vec![]),
        ];
        for r in recs {
            assert_eq!(AttemptRecord::decode(&r.encode()), Some(r.clone()), "{r:?}");
        }
    }

    #[test]
    fn structured_failure_detail_round_trips() {
        let detail = Value::Obj(vec![
            ("kind".into(), Value::Str("deadlock".into())),
            ("cycle".into(), Value::Num(5e6)),
            ("stalled_for".into(), Value::Num(2e6)),
        ]);
        let rec = AttemptRecord {
            job: "fig7/lbm".into(),
            hash: u128::from(fnv1a64("fig7/lbm")),
            attempt: 1,
            outcome: AttemptOutcome::Fail {
                class: FailureClass::Deadlock,
                error: "simulator deadlock at cycle 5000000".into(),
                detail: Some(detail.clone()),
            },
        };
        let decoded = AttemptRecord::decode(&rec.encode()).expect("round trip");
        assert_eq!(decoded, rec);
        let AttemptOutcome::Fail {
            detail: Some(d), ..
        } = decoded.outcome
        else {
            panic!("detail lost");
        };
        assert_eq!(d.get("kind").unwrap().as_str(), Some("deadlock"));
        assert_eq!(d.get("cycle").unwrap().as_u64(), Some(5_000_000));
    }

    #[test]
    fn journal_writes_and_manifest_loads() {
        let dir = std::env::temp_dir().join("crisp-harness-journal-basic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        let header = SweepHeader {
            spec: "test sweep".into(),
            jobs: 2,
        };
        let mut j = Journal::create(&path, &header).unwrap();
        assert_eq!(
            j.append(&fail_rec("a", 1, FailureClass::Timeout)).unwrap(),
            AppendStatus::Written
        );
        assert_eq!(
            j.append(&ok_rec("a", 2, vec![1.5])).unwrap(),
            AppendStatus::Written
        );
        assert_eq!(
            j.append(&fail_rec("b", 1, FailureClass::Panic)).unwrap(),
            AppendStatus::Written
        );
        drop(j);

        let m = load_manifest(&path).unwrap();
        assert_eq!(m.header, Some(header));
        assert_eq!(m.records, 3);
        assert_eq!(m.skipped_lines, 0);
        assert_eq!(
            m.completed.get("a"),
            Some(&(u128::from(fnv1a64("a")), vec![1.5], 2))
        );
        assert_eq!(m.failed_attempts.get("b"), Some(&1));
        assert!(!m.failed_attempts.contains_key("a"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_point_tears_the_tail_and_load_tolerates_it() {
        let dir = std::env::temp_dir().join("crisp-harness-journal-crash");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        let header = SweepHeader {
            spec: "crash sweep".into(),
            jobs: 3,
        };
        let mut j = Journal::create(&path, &header).unwrap();
        j.crash_after_records(1);
        assert_eq!(
            j.append(&ok_rec("a", 1, vec![2.0])).unwrap(),
            AppendStatus::Written
        );
        assert_eq!(
            j.append(&ok_rec("b", 1, vec![3.0])).unwrap(),
            AppendStatus::Crashed
        );
        assert!(j.crashed());
        // Post-crash appends are silently dropped, like a dead process.
        assert_eq!(
            j.append(&ok_rec("c", 1, vec![4.0])).unwrap(),
            AppendStatus::Crashed
        );
        drop(j);

        let m = load_manifest(&path).unwrap();
        assert_eq!(m.records, 1);
        assert_eq!(m.skipped_lines, 1, "torn tail is skipped, not fatal");
        assert!(m.completed.contains_key("a"));
        assert!(!m.completed.contains_key("b"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_append_extends_an_existing_manifest() {
        let dir = std::env::temp_dir().join("crisp-harness-journal-append");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        let header = SweepHeader {
            spec: "s".into(),
            jobs: 2,
        };
        let mut j = Journal::create(&path, &header).unwrap();
        j.append(&ok_rec("a", 1, vec![1.0])).unwrap();
        drop(j);
        let mut j = Journal::open_append(&path).unwrap();
        j.append(&ok_rec("b", 1, vec![2.0])).unwrap();
        drop(j);
        let m = load_manifest(&path).unwrap();
        assert_eq!(m.completed.len(), 2);
        assert_eq!(m.header.unwrap().spec, "s");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn progress_records_round_trip_and_load_keeps_the_latest() {
        let rec = ProgressRecord {
            job: "fig7/mcf".into(),
            cycles: 123_456,
            instrs: 7_890,
            wall_ms: 42,
        };
        assert_eq!(ProgressRecord::decode(&rec.encode()), Some(rec.clone()));

        let dir = std::env::temp_dir().join("crisp-harness-journal-progress");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        let header = SweepHeader {
            spec: "s".into(),
            jobs: 1,
        };
        let mut j = Journal::create(&path, &header).unwrap();
        j.append_progress(&ProgressRecord {
            cycles: 10,
            instrs: 1,
            wall_ms: 5,
            ..rec.clone()
        })
        .unwrap();
        j.append_progress(&rec).unwrap();
        j.append(&ok_rec("fig7/mcf", 1, vec![1.0])).unwrap();
        drop(j);

        let m = load_manifest(&path).unwrap();
        assert_eq!(
            m.skipped_lines, 0,
            "progress lines are recognized, not skipped"
        );
        assert_eq!(m.records, 1, "only attempt records count");
        assert_eq!(m.progress.get("fig7/mcf"), Some(&rec), "latest wins");
        assert!(m.completed.contains_key("fig7/mcf"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn progress_lines_do_not_advance_the_crash_point() {
        let dir = std::env::temp_dir().join("crisp-harness-journal-progress-crash");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        let header = SweepHeader {
            spec: "s".into(),
            jobs: 2,
        };
        let mut j = Journal::create(&path, &header).unwrap();
        j.crash_after_records(1);
        let beat = ProgressRecord {
            job: "a".into(),
            cycles: 1,
            instrs: 1,
            wall_ms: 1,
        };
        // Heartbeats before, between and after: none of them consume the
        // attempt budget; the second *attempt* is the one that tears.
        assert_eq!(j.append_progress(&beat).unwrap(), AppendStatus::Written);
        assert_eq!(
            j.append(&ok_rec("a", 1, vec![1.0])).unwrap(),
            AppendStatus::Written
        );
        assert_eq!(j.append_progress(&beat).unwrap(), AppendStatus::Written);
        assert_eq!(
            j.append(&ok_rec("b", 1, vec![2.0])).unwrap(),
            AppendStatus::Crashed
        );
        assert_eq!(j.append_progress(&beat).unwrap(), AppendStatus::Crashed);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_append_failure_rolls_back_and_recovers() {
        let dir = std::env::temp_dir().join("crisp-harness-journal-enospc");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        let header = SweepHeader {
            spec: "s".into(),
            jobs: 2,
        };
        let mut j = Journal::create(&path, &header).unwrap();
        j.append(&ok_rec("a", 1, vec![1.0])).unwrap();
        j.fail_appends(2);
        assert!(j.append(&ok_rec("b", 1, vec![2.0])).is_err());
        assert!(j.append(&ok_rec("b", 2, vec![2.0])).is_err());
        assert_eq!(j.write_failures(), 2);
        // The disk "recovers": the next append lands cleanly.
        assert_eq!(
            j.append(&ok_rec("b", 3, vec![2.0])).unwrap(),
            AppendStatus::Written
        );
        drop(j);

        let m = load_manifest(&path).unwrap();
        assert_eq!(m.skipped_lines, 0, "rollback leaves no torn interior lines");
        assert_eq!(m.records, 2);
        assert_eq!(m.completed.get("b").map(|c| c.2), Some(3));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_append_isolates_a_torn_tail() {
        let dir = std::env::temp_dir().join("crisp-harness-journal-torn-open");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        let header = SweepHeader {
            spec: "s".into(),
            jobs: 2,
        };
        let mut j = Journal::create(&path, &header).unwrap();
        j.append(&ok_rec("a", 1, vec![1.0])).unwrap();
        drop(j);
        // Simulate a SIGKILL mid-write: a fragment with no newline.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"v\":2,\"kind\":\"att").unwrap();
        }
        let mut j = Journal::open_append(&path).unwrap();
        j.append(&ok_rec("b", 1, vec![2.0])).unwrap();
        drop(j);

        let m = load_manifest(&path).unwrap();
        assert_eq!(m.skipped_lines, 1, "the fragment is one isolated line");
        assert!(m.completed.contains_key("a"));
        assert!(
            m.completed.contains_key("b"),
            "the post-repair record did not glue onto the fragment"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn alien_and_versioned_lines_are_skipped() {
        assert_eq!(AttemptRecord::decode("not json"), None);
        assert_eq!(
            AttemptRecord::decode("{\"v\":99,\"kind\":\"attempt\"}"),
            None
        );
        assert_eq!(
            AttemptRecord::decode("{\"v\":1,\"kind\":\"sweep\",\"spec\":\"s\",\"jobs\":1}"),
            None
        );
    }

    #[test]
    fn cached_provenance_round_trips() {
        let rec = AttemptRecord {
            job: "fig1/pointer_chase".into(),
            hash: 0xfeed_face_cafe_beef_0123_4567_89ab_cdef,
            attempt: 1,
            outcome: AttemptOutcome::Ok {
                payload: vec![2.5, 3.5],
                cached: Some(0xfeed_face_cafe_beef_0123_4567_89ab_cdef),
            },
        };
        let line = rec.encode();
        assert!(line.contains("\"cached\""), "{line}");
        assert_eq!(AttemptRecord::decode(&line), Some(rec));
    }

    #[test]
    fn v1_manifest_lines_still_decode() {
        // A literal line as PR-5 binaries wrote it: v1, 16-hex hash, no
        // `cached` field.
        let line = format!(
            "{{\"v\":1,\"kind\":\"attempt\",\"job\":\"a\",\"hash\":\"{:016x}\",\
             \"attempt\":2,\"outcome\":\"ok\",\"payload\":[1.5,-0.25]}}",
            fnv1a64("a spec-v1")
        );
        let rec = AttemptRecord::decode(&line).expect("v1 lines stay readable");
        assert_eq!(rec.hash, u128::from(fnv1a64("a spec-v1")));
        assert_eq!(
            rec.outcome,
            AttemptOutcome::Ok {
                payload: vec![1.5, -0.25],
                cached: None,
            }
        );
        let header = "{\"v\":1,\"kind\":\"sweep\",\"spec\":\"s\",\"jobs\":3}";
        assert_eq!(
            decode_header(header),
            Some(SweepHeader {
                spec: "s".into(),
                jobs: 3
            })
        );
        let beat = "{\"v\":1,\"kind\":\"progress\",\"job\":\"a\",\"cycles\":7,\
                    \"instrs\":3,\"wall_ms\":1}";
        assert!(ProgressRecord::decode(beat).is_some());
    }
}
