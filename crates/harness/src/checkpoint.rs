//! The on-disk checkpoint container for mid-run simulator snapshots.
//!
//! A checkpoint file wraps one [`crisp_sim::SimSnapshot`] in a versioned,
//! integrity-checked binary envelope, mirroring the journal's philosophy
//! (no external dependencies, torn-tail tolerance) for binary state:
//!
//! ```text
//! magic "CRSPCKPT"           8 bytes
//! format version             u64 LE
//! spec fingerprint (low)     u64 LE   FNV-1a 128 of the cell's spec string
//! spec fingerprint (high)    u64 LE   (v1 files carry a single 64-bit word)
//! snapshot cycle             u64 LE
//! section count              u64 LE
//! per section:
//!   name length (bytes)      u64 LE
//!   name bytes               zero-padded to an 8-byte boundary
//!   payload length (words)   u64 LE
//!   payload CRC-32           u64 LE   (IEEE, low 32 bits)
//!   payload words            u64 LE each
//! end marker "CRSPDONE"      8 bytes
//! ```
//!
//! Writes are atomic: the file is assembled under a `.tmp` name, fsync'd,
//! then renamed over the final path, so a SIGKILL mid-write leaves either
//! the previous checkpoint or a `.tmp` orphan — never a half-written file
//! under the real name. Reads verify, in order: magic, version, spec
//! fingerprint, per-section CRC, and the end marker; a file cut short at
//! any byte is reported as [`CheckpointError::Torn`], never mis-decoded.

use crate::journal::fnv1a64;
use crisp_sim::SimSnapshot;
use crisp_store::fnv1a128;
use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

pub use crisp_store::crc32;

/// Checkpoint container format version, bumped on incompatible changes.
///
/// Version history:
///
/// - v1 — a single 64-bit FNV-1a spec fingerprint;
/// - v2 — a 128-bit fingerprint stored as two u64 words (low, high).
///
/// v1 files remain readable: the reader verifies them against the 64-bit
/// fingerprint of the same spec string.
pub const CHECKPOINT_VERSION: u64 = 2;

const MAGIC: &[u8; 8] = b"CRSPCKPT";
const END_MARKER: &[u8; 8] = b"CRSPDONE";

/// Why a checkpoint could not be written or read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem failure (create, write, fsync, rename, read, scan).
    Io {
        /// The path involved.
        path: PathBuf,
        /// The OS error, contextualised.
        message: String,
    },
    /// The file ends before the declared content (a torn or truncated
    /// write — e.g. a crash that beat the rename).
    Torn {
        /// The checkpoint path.
        path: PathBuf,
        /// Where the truncation was detected.
        detail: String,
    },
    /// The file does not start with the checkpoint magic.
    BadMagic {
        /// The checkpoint path.
        path: PathBuf,
    },
    /// The file uses a different container format version.
    VersionMismatch {
        /// The checkpoint path.
        path: PathBuf,
        /// Version found in the file.
        found: u64,
        /// Version this build writes and reads.
        expected: u64,
    },
    /// The file was written for a different cell/config spec — restoring
    /// it would resume the wrong experiment.
    FingerprintMismatch {
        /// The checkpoint path.
        path: PathBuf,
        /// Fingerprint found in the file (v1 fingerprints occupy the low
        /// 64 bits).
        found: u128,
        /// Fingerprint of the spec attempting the restore, at the width
        /// the file's format version uses.
        expected: u128,
    },
    /// A section's payload failed its CRC — bit rot or partial overwrite.
    SectionCrc {
        /// The checkpoint path.
        path: PathBuf,
        /// The corrupted section's name.
        section: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io { path, message } => {
                write!(f, "checkpoint {}: {message}", path.display())
            }
            CheckpointError::Torn { path, detail } => write!(
                f,
                "checkpoint {} is torn ({detail}); discard it and resume from an older one",
                path.display()
            ),
            CheckpointError::BadMagic { path } => {
                write!(f, "checkpoint {}: not a checkpoint file", path.display())
            }
            CheckpointError::VersionMismatch {
                path,
                found,
                expected,
            } => write!(
                f,
                "checkpoint {}: format version {found}, this build reads {expected}",
                path.display()
            ),
            CheckpointError::FingerprintMismatch {
                path,
                found,
                expected,
            } => write!(
                f,
                "checkpoint {}: spec fingerprint {found:032x} does not match the running \
                 cell's {expected:032x} — it belongs to a different configuration",
                path.display()
            ),
            CheckpointError::SectionCrc { path, section } => write!(
                f,
                "checkpoint {}: section '{section}' failed its CRC check",
                path.display()
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

fn io_err(path: &Path, what: &str, e: std::io::Error) -> CheckpointError {
    CheckpointError::Io {
        path: path.to_path_buf(),
        message: format!("{what} failed: {e}"),
    }
}

fn encode(spec_fingerprint: u128, snapshot: &SimSnapshot) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    out.extend_from_slice(&(spec_fingerprint as u64).to_le_bytes());
    out.extend_from_slice(&((spec_fingerprint >> 64) as u64).to_le_bytes());
    out.extend_from_slice(&snapshot.cycle.to_le_bytes());
    out.extend_from_slice(&(snapshot.sections.len() as u64).to_le_bytes());
    for (name, words) in &snapshot.sections {
        out.extend_from_slice(&(name.len() as u64).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        while out.len() % 8 != 0 {
            out.push(0);
        }
        out.extend_from_slice(&(words.len() as u64).to_le_bytes());
        let mut payload = Vec::with_capacity(words.len() * 8);
        for w in words {
            payload.extend_from_slice(&w.to_le_bytes());
        }
        out.extend_from_slice(&u64::from(crc32(&payload)).to_le_bytes());
        out.extend_from_slice(&payload);
    }
    out.extend_from_slice(END_MARKER);
    out
}

/// Writes `snapshot` to `path` atomically (tmp + fsync + rename), stamped
/// with the FNV-1a fingerprint of `spec`.
///
/// # Errors
///
/// Only [`CheckpointError::Io`] — encoding cannot fail.
pub fn write_checkpoint(
    path: &Path,
    spec: &str,
    snapshot: &SimSnapshot,
) -> Result<(), CheckpointError> {
    let bytes = encode(fnv1a128(spec.as_bytes()), snapshot);
    let tmp = tmp_path(path);
    let mut file = File::create(&tmp).map_err(|e| io_err(&tmp, "create", e))?;
    file.write_all(&bytes)
        .map_err(|e| io_err(&tmp, "write", e))?;
    file.sync_data().map_err(|e| io_err(&tmp, "fsync", e))?;
    drop(file);
    fs::rename(&tmp, path).map_err(|e| io_err(path, "rename", e))?;
    // Make the rename itself durable where the platform allows it.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    path: &'a Path,
}

impl<'a> ByteReader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CheckpointError> {
        if self.bytes.len() - self.pos < n {
            return Err(CheckpointError::Torn {
                path: self.path.to_path_buf(),
                detail: format!(
                    "file ends at byte {} while reading {what}",
                    self.bytes.len()
                ),
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u64(&mut self, what: &str) -> Result<u64, CheckpointError> {
        let s = self.take(8, what)?;
        Ok(u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }
}

/// Reads and fully verifies the checkpoint at `path`, requiring it to
/// carry the fingerprint of `spec`.
///
/// # Errors
///
/// Every integrity failure is typed: [`CheckpointError::Torn`] for
/// truncation, [`CheckpointError::BadMagic`] /
/// [`CheckpointError::VersionMismatch`] /
/// [`CheckpointError::FingerprintMismatch`] for envelope mismatches, and
/// [`CheckpointError::SectionCrc`] for payload corruption.
pub fn read_checkpoint(path: &Path, spec: &str) -> Result<SimSnapshot, CheckpointError> {
    let bytes = fs::read(path).map_err(|e| io_err(path, "read", e))?;
    let mut r = ByteReader {
        bytes: &bytes,
        pos: 0,
        path,
    };
    let magic = r.take(8, "magic")?;
    if magic != MAGIC {
        return Err(CheckpointError::BadMagic {
            path: path.to_path_buf(),
        });
    }
    let version = r.u64("version")?;
    // v1 carried one 64-bit fingerprint word; v2 carries two. Verify at
    // the width the file was written with, so v1 checkpoints stay
    // restorable across the fingerprint upgrade.
    let (fingerprint, expected) = match version {
        1 => (u128::from(r.u64("fingerprint")?), u128::from(fnv1a64(spec))),
        2 => {
            let lo = r.u64("fingerprint (low)")?;
            let hi = r.u64("fingerprint (high)")?;
            (
                (u128::from(hi) << 64) | u128::from(lo),
                fnv1a128(spec.as_bytes()),
            )
        }
        found => {
            return Err(CheckpointError::VersionMismatch {
                path: path.to_path_buf(),
                found,
                expected: CHECKPOINT_VERSION,
            })
        }
    };
    if fingerprint != expected {
        return Err(CheckpointError::FingerprintMismatch {
            path: path.to_path_buf(),
            found: fingerprint,
            expected,
        });
    }
    let cycle = r.u64("cycle")?;
    let n_sections = r.u64("section count")? as usize;
    let mut sections = Vec::new();
    for i in 0..n_sections {
        let name_len = r.u64("section name length")? as usize;
        let name_bytes = r.take(name_len, "section name")?;
        let name = String::from_utf8(name_bytes.to_vec()).map_err(|_| CheckpointError::Torn {
            path: path.to_path_buf(),
            detail: format!("section {i} name is not UTF-8"),
        })?;
        let pad = (8 - name_len % 8) % 8;
        r.take(pad, "section name padding")?;
        let n_words = r.u64("section word count")? as usize;
        let stored_crc = r.u64("section crc")?;
        let payload = r.take(
            n_words
                .checked_mul(8)
                .ok_or_else(|| CheckpointError::Torn {
                    path: path.to_path_buf(),
                    detail: format!("section '{name}' declares an absurd length"),
                })?,
            "section payload",
        )?;
        if u64::from(crc32(payload)) != stored_crc {
            return Err(CheckpointError::SectionCrc {
                path: path.to_path_buf(),
                section: name,
            });
        }
        let words = payload
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect();
        sections.push((name, words));
    }
    let end = r.take(8, "end marker")?;
    if end != END_MARKER {
        return Err(CheckpointError::Torn {
            path: path.to_path_buf(),
            detail: "end marker missing or corrupt".to_string(),
        });
    }
    Ok(SimSnapshot { cycle, sections })
}

/// File name for job `job_id`'s checkpoint at `cycle`, filesystem-safe.
pub fn checkpoint_file_name(job_id: &str, cycle: u64) -> String {
    let safe: String = job_id
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    format!("{safe}-{cycle:020}.ckpt")
}

/// Scans `dir` for checkpoints of `job_id` and returns the valid one with
/// the highest cycle, silently skipping torn, corrupt, mismatched or
/// orphaned `.tmp` files — exactly the debris a crash leaves behind.
///
/// # Errors
///
/// Only [`CheckpointError::Io`] if the directory itself cannot be read;
/// a missing directory yields `Ok(None)`.
pub fn newest_valid_checkpoint(
    dir: &Path,
    job_id: &str,
    spec: &str,
) -> Result<Option<(PathBuf, SimSnapshot)>, CheckpointError> {
    let prefix = checkpoint_file_name(job_id, 0);
    let prefix = &prefix[..prefix.len() - "00000000000000000000.ckpt".len()];
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err(dir, "scan", e)),
    };
    let mut best: Option<(PathBuf, SimSnapshot)> = None;
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, "scan", e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if !name.starts_with(prefix) || !name.ends_with(".ckpt") {
            continue;
        }
        let path = entry.path();
        let Ok(snapshot) = read_checkpoint(&path, spec) else {
            continue;
        };
        if best.as_ref().is_none_or(|(_, b)| snapshot.cycle > b.cycle) {
            best = Some((path, snapshot));
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> SimSnapshot {
        SimSnapshot {
            cycle: 12_345,
            sections: vec![
                ("engine".to_string(), vec![1, 2, 3, u64::MAX, 0]),
                ("mem".to_string(), vec![]),
                ("bpu".to_string(), vec![42; 100]),
                ("stats".to_string(), vec![7, 8, 9]),
            ],
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("crisp-harness-ckpt-{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_matches_the_reference_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn checkpoints_round_trip_exactly() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("cell.ckpt");
        let snap = sample_snapshot();
        write_checkpoint(&path, "fig7/mcf v1", &snap).unwrap();
        let read = read_checkpoint(&path, "fig7/mcf v1").unwrap();
        assert_eq!(read, snap);
        assert!(
            !tmp_path(&path).exists(),
            "tmp file must be renamed away on success"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_truncation_point_reads_as_torn_or_typed() {
        let dir = temp_dir("torn");
        let path = dir.join("cell.ckpt");
        let snap = sample_snapshot();
        write_checkpoint(&path, "spec", &snap).unwrap();
        let full = std::fs::read(&path).unwrap();
        // Cut the file at a spread of byte positions: every prefix must
        // fail with a *typed* error, never panic or mis-decode.
        for cut in [
            0,
            7,
            8,
            15,
            23,
            31,
            39,
            40,
            55,
            full.len() - 9,
            full.len() - 1,
        ] {
            let cut_path = dir.join(format!("cut-{cut}.ckpt"));
            std::fs::write(&cut_path, &full[..cut]).unwrap();
            let err = read_checkpoint(&cut_path, "spec").unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Torn { .. } | CheckpointError::BadMagic { .. }
                ),
                "cut at {cut}: unexpected error {err}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn envelope_mismatches_are_typed() {
        let dir = temp_dir("envelope");
        let path = dir.join("cell.ckpt");
        write_checkpoint(&path, "spec-a", &sample_snapshot()).unwrap();

        // Wrong spec: fingerprint mismatch.
        let err = read_checkpoint(&path, "spec-b").unwrap_err();
        assert!(
            matches!(err, CheckpointError::FingerprintMismatch { .. }),
            "{err}"
        );
        assert!(err.to_string().contains("different configuration"));

        // Bumped version byte.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] = 99;
        let vpath = dir.join("versioned.ckpt");
        std::fs::write(&vpath, &bytes).unwrap();
        let err = read_checkpoint(&vpath, "spec-a").unwrap_err();
        assert_eq!(
            err,
            CheckpointError::VersionMismatch {
                path: vpath,
                found: 99,
                expected: CHECKPOINT_VERSION
            }
        );

        // Alien file.
        let apath = dir.join("alien.ckpt");
        std::fs::write(&apath, b"not a checkpoint at all").unwrap();
        let err = read_checkpoint(&apath, "spec-a").unwrap_err();
        assert!(matches!(err, CheckpointError::BadMagic { .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn payload_corruption_fails_the_section_crc() {
        let dir = temp_dir("crc");
        let path = dir.join("cell.ckpt");
        write_checkpoint(&path, "spec", &sample_snapshot()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one bit inside the first section's payload (header is
        // 6 u64s = 48 bytes; 'engine' name + pad = 8; len + crc = 16).
        let payload_start = 48 + 8 + 16;
        bytes[payload_start] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = read_checkpoint(&path, "spec").unwrap_err();
        assert_eq!(
            err,
            CheckpointError::SectionCrc {
                path: path.clone(),
                section: "engine".to_string()
            }
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Encodes a checkpoint exactly as PR-4 binaries did: version 1 with
    /// a single 64-bit fingerprint word.
    fn encode_v1(spec: &str, snapshot: &SimSnapshot) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&1u64.to_le_bytes());
        out.extend_from_slice(&fnv1a64(spec).to_le_bytes());
        out.extend_from_slice(&snapshot.cycle.to_le_bytes());
        out.extend_from_slice(&(snapshot.sections.len() as u64).to_le_bytes());
        for (name, words) in &snapshot.sections {
            out.extend_from_slice(&(name.len() as u64).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            while out.len() % 8 != 0 {
                out.push(0);
            }
            out.extend_from_slice(&(words.len() as u64).to_le_bytes());
            let mut payload = Vec::with_capacity(words.len() * 8);
            for w in words {
                payload.extend_from_slice(&w.to_le_bytes());
            }
            out.extend_from_slice(&u64::from(crc32(&payload)).to_le_bytes());
            out.extend_from_slice(&payload);
        }
        out.extend_from_slice(END_MARKER);
        out
    }

    #[test]
    fn v1_checkpoints_remain_restorable() {
        let dir = temp_dir("v1-compat");
        let path = dir.join("old.ckpt");
        let snap = sample_snapshot();
        std::fs::write(&path, encode_v1("fig7/mcf v1", &snap)).unwrap();
        assert_eq!(read_checkpoint(&path, "fig7/mcf v1").unwrap(), snap);
        // The v1 fingerprint is still verified, just at 64-bit width.
        let err = read_checkpoint(&path, "fig7/mcf v2").unwrap_err();
        assert!(
            matches!(
                err,
                CheckpointError::FingerprintMismatch { found, .. }
                    if found == u128::from(fnv1a64("fig7/mcf v1"))
            ),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn newest_valid_checkpoint_survives_crash_debris() {
        let dir = temp_dir("newest");
        let spec = "fig1/chase v1";
        let job = "fig1/chase";
        // Three generations of checkpoints...
        for cycle in [100u64, 500, 900] {
            let snap = SimSnapshot {
                cycle,
                sections: vec![("engine".to_string(), vec![cycle])],
            };
            write_checkpoint(&dir.join(checkpoint_file_name(job, cycle)), spec, &snap).unwrap();
        }
        // ...plus a crash's debris: a torn newer file under the real name
        // and an orphaned tmp from a write the rename never finished.
        let torn = dir.join(checkpoint_file_name(job, 1300));
        let good = std::fs::read(dir.join(checkpoint_file_name(job, 900))).unwrap();
        std::fs::write(&torn, &good[..good.len() / 2]).unwrap();
        std::fs::write(
            dir.join(format!("{}.tmp", checkpoint_file_name(job, 1700))),
            b"partial",
        )
        .unwrap();
        // And a checkpoint from a *different* job that must not match.
        write_checkpoint(
            &dir.join(checkpoint_file_name("fig1/other", 9999)),
            "fig1/other v1",
            &SimSnapshot {
                cycle: 9999,
                sections: vec![],
            },
        )
        .unwrap();

        let (path, snap) = newest_valid_checkpoint(&dir, job, spec).unwrap().unwrap();
        assert_eq!(snap.cycle, 900, "picked {}", path.display());

        // A different spec invalidates everything.
        assert_eq!(newest_valid_checkpoint(&dir, job, "v2").unwrap(), None);
        // A missing directory is not an error.
        assert_eq!(
            newest_valid_checkpoint(&dir.join("absent"), job, spec).unwrap(),
            None
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
