//! # crisp-harness
//!
//! The supervised experiment harness behind `crisp-bench`: every
//! (workload, config) cell of a sweep becomes a *job* run on a worker
//! pool with panic isolation, a per-job wall-clock deadline (enforced
//! cooperatively inside the simulator via [`crisp_sim::CancelToken`]),
//! and bounded retries with exponential backoff for transient failures.
//! Progress is journaled to an append-only JSONL run manifest — one
//! fsync'd record per attempt — so a sweep killed mid-flight resumes
//! with `--resume <manifest>`, re-executing only incomplete jobs and
//! reproducing byte-identical tables.
//!
//! Module map:
//!
//! - [`supervisor`] — job specs, the worker pool, retry/resume logic;
//! - [`pool`] — the multi-process executor: cell shards fork/exec'd
//!   into `crisp-worker` processes over a length-prefixed JSON frame
//!   protocol, with crash containment, heartbeat-renewed leases,
//!   poison-cell quarantine and version-skew refusal;
//! - [`journal`] — the JSONL manifest format and tolerant loader;
//! - [`checkpoint`] — the versioned, CRC-checked binary container for
//!   mid-run simulator snapshots (atomic write-rename, torn-file
//!   detection, config fingerprinting);
//! - [`retry`] — the backoff schedule;
//! - [`class`] — the failure taxonomy (retryable vs fatal);
//! - [`json`] — the dependency-free JSON subset the journal uses;
//! - [`spanlog`] — the cross-process span log (`spans.jsonl`) every
//!   layer of a job appends to, rendered by `crisp obs spans`;
//! - [`store`] — the content-addressed result store surface: keying
//!   policy plus re-exports of the `crisp-store` crate (verified cache
//!   hits skip simulation; corrupt entries quarantine and re-simulate).
//!
//! ## Example
//!
//! ```
//! use crisp_harness::{run_sweep, JobSpec, SupervisorOptions};
//!
//! let jobs = vec![JobSpec::new("demo/a", "demo/a v1"), JobSpec::new("demo/b", "demo/b v1")];
//! let report = run_sweep(&jobs, &SupervisorOptions::default(), &|job, _ctx| {
//!     Ok(vec![job.id.len() as f64])
//! })
//! .expect("no journal, no supervisor errors");
//! assert_eq!(report.completed(), 2);
//! assert!(!report.degraded());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod class;
pub mod journal;
pub mod json;
pub mod pool;
pub mod retry;
pub mod spanlog;
pub mod store;
pub mod supervisor;

pub use checkpoint::{
    checkpoint_file_name, newest_valid_checkpoint, read_checkpoint, write_checkpoint,
    CheckpointError, CHECKPOINT_VERSION,
};
pub use class::FailureClass;
pub use journal::{
    fnv1a64, load_manifest, AttemptOutcome, AttemptRecord, JournalError, ManifestSummary,
    ProgressRecord, SweepHeader,
};
pub use json::{ParseError, ParseLimits};
pub use pool::{
    read_frame, write_frame, Claim, LeaseTable, PoolOptions, PoolStatus, WorkerPool, MAX_FRAME,
};
pub use retry::RetryPolicy;
pub use spanlog::{append_span, load_spans, span_id, unix_ns, SpanScope};
pub use store::{cell_key, cell_key_material, ResultStoreConfig, RESULT_SCHEMA};
pub use supervisor::{
    failure_detail, run_sweep, EventSink, HarnessError, JobOutcome, JobRunner, JobSpec, LeaseGuard,
    RunContext, RunError, SupervisorOptions, SweepReport,
};
