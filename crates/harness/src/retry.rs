//! Bounded exponential backoff with deterministic jitter.
//!
//! Retryable job failures (timeouts, watchdog deadlocks, injected panics)
//! are re-queued after a delay that doubles per attempt up to a cap. The
//! jitter is *deterministic* — derived from the job's spec hash and the
//! attempt number with SplitMix64 — so a sweep replays identically, and it
//! is drawn from `[nominal/2, nominal]` so the schedule stays monotone
//! non-decreasing while the nominal delay is still growing.

use std::time::Duration;

/// Backoff schedule for retryable job failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries allowed after the first attempt (0 = fail on first error).
    pub max_retries: u32,
    /// Nominal delay after the first failed attempt.
    pub base: Duration,
    /// Hard ceiling on the nominal delay.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base: Duration::from_millis(100),
            cap: Duration::from_secs(5),
        }
    }
}

impl RetryPolicy {
    /// Total attempts a job may consume (first run + retries).
    pub fn max_attempts(&self) -> u32 {
        self.max_retries.saturating_add(1)
    }

    /// The un-jittered delay scheduled after failed attempt `attempt`
    /// (1-based): `min(cap, base * 2^(attempt-1))`, monotone in `attempt`.
    pub fn nominal_delay(&self, attempt: u32) -> Duration {
        let doublings = attempt.saturating_sub(1).min(20);
        self.base
            .checked_mul(1u32 << doublings)
            .map_or(self.cap, |d| d.min(self.cap))
    }

    /// The jittered delay after failed attempt `attempt`, in
    /// `[nominal/2, nominal]`. `seed` should identify the job (its spec
    /// hash) so different jobs desynchronise but a replayed sweep does not.
    pub fn delay(&self, attempt: u32, seed: u64) -> Duration {
        let nominal = self.nominal_delay(attempt);
        let half = nominal / 2;
        let span = nominal.saturating_sub(half).as_nanos() as u64;
        if span == 0 {
            return nominal;
        }
        let r = splitmix64(seed ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        half + Duration::from_nanos(r % (span + 1))
    }
}

/// SplitMix64 — the same tiny deterministic mixer `crisp_core::faults`
/// uses for fault injection.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_schedule_doubles_until_the_cap() {
        let p = RetryPolicy {
            max_retries: 10,
            base: Duration::from_millis(100),
            cap: Duration::from_secs(1),
        };
        assert_eq!(p.nominal_delay(1), Duration::from_millis(100));
        assert_eq!(p.nominal_delay(2), Duration::from_millis(200));
        assert_eq!(p.nominal_delay(3), Duration::from_millis(400));
        assert_eq!(p.nominal_delay(4), Duration::from_millis(800));
        assert_eq!(p.nominal_delay(5), Duration::from_secs(1));
        assert_eq!(p.nominal_delay(64), Duration::from_secs(1));
    }

    #[test]
    fn jittered_delay_stays_in_band_and_is_deterministic() {
        let p = RetryPolicy::default();
        for attempt in 1..=8 {
            for seed in [0u64, 1, 0xdead_beef, u64::MAX] {
                let d = p.delay(attempt, seed);
                let nominal = p.nominal_delay(attempt);
                assert!(d >= nominal / 2, "attempt {attempt} seed {seed}: {d:?}");
                assert!(d <= nominal, "attempt {attempt} seed {seed}: {d:?}");
                assert_eq!(d, p.delay(attempt, seed), "replay must match");
            }
        }
    }

    #[test]
    fn zero_base_never_panics() {
        let p = RetryPolicy {
            max_retries: 2,
            base: Duration::ZERO,
            cap: Duration::ZERO,
        };
        assert_eq!(p.delay(1, 42), Duration::ZERO);
        assert_eq!(p.max_attempts(), 3);
    }
}
