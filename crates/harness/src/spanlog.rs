//! Cross-process span log: the on-disk format behind `crisp obs spans`.
//!
//! Every layer that touches a job — daemon, supervisor, worker — appends
//! spans to the same per-job `spans.jsonl`, one JSON object per line:
//!
//! ```text
//! {"trace":"<32-hex>","span":"<16-hex>","parent":"<16-hex|0>",
//!  "name":"cell fig1:mcf#1","proc":"supervisor","start_ns":"...","end_ns":"..."}
//! ```
//!
//! Three properties make this safe without any cross-process
//! coordination:
//!
//! 1. **O_APPEND single-`write` lines.** Each record is one `write(2)`
//!    of one `\n`-terminated line well under `PIPE_BUF`, so concurrent
//!    appenders never interleave bytes (same contract as the daemon's
//!    event sink).
//! 2. **Deterministic span ids.** [`span_id`] hashes `trace|name`, so a
//!    parent process can name a child's span *before* the child runs
//!    (the supervisor mints `cell fig1:mcf#1` and passes it down; the
//!    worker derives the identical id independently). No id registry,
//!    no handshake.
//! 3. **Strings for wide integers.** Span ids and unix-epoch
//!    nanosecond timestamps exceed the 2^53 exact-integer range of the
//!    JSON subset's f64 numbers, so they are encoded as hex / decimal
//!    strings and parsed back exactly.

use std::fs::OpenOptions;
use std::io::{self, Write};
use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::journal::fnv1a64;
use crate::json::{parse, Value};
use crisp_obs::SpanRec;

/// Nanoseconds since the unix epoch — the one clock every process in a
/// job shares, so spans from different pids nest correctly.
pub fn unix_ns() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

/// Deterministic span id: FNV-1a over `trace|name`, remapped away from
/// 0 (the reserved "no parent" sentinel).
pub fn span_id(trace: &str, name: &str) -> u64 {
    match fnv1a64(&format!("{trace}|{name}")) {
        0 => 1,
        id => id,
    }
}

/// Appends one span record to `path` (O_APPEND, single write).
pub fn append_span(path: &Path, trace: &str, rec: &SpanRec) -> io::Result<()> {
    let line = Value::Obj(vec![
        ("trace".into(), Value::Str(trace.to_string())),
        ("span".into(), Value::Str(format!("{:016x}", rec.span))),
        ("parent".into(), Value::Str(format!("{:016x}", rec.parent))),
        ("name".into(), Value::Str(rec.name.clone())),
        ("proc".into(), Value::Str(rec.proc.clone())),
        ("start_ns".into(), Value::Str(rec.start_ns.to_string())),
        ("end_ns".into(), Value::Str(rec.end_ns.to_string())),
    ]);
    let mut file = OpenOptions::new().create(true).append(true).open(path)?;
    file.write_all(format!("{}\n", line.encode()).as_bytes())
}

/// A layer's handle on a job's span log: where to append, which trace,
/// and which parent to hang new spans under. Cloning with a different
/// `parent` scopes a child layer.
#[derive(Clone, Debug)]
pub struct SpanScope {
    /// The job's `spans.jsonl`.
    pub path: std::path::PathBuf,
    /// Trace id (the job id, hex).
    pub trace: String,
    /// Parent span id for spans this layer emits.
    pub parent: u64,
}

impl SpanScope {
    /// Appends a span named `name` under this scope's parent and
    /// returns its (deterministic) id so a deeper layer can parent on
    /// it. Append failures are swallowed — tracing never fails a sweep.
    pub fn emit(&self, name: &str, proc_name: &str, start_ns: u64, end_ns: u64) -> u64 {
        let span = span_id(&self.trace, name);
        let _ = append_span(
            &self.path,
            &self.trace,
            &SpanRec {
                span,
                parent: self.parent,
                name: name.to_string(),
                proc: proc_name.to_string(),
                start_ns,
                end_ns,
            },
        );
        span
    }
}

/// Accepts the string encodings [`append_span`] emits plus plain
/// numbers (hand-written logs, future writers).
fn wide_u64(v: &Value, hex: bool) -> Option<u64> {
    match v {
        Value::Str(s) => u64::from_str_radix(s, if hex { 16 } else { 10 }).ok(),
        _ => v.as_u64(),
    }
}

/// Parses a span log, skipping lines that are torn, non-JSON, or
/// missing fields — a live log's tail may be mid-write.
pub fn load_spans(text: &str) -> Vec<SpanRec> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Ok(v) = parse(line) else { continue };
        let field = |k: &str| v.get(k).cloned().unwrap_or(Value::Null);
        let (Some(span), Some(parent), Some(start_ns), Some(end_ns)) = (
            wide_u64(&field("span"), true),
            wide_u64(&field("parent"), true),
            wide_u64(&field("start_ns"), false),
            wide_u64(&field("end_ns"), false),
        ) else {
            continue;
        };
        let (Some(name), Some(proc_name)) = (
            field("name").as_str().map(str::to_string),
            field("proc").as_str().map(str::to_string),
        ) else {
            continue;
        };
        out.push(SpanRec {
            span,
            parent,
            name,
            proc: proc_name,
            start_ns,
            end_ns,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("crisp-spanlog-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn round_trips_wide_ids_and_nanos_exactly() {
        let path = temp_path("roundtrip");
        let trace = "00112233445566778899aabbccddeeff";
        let root = SpanRec {
            span: span_id(trace, "job"),
            parent: 0,
            name: "job".into(),
            proc: "daemon".into(),
            start_ns: 1_754_600_000_123_456_789, // > 2^53: must survive exactly
            end_ns: 1_754_600_001_123_456_789,
        };
        let child = SpanRec {
            span: span_id(trace, "cell a#1"),
            parent: root.span,
            name: "cell a#1".into(),
            proc: "supervisor".into(),
            start_ns: root.start_ns + 10,
            end_ns: root.end_ns - 10,
        };
        append_span(&path, trace, &root).unwrap();
        append_span(&path, trace, &child).unwrap();
        let loaded = load_spans(&std::fs::read_to_string(&path).unwrap());
        assert_eq!(loaded, vec![root, child]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn span_ids_are_deterministic_and_nonzero() {
        assert_eq!(span_id("t", "job"), span_id("t", "job"));
        assert_ne!(span_id("t", "job"), span_id("t", "queue"));
        assert_ne!(span_id("t", "job"), span_id("u", "job"));
        assert_ne!(span_id("t", "job"), 0);
    }

    #[test]
    fn loader_skips_torn_and_malformed_lines() {
        let text = concat!(
            "{\"span\":\"10\",\"parent\":\"0\",\"name\":\"a\",\"proc\":\"p\",",
            "\"start_ns\":\"5\",\"end_ns\":\"9\"}\n",
            "not json at all\n",
            "{\"span\":\"11\",\"parent\":\"0\",\"name\":\"missing times\",\"proc\":\"p\"}\n",
            "{\"span\":\"12\",\"parent\":\"10\",\"name\":\"b\",\"proc\":\"q\",",
            "\"start_ns\":6,\"end_ns\":8}\n",
            "{\"span\":\"13\",\"parent\":\"0\",\"na", // torn tail
        );
        let spans = load_spans(text);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].span, 0x10);
        assert_eq!(spans[1].span, 0x12);
        assert_eq!(spans[1].parent, 0x10);
        assert_eq!(spans[1].start_ns, 6); // plain-number fallback
    }
}
