//! The experiment supervisor: a worker pool that runs every (workload,
//! config) cell of a sweep as an isolated job.
//!
//! Per job, the supervisor provides:
//!
//! - **panic isolation** — each attempt runs under
//!   [`std::panic::catch_unwind`], so one poisoned cell cannot take down
//!   the sweep;
//! - **a wall-clock deadline** — each attempt gets a fresh
//!   [`CancelToken`] with the configured deadline; the simulator polls it
//!   cooperatively and aborts into [`crisp_sim::SimError::DeadlineExceeded`];
//! - **bounded retries with backoff** — transient failure classes
//!   ([`FailureClass::retryable`]) are re-queued per [`RetryPolicy`];
//!   deterministic ones fail fast;
//! - **journaling** — every attempt is appended (fsync'd) to the JSONL
//!   manifest, so a crashed sweep resumes from where it stopped;
//! - **salvage** — jobs whose retries are exhausted stay in the report as
//!   [`JobOutcome::Failed`]; the sweep still completes and renders
//!   degraded figures instead of dying.

use crate::class::FailureClass;
use crate::journal::{
    fnv1a64, load_manifest, AppendStatus, AttemptOutcome, AttemptRecord, Journal, JournalError,
    ProgressRecord, SweepHeader,
};
use crate::json::Value;
use crate::retry::RetryPolicy;
use crate::store::{cell_key, cell_key_material, ResultStoreConfig};
use crisp_core::CrispError;
use crisp_sim::{CancelToken, ProgressBeacon};
use crisp_store::{fnv1a128, CellLock, Lookup, Store};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime};

/// One schedulable cell of a sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// Stable id, e.g. `fig7/mcf` — the journal key.
    pub id: String,
    /// Full spec string (figure, workload, scale, cell-format version);
    /// hashed into the job fingerprint so a resume detects spec drift.
    pub spec: String,
}

impl JobSpec {
    /// Creates a job spec.
    pub fn new(id: impl Into<String>, spec: impl Into<String>) -> JobSpec {
        JobSpec {
            id: id.into(),
            spec: spec.into(),
        }
    }

    /// FNV-1a 128-bit fingerprint of the spec string — what the journal
    /// records and resume compares.
    pub fn fingerprint(&self) -> u128 {
        fnv1a128(self.spec.as_bytes())
    }

    /// The legacy 64-bit fingerprint, kept for matching v1 manifests on
    /// resume and for seeding retry-backoff jitter.
    pub fn fingerprint64(&self) -> u64 {
        fnv1a64(&self.spec)
    }
}

/// Per-attempt context handed to the job runner.
#[derive(Clone, Debug)]
pub struct RunContext {
    /// 1-based attempt number (first run is 1).
    pub attempt: u32,
    /// Cancellation token carrying this attempt's wall-clock deadline;
    /// thread it into every `SimConfig` the job builds.
    pub cancel: CancelToken,
    /// Progress beacon the job publishes (cycles, instructions retired)
    /// to; thread it into every `SimConfig` so the supervisor's heartbeat
    /// monitor can journal how far the cell has gotten. Failures cite the
    /// last published values in their structured detail.
    pub progress: ProgressBeacon,
    /// The cell's store lease (advisory lock), when this attempt holds
    /// one. A pool executor renews it on every worker heartbeat so a
    /// long cell outlives the store's staleness window.
    pub lease: LeaseGuard,
}

/// A shared handle on the cell's store lease: the supervisor installs
/// the attempt's [`CellLock`] (if any) and the runner — typically a
/// multi-process pool executor — renews it while the cell computes.
#[derive(Clone, Debug, Default)]
pub struct LeaseGuard(Arc<Mutex<Option<CellLock>>>);

impl LeaseGuard {
    fn install(&self, lock: Option<CellLock>) {
        *self.0.lock().expect("lease lock") = lock;
    }

    fn take(&self) -> Option<CellLock> {
        self.0.lock().expect("lease lock").take()
    }

    /// Renews the held store lease (refreshing its staleness clock).
    /// Returns `false` when no lease is held or the lease was stolen.
    pub fn renew(&self) -> bool {
        self.0
            .lock()
            .expect("lease lock")
            .as_ref()
            .is_some_and(CellLock::renew)
    }
}

/// How a job attempt failed, as reported by the runner.
///
/// Most runners fail with a pipeline error, classified through
/// [`FailureClass::classify`]. Executors that know better — the
/// multi-process pool observing a worker SIGKILL, or quarantining a
/// poison cell — report a pre-classified failure with its own forensic
/// detail instead.
#[derive(Debug)]
pub enum RunError {
    /// A pipeline error; the supervisor classifies it.
    Pipeline(CrispError),
    /// A failure the executor already classified (worker crash, poison
    /// quarantine), carried verbatim into the manifest.
    Classified {
        /// The retry-taxonomy class.
        class: FailureClass,
        /// Human-readable error message.
        error: String,
        /// Structured forensic payload for DEGRADED tables.
        detail: Option<Value>,
    },
}

impl From<CrispError> for RunError {
    fn from(e: CrispError) -> RunError {
        RunError::Pipeline(e)
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Pipeline(e) => write!(f, "{e}"),
            RunError::Classified { class, error, .. } => write!(f, "{class}: {error}"),
        }
    }
}

/// A live event listener: the supervisor calls it once per lifecycle
/// event (cell started / heartbeat / retry / degraded / done) with a
/// one-object JSON payload. Sinks must be cheap and non-blocking; the
/// daemon's sink appends NDJSON lines that `GET /jobs/ID/events` streams.
#[derive(Clone)]
pub struct EventSink(Arc<dyn Fn(&Value) + Send + Sync>);

impl EventSink {
    /// Wraps a listener closure.
    pub fn new(f: impl Fn(&Value) + Send + Sync + 'static) -> EventSink {
        EventSink(Arc::new(f))
    }

    /// Delivers one event.
    pub fn emit(&self, event: &Value) {
        (self.0)(event);
    }
}

impl fmt::Debug for EventSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("EventSink(..)")
    }
}

fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// Emits one lifecycle event to the configured sink (no-op without one).
fn emit_event(sink: &Option<EventSink>, event: &str, job: &str, extra: Vec<(String, Value)>) {
    let Some(sink) = sink else { return };
    let mut pairs = vec![
        ("event".to_string(), Value::Str(event.to_string())),
        ("job".to_string(), Value::Str(job.to_string())),
        ("unix_ms".to_string(), Value::Num(unix_ms() as f64)),
    ];
    pairs.extend(extra);
    sink.emit(&Value::Obj(pairs));
}

/// The function the supervisor runs per attempt. Returns the cell's
/// payload vector; [`RunError::Pipeline`] errors are classified via
/// [`FailureClass::classify`], [`RunError::Classified`] ones pass
/// through unchanged.
pub type JobRunner<'a> = dyn Fn(&JobSpec, &RunContext) -> Result<Vec<f64>, RunError> + Sync + 'a;

/// Supervisor configuration.
#[derive(Clone, Debug)]
pub struct SupervisorOptions {
    /// Worker threads (clamped to at least 1 and at most the job count).
    pub workers: usize,
    /// Per-attempt wall-clock deadline (`None` = no deadline).
    pub deadline: Option<Duration>,
    /// Retry schedule for retryable failure classes.
    pub retry: RetryPolicy,
    /// JSONL manifest path (`None` = no journaling, no resume).
    pub manifest: Option<PathBuf>,
    /// Resume from the manifest instead of truncating it. Requires
    /// `manifest` and an existing file.
    pub resume: bool,
    /// Sweep-level spec recorded in (and, on resume, checked against) the
    /// manifest header.
    pub sweep_spec: String,
    /// Test hook: tear the n-th appended record and drop all later writes,
    /// simulating a SIGKILL mid-manifest.
    pub crash_after_records: Option<usize>,
    /// Emit per-job progress lines on stderr.
    pub progress: bool,
    /// Heartbeat cadence: every interval, a monitor thread samples each
    /// running job's [`ProgressBeacon`] and appends a `progress` record to
    /// the manifest (and, with `progress`, a stderr line). `None` disables
    /// the monitor.
    pub heartbeat: Option<Duration>,
    /// Content-addressed result store: completed cells are published to it
    /// and verified hits skip simulation entirely (`None` = no store).
    /// Store and lock failures never fail a sweep — they degrade to
    /// stderr warnings and uncached computation.
    pub store: Option<ResultStoreConfig>,
    /// Sweep-wide stop token for graceful drain (SIGTERM/SIGINT): when
    /// cancelled, workers stop dequeuing, every in-flight attempt's
    /// cancel token trips (they share this token's flag via
    /// [`CancelToken::linked`]), interrupted cells are left *unrecorded*
    /// so `--resume` re-runs them, and the pool exits promptly. `None`
    /// disables external stop.
    pub stop: Option<CancelToken>,
    /// Test hook: the first `n` attempt-record appends fail like a
    /// transient ENOSPC (see [`Journal::fail_appends`]).
    pub fail_journal_appends: usize,
    /// Live event sink: cell started / heartbeat / retry / degraded /
    /// done lifecycle events as one-object JSON payloads (`None` = no
    /// event stream).
    pub events: Option<EventSink>,
    /// Cross-process span log scope: every attempt appends a
    /// `cell <id>#<attempt>` span (and a `store-publish` child when a
    /// computed payload is published) under the scope's parent
    /// (`None` = no tracing).
    pub spans: Option<crate::spanlog::SpanScope>,
}

impl Default for SupervisorOptions {
    fn default() -> SupervisorOptions {
        SupervisorOptions {
            workers: 1,
            deadline: None,
            retry: RetryPolicy::default(),
            manifest: None,
            resume: false,
            sweep_spec: String::new(),
            crash_after_records: None,
            progress: false,
            heartbeat: None,
            store: None,
            stop: None,
            fail_journal_appends: 0,
            events: None,
            spans: None,
        }
    }
}

/// Final state of one job after the sweep.
#[derive(Clone, Debug, PartialEq)]
pub enum JobOutcome {
    /// The job produced a payload.
    Completed {
        /// The cell's result vector.
        payload: Vec<f64>,
        /// Attempts consumed (1 = first try; resumed jobs keep the
        /// attempt count recorded in the manifest).
        attempts: u32,
        /// Whether the payload was restored from the manifest rather than
        /// recomputed.
        resumed: bool,
        /// Whether the payload was served from the result store instead of
        /// simulated.
        cached: bool,
    },
    /// The job failed permanently (fatal class, or retries exhausted).
    Failed {
        /// The final attempt's failure class.
        class: FailureClass,
        /// The final attempt's error message.
        error: String,
        /// Attempts consumed.
        attempts: u32,
        /// Structured failure payload (see
        /// [`crate::journal::AttemptOutcome::Fail`]) for DEGRADED tables.
        detail: Option<Value>,
    },
}

/// What a sweep produced.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SweepReport {
    /// Final outcome per job id. Jobs in flight when the (injected) crash
    /// fired have no entry.
    pub outcomes: BTreeMap<String, JobOutcome>,
    /// Whether the injected crash point fired (the sweep is incomplete and
    /// must be resumed).
    pub crashed: bool,
    /// Jobs restored from the manifest without re-running.
    pub resumed: usize,
    /// Malformed manifest lines skipped during resume (torn tail).
    pub skipped_manifest_lines: usize,
    /// Cells served from the result store (verified entries).
    pub store_hits: usize,
    /// Cells simulated and published to the result store.
    pub store_computed: usize,
    /// Corrupt store entries quarantined (then re-simulated) this sweep.
    pub store_quarantined: usize,
    /// Whether a stop token drained the pool before every job reached a
    /// final outcome (the sweep is incomplete and composes with
    /// `--resume`, like a crash but with a clean manifest).
    pub interrupted: bool,
    /// Journal appends that failed with an I/O error and were rolled
    /// back (the affected records are lost from the manifest but the
    /// sweep continued — durability degraded, results intact).
    pub journal_write_failures: usize,
}

impl SweepReport {
    /// Jobs that completed (fresh or resumed).
    pub fn completed(&self) -> usize {
        self.outcomes
            .values()
            .filter(|o| matches!(o, JobOutcome::Completed { .. }))
            .count()
    }

    /// Jobs that failed permanently.
    pub fn failed(&self) -> usize {
        self.outcomes.len() - self.completed()
    }

    /// Whether any job failed permanently (the sweep result is usable but
    /// partial — exit code 6 territory).
    pub fn degraded(&self) -> bool {
        self.failed() > 0
    }

    /// A job's payload, if it completed.
    pub fn payload(&self, id: &str) -> Option<&[f64]> {
        match self.outcomes.get(id) {
            Some(JobOutcome::Completed { payload, .. }) => Some(payload),
            _ => None,
        }
    }

    /// Permanent failures grouped by class, each with its job ids.
    pub fn taxonomy(&self) -> Vec<(FailureClass, Vec<&str>)> {
        let mut by_class: BTreeMap<FailureClass, Vec<&str>> = BTreeMap::new();
        for (id, o) in &self.outcomes {
            if let JobOutcome::Failed { class, .. } = o {
                by_class.entry(*class).or_default().push(id);
            }
        }
        by_class.into_iter().collect()
    }
}

/// Failure of the supervisor itself (not of a job — job failures live in
/// the [`SweepReport`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HarnessError {
    /// The journal could not be created, opened, read or written.
    Journal(JournalError),
    /// Two jobs share an id — the journal key would be ambiguous.
    DuplicateJob(String),
    /// `--resume` pointed at a manifest written by a different sweep.
    ManifestHeaderMismatch {
        /// The running sweep's spec.
        expected: String,
        /// The manifest header's spec.
        found: String,
    },
    /// `resume` was requested without a manifest path.
    ResumeWithoutManifest,
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::Journal(e) => write!(f, "{e}"),
            HarnessError::DuplicateJob(id) => write!(f, "duplicate job id: {id}"),
            HarnessError::ManifestHeaderMismatch { expected, found } => write!(
                f,
                "manifest belongs to a different sweep (manifest: `{found}`, current: `{expected}`); \
                 start a fresh manifest instead of resuming"
            ),
            HarnessError::ResumeWithoutManifest => {
                write!(f, "resume requested but no manifest path given")
            }
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<JournalError> for HarnessError {
    fn from(e: JournalError) -> HarnessError {
        HarnessError::Journal(e)
    }
}

struct Pending {
    idx: usize,
    attempt: u32,
    ready_at: Instant,
}

/// Structured detail for a failed attempt: deadlock reports and
/// checkpoint failures carry machine-readable fields into the manifest so
/// a DEGRADED table can cite the failure, not just name it.
pub fn failure_detail(e: &CrispError) -> Option<Value> {
    match e {
        CrispError::Simulation(crisp_sim::SimError::Deadlock(r)) => {
            let mut pairs = vec![
                ("kind".to_string(), Value::Str("deadlock".into())),
                ("cycle".to_string(), Value::Num(r.cycle as f64)),
                ("stalled_for".to_string(), Value::Num(r.stalled_for as f64)),
                ("retired".to_string(), Value::Num(r.retired as f64)),
                ("total".to_string(), Value::Num(r.total as f64)),
                (
                    "rob".to_string(),
                    Value::Str(format!("{}/{}", r.rob.0, r.rob.1)),
                ),
                (
                    "rs".to_string(),
                    Value::Str(format!("{}/{}", r.rs.0, r.rs.1)),
                ),
            ];
            if let Some((pc, state)) = &r.rob_head {
                pairs.push(("rob_head_pc".to_string(), Value::Num(f64::from(*pc))));
                pairs.push(("rob_head_state".to_string(), Value::Str(state.to_string())));
            }
            if !r.recent_events.is_empty() {
                // The recorder tail, newest first and bounded so the
                // manifest line stays readable — the full history is in the
                // error string's flight-recorder section.
                pairs.push((
                    "recent_events".to_string(),
                    Value::Arr(
                        r.recent_events
                            .iter()
                            .rev()
                            .take(8)
                            .map(|e| {
                                Value::Str(format!(
                                    "c{} s{} pc{:#x} {}",
                                    e.cycle,
                                    e.seq,
                                    e.pc,
                                    e.kind.label()
                                ))
                            })
                            .collect(),
                    ),
                ));
            }
            Some(Value::Obj(pairs))
        }
        CrispError::Simulation(crisp_sim::SimError::SnapshotRestore { section, message }) => {
            Some(Value::Obj(vec![
                ("kind".to_string(), Value::Str("checkpoint".into())),
                ("section".to_string(), Value::Str(section.clone())),
                ("message".to_string(), Value::Str(message.clone())),
            ]))
        }
        CrispError::Checkpoint(m) => Some(Value::Obj(vec![
            ("kind".to_string(), Value::Str("checkpoint".into())),
            ("message".to_string(), Value::Str(m.clone())),
        ])),
        _ => None,
    }
}

/// Folds the attempt's last-published progress into a failure's structured
/// detail, so a DEGRADED table can say how far the cell got before it
/// died. No-op when the job never published.
fn with_progress(detail: Option<Value>, beacon: &ProgressBeacon) -> Option<Value> {
    let (cycles, instrs) = beacon.read();
    if cycles == 0 && instrs == 0 {
        return detail;
    }
    let mut pairs = match detail {
        Some(Value::Obj(pairs)) => pairs,
        Some(other) => vec![("detail".to_string(), other)],
        None => vec![("kind".to_string(), Value::Str("progress".into()))],
    };
    pairs.push(("progress_cycles".to_string(), Value::Num(cycles as f64)));
    pairs.push(("progress_instrs".to_string(), Value::Num(instrs as f64)));
    Some(Value::Obj(pairs))
}

/// Structured detail for a caught panic: the payload survives into the
/// manifest verbatim, not just its first line.
fn panic_detail(message: &str) -> Value {
    Value::Obj(vec![
        ("kind".to_string(), Value::Str("panic".into())),
        ("message".to_string(), Value::Str(message.to_string())),
    ])
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn first_line(s: &str) -> &str {
    s.lines().next().unwrap_or("")
}

/// Runs every job to a final outcome (or until the injected crash point
/// fires) and returns the report.
///
/// # Errors
///
/// Only supervisor-level failures ([`HarnessError`]) — a failing *job*
/// never fails the sweep; it becomes a [`JobOutcome::Failed`] entry.
pub fn run_sweep(
    jobs: &[JobSpec],
    opts: &SupervisorOptions,
    runner: &JobRunner<'_>,
) -> Result<SweepReport, HarnessError> {
    let mut seen = BTreeSet::new();
    for job in jobs {
        if !seen.insert(job.id.as_str()) {
            return Err(HarnessError::DuplicateJob(job.id.clone()));
        }
    }
    if opts.resume && opts.manifest.is_none() {
        return Err(HarnessError::ResumeWithoutManifest);
    }

    let mut outcomes: BTreeMap<String, JobOutcome> = BTreeMap::new();
    let mut resumed = 0usize;
    let mut skipped_manifest_lines = 0usize;

    // Resume: restore completed jobs from the manifest (spec hash must
    // match — a changed cell spec invalidates the stored payload).
    if opts.resume {
        let path = opts.manifest.as_ref().expect("checked above");
        let summary = load_manifest(path)?;
        skipped_manifest_lines = summary.skipped_lines;
        if let Some(header) = &summary.header {
            if !opts.sweep_spec.is_empty() && header.spec != opts.sweep_spec {
                return Err(HarnessError::ManifestHeaderMismatch {
                    expected: opts.sweep_spec.clone(),
                    found: header.spec.clone(),
                });
            }
        }
        for job in jobs {
            if let Some((hash, payload, attempts)) = summary.completed.get(&job.id) {
                // v2 manifests record the 128-bit fingerprint; v1 lines
                // decode with the legacy 64-bit one in the low half.
                // Accept either — both hash the same spec string.
                if *hash == job.fingerprint() || *hash == u128::from(job.fingerprint64()) {
                    outcomes.insert(
                        job.id.clone(),
                        JobOutcome::Completed {
                            payload: payload.clone(),
                            attempts: *attempts,
                            resumed: true,
                            cached: false,
                        },
                    );
                    resumed += 1;
                    if opts.progress {
                        eprintln!("[supervisor] {}: restored from manifest", job.id);
                    }
                } else if opts.progress {
                    eprintln!(
                        "[supervisor] {}: manifest entry has a different spec, re-running",
                        job.id
                    );
                }
            }
        }
    }

    let journal = match &opts.manifest {
        Some(path) => {
            let mut j = if opts.resume {
                Journal::open_append(path)?
            } else {
                Journal::create(
                    path,
                    &SweepHeader {
                        spec: opts.sweep_spec.clone(),
                        jobs: jobs.len(),
                    },
                )?
            };
            if let Some(n) = opts.crash_after_records {
                j.crash_after_records(n);
            }
            if opts.fail_journal_appends > 0 {
                j.fail_appends(opts.fail_journal_appends);
            }
            Some(Mutex::new(j))
        }
        None => None,
    };

    let queue: Mutex<VecDeque<Pending>> = Mutex::new(
        jobs.iter()
            .enumerate()
            .filter(|(_, job)| !outcomes.contains_key(&job.id))
            .map(|(idx, _)| Pending {
                idx,
                attempt: 1,
                ready_at: Instant::now(),
            })
            .collect(),
    );
    let remaining = AtomicUsize::new(queue.lock().expect("fresh queue").len());
    let crashed = AtomicBool::new(false);
    let outcomes = Mutex::new(outcomes);
    let store_counters = StoreCounters::default();
    // Live attempts' beacons, keyed by job id; workers register on entry
    // and deregister on exit, the heartbeat monitor samples in between.
    let registry: Mutex<BTreeMap<String, (ProgressBeacon, Instant)>> = Mutex::new(BTreeMap::new());

    let workers = opts
        .workers
        .clamp(1, remaining.load(Ordering::SeqCst).max(1));

    std::thread::scope(|scope| {
        if opts.heartbeat.is_some() {
            scope.spawn(|| {
                monitor_loop(opts, &registry, &remaining, &crashed, &journal);
            });
        }
        for _ in 0..workers {
            scope.spawn(|| {
                worker_loop(
                    jobs,
                    opts,
                    runner,
                    &queue,
                    &remaining,
                    &crashed,
                    &journal,
                    &outcomes,
                    &registry,
                    &store_counters,
                );
            });
        }
    });

    let outcomes = outcomes.into_inner().expect("workers exited cleanly");
    let journal_write_failures = journal
        .as_ref()
        .map_or(0, |j| j.lock().expect("journal lock").write_failures());
    let stop_cancelled = opts.stop.as_ref().is_some_and(CancelToken::is_cancelled);
    Ok(SweepReport {
        interrupted: stop_cancelled && outcomes.len() < jobs.len(),
        outcomes,
        crashed: crashed.load(Ordering::SeqCst),
        resumed,
        skipped_manifest_lines,
        store_hits: store_counters.hits.load(Ordering::SeqCst),
        store_computed: store_counters.computed.load(Ordering::SeqCst),
        store_quarantined: store_counters.quarantined.load(Ordering::SeqCst),
        journal_write_failures,
    })
}

/// Sweep-wide result-store accounting, shared across workers.
#[derive(Default)]
struct StoreCounters {
    hits: AtomicUsize,
    computed: AtomicUsize,
    quarantined: AtomicUsize,
}

/// What the store fast path decided for one cell.
enum StoreProbe {
    /// A verified entry exists; serve its payload.
    Hit(Vec<f64>),
    /// No usable entry. If a lock is carried, this worker holds the
    /// cell's lease and must publish (then release) after computing; a
    /// `None` lock means lock acquisition failed and the cell computes
    /// uncoordinated — safe, at worst duplicating identical work.
    Compute(Option<CellLock>),
}

/// Probes the store for a cell, coordinating with concurrent sweeps: a
/// miss acquires the cell's advisory lock and re-probes under it, so a
/// cell being simulated by another process is awaited, then served from
/// its published entry instead of duplicated. All store errors degrade to
/// stderr warnings and uncached computation.
fn probe_store(store: &Store, key: u128, job_id: &str, counters: &StoreCounters) -> StoreProbe {
    let quarantined = |error: &crisp_store::StoreError| {
        counters.quarantined.fetch_add(1, Ordering::SeqCst);
        eprintln!(
            "[supervisor] {job_id}: corrupt store entry quarantined ({error}), re-simulating"
        );
    };
    match store.lookup(key) {
        Ok(Lookup::Hit(entry)) => return StoreProbe::Hit(entry.payload),
        Ok(Lookup::Miss) => {}
        Ok(Lookup::Quarantined { error, .. }) => quarantined(&error),
        Err(e) => {
            eprintln!("[supervisor] {job_id}: store lookup failed ({e}), computing uncached");
            return StoreProbe::Compute(None);
        }
    }
    let lock = match store.lock(key) {
        Ok(lock) => lock,
        Err(e) => {
            eprintln!("[supervisor] {job_id}: store lock failed ({e}), computing uncached");
            return StoreProbe::Compute(None);
        }
    };
    // Re-probe under the lock: the previous holder may have published the
    // cell while this worker waited.
    match store.lookup(key) {
        Ok(Lookup::Hit(entry)) => StoreProbe::Hit(entry.payload),
        Ok(Lookup::Miss) => StoreProbe::Compute(Some(lock)),
        Ok(Lookup::Quarantined { error, .. }) => {
            quarantined(&error);
            StoreProbe::Compute(Some(lock))
        }
        Err(e) => {
            eprintln!("[supervisor] {job_id}: store re-probe failed ({e})");
            StoreProbe::Compute(Some(lock))
        }
    }
}

/// Samples every running job's progress beacon at the heartbeat cadence
/// and journals a `progress` record per job. Exits with the worker pool.
fn monitor_loop(
    opts: &SupervisorOptions,
    registry: &Mutex<BTreeMap<String, (ProgressBeacon, Instant)>>,
    remaining: &AtomicUsize,
    crashed: &AtomicBool,
    journal: &Option<Mutex<Journal>>,
) {
    let Some(every) = opts.heartbeat else { return };
    let mut next = Instant::now() + every;
    while remaining.load(Ordering::SeqCst) > 0
        && !crashed.load(Ordering::SeqCst)
        && !opts.stop.as_ref().is_some_and(CancelToken::is_cancelled)
    {
        // Short naps keep shutdown prompt even for long cadences.
        std::thread::sleep(every.min(Duration::from_millis(2)));
        if Instant::now() < next {
            continue;
        }
        next = Instant::now() + every;
        let beats: Vec<ProgressRecord> = {
            let reg = registry.lock().expect("registry lock");
            reg.iter()
                .map(|(job, (beacon, started))| {
                    let (cycles, instrs) = beacon.read();
                    ProgressRecord {
                        job: job.clone(),
                        cycles,
                        instrs,
                        wall_ms: u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX),
                    }
                })
                .collect()
        };
        for beat in beats {
            if opts.progress {
                eprintln!(
                    "[supervisor] {}: heartbeat cycle {} instr {} ({} ms)",
                    beat.job, beat.cycles, beat.instrs, beat.wall_ms
                );
            }
            emit_event(
                &opts.events,
                "heartbeat",
                &beat.job,
                vec![
                    ("cycles".to_string(), Value::Num(beat.cycles as f64)),
                    ("instrs".to_string(), Value::Num(beat.instrs as f64)),
                    ("wall_ms".to_string(), Value::Num(beat.wall_ms as f64)),
                ],
            );
            if let Some(j) = journal {
                if let Err(e) = j.lock().expect("journal lock").append_progress(&beat) {
                    eprintln!("[supervisor] heartbeat write failed: {e}");
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    jobs: &[JobSpec],
    opts: &SupervisorOptions,
    runner: &JobRunner<'_>,
    queue: &Mutex<VecDeque<Pending>>,
    remaining: &AtomicUsize,
    crashed: &AtomicBool,
    journal: &Option<Mutex<Journal>>,
    outcomes: &Mutex<BTreeMap<String, JobOutcome>>,
    registry: &Mutex<BTreeMap<String, (ProgressBeacon, Instant)>>,
    store_counters: &StoreCounters,
) {
    // A store that cannot be opened disables caching for this worker but
    // never fails the sweep.
    let store: Option<Store> = opts.store.as_ref().and_then(|cfg| {
        match Store::open_with(&cfg.dir, cfg.lock_options.clone()) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("[supervisor] result store disabled: {e}");
                None
            }
        }
    });
    loop {
        if crashed.load(Ordering::SeqCst) {
            return;
        }
        // Graceful drain: once the stop token trips, stop dequeuing and
        // let the pool wind down; queued jobs stay un-final so a resume
        // picks them up.
        if opts.stop.as_ref().is_some_and(CancelToken::is_cancelled) {
            return;
        }
        // Pick the first pending job whose backoff delay has elapsed.
        let next = {
            let mut q = queue.lock().expect("queue lock");
            let now = Instant::now();
            match q.iter().position(|p| p.ready_at <= now) {
                Some(pos) => Ok(q.remove(pos).expect("position is in range")),
                None => Err(q.iter().map(|p| p.ready_at).min()),
            }
        };
        let pending = match next {
            Ok(p) => p,
            Err(soonest) => {
                if remaining.load(Ordering::SeqCst) == 0 {
                    return;
                }
                // Idle: jobs are running on other workers or backing off.
                let nap = soonest
                    .map(|t| t.saturating_duration_since(Instant::now()))
                    .unwrap_or(Duration::from_millis(2))
                    .min(Duration::from_millis(2));
                std::thread::sleep(nap.max(Duration::from_micros(100)));
                continue;
            }
        };

        let job = &jobs[pending.idx];
        let attempt = pending.attempt;
        // Span per attempt: probe → (run → publish), emitted at every
        // exit below. Deterministic naming lets the worker process
        // derive this span's id independently and parent on it.
        let attempt_started_ns = crate::spanlog::unix_ns();
        let emit_cell = |end_ns: u64| -> u64 {
            opts.spans.as_ref().map_or(0, |scope| {
                scope.emit(
                    &format!("cell {}#{attempt}", job.id),
                    "supervisor",
                    attempt_started_ns,
                    end_ns,
                )
            })
        };

        // Store fast path: serve a verified entry without simulating, or
        // take the cell's lease so concurrent sweeps compute it once.
        let key = cell_key(&job.id, &job.spec);
        let mut cell_lock: Option<CellLock> = None;
        if let Some(st) = &store {
            match probe_store(st, key, &job.id, store_counters) {
                StoreProbe::Hit(payload) => {
                    // A hit is journaled like a computed success, with the
                    // store key as provenance, so `--resume` composes with
                    // caching and post-mortems can audit where every
                    // payload came from.
                    let record = AttemptRecord {
                        job: job.id.clone(),
                        hash: job.fingerprint(),
                        attempt,
                        outcome: AttemptOutcome::Ok {
                            payload: payload.clone(),
                            cached: Some(key),
                        },
                    };
                    if let Some(j) = journal {
                        match j.lock().expect("journal lock").append(&record) {
                            Ok(AppendStatus::Written) => {}
                            Ok(AppendStatus::Crashed) => {
                                crashed.store(true, Ordering::SeqCst);
                                return;
                            }
                            Err(e) => {
                                eprintln!("[supervisor] journal write failed: {e}");
                            }
                        }
                    }
                    if opts.progress {
                        eprintln!("[supervisor] {}: cache hit ({key:032x})", job.id);
                    }
                    store_counters.hits.fetch_add(1, Ordering::SeqCst);
                    emit_event(
                        &opts.events,
                        "cell-done",
                        &job.id,
                        vec![
                            ("attempt".to_string(), Value::Num(f64::from(attempt))),
                            ("cached".to_string(), Value::Bool(true)),
                        ],
                    );
                    outcomes.lock().expect("outcomes lock").insert(
                        job.id.clone(),
                        JobOutcome::Completed {
                            payload,
                            attempts: attempt,
                            resumed: false,
                            cached: true,
                        },
                    );
                    emit_cell(crate::spanlog::unix_ns());
                    remaining.fetch_sub(1, Ordering::SeqCst);
                    continue;
                }
                StoreProbe::Compute(lock) => cell_lock = lock,
            }
        }

        // Each attempt's token carries its own deadline but shares the
        // sweep-wide stop flag, so SIGTERM reaches in-flight simulations
        // at their next cooperative poll point.
        let cancel = match (&opts.stop, opts.deadline) {
            (Some(stop), d) => stop.linked(d),
            (None, Some(d)) => CancelToken::with_deadline(d),
            (None, None) => CancelToken::new(),
        };
        let ctx = RunContext {
            attempt,
            cancel,
            progress: ProgressBeacon::new(),
            lease: LeaseGuard::default(),
        };
        ctx.lease.install(cell_lock.take());
        emit_event(
            &opts.events,
            "cell-started",
            &job.id,
            vec![("attempt".to_string(), Value::Num(f64::from(attempt)))],
        );
        registry
            .lock()
            .expect("registry lock")
            .insert(job.id.clone(), (ctx.progress.clone(), Instant::now()));
        let result = catch_unwind(AssertUnwindSafe(|| runner(job, &ctx)));
        registry.lock().expect("registry lock").remove(&job.id);
        type Failure = (FailureClass, String, Option<Value>);
        let attempt_result: Result<Vec<f64>, Failure> = match result {
            Ok(Ok(payload)) => Ok(payload),
            Ok(Err(RunError::Pipeline(e))) => Err((
                FailureClass::classify(&e),
                e.to_string(),
                with_progress(failure_detail(&e), &ctx.progress),
            )),
            Ok(Err(RunError::Classified {
                class,
                error,
                detail,
            })) => Err((class, error, with_progress(detail, &ctx.progress))),
            Err(panic) => {
                let msg = panic_message(panic);
                let detail = with_progress(Some(panic_detail(&msg)), &ctx.progress);
                Err((FailureClass::Panic, msg, detail))
            }
        };

        // Journal the attempt before acting on it: the manifest must know
        // about a failure before the retry is scheduled, or a crash in the
        // gap would lose the attempt count.
        let record = AttemptRecord {
            job: job.id.clone(),
            hash: job.fingerprint(),
            attempt,
            outcome: match &attempt_result {
                Ok(payload) => AttemptOutcome::Ok {
                    payload: payload.clone(),
                    cached: None,
                },
                Err((class, error, detail)) => AttemptOutcome::Fail {
                    class: *class,
                    error: error.clone(),
                    detail: detail.clone(),
                },
            },
        };
        if let Some(j) = journal {
            let status = j.lock().expect("journal lock").append(&record);
            match status {
                Ok(AppendStatus::Written) => {}
                Ok(AppendStatus::Crashed) => {
                    // The simulated SIGKILL: drop the in-memory outcome too
                    // (a dead process records nothing) and stop the pool.
                    crashed.store(true, Ordering::SeqCst);
                    return;
                }
                Err(e) => {
                    // Real I/O failure: keep computing, lose durability.
                    eprintln!("[supervisor] journal write failed: {e}");
                }
            }
        }

        match attempt_result {
            Ok(payload) => {
                // Publish while still holding the cell's lease, then
                // release it: waiting processes re-probe and hit.
                let mut publish_window = None;
                if let Some(st) = &store {
                    let publish_started_ns = crate::spanlog::unix_ns();
                    match st.publish(key, &cell_key_material(&job.id, &job.spec), &payload) {
                        Ok(()) => {
                            store_counters.computed.fetch_add(1, Ordering::SeqCst);
                            publish_window = Some((publish_started_ns, crate::spanlog::unix_ns()));
                        }
                        Err(e) => {
                            eprintln!("[supervisor] {}: store publish failed: {e}", job.id);
                        }
                    }
                }
                drop(ctx.lease.take());
                let cell_span = emit_cell(crate::spanlog::unix_ns());
                if let (Some(scope), Some((start_ns, end_ns))) = (&opts.spans, publish_window) {
                    crate::spanlog::SpanScope {
                        parent: cell_span,
                        ..scope.clone()
                    }
                    .emit(
                        &format!("store-publish {}#{attempt}", job.id),
                        "supervisor",
                        start_ns,
                        end_ns,
                    );
                }
                if opts.progress {
                    eprintln!(
                        "[supervisor] {}: ok (attempt {attempt}/{})",
                        job.id,
                        opts.retry.max_attempts()
                    );
                }
                emit_event(
                    &opts.events,
                    "cell-done",
                    &job.id,
                    vec![
                        ("attempt".to_string(), Value::Num(f64::from(attempt))),
                        ("cached".to_string(), Value::Bool(false)),
                    ],
                );
                outcomes.lock().expect("outcomes lock").insert(
                    job.id.clone(),
                    JobOutcome::Completed {
                        payload,
                        attempts: attempt,
                        resumed: false,
                        cached: false,
                    },
                );
                remaining.fetch_sub(1, Ordering::SeqCst);
            }
            Err((class, error, detail)) => {
                if class == FailureClass::Cancelled
                    && opts.stop.as_ref().is_some_and(CancelToken::is_cancelled)
                {
                    // Drained, not broken: record no final outcome (the
                    // journaled fail line never outranks a later ok), so
                    // a resume re-runs the cell with a fresh budget.
                    drop(ctx.lease.take());
                    emit_cell(crate::spanlog::unix_ns());
                    return;
                }
                drop(ctx.lease.take());
                emit_cell(crate::spanlog::unix_ns());
                if class.retryable() && attempt < opts.retry.max_attempts() {
                    let delay = opts.retry.delay(attempt, job.fingerprint64());
                    if opts.progress {
                        eprintln!(
                            "[supervisor] {}: {class} on attempt {attempt}/{}, retrying in {} ms",
                            job.id,
                            opts.retry.max_attempts(),
                            delay.as_millis()
                        );
                    }
                    emit_event(
                        &opts.events,
                        "cell-retry",
                        &job.id,
                        vec![
                            ("attempt".to_string(), Value::Num(f64::from(attempt))),
                            ("class".to_string(), Value::Str(class.name().to_string())),
                            ("delay_ms".to_string(), Value::Num(delay.as_millis() as f64)),
                        ],
                    );
                    queue.lock().expect("queue lock").push_back(Pending {
                        idx: pending.idx,
                        attempt: attempt + 1,
                        ready_at: Instant::now() + delay,
                    });
                } else {
                    if opts.progress {
                        eprintln!(
                            "[supervisor] {}: FAILED ({class}) after {attempt} attempt(s): {}",
                            job.id,
                            first_line(&error)
                        );
                    }
                    emit_event(
                        &opts.events,
                        "cell-degraded",
                        &job.id,
                        vec![
                            ("attempt".to_string(), Value::Num(f64::from(attempt))),
                            ("class".to_string(), Value::Str(class.name().to_string())),
                            (
                                "error".to_string(),
                                Value::Str(first_line(&error).to_string()),
                            ),
                        ],
                    );
                    outcomes.lock().expect("outcomes lock").insert(
                        job.id.clone(),
                        JobOutcome::Failed {
                            class,
                            error,
                            attempts: attempt,
                            detail,
                        },
                    );
                    remaining.fetch_sub(1, Ordering::SeqCst);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_core::ConfigError;
    use std::sync::atomic::AtomicU32;

    fn jobs(ids: &[&str]) -> Vec<JobSpec> {
        ids.iter()
            .map(|id| JobSpec::new(*id, format!("{id} test-spec")))
            .collect()
    }

    fn fast_retry(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(4),
        }
    }

    #[test]
    fn all_jobs_complete_across_workers() {
        let js = jobs(&["a", "b", "c", "d", "e", "f"]);
        let opts = SupervisorOptions {
            workers: 4,
            ..SupervisorOptions::default()
        };
        let report = run_sweep(&js, &opts, &|job, _ctx| Ok(vec![job.id.len() as f64])).unwrap();
        assert_eq!(report.completed(), 6);
        assert!(!report.degraded());
        assert!(!report.crashed);
        assert_eq!(report.payload("c"), Some(&[1.0][..]));
    }

    #[test]
    fn panics_are_isolated_and_retried() {
        let js = jobs(&["flaky", "solid"]);
        let opts = SupervisorOptions {
            retry: fast_retry(2),
            ..SupervisorOptions::default()
        };
        let calls = AtomicU32::new(0);
        let report = run_sweep(&js, &opts, &|job, ctx| {
            if job.id == "flaky" {
                calls.fetch_add(1, Ordering::SeqCst);
                if ctx.attempt < 3 {
                    panic!("injected panic on attempt {}", ctx.attempt);
                }
            }
            Ok(vec![1.0])
        })
        .unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        assert_eq!(report.completed(), 2);
        assert_eq!(
            report.outcomes.get("flaky"),
            Some(&JobOutcome::Completed {
                payload: vec![1.0],
                attempts: 3,
                resumed: false,
                cached: false
            })
        );
    }

    #[test]
    fn fatal_classes_fail_fast_without_retry() {
        let js = jobs(&["bad-config"]);
        let opts = SupervisorOptions {
            retry: fast_retry(5),
            ..SupervisorOptions::default()
        };
        let calls = AtomicU32::new(0);
        let report = run_sweep(&js, &opts, &|_job, _ctx| {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(CrispError::Config(ConfigError::new("rob", "must be nonzero")).into())
        })
        .unwrap();
        assert_eq!(
            calls.load(Ordering::SeqCst),
            1,
            "no retries for config errors"
        );
        assert!(report.degraded());
        match report.outcomes.get("bad-config") {
            Some(JobOutcome::Failed {
                class: FailureClass::Config,
                attempts: 1,
                ..
            }) => {}
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn exhausted_retries_salvage_a_failed_outcome() {
        let js = jobs(&["always-panics", "fine"]);
        let opts = SupervisorOptions {
            retry: fast_retry(2),
            ..SupervisorOptions::default()
        };
        let report = run_sweep(&js, &opts, &|job, _ctx| {
            if job.id == "always-panics" {
                panic!("hopeless");
            }
            Ok(vec![42.0])
        })
        .unwrap();
        assert_eq!(report.completed(), 1);
        assert_eq!(report.failed(), 1);
        match report.outcomes.get("always-panics") {
            Some(JobOutcome::Failed {
                class: FailureClass::Panic,
                attempts: 3,
                error,
                detail,
            }) => {
                assert!(error.contains("hopeless"));
                let d = detail.as_ref().expect("panic carries detail");
                assert_eq!(d.get("kind").unwrap().as_str(), Some("panic"));
                assert_eq!(d.get("message").unwrap().as_str(), Some("hopeless"));
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
        let tax = report.taxonomy();
        assert_eq!(tax.len(), 1);
        assert_eq!(tax[0].0, FailureClass::Panic);
        assert_eq!(tax[0].1, vec!["always-panics"]);
    }

    #[test]
    fn deadline_token_reaches_the_runner_and_timeouts_classify() {
        let js = jobs(&["slow"]);
        let opts = SupervisorOptions {
            deadline: Some(Duration::from_millis(1)),
            retry: fast_retry(0),
            ..SupervisorOptions::default()
        };
        let report = run_sweep(&js, &opts, &|_job, ctx| {
            // Cooperative loop, like the engine's poll point.
            loop {
                if let Some(reason) = ctx.cancel.should_abort() {
                    assert_eq!(reason, crisp_sim::AbortReason::DeadlineExceeded);
                    return Err(
                        CrispError::Simulation(crisp_sim::SimError::DeadlineExceeded {
                            cycle: 7,
                            retired: 0,
                            total: 10,
                        })
                        .into(),
                    );
                }
                std::thread::sleep(Duration::from_micros(200));
            }
        })
        .unwrap();
        match report.outcomes.get("slow") {
            Some(JobOutcome::Failed {
                class: FailureClass::Timeout,
                ..
            }) => {}
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn duplicate_ids_and_bare_resume_are_rejected() {
        let dup = jobs(&["x", "x"]);
        assert_eq!(
            run_sweep(&dup, &SupervisorOptions::default(), &|_, _| Ok(vec![])),
            Err(HarnessError::DuplicateJob("x".into()))
        );
        let opts = SupervisorOptions {
            resume: true,
            ..SupervisorOptions::default()
        };
        assert_eq!(
            run_sweep(&jobs(&["x"]), &opts, &|_, _| Ok(vec![])),
            Err(HarnessError::ResumeWithoutManifest)
        );
    }

    #[test]
    fn crash_point_stops_the_sweep_and_resume_finishes_it() {
        let dir = std::env::temp_dir().join("crisp-harness-supervisor-crash");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        let js = jobs(&["a", "b", "c"]);
        let runner = |job: &JobSpec, _ctx: &RunContext| Ok(vec![job.id.len() as f64, 0.25]);

        // First run: the journal tears after 1 record; the sweep reports
        // the crash and records nothing past it.
        let opts = SupervisorOptions {
            manifest: Some(path.clone()),
            sweep_spec: "crash-sweep".into(),
            crash_after_records: Some(1),
            ..SupervisorOptions::default()
        };
        let report = run_sweep(&js, &opts, &runner).unwrap();
        assert!(report.crashed);
        assert!(report.outcomes.len() < 3);

        // Resume: completes the remainder, restores the survivor, and the
        // merged outcome set equals the uninterrupted run's.
        let opts = SupervisorOptions {
            manifest: Some(path.clone()),
            sweep_spec: "crash-sweep".into(),
            resume: true,
            ..SupervisorOptions::default()
        };
        let resumed = run_sweep(&js, &opts, &runner).unwrap();
        assert!(!resumed.crashed);
        assert_eq!(resumed.completed(), 3);
        assert_eq!(resumed.resumed, 1);
        assert_eq!(resumed.skipped_manifest_lines, 1, "torn tail tolerated");
        for job in &js {
            assert_eq!(
                resumed.payload(&job.id),
                Some(&[job.id.len() as f64, 0.25][..])
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_skips_completed_jobs_and_reruns_failed_ones() {
        let dir = std::env::temp_dir().join("crisp-harness-supervisor-resume");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        let js = jobs(&["done", "broken"]);

        let opts = SupervisorOptions {
            manifest: Some(path.clone()),
            sweep_spec: "resume-sweep".into(),
            retry: fast_retry(0),
            ..SupervisorOptions::default()
        };
        let first = run_sweep(&js, &opts, &|job, _ctx| {
            if job.id == "broken" {
                panic!("transient");
            }
            Ok(vec![3.5])
        })
        .unwrap();
        assert_eq!(first.completed(), 1);
        assert_eq!(first.failed(), 1);

        // Resume with a healthy runner: `done` must NOT re-run; `broken`
        // gets a fresh attempt budget and succeeds.
        let opts = SupervisorOptions {
            manifest: Some(path.clone()),
            sweep_spec: "resume-sweep".into(),
            resume: true,
            retry: fast_retry(0),
            ..SupervisorOptions::default()
        };
        let second = run_sweep(&js, &opts, &|job, _ctx| {
            assert_ne!(job.id, "done", "completed job re-ran on resume");
            Ok(vec![9.0])
        })
        .unwrap();
        assert_eq!(second.completed(), 2);
        assert_eq!(second.resumed, 1);
        assert_eq!(
            second.outcomes.get("done"),
            Some(&JobOutcome::Completed {
                payload: vec![3.5],
                attempts: 1,
                resumed: true,
                cached: false
            })
        );
        assert_eq!(second.payload("broken"), Some(&[9.0][..]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deadlock_reports_map_to_structured_detail() {
        let report = crisp_sim::DeadlockReport {
            cycle: 5_000_000,
            stalled_for: 2_000_000,
            retired: 1234,
            total: 9999,
            rob_head: Some((42, crisp_sim::HeadState::WaitingToIssue)),
            rob: (224, 224),
            rs: (96, 96),
            loads: (10, 64),
            stores: (0, 128),
            oldest_unissued: Some((1234, 42)),
            recent_events: vec![
                crisp_sim::TraceEvent {
                    cycle: 4_999_998,
                    seq: 1233,
                    pc: 0xa0,
                    kind: crisp_sim::EventKind::Issue,
                    fill: None,
                },
                crisp_sim::TraceEvent {
                    cycle: 4_999_999,
                    seq: 1234,
                    pc: 0xa8,
                    kind: crisp_sim::EventKind::Dispatch,
                    fill: None,
                },
            ],
        };
        let e = CrispError::Simulation(crisp_sim::SimError::Deadlock(Box::new(report)));
        let d = failure_detail(&e).expect("deadlocks carry detail");
        assert_eq!(d.get("kind").unwrap().as_str(), Some("deadlock"));
        assert_eq!(d.get("cycle").unwrap().as_u64(), Some(5_000_000));
        assert_eq!(d.get("rob").unwrap().as_str(), Some("224/224"));
        assert_eq!(
            d.get("rob_head_state").unwrap().as_str(),
            Some("waiting to issue")
        );
        let events = d.get("recent_events").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0].as_str(),
            Some("c4999999 s1234 pc0xa8 Ds"),
            "newest event first"
        );
        // The detail survives a journal round-trip intact.
        let rec = AttemptRecord {
            job: "fig7/lbm".into(),
            hash: 1,
            attempt: 2,
            outcome: AttemptOutcome::Fail {
                class: FailureClass::Deadlock,
                error: e.to_string(),
                detail: Some(d.clone()),
            },
        };
        let decoded = AttemptRecord::decode(&rec.encode()).unwrap();
        assert_eq!(decoded, rec);

        assert_eq!(
            failure_detail(&CrispError::Checkpoint("torn".into()))
                .unwrap()
                .get("kind")
                .unwrap()
                .as_str(),
            Some("checkpoint")
        );
        assert_eq!(failure_detail(&CrispError::Annotation("x".into())), None);
    }

    #[test]
    fn heartbeats_journal_running_jobs_progress() {
        let dir = std::env::temp_dir().join("crisp-harness-supervisor-heartbeat");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        let js = jobs(&["beating"]);
        let opts = SupervisorOptions {
            manifest: Some(path.clone()),
            sweep_spec: "hb".into(),
            heartbeat: Some(Duration::from_millis(5)),
            ..SupervisorOptions::default()
        };
        let report = run_sweep(&js, &opts, &|_job, ctx| {
            // Stand-in for the engine's poll path: publish monotonically
            // while "simulating" long enough for several heartbeats.
            for i in 1..=40u64 {
                ctx.progress.publish(i * 100, i * 10);
                std::thread::sleep(Duration::from_millis(2));
            }
            Ok(vec![1.0])
        })
        .unwrap();
        assert_eq!(report.completed(), 1);

        let m = crate::journal::load_manifest(&path).unwrap();
        assert_eq!(m.skipped_lines, 0, "progress lines parse cleanly");
        let beat = m.progress.get("beating").expect("at least one heartbeat");
        assert!(
            beat.cycles >= 100 && beat.cycles <= 4000,
            "beat samples a published value: {beat:?}"
        );
        assert_eq!(
            beat.instrs,
            beat.cycles / 10,
            "cycles/instrs sampled as a pair"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failures_cite_last_published_progress() {
        let js = jobs(&["slow"]);
        let opts = SupervisorOptions {
            retry: fast_retry(0),
            ..SupervisorOptions::default()
        };
        let report = run_sweep(&js, &opts, &|_job, ctx| {
            ctx.progress.publish(4096, 512);
            Err(
                CrispError::Simulation(crisp_sim::SimError::DeadlineExceeded {
                    cycle: 4096,
                    retired: 512,
                    total: 1000,
                })
                .into(),
            )
        })
        .unwrap();
        match report.outcomes.get("slow") {
            Some(JobOutcome::Failed {
                class: FailureClass::Timeout,
                detail: Some(d),
                ..
            }) => {
                assert_eq!(d.get("progress_cycles").unwrap().as_u64(), Some(4096));
                assert_eq!(d.get("progress_instrs").unwrap().as_u64(), Some(512));
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn resume_rejects_a_foreign_manifest() {
        let dir = std::env::temp_dir().join("crisp-harness-supervisor-foreign");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        let js = jobs(&["a"]);
        let opts = SupervisorOptions {
            manifest: Some(path.clone()),
            sweep_spec: "sweep-v1".into(),
            ..SupervisorOptions::default()
        };
        run_sweep(&js, &opts, &|_, _| Ok(vec![])).unwrap();

        let opts = SupervisorOptions {
            manifest: Some(path.clone()),
            sweep_spec: "sweep-v2".into(),
            resume: true,
            ..SupervisorOptions::default()
        };
        assert_eq!(
            run_sweep(&js, &opts, &|_, _| Ok(vec![])),
            Err(HarnessError::ManifestHeaderMismatch {
                expected: "sweep-v2".into(),
                found: "sweep-v1".into(),
            })
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_warm_store_serves_cells_without_rerunning() {
        let dir = std::env::temp_dir().join("crisp-harness-supervisor-store-warm");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let store_dir = dir.join("store");
        let js = jobs(&["a", "bb"]);
        let calls = AtomicU32::new(0);
        let runner = |job: &JobSpec, _ctx: &RunContext| {
            calls.fetch_add(1, Ordering::SeqCst);
            Ok(vec![job.id.len() as f64, 0.5])
        };
        let mk_opts = |manifest: &str| SupervisorOptions {
            store: Some(crate::store::ResultStoreConfig::new(&store_dir)),
            manifest: Some(dir.join(manifest)),
            sweep_spec: "store-sweep".into(),
            ..SupervisorOptions::default()
        };

        let cold = run_sweep(&js, &mk_opts("cold.jsonl"), &runner).unwrap();
        assert_eq!(cold.completed(), 2);
        assert_eq!((cold.store_hits, cold.store_computed), (0, 2));
        assert_eq!(calls.load(Ordering::SeqCst), 2);

        let warm = run_sweep(&js, &mk_opts("warm.jsonl"), &runner).unwrap();
        assert_eq!(warm.completed(), 2);
        assert_eq!((warm.store_hits, warm.store_computed), (2, 0));
        assert_eq!(calls.load(Ordering::SeqCst), 2, "no cell re-simulated");
        for job in &js {
            assert_eq!(warm.payload(&job.id), cold.payload(&job.id));
            match warm.outcomes.get(&job.id) {
                Some(JobOutcome::Completed { cached: true, .. }) => {}
                other => panic!("expected a cached outcome, got {other:?}"),
            }
        }
        // Hits carry provenance in the manifest, and resume accepts them.
        let manifest = std::fs::read_to_string(dir.join("warm.jsonl")).unwrap();
        assert!(manifest.contains("\"cached\""), "{manifest}");
        let m = load_manifest(&dir.join("warm.jsonl")).unwrap();
        assert_eq!(m.completed.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_store_entries_are_quarantined_and_recomputed() {
        let dir = std::env::temp_dir().join("crisp-harness-supervisor-store-corrupt");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let store_dir = dir.join("store");
        let js = jobs(&["cell"]);
        let opts = SupervisorOptions {
            store: Some(crate::store::ResultStoreConfig::new(&store_dir)),
            ..SupervisorOptions::default()
        };
        let runner = |_job: &JobSpec, _ctx: &RunContext| Ok(vec![2.5, -0.75, 1.0 / 3.0]);
        let cold = run_sweep(&js, &opts, &runner).unwrap();
        assert_eq!(cold.store_computed, 1);

        // Flip one payload bit in the published entry.
        let store = crisp_store::Store::open(&store_dir).unwrap();
        let path = store.entry_path(crate::store::cell_key(&js[0].id, &js[0].spec));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() - 20;
        bytes[mid] ^= 0x08;
        std::fs::write(&path, &bytes).unwrap();

        // The corrupt entry is never served: it is quarantined and the
        // cell re-simulated to an identical payload.
        let repaired = run_sweep(&js, &opts, &runner).unwrap();
        assert_eq!(repaired.store_quarantined, 1);
        assert_eq!((repaired.store_hits, repaired.store_computed), (0, 1));
        assert_eq!(repaired.payload("cell"), cold.payload("cell"));
        let corpses = std::fs::read_dir(store.quarantine_dir()).unwrap().count();
        assert_eq!(corpses, 1, "the corrupt bytes are preserved");

        // And the repair is durable: the next sweep hits.
        let warm = run_sweep(&js, &opts, &runner).unwrap();
        assert_eq!((warm.store_hits, warm.store_quarantined), (1, 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stop_token_drains_the_pool_and_resume_finishes() {
        let dir = std::env::temp_dir().join("crisp-harness-supervisor-drain");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        let js = jobs(&["slow", "trigger"]);
        let stop = CancelToken::new();

        let opts = SupervisorOptions {
            workers: 2,
            manifest: Some(path.clone()),
            sweep_spec: "drain-sweep".into(),
            stop: Some(stop.clone()),
            ..SupervisorOptions::default()
        };
        let stop_for_runner = stop.clone();
        let report = run_sweep(&js, &opts, &move |job, ctx| {
            if job.id == "trigger" {
                // Stand-in for SIGTERM arriving mid-sweep.
                stop_for_runner.cancel();
                return Ok(vec![7.0]);
            }
            // Cooperative poll loop, like the engine's cancel path.
            loop {
                if ctx.cancel.should_abort().is_some() {
                    return Err(CrispError::Simulation(crisp_sim::SimError::Cancelled {
                        cycle: 3,
                        retired: 1,
                        total: 10,
                    })
                    .into());
                }
                std::thread::sleep(Duration::from_micros(200));
            }
        })
        .unwrap();
        assert!(report.interrupted, "drained before `slow` finished");
        assert!(!report.crashed);
        assert!(
            !report.outcomes.contains_key("slow"),
            "an interrupted cell gets no final outcome"
        );
        assert_eq!(report.payload("trigger"), Some(&[7.0][..]));

        // Resume without a stop request: the survivor restores, the
        // interrupted cell re-runs with a fresh budget.
        let opts = SupervisorOptions {
            manifest: Some(path.clone()),
            sweep_spec: "drain-sweep".into(),
            resume: true,
            ..SupervisorOptions::default()
        };
        let resumed = run_sweep(&js, &opts, &|_job, _ctx| Ok(vec![3.0])).unwrap();
        assert!(!resumed.interrupted);
        assert_eq!(resumed.completed(), 2);
        assert_eq!(resumed.resumed, 1);
        assert_eq!(
            resumed.skipped_manifest_lines, 0,
            "a drain leaves a clean manifest, unlike a crash"
        );
        assert_eq!(resumed.payload("slow"), Some(&[3.0][..]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_append_failures_degrade_durability_not_the_sweep() {
        let dir = std::env::temp_dir().join("crisp-harness-supervisor-enospc");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        let js = jobs(&["a", "b", "c"]);
        let opts = SupervisorOptions {
            manifest: Some(path.clone()),
            sweep_spec: "enospc-sweep".into(),
            fail_journal_appends: 2,
            ..SupervisorOptions::default()
        };
        let report = run_sweep(&js, &opts, &|job, _ctx| Ok(vec![job.id.len() as f64])).unwrap();
        assert_eq!(report.completed(), 3, "I/O failures never fail a job");
        assert!(!report.crashed);
        assert_eq!(report.journal_write_failures, 2);

        let m = load_manifest(&path).unwrap();
        assert_eq!(m.skipped_lines, 0, "failed appends roll back cleanly");
        assert_eq!(m.completed.len(), 1, "only the surviving record landed");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn changed_spec_hash_invalidates_a_restored_payload() {
        let dir = std::env::temp_dir().join("crisp-harness-supervisor-hash");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        let old = vec![JobSpec::new("a", "a spec-v1")];
        let opts = SupervisorOptions {
            manifest: Some(path.clone()),
            ..SupervisorOptions::default()
        };
        run_sweep(&old, &opts, &|_, _| Ok(vec![1.0])).unwrap();

        let new = vec![JobSpec::new("a", "a spec-v2")];
        let opts = SupervisorOptions {
            manifest: Some(path.clone()),
            resume: true,
            ..SupervisorOptions::default()
        };
        let report = run_sweep(&new, &opts, &|_, _| Ok(vec![2.0])).unwrap();
        assert_eq!(report.resumed, 0, "stale payload must not be restored");
        assert_eq!(report.payload("a"), Some(&[2.0][..]));
        std::fs::remove_dir_all(&dir).ok();
    }
}
