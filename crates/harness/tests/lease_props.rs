//! Property tests for the pool's lease state machine.
//!
//! The pool relies on two invariants to keep "each unique cell computed
//! exactly once" true under worker crashes and steals:
//!
//! - **no double grant** — arbitrary interleavings of
//!   claim/renew/expire/steal never yield two concurrent live holders:
//!   a claim only succeeds (granted or stolen) when no live lease
//!   exists;
//! - **no lost cells** — once claimed, a cell stays in the table (held
//!   or expired-awaiting-steal) until its holder explicitly releases
//!   it; crashes (modeled by `expire`) make the cell *stealable*, never
//!   *gone*.
//!
//! Both are checked against an independent model: a naive map of
//! `(holder, expiry)` driven by the same documented semantics, with the
//! real [`LeaseTable`] compared after every operation.

use crisp_harness::{Claim, LeaseTable};
use proptest::prelude::*;
use std::collections::BTreeMap;

const CELLS: [&str; 3] = ["fig1/mcf", "fig1/lbm", "fig4/gcc"];
const HOLDERS: [&str; 3] = ["worker-0", "worker-1", "worker-2"];

#[derive(Clone, Copy, Debug)]
enum Op {
    Tick(u64),
    Claim(usize, usize),
    Renew(usize, usize),
    Release(usize, usize),
    Expire(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (
        0usize..5,
        0usize..CELLS.len(),
        0usize..HOLDERS.len(),
        1u64..8,
    )
        .prop_map(|(kind, c, h, dt)| match kind {
            0 => Op::Tick(dt),
            1 => Op::Claim(c, h),
            2 => Op::Renew(c, h),
            3 => Op::Release(c, h),
            _ => Op::Expire(c),
        })
}

/// The naive reference implementation of the documented semantics.
struct Model {
    ttl: u64,
    now: u64,
    leases: BTreeMap<&'static str, (&'static str, u64)>,
}

impl Model {
    fn new(ttl: u64) -> Model {
        Model {
            ttl: ttl.max(1),
            now: 0,
            leases: BTreeMap::new(),
        }
    }

    fn live(&self, cell: &str) -> Option<&'static str> {
        self.leases
            .get(cell)
            .filter(|(_, expires)| *expires > self.now)
            .map(|(holder, _)| *holder)
    }

    fn claim(&mut self, cell: &'static str, holder: &'static str) -> Claim {
        let expires = self.now + self.ttl;
        match self.leases.get(cell) {
            None => {
                self.leases.insert(cell, (holder, expires));
                Claim::Granted
            }
            Some((_, old_expires)) if *old_expires <= self.now => {
                self.leases.insert(cell, (holder, expires));
                Claim::Stolen
            }
            Some(_) => Claim::Held,
        }
    }

    fn renew(&mut self, cell: &str, holder: &str) -> bool {
        let now = self.now;
        let ttl = self.ttl;
        match self.leases.get_mut(cell) {
            Some((h, expires)) if *h == holder && *expires > now => {
                *expires = now + ttl;
                true
            }
            _ => false,
        }
    }

    fn release(&mut self, cell: &str, holder: &str) -> bool {
        match self.leases.get(cell) {
            Some((h, _)) if *h == holder => {
                self.leases.remove(cell);
                true
            }
            _ => false,
        }
    }

    fn expire(&mut self, cell: &str) {
        let now = self.now;
        if let Some((_, expires)) = self.leases.get_mut(cell) {
            *expires = now;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Model agreement plus the two safety invariants, checked after
    /// every operation of an arbitrary interleaving.
    #[test]
    fn arbitrary_interleavings_never_double_grant_or_lose_a_cell(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        ttl in 1u64..10,
    ) {
        let mut table = LeaseTable::new(ttl);
        let mut model = Model::new(ttl);
        for op in &ops {
            match *op {
                Op::Tick(dt) => {
                    table.tick(dt);
                    model.now += dt;
                    prop_assert_eq!(table.now(), model.now);
                }
                Op::Claim(c, h) => {
                    let (cell, holder) = (CELLS[c], HOLDERS[h]);
                    let prior_live = model.live(cell);
                    let got = table.claim(cell, holder);
                    let want = model.claim(cell, holder);
                    prop_assert_eq!(got, want, "claim({}, {})", cell, holder);
                    // No double grant: a successful claim can never
                    // displace a live lease.
                    if got != Claim::Held {
                        prop_assert_eq!(
                            prior_live, None,
                            "{:?} displaced live holder of {}", got, cell
                        );
                    }
                }
                Op::Renew(c, h) => {
                    let (cell, holder) = (CELLS[c], HOLDERS[h]);
                    prop_assert_eq!(
                        table.renew(cell, holder),
                        model.renew(cell, holder),
                        "renew({}, {})", cell, holder
                    );
                }
                Op::Release(c, h) => {
                    let (cell, holder) = (CELLS[c], HOLDERS[h]);
                    prop_assert_eq!(
                        table.release(cell, holder),
                        model.release(cell, holder),
                        "release({}, {})", cell, holder
                    );
                }
                Op::Expire(c) => {
                    table.expire(CELLS[c]);
                    model.expire(CELLS[c]);
                    // A crash-expired cell is stealable, never gone.
                    prop_assert!(
                        table.cells().contains(&CELLS[c]) == model.leases.contains_key(CELLS[c])
                    );
                }
            }
            // Per-cell holder agreement (also proves at most one live
            // holder per cell: the table and model are keyed by cell).
            for cell in CELLS {
                prop_assert_eq!(table.holder(cell), model.live(cell), "holder({})", cell);
            }
            prop_assert_eq!(table.live(), model.leases.keys()
                .filter(|c| model.live(c).is_some()).count());
            // No lost cells: every unreleased claim is still present.
            let mut got_cells = table.cells();
            got_cells.sort_unstable();
            let want_cells: Vec<&str> = model.leases.keys().copied().collect();
            prop_assert_eq!(got_cells, want_cells);
        }
    }

    /// Directed steal scenario under arbitrary timing: a holder that
    /// goes silent past its ttl loses the cell to exactly one thief,
    /// and its own late renew must fail afterwards.
    #[test]
    fn a_silent_holder_is_stolen_from_exactly_once(silence in 1u64..30, ttl in 1u64..10) {
        let mut table = LeaseTable::new(ttl);
        assert_eq!(table.claim("cell", "sleeper"), Claim::Granted);
        table.tick(silence);
        let expired = silence >= ttl.max(1);
        if expired {
            prop_assert_eq!(table.claim("cell", "thief-a"), Claim::Stolen);
            // The second thief and the original holder both lose.
            prop_assert_eq!(table.claim("cell", "thief-b"), Claim::Held);
            prop_assert!(!table.renew("cell", "sleeper"));
            prop_assert_eq!(table.holder("cell"), Some("thief-a"));
        } else {
            prop_assert_eq!(table.claim("cell", "thief-a"), Claim::Held);
            prop_assert!(table.renew("cell", "sleeper"));
        }
    }
}
