//! # crisp-mem
//!
//! Memory-hierarchy substrate for the CRISP reproduction: set-associative
//! [`Cache`]s with MSHR-style miss tracking, a banked DDR4 [`Dram`] model
//! (the role Ramulator plays in the paper), and a zoo of hardware
//! prefetchers behind a pluggable [`PrefetcherRegistry`] — the Table 1
//! baseline ([`Bop`] + [`StreamPrefetcher`]), a per-PC
//! [`StridePrefetcher`], global history buffers ([`Ghb`], [`GhbWidth`]),
//! temporal streaming ([`Sisb`]) and signature-path prefetching ([`Spp`]).
//! Mechanisms are selected by a [`PrefetcherSpec`] string such as
//! `"spp:depth=4+stream"`, and plugins can be registered at runtime.
//!
//! The top-level [`MemoryHierarchy`] wires L1I/L1D/LLC/DRAM together and is
//! the only interface the core simulator talks to: `load`, `store`, and
//! `fetch` each return an [`AccessResult`] with the access latency in core
//! cycles and the level that served it.
//!
//! ## Example
//!
//! ```
//! use crisp_mem::{MemoryHierarchy, HierarchyConfig, HitLevel};
//!
//! let mut mem = MemoryHierarchy::new(HierarchyConfig::skylake_like());
//! let cold = mem.load(0x10_0000, 0x400, 0);
//! assert_eq!(cold.level, HitLevel::Dram);
//! let warm = mem.load(0x10_0000, 0x400, cold.ready_at(0));
//! assert_eq!(warm.level, HitLevel::L1);
//! assert!(warm.latency < cold.latency);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod dram;
mod hierarchy;
mod prefetch;
mod registry;
mod wcodec;
mod zoo;

pub use cache::{AccessOutcome, Cache, CacheConfig, CacheStats, FillOutcome, PF_OTHER};
pub use dram::{Dram, DramConfig, DramStats};
pub use hierarchy::{
    AccessResult, HierarchyConfig, HitLevel, MemStats, MemoryHierarchy, PrefetchEffect,
};
pub use prefetch::{Bop, Ghb, Prefetcher, StreamPrefetcher, StridePrefetcher};
pub use registry::{
    PrefetcherFactory, PrefetcherRegistry, PrefetcherSpec, MAX_PREFETCHERS, SPEC_CAP,
};
pub use zoo::{GhbWidth, Sisb, Spp};

/// Cache-line size in bytes (64 B everywhere, per Table 1's Skylake-like
/// uncore).
pub const LINE_BYTES: u64 = 64;

/// Converts a byte address to a line address.
#[inline]
pub fn line_of(addr: u64) -> u64 {
    addr / LINE_BYTES
}
