/// Geometry of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: u64,
}

impl CacheConfig {
    /// A convenience constructor.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not produce a power-of-two set count.
    pub fn new(capacity: u64, ways: usize, line_bytes: u64) -> CacheConfig {
        CacheConfig::try_new(capacity, ways, line_bytes)
            .unwrap_or_else(|e| panic!("set count must be a power of two: {e}"))
    }

    /// A validating constructor.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first rejected geometry parameter.
    pub fn try_new(capacity: u64, ways: usize, line_bytes: u64) -> Result<CacheConfig, String> {
        let c = CacheConfig {
            capacity,
            ways,
            line_bytes,
        };
        c.validate()?;
        Ok(c)
    }

    /// Validates the geometry: nonzero parameters, a line-aligned capacity
    /// and a power-of-two set count (the index function is a mask).
    ///
    /// # Errors
    ///
    /// Returns a message describing the first rejected parameter.
    pub fn validate(&self) -> Result<(), String> {
        if self.capacity == 0 {
            return Err("capacity must be nonzero".into());
        }
        if self.ways == 0 {
            return Err("associativity (ways) must be nonzero".into());
        }
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return Err(format!(
                "line size must be a nonzero power of two (got {})",
                self.line_bytes
            ));
        }
        let way_bytes = self.ways as u64 * self.line_bytes;
        if !self.capacity.is_multiple_of(way_bytes) {
            return Err(format!(
                "capacity {} is not a multiple of ways x line bytes ({way_bytes})",
                self.capacity
            ));
        }
        if !self.sets().is_power_of_two() {
            return Err(format!(
                "set count {} (capacity {} / ways {} / line {}) is not a power of two",
                self.sets(),
                self.capacity,
                self.ways,
                self.line_bytes
            ));
        }
        Ok(())
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        (self.capacity / (self.ways as u64 * self.line_bytes)) as usize
    }
}

/// Hit/miss counters of one cache level.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookup count.
    pub accesses: u64,
    /// Misses (including prefetch misses if prefetches probe this level).
    pub misses: u64,
    /// Lines filled by prefetches.
    pub prefetch_fills: u64,
    /// Demand hits on lines brought in by prefetch (prefetch usefulness).
    pub prefetch_hits: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Way {
    tag: u64,
    stamp: u64,
    valid: bool,
    prefetched: bool,
}

/// A set-associative cache with true-LRU replacement.
///
/// The cache tracks *presence* only — data lives in the functional
/// emulator; timing lives in [`crate::MemoryHierarchy`]. Lines brought in
/// by prefetch are flagged so usefulness can be measured.
///
/// # Example
///
/// ```
/// use crisp_mem::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig::new(32 * 1024, 8, 64));
/// let line = 0x40;
/// assert!(!c.access(line));
/// c.fill(line, false);
/// assert!(c.access(line));
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    sets: Vec<Vec<Way>>,
    ways: usize,
    set_mask: u64,
    stamp: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache from its geometry.
    pub fn new(config: CacheConfig) -> Cache {
        let sets = config.sets();
        Cache {
            sets: vec![Vec::with_capacity(config.ways); sets],
            ways: config.ways,
            set_mask: sets as u64 - 1,
            stamp: 0,
            stats: CacheStats::default(),
        }
    }

    #[inline]
    fn set_index(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    /// Looks up `line` (a *line* address, not a byte address), updating LRU
    /// and counters. Returns whether it hit.
    pub fn access(&mut self, line: u64) -> bool {
        self.stamp += 1;
        self.stats.accesses += 1;
        let set = self.set_index(line);
        for w in &mut self.sets[set] {
            if w.valid && w.tag == line {
                w.stamp = self.stamp;
                if w.prefetched {
                    w.prefetched = false;
                    self.stats.prefetch_hits += 1;
                }
                return true;
            }
        }
        self.stats.misses += 1;
        false
    }

    /// Probes for `line` without updating LRU or counters.
    pub fn probe(&self, line: u64) -> bool {
        let set = self.set_index(line);
        self.sets[set].iter().any(|w| w.valid && w.tag == line)
    }

    /// Fills `line`, evicting the LRU way if the set is full. Returns the
    /// evicted line, if any. `prefetched` marks prefetch fills.
    pub fn fill(&mut self, line: u64, prefetched: bool) -> Option<u64> {
        self.stamp += 1;
        if prefetched {
            self.stats.prefetch_fills += 1;
        }
        let stamp = self.stamp;
        let ways = self.ways;
        let set_idx = self.set_index(line);
        let set = &mut self.sets[set_idx];
        if let Some(w) = set.iter_mut().find(|w| w.valid && w.tag == line) {
            w.stamp = stamp;
            return None;
        }
        let new_way = Way {
            tag: line,
            stamp,
            valid: true,
            prefetched,
        };
        if set.len() < ways {
            set.push(new_way);
            None
        } else {
            let victim = set.iter_mut().min_by_key(|w| w.stamp).expect("full set");
            let evicted = victim.tag;
            *victim = new_way;
            Some(evicted)
        }
    }

    /// Invalidates `line` if present; returns whether it was present.
    pub fn invalidate(&mut self, line: u64) -> bool {
        let set = self.set_index(line);
        for w in &mut self.sets[set] {
            if w.valid && w.tag == line {
                w.valid = false;
                return true;
            }
        }
        false
    }

    /// The level's counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Serialises tags, LRU stamps and counters as a flat word vector.
    /// The geometry (set/way counts) is config-derived and not captured.
    pub fn snapshot_words(&self) -> Vec<u64> {
        let mut w = vec![
            self.stamp,
            self.stats.accesses,
            self.stats.misses,
            self.stats.prefetch_fills,
            self.stats.prefetch_hits,
            self.sets.len() as u64,
        ];
        for set in &self.sets {
            w.push(set.len() as u64);
            for way in set {
                w.push(way.tag);
                w.push(way.stamp);
                w.push(u64::from(way.valid) | (u64::from(way.prefetched) << 1));
            }
        }
        w
    }

    /// Restores state captured by [`Cache::snapshot_words`] into a cache
    /// of the same geometry.
    ///
    /// # Errors
    ///
    /// Rejects geometry mismatches and malformed input; the cache should
    /// be discarded on error.
    pub fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
        let mut r = crate::wcodec::Reader::new(words, "cache");
        let stamp = r.u64()?;
        let stats = CacheStats {
            accesses: r.u64()?,
            misses: r.u64()?,
            prefetch_fills: r.u64()?,
            prefetch_hits: r.u64()?,
        };
        let n_sets = r.usize()?;
        if n_sets != self.sets.len() {
            return Err(format!(
                "cache snapshot: {n_sets} sets, expected {} (geometry mismatch)",
                self.sets.len()
            ));
        }
        self.stamp = stamp;
        self.stats = stats;
        for set in &mut self.sets {
            let n = r.usize()?;
            if n > self.ways {
                return Err(format!(
                    "cache snapshot: {n} ways in a set, expected at most {}",
                    self.ways
                ));
            }
            set.clear();
            for _ in 0..n {
                let tag = r.u64()?;
                let stamp = r.u64()?;
                let flags = r.u64()?;
                if flags > 3 {
                    return Err(format!("cache snapshot: bad way flags {flags}"));
                }
                set.push(Way {
                    tag,
                    stamp,
                    valid: flags & 1 != 0,
                    prefetched: flags & 2 != 0,
                });
            }
        }
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways.
        Cache::new(CacheConfig::new(8 * 64, 2, 64))
    }

    #[test]
    fn cold_miss_then_hit_after_fill() {
        let mut c = small();
        assert!(!c.access(5));
        c.fill(5, false);
        assert!(c.access(5));
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Lines 0, 4, 8 all map to set 0 (4 sets).
        c.fill(0, false);
        c.fill(4, false);
        assert!(c.access(0)); // 4 becomes LRU
        assert_eq!(c.fill(8, false), Some(4));
        assert!(c.probe(0));
        assert!(!c.probe(4));
        assert!(c.probe(8));
    }

    #[test]
    fn refill_of_present_line_evicts_nothing() {
        let mut c = small();
        c.fill(1, false);
        assert_eq!(c.fill(1, false), None);
    }

    #[test]
    fn probe_does_not_touch_stats_or_lru() {
        let mut c = small();
        c.fill(0, false);
        c.fill(4, false);
        let before = c.stats();
        assert!(c.probe(0));
        assert_eq!(c.stats(), before);
        // LRU untouched by probe: 0 is still older, so it gets evicted.
        assert_eq!(c.fill(8, false), Some(0));
    }

    #[test]
    fn prefetch_usefulness_counted_once() {
        let mut c = small();
        c.fill(3, true);
        assert!(c.access(3));
        assert!(c.access(3));
        let s = c.stats();
        assert_eq!(s.prefetch_fills, 1);
        assert_eq!(s.prefetch_hits, 1);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small();
        c.fill(7, false);
        assert!(c.invalidate(7));
        assert!(!c.probe(7));
        assert!(!c.invalidate(7));
    }

    #[test]
    fn miss_ratio_computation() {
        let mut c = small();
        c.access(1); // miss
        c.fill(1, false);
        c.access(1); // hit
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn geometry_sets() {
        let cfg = CacheConfig::new(32 * 1024, 8, 64);
        assert_eq!(cfg.sets(), 64);
        let llc = CacheConfig::new(1024 * 1024, 16, 64);
        assert_eq!(llc.sets(), 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        let _ = CacheConfig::new(3 * 64, 1, 64);
    }

    #[test]
    fn snapshot_round_trip_preserves_lru_and_stats() {
        let mut c = small();
        c.fill(0, false);
        c.fill(4, true);
        c.access(0);
        c.invalidate(4);
        let words = c.snapshot_words();
        let mut d = small();
        d.restore_words(&words).unwrap();
        assert_eq!(d.snapshot_words(), words);
        assert_eq!(d.stats(), c.stats());
        // Replacement behaviour continues identically in both copies.
        assert_eq!(c.fill(8, false), d.fill(8, false));
    }

    #[test]
    fn snapshot_geometry_mismatch_rejected() {
        let c = small();
        let words = c.snapshot_words();
        let mut other = Cache::new(CacheConfig::new(16 * 64, 2, 64));
        assert!(other.restore_words(&words).is_err());
        let mut same = small();
        assert!(same.restore_words(&words[..3]).is_err(), "truncated");
    }
}
