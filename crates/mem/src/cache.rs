/// Geometry of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: u64,
}

impl CacheConfig {
    /// A convenience constructor.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not produce a power-of-two set count.
    pub fn new(capacity: u64, ways: usize, line_bytes: u64) -> CacheConfig {
        CacheConfig::try_new(capacity, ways, line_bytes)
            .unwrap_or_else(|e| panic!("set count must be a power of two: {e}"))
    }

    /// A validating constructor.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first rejected geometry parameter.
    pub fn try_new(capacity: u64, ways: usize, line_bytes: u64) -> Result<CacheConfig, String> {
        let c = CacheConfig {
            capacity,
            ways,
            line_bytes,
        };
        c.validate()?;
        Ok(c)
    }

    /// Validates the geometry: nonzero parameters, a line-aligned capacity
    /// and a power-of-two set count (the index function is a mask).
    ///
    /// # Errors
    ///
    /// Returns a message describing the first rejected parameter.
    pub fn validate(&self) -> Result<(), String> {
        if self.capacity == 0 {
            return Err("capacity must be nonzero".into());
        }
        if self.ways == 0 {
            return Err("associativity (ways) must be nonzero".into());
        }
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return Err(format!(
                "line size must be a nonzero power of two (got {})",
                self.line_bytes
            ));
        }
        let way_bytes = self.ways as u64 * self.line_bytes;
        if !self.capacity.is_multiple_of(way_bytes) {
            return Err(format!(
                "capacity {} is not a multiple of ways x line bytes ({way_bytes})",
                self.capacity
            ));
        }
        if !self.sets().is_power_of_two() {
            return Err(format!(
                "set count {} (capacity {} / ways {} / line {}) is not a power of two",
                self.sets(),
                self.capacity,
                self.ways,
                self.line_bytes
            ));
        }
        Ok(())
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        (self.capacity / (self.ways as u64 * self.line_bytes)) as usize
    }
}

/// Hit/miss counters of one cache level.
///
/// `accesses`/`misses` count *demand* lookups only; lookups made on behalf
/// of a prefetcher go to `prefetch_probes`/`prefetch_misses` so MPKI
/// computed from the demand counters is not inflated by prefetch traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand lookup count.
    pub accesses: u64,
    /// Demand misses.
    pub misses: u64,
    /// Lines filled by prefetches.
    pub prefetch_fills: u64,
    /// Demand hits on lines brought in by prefetch (prefetch usefulness).
    pub prefetch_hits: u64,
    /// Lookups made on behalf of a prefetcher (FDIP probes, injected
    /// prefetches) — kept out of the demand `accesses` count.
    pub prefetch_probes: u64,
    /// Prefetch lookups that missed — kept out of the demand `misses`
    /// count so demand MPKI stays honest.
    pub prefetch_misses: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Prefetch-source tag for a fill that was not triggered by a registry
/// prefetcher (FDIP instruction prefetch, injected data prefetch).
pub const PF_OTHER: u8 = u8::MAX;

/// The outcome of a tagged demand lookup ([`Cache::access_pf`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the line was present.
    pub hit: bool,
    /// If the hit consumed a prefetched line: the fill's source tag
    /// (`1..` = registry prefetcher index + 1, [`PF_OTHER`] = untracked).
    pub prefetch_src: Option<u8>,
}

/// The outcome of a tagged fill ([`Cache::fill_pf`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FillOutcome {
    /// The evicted line, if the set was full.
    pub evicted: Option<u64>,
    /// If the evicted line was a never-used prefetch: its source tag.
    /// This is the cache-pollution signal per prefetcher.
    pub evicted_unused_prefetch: Option<u8>,
}

#[derive(Clone, Copy, Debug)]
struct Way {
    tag: u64,
    stamp: u64,
    valid: bool,
    /// 0 = demand fill; `k` = prefetch fill with source tag `k` (cleared
    /// on the first demand hit).
    pf: u8,
}

/// A set-associative cache with true-LRU replacement.
///
/// The cache tracks *presence* only — data lives in the functional
/// emulator; timing lives in [`crate::MemoryHierarchy`]. Lines brought in
/// by prefetch are flagged so usefulness can be measured.
///
/// # Example
///
/// ```
/// use crisp_mem::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig::new(32 * 1024, 8, 64));
/// let line = 0x40;
/// assert!(!c.access(line));
/// c.fill(line, false);
/// assert!(c.access(line));
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    sets: Vec<Vec<Way>>,
    ways: usize,
    set_mask: u64,
    stamp: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache from its geometry.
    pub fn new(config: CacheConfig) -> Cache {
        let sets = config.sets();
        Cache {
            sets: vec![Vec::with_capacity(config.ways); sets],
            ways: config.ways,
            set_mask: sets as u64 - 1,
            stamp: 0,
            stats: CacheStats::default(),
        }
    }

    #[inline]
    fn set_index(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    /// Looks up `line` (a *line* address, not a byte address), updating LRU
    /// and counters. Returns whether it hit.
    pub fn access(&mut self, line: u64) -> bool {
        self.access_pf(line).hit
    }

    /// A demand lookup that also reports whether the hit consumed a
    /// prefetched line, and from which source. The prefetch tag is cleared
    /// on the first demand hit so usefulness is counted exactly once.
    pub fn access_pf(&mut self, line: u64) -> AccessOutcome {
        self.stamp += 1;
        self.stats.accesses += 1;
        let set = self.set_index(line);
        for w in &mut self.sets[set] {
            if w.valid && w.tag == line {
                w.stamp = self.stamp;
                let mut src = None;
                if w.pf != 0 {
                    src = Some(w.pf);
                    w.pf = 0;
                    self.stats.prefetch_hits += 1;
                }
                return AccessOutcome {
                    hit: true,
                    prefetch_src: src,
                };
            }
        }
        self.stats.misses += 1;
        AccessOutcome {
            hit: false,
            prefetch_src: None,
        }
    }

    /// A lookup made on behalf of a prefetcher: updates LRU like a real
    /// access but counts into the prefetch probe/miss counters, keeping the
    /// demand miss stream (and MPKI derived from it) honest.
    pub fn access_prefetch(&mut self, line: u64) -> bool {
        self.stamp += 1;
        self.stats.prefetch_probes += 1;
        let set = self.set_index(line);
        for w in &mut self.sets[set] {
            if w.valid && w.tag == line {
                w.stamp = self.stamp;
                return true;
            }
        }
        self.stats.prefetch_misses += 1;
        false
    }

    /// Clears the prefetch tag of `line` (if present and still tagged),
    /// returning the old source tag. Used when a demand access merges into
    /// an in-flight prefetch fill: the prefetch was useful (counted here,
    /// once) but the line's tag must not be double-counted later.
    pub fn claim_prefetch(&mut self, line: u64) -> Option<u8> {
        let set = self.set_index(line);
        for w in &mut self.sets[set] {
            if w.valid && w.tag == line && w.pf != 0 {
                let src = w.pf;
                w.pf = 0;
                self.stats.prefetch_hits += 1;
                return Some(src);
            }
        }
        None
    }

    /// Probes for `line` without updating LRU or counters.
    pub fn probe(&self, line: u64) -> bool {
        let set = self.set_index(line);
        self.sets[set].iter().any(|w| w.valid && w.tag == line)
    }

    /// Fills `line`, evicting the LRU way if the set is full. Returns the
    /// evicted line, if any. `prefetched` marks prefetch fills (with the
    /// untracked [`PF_OTHER`] source tag).
    pub fn fill(&mut self, line: u64, prefetched: bool) -> Option<u64> {
        self.fill_pf(line, if prefetched { PF_OTHER } else { 0 })
            .evicted
    }

    /// Fills `line` with an explicit prefetch-source tag (`0` = demand
    /// fill), reporting the evicted line and — when the victim was a
    /// never-used prefetch — the victim's source tag (pollution signal).
    pub fn fill_pf(&mut self, line: u64, pf: u8) -> FillOutcome {
        self.stamp += 1;
        if pf != 0 {
            self.stats.prefetch_fills += 1;
        }
        let stamp = self.stamp;
        let ways = self.ways;
        let set_idx = self.set_index(line);
        let set = &mut self.sets[set_idx];
        if let Some(w) = set.iter_mut().find(|w| w.valid && w.tag == line) {
            w.stamp = stamp;
            return FillOutcome {
                evicted: None,
                evicted_unused_prefetch: None,
            };
        }
        let new_way = Way {
            tag: line,
            stamp,
            valid: true,
            pf,
        };
        if set.len() < ways {
            set.push(new_way);
            FillOutcome {
                evicted: None,
                evicted_unused_prefetch: None,
            }
        } else {
            let victim = set.iter_mut().min_by_key(|w| w.stamp).expect("full set");
            let evicted = victim.tag;
            let unused_pf = (victim.valid && victim.pf != 0).then_some(victim.pf);
            *victim = new_way;
            FillOutcome {
                evicted: Some(evicted),
                evicted_unused_prefetch: unused_pf,
            }
        }
    }

    /// Invalidates `line` if present; returns whether it was present.
    pub fn invalidate(&mut self, line: u64) -> bool {
        let set = self.set_index(line);
        for w in &mut self.sets[set] {
            if w.valid && w.tag == line {
                w.valid = false;
                return true;
            }
        }
        false
    }

    /// The level's counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Serialises tags, LRU stamps and counters as a flat word vector.
    /// The geometry (set/way counts) is config-derived and not captured.
    pub fn snapshot_words(&self) -> Vec<u64> {
        let mut w = vec![
            self.stamp,
            self.stats.accesses,
            self.stats.misses,
            self.stats.prefetch_fills,
            self.stats.prefetch_hits,
            self.stats.prefetch_probes,
            self.stats.prefetch_misses,
            self.sets.len() as u64,
        ];
        for set in &self.sets {
            w.push(set.len() as u64);
            for way in set {
                w.push(way.tag);
                w.push(way.stamp);
                w.push(u64::from(way.valid) | (u64::from(way.pf) << 1));
            }
        }
        w
    }

    /// Restores state captured by [`Cache::snapshot_words`] into a cache
    /// of the same geometry.
    ///
    /// # Errors
    ///
    /// Rejects geometry mismatches and malformed input; the cache should
    /// be discarded on error.
    pub fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
        let mut r = crate::wcodec::Reader::new(words, "cache");
        let stamp = r.u64()?;
        let stats = CacheStats {
            accesses: r.u64()?,
            misses: r.u64()?,
            prefetch_fills: r.u64()?,
            prefetch_hits: r.u64()?,
            prefetch_probes: r.u64()?,
            prefetch_misses: r.u64()?,
        };
        let n_sets = r.usize()?;
        if n_sets != self.sets.len() {
            return Err(format!(
                "cache snapshot: {n_sets} sets, expected {} (geometry mismatch)",
                self.sets.len()
            ));
        }
        self.stamp = stamp;
        self.stats = stats;
        for set in &mut self.sets {
            let n = r.usize()?;
            if n > self.ways {
                return Err(format!(
                    "cache snapshot: {n} ways in a set, expected at most {}",
                    self.ways
                ));
            }
            set.clear();
            for _ in 0..n {
                let tag = r.u64()?;
                let stamp = r.u64()?;
                let flags = r.u64()?;
                if flags >> 1 > u64::from(u8::MAX) {
                    return Err(format!("cache snapshot: bad way flags {flags}"));
                }
                set.push(Way {
                    tag,
                    stamp,
                    valid: flags & 1 != 0,
                    pf: (flags >> 1) as u8,
                });
            }
        }
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways.
        Cache::new(CacheConfig::new(8 * 64, 2, 64))
    }

    #[test]
    fn cold_miss_then_hit_after_fill() {
        let mut c = small();
        assert!(!c.access(5));
        c.fill(5, false);
        assert!(c.access(5));
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Lines 0, 4, 8 all map to set 0 (4 sets).
        c.fill(0, false);
        c.fill(4, false);
        assert!(c.access(0)); // 4 becomes LRU
        assert_eq!(c.fill(8, false), Some(4));
        assert!(c.probe(0));
        assert!(!c.probe(4));
        assert!(c.probe(8));
    }

    #[test]
    fn refill_of_present_line_evicts_nothing() {
        let mut c = small();
        c.fill(1, false);
        assert_eq!(c.fill(1, false), None);
    }

    #[test]
    fn probe_does_not_touch_stats_or_lru() {
        let mut c = small();
        c.fill(0, false);
        c.fill(4, false);
        let before = c.stats();
        assert!(c.probe(0));
        assert_eq!(c.stats(), before);
        // LRU untouched by probe: 0 is still older, so it gets evicted.
        assert_eq!(c.fill(8, false), Some(0));
    }

    #[test]
    fn prefetch_usefulness_counted_once() {
        let mut c = small();
        c.fill(3, true);
        assert!(c.access(3));
        assert!(c.access(3));
        let s = c.stats();
        assert_eq!(s.prefetch_fills, 1);
        assert_eq!(s.prefetch_hits, 1);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small();
        c.fill(7, false);
        assert!(c.invalidate(7));
        assert!(!c.probe(7));
        assert!(!c.invalidate(7));
    }

    #[test]
    fn miss_ratio_computation() {
        let mut c = small();
        c.access(1); // miss
        c.fill(1, false);
        c.access(1); // hit
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn geometry_sets() {
        let cfg = CacheConfig::new(32 * 1024, 8, 64);
        assert_eq!(cfg.sets(), 64);
        let llc = CacheConfig::new(1024 * 1024, 16, 64);
        assert_eq!(llc.sets(), 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        let _ = CacheConfig::new(3 * 64, 1, 64);
    }

    #[test]
    fn snapshot_round_trip_preserves_lru_and_stats() {
        let mut c = small();
        c.fill(0, false);
        c.fill(4, true);
        c.access(0);
        c.invalidate(4);
        let words = c.snapshot_words();
        let mut d = small();
        d.restore_words(&words).unwrap();
        assert_eq!(d.snapshot_words(), words);
        assert_eq!(d.stats(), c.stats());
        // Replacement behaviour continues identically in both copies.
        assert_eq!(c.fill(8, false), d.fill(8, false));
    }

    #[test]
    fn tagged_fill_reports_source_on_demand_hit() {
        let mut c = small();
        c.fill_pf(3, 2);
        let out = c.access_pf(3);
        assert!(out.hit);
        assert_eq!(out.prefetch_src, Some(2));
        // Tag cleared: a second hit is a plain demand hit.
        assert_eq!(c.access_pf(3).prefetch_src, None);
        assert_eq!(c.stats().prefetch_hits, 1);
    }

    #[test]
    fn unused_prefetch_eviction_reports_pollution_source() {
        let mut c = small();
        c.fill_pf(0, 3); // prefetch from source 3, never demanded
        c.fill_pf(4, 0);
        let out = c.fill_pf(8, 0); // set 0 full: evicts LRU (line 0)
        assert_eq!(out.evicted, Some(0));
        assert_eq!(out.evicted_unused_prefetch, Some(3));
        // A demanded prefetch is no longer pollution when evicted.
        let mut c = small();
        c.fill_pf(0, 3);
        c.access(0);
        c.fill_pf(4, 0);
        c.access(4);
        let out = c.fill_pf(8, 0);
        assert_eq!(out.evicted_unused_prefetch, None);
    }

    #[test]
    fn prefetch_probes_stay_out_of_demand_counters() {
        let mut c = small();
        assert!(!c.access_prefetch(9));
        c.fill_pf(9, 1);
        assert!(c.access_prefetch(9));
        let s = c.stats();
        assert_eq!((s.accesses, s.misses), (0, 0));
        assert_eq!((s.prefetch_probes, s.prefetch_misses), (2, 1));
    }

    #[test]
    fn claim_prefetch_consumes_the_tag_once() {
        let mut c = small();
        c.fill_pf(5, 2);
        assert_eq!(c.claim_prefetch(5), Some(2));
        assert_eq!(c.claim_prefetch(5), None);
        assert_eq!(c.stats().prefetch_hits, 1);
        assert_eq!(c.claim_prefetch(100), None, "absent line claims nothing");
    }

    #[test]
    fn snapshot_preserves_source_tags() {
        let mut c = small();
        c.fill_pf(0, 2);
        c.fill_pf(4, PF_OTHER);
        c.access_prefetch(4);
        let words = c.snapshot_words();
        let mut d = small();
        d.restore_words(&words).unwrap();
        assert_eq!(d.snapshot_words(), words);
        assert_eq!(d.access_pf(0).prefetch_src, Some(2));
        assert_eq!(d.access_pf(4).prefetch_src, Some(PF_OTHER));
    }

    #[test]
    fn snapshot_geometry_mismatch_rejected() {
        let c = small();
        let words = c.snapshot_words();
        let mut other = Cache::new(CacheConfig::new(16 * 64, 2, 64));
        assert!(other.restore_words(&words).is_err());
        let mut same = small();
        assert!(same.restore_words(&words[..3]).is_err(), "truncated");
    }
}
