/// Timing and geometry of the DRAM model, in **core cycles**.
///
/// Defaults model one channel of DDR4-2400 behind a 3.0 GHz core (Table 1):
/// one memory cycle ≈ 2.5 core cycles, tRCD = tRP = tCL = 16.66 ns ≈ 40
/// core cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of banks across the channel (ranks × banks).
    pub banks: usize,
    /// Row-buffer size in bytes.
    pub row_bytes: u64,
    /// Activate-to-column delay (core cycles).
    pub t_rcd: u64,
    /// Precharge delay (core cycles).
    pub t_rp: u64,
    /// Column-access (CAS) latency (core cycles).
    pub t_cl: u64,
    /// Data-burst occupancy of the channel per 64-byte line (core cycles).
    pub burst: u64,
    /// Fixed on-chip/controller overhead added to every request (core
    /// cycles) — models the LLC-to-controller hop and queueing minimum.
    pub controller_overhead: u64,
}

impl Default for DramConfig {
    fn default() -> DramConfig {
        DramConfig {
            banks: 16,
            row_bytes: 8192,
            t_rcd: 40,
            t_rp: 40,
            t_cl: 40,
            burst: 10,
            controller_overhead: 20,
        }
    }
}

/// Counters of the DRAM model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Total requests.
    pub requests: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-buffer misses to an idle (precharged) row.
    pub row_misses: u64,
    /// Row-buffer conflicts (different row open).
    pub row_conflicts: u64,
    /// Sum of request latencies (for average latency).
    pub total_latency: u64,
}

impl DramStats {
    /// Average request latency in core cycles.
    pub fn avg_latency(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.requests as f64
        }
    }

    /// Row-buffer hit ratio.
    pub fn row_hit_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.requests as f64
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Bank {
    open_row: Option<u64>,
    next_free: u64,
}

/// A banked, open-page DDR4 channel model (the Ramulator substitute).
///
/// The model keeps per-bank open-row state and next-free times plus a
/// channel-bus next-free time; a request's latency is determined by bank
/// queueing, row-buffer outcome (hit / miss / conflict) and bus occupancy.
/// Requests to one bank are served in arrival order (FCFS per bank), which
/// approximates FR-FCFS for the single-channel, moderate-MLP workloads the
/// paper evaluates.
///
/// # Example
///
/// ```
/// use crisp_mem::{Dram, DramConfig};
/// let mut dram = Dram::new(DramConfig::default());
/// let first = dram.request(0x0, 0);      // row miss: activate + CAS
/// let second = dram.request(0x40, first); // same row: CAS only
/// assert!(second - first < first);
/// ```
#[derive(Clone, Debug)]
pub struct Dram {
    config: DramConfig,
    banks: Vec<Bank>,
    bus_free: u64,
    stats: DramStats,
}

impl Dram {
    /// Creates the channel model.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is not a power of two.
    pub fn new(config: DramConfig) -> Dram {
        assert!(
            config.banks.is_power_of_two(),
            "banks must be a power of two"
        );
        Dram {
            banks: vec![Bank::default(); config.banks],
            bus_free: 0,
            stats: DramStats::default(),
            config,
        }
    }

    /// The model's configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    #[inline]
    fn map(&self, addr: u64) -> (usize, u64) {
        // Row-interleaved bank mapping: consecutive rows rotate across
        // banks; lines within a row stay in one bank (row locality).
        let row_global = addr / self.config.row_bytes;
        let bank = (row_global as usize) & (self.config.banks - 1);
        let row = row_global / self.config.banks as u64;
        (bank, row)
    }

    /// Issues a 64-byte read/write at byte address `addr` arriving at core
    /// cycle `now`; returns the completion cycle.
    pub fn request(&mut self, addr: u64, now: u64) -> u64 {
        let (bank_idx, row) = self.map(addr);
        let cfg = self.config;
        let bank = &mut self.banks[bank_idx];
        let start = now
            .max(bank.next_free)
            .saturating_add(cfg.controller_overhead);
        let access = match bank.open_row {
            Some(open) if open == row => {
                self.stats.row_hits += 1;
                cfg.t_cl
            }
            Some(_) => {
                self.stats.row_conflicts += 1;
                cfg.t_rp + cfg.t_rcd + cfg.t_cl
            }
            None => {
                self.stats.row_misses += 1;
                cfg.t_rcd + cfg.t_cl
            }
        };
        bank.open_row = Some(row);
        // Data leaves on the shared bus after the column access.
        let data_start = (start + access).max(self.bus_free);
        let done = data_start + cfg.burst;
        self.bus_free = done;
        bank.next_free = start + access; // column pipeline frees the bank
        self.stats.requests += 1;
        self.stats.total_latency += done - now;
        done
    }

    /// The model's counters.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Serialises bank states, bus occupancy and counters as a flat word
    /// vector. The configuration is not captured.
    pub fn snapshot_words(&self) -> Vec<u64> {
        let mut w = vec![
            self.bus_free,
            self.stats.requests,
            self.stats.row_hits,
            self.stats.row_misses,
            self.stats.row_conflicts,
            self.stats.total_latency,
            self.banks.len() as u64,
        ];
        for b in &self.banks {
            match b.open_row {
                Some(row) => {
                    w.push(1);
                    w.push(row);
                }
                None => {
                    w.push(0);
                    w.push(0);
                }
            }
            w.push(b.next_free);
        }
        w
    }

    /// Restores state captured by [`Dram::snapshot_words`] into a model
    /// with the same bank count.
    ///
    /// # Errors
    ///
    /// Rejects bank-count mismatches and malformed input.
    pub fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
        let mut r = crate::wcodec::Reader::new(words, "dram");
        let bus_free = r.u64()?;
        let stats = DramStats {
            requests: r.u64()?,
            row_hits: r.u64()?,
            row_misses: r.u64()?,
            row_conflicts: r.u64()?,
            total_latency: r.u64()?,
        };
        let n_banks = r.usize()?;
        if n_banks != self.banks.len() {
            return Err(format!(
                "dram snapshot: {n_banks} banks, expected {}",
                self.banks.len()
            ));
        }
        self.bus_free = bus_free;
        self.stats = stats;
        for b in &mut self.banks {
            let open = r.bool()?;
            let row = r.u64()?;
            b.open_row = open.then_some(row);
            b.next_free = r.u64()?;
        }
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lat(dram: &mut Dram, addr: u64, now: u64) -> u64 {
        dram.request(addr, now) - now
    }

    #[test]
    fn row_hit_is_faster_than_row_miss() {
        let mut d = Dram::new(DramConfig::default());
        let miss = lat(&mut d, 0, 0);
        let hit = lat(&mut d, 64, 1_000_000);
        assert!(hit < miss, "row hit {hit} should beat row miss {miss}");
        assert_eq!(d.stats().row_hits, 1);
        assert_eq!(d.stats().row_misses, 1);
    }

    #[test]
    fn row_conflict_is_slowest() {
        let cfg = DramConfig::default();
        let mut d = Dram::new(cfg);
        let row_span = cfg.row_bytes * cfg.banks as u64;
        let miss = lat(&mut d, 0, 0);
        // Same bank, different row => conflict.
        let conflict = lat(&mut d, row_span, 1_000_000);
        assert!(conflict > miss);
        assert_eq!(d.stats().row_conflicts, 1);
    }

    #[test]
    fn bank_parallelism_overlaps_requests() {
        let cfg = DramConfig::default();
        let mut d = Dram::new(cfg);
        // Two simultaneous requests to different banks finish close
        // together (bus-serialised only), far sooner than 2x serial.
        let done_a = d.request(0, 0);
        let done_b = d.request(cfg.row_bytes, 0); // next bank
        assert!(done_b < done_a + cfg.t_cl, "bank parallelism missing");

        let mut serial = Dram::new(cfg);
        let s1 = serial.request(0, 0);
        let row_span = cfg.row_bytes * cfg.banks as u64;
        let s2 = serial.request(row_span, 0); // same bank, other row
        assert!(
            s2 > done_b,
            "same-bank requests must serialise: {s2} vs {done_b}"
        );
        let _ = s1;
    }

    #[test]
    fn queueing_delay_accumulates_on_one_bank() {
        let cfg = DramConfig::default();
        let mut d = Dram::new(cfg);
        let row_span = cfg.row_bytes * cfg.banks as u64;
        let mut last = 0;
        for i in 0..4 {
            last = d.request(i * row_span, 0); // all bank 0, all conflicts
        }
        // Four serialized activates+CAS: latency far above a single one.
        assert!(last > 3 * (cfg.t_rp + cfg.t_rcd + cfg.t_cl));
    }

    #[test]
    fn stats_average_latency() {
        let mut d = Dram::new(DramConfig::default());
        d.request(0, 0);
        d.request(64, 0);
        let s = d.stats();
        assert_eq!(s.requests, 2);
        assert!(s.avg_latency() > 0.0);
        assert!(s.row_hit_ratio() > 0.0);
    }

    #[test]
    fn mapping_keeps_row_in_one_bank() {
        let d = Dram::new(DramConfig::default());
        let (b0, r0) = d.map(0);
        let (b1, r1) = d.map(d.config.row_bytes - 64);
        assert_eq!(b0, b1);
        assert_eq!(r0, r1);
        let (b2, _) = d.map(d.config.row_bytes);
        assert_ne!(b0, b2, "consecutive rows should rotate banks");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_bank_count_rejected() {
        let _ = Dram::new(DramConfig {
            banks: 12,
            ..DramConfig::default()
        });
    }

    #[test]
    fn snapshot_round_trip_preserves_timing() {
        let mut d = Dram::new(DramConfig::default());
        d.request(0, 0);
        d.request(8192, 5);
        let words = d.snapshot_words();
        let mut e = Dram::new(DramConfig::default());
        e.restore_words(&words).unwrap();
        assert_eq!(e.snapshot_words(), words);
        // Future requests see identical bank/bus state.
        assert_eq!(d.request(64, 100), e.request(64, 100));
        assert_eq!(d.stats(), e.stats());
    }

    #[test]
    fn snapshot_bank_mismatch_rejected() {
        let d = Dram::new(DramConfig::default());
        let words = d.snapshot_words();
        let mut other = Dram::new(DramConfig {
            banks: 8,
            ..DramConfig::default()
        });
        assert!(other.restore_words(&words).is_err());
    }
}
