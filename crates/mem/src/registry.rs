//! The pluggable prefetcher registry: maps unit names (`bop`, `spp`, …)
//! to factories over the [`Prefetcher`] trait, and parses the
//! `NAME[:k=v,…][+NAME…]` spec grammar used by `--prefetcher` across the
//! CLI, config and sweep planner.
//!
//! A spec selects up to [`MAX_PREFETCHERS`] units composed side by side
//! (the paper's baseline is `bop+stream`); `none` disables data
//! prefetching. Downstream crates can [`PrefetcherRegistry::register`]
//! their own mechanisms — semantic/forecast-slice or helper-thread
//! prefetchers plug in without touching the hierarchy.

use crate::prefetch::{Bop, Ghb, Prefetcher, StreamPrefetcher, StridePrefetcher};
use crate::zoo::{GhbWidth, Sisb, Spp};

/// Maximum prefetcher units one hierarchy composes (effectiveness
/// counters are sized by this).
pub const MAX_PREFETCHERS: usize = 4;

/// Maximum spec string length in bytes (the spec is stored inline so
/// `HierarchyConfig` stays `Copy`).
pub const SPEC_CAP: usize = 56;

/// A prefetcher selection spec: a bounded inline string of the form
/// `NAME[:k=v,…]` joined by `+`, e.g. `bop+stream` or `spp:depth=4`.
/// Validation against known unit names happens in
/// [`PrefetcherRegistry::build`]; this type only bounds and normalises
/// the raw text.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PrefetcherSpec {
    len: u8,
    buf: [u8; SPEC_CAP],
}

impl PrefetcherSpec {
    /// Wraps a raw spec string.
    ///
    /// # Errors
    ///
    /// Rejects empty, over-long, or non-printable-ASCII specs (name
    /// resolution is the registry's job).
    pub fn new(s: &str) -> Result<PrefetcherSpec, String> {
        if s.is_empty() {
            return Err("prefetcher spec must not be empty".into());
        }
        if s.len() > SPEC_CAP {
            return Err(format!("prefetcher spec `{s}` exceeds {SPEC_CAP} bytes"));
        }
        if !s.bytes().all(|b| b.is_ascii_graphic()) {
            return Err(format!(
                "prefetcher spec `{s}` must be printable ASCII without spaces"
            ));
        }
        let mut buf = [0u8; SPEC_CAP];
        buf[..s.len()].copy_from_slice(s.as_bytes());
        Ok(PrefetcherSpec {
            len: s.len() as u8,
            buf,
        })
    }

    /// The spec text.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.buf[..self.len as usize]).expect("validated ASCII")
    }

    /// Whether this spec selects no data prefetching.
    pub fn is_none(&self) -> bool {
        self.as_str() == "none"
    }
}

impl Default for PrefetcherSpec {
    /// The paper's Table 1 baseline: BOP + Stream.
    fn default() -> PrefetcherSpec {
        PrefetcherSpec::new("bop+stream").expect("static spec")
    }
}

impl std::fmt::Debug for PrefetcherSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PrefetcherSpec({})", self.as_str())
    }
}

impl std::fmt::Display for PrefetcherSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for PrefetcherSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<PrefetcherSpec, String> {
        PrefetcherSpec::new(s)
    }
}

/// Parses a `k=v[,k=v…]` option string into integer pairs.
///
/// # Errors
///
/// Rejects malformed pairs and non-integer values.
pub fn parse_opts(opts: &str) -> Result<Vec<(&str, u64)>, String> {
    if opts.is_empty() {
        return Ok(Vec::new());
    }
    opts.split(',')
        .map(|kv| {
            let (k, v) = kv
                .split_once('=')
                .ok_or_else(|| format!("option `{kv}` is not of the form k=v"))?;
            let v: u64 = v
                .parse()
                .map_err(|_| format!("option `{k}` value `{v}` is not an integer"))?;
            Ok((k, v))
        })
        .collect()
}

/// Reads integer options against a declared key set with defaults.
///
/// # Errors
///
/// Rejects unknown keys and zero values.
fn read_opts(unit: &str, opts: &str, keys: &mut [(&str, &mut u64)]) -> Result<(), String> {
    for (k, v) in parse_opts(opts)? {
        let Some(slot) = keys.iter_mut().find(|(name, _)| *name == k) else {
            let known: Vec<&str> = keys.iter().map(|(n, _)| *n).collect();
            return Err(format!(
                "prefetcher `{unit}` has no option `{k}` (known: {})",
                known.join(", ")
            ));
        };
        if v == 0 {
            return Err(format!("prefetcher `{unit}` option `{k}` must be nonzero"));
        }
        *slot.1 = v;
    }
    Ok(())
}

fn pow2(unit: &str, key: &str, v: u64) -> Result<usize, String> {
    if v.is_power_of_two() {
        Ok(v as usize)
    } else {
        Err(format!(
            "prefetcher `{unit}` option `{key}` ({v}) must be a power of two"
        ))
    }
}

/// A prefetcher factory: builds a unit from its option string.
pub type PrefetcherFactory = Box<dyn Fn(&str) -> Result<Box<dyn Prefetcher>, String> + Send + Sync>;

struct RegistryEntry {
    name: String,
    help: String,
    factory: PrefetcherFactory,
}

/// The name-to-factory registry behind the `--prefetcher` axis.
pub struct PrefetcherRegistry {
    entries: Vec<RegistryEntry>,
}

impl PrefetcherRegistry {
    /// An empty registry (use [`PrefetcherRegistry::builtin`] for the
    /// standard zoo).
    pub fn new() -> PrefetcherRegistry {
        PrefetcherRegistry {
            entries: Vec::new(),
        }
    }

    /// The built-in zoo: `stream`, `stride`, `bop`, `ghb`, `ghbw`,
    /// `sisb` and `spp`.
    pub fn builtin() -> PrefetcherRegistry {
        let mut r = PrefetcherRegistry::new();
        let must = |r: &mut PrefetcherRegistry, name: &str, help: &str, f: PrefetcherFactory| {
            r.register(name, help, f).expect("builtin names are unique");
        };
        must(
            &mut r,
            "stream",
            "multi-stream sequential (streams=16, window=4, degree=2)",
            Box::new(|opts| {
                let (mut streams, mut window, mut degree) = (16, 4, 2);
                read_opts(
                    "stream",
                    opts,
                    &mut [
                        ("streams", &mut streams),
                        ("window", &mut window),
                        ("degree", &mut degree),
                    ],
                )?;
                Ok(Box::new(StreamPrefetcher::new(
                    streams as usize,
                    window,
                    degree,
                )))
            }),
        );
        must(
            &mut r,
            "stride",
            "per-PC stride, reference prediction table (entries=256, degree=2)",
            Box::new(|opts| {
                let (mut entries, mut degree) = (256, 2);
                read_opts(
                    "stride",
                    opts,
                    &mut [("entries", &mut entries), ("degree", &mut degree)],
                )?;
                let entries = pow2("stride", "entries", entries)?;
                Ok(Box::new(StridePrefetcher::new(entries, degree)))
            }),
        );
        must(
            &mut r,
            "bop",
            "best-offset (Michaud HPCA'16); no options",
            Box::new(|opts| {
                if !opts.is_empty() {
                    return Err(format!("prefetcher `bop` takes no options (got `{opts}`)"));
                }
                Ok(Box::new(Bop::new()))
            }),
        );
        must(
            &mut r,
            "ghb",
            "GHB PC/delta-correlation (entries=512, index=256, degree=4)",
            Box::new(|opts| {
                let (mut entries, mut index, mut degree) = (512, 256, 4);
                read_opts(
                    "ghb",
                    opts,
                    &mut [
                        ("entries", &mut entries),
                        ("index", &mut index),
                        ("degree", &mut degree),
                    ],
                )?;
                let index = pow2("ghb", "index", index)?;
                Ok(Box::new(Ghb::new(entries as usize, index, degree as usize)))
            }),
        );
        must(
            &mut r,
            "ghbw",
            "GHB stride/width, delta-indexed (entries=256, ait=256, width=3, depth=3, degree=3)",
            Box::new(|opts| {
                let (mut entries, mut ait, mut width, mut depth, mut degree) = (256, 256, 3, 3, 3);
                read_opts(
                    "ghbw",
                    opts,
                    &mut [
                        ("entries", &mut entries),
                        ("ait", &mut ait),
                        ("width", &mut width),
                        ("depth", &mut depth),
                        ("degree", &mut degree),
                    ],
                )?;
                let ait = pow2("ghbw", "ait", ait)?;
                Ok(Box::new(GhbWidth::new(
                    entries as usize,
                    ait,
                    width as usize,
                    depth as usize,
                    degree as usize,
                )))
            }),
        );
        must(
            &mut r,
            "sisb",
            "SISB temporal streaming (tu=256, map=4096, degree=3)",
            Box::new(|opts| {
                let (mut tu, mut map, mut degree) = (256, 4096, 3);
                read_opts(
                    "sisb",
                    opts,
                    &mut [("tu", &mut tu), ("map", &mut map), ("degree", &mut degree)],
                )?;
                let tu = pow2("sisb", "tu", tu)?;
                let map = pow2("sisb", "map", map)?;
                Ok(Box::new(Sisb::new(tu, map, degree as usize)))
            }),
        );
        must(
            &mut r,
            "spp",
            "SPP signature-path with path-confidence throttle \
             (st=256, pt=4096, filter=1024, depth=8, threshold=250)",
            Box::new(|opts| {
                let (mut st, mut pt, mut filter, mut depth, mut threshold) =
                    (256, 4096, 1024, 8, 250);
                read_opts(
                    "spp",
                    opts,
                    &mut [
                        ("st", &mut st),
                        ("pt", &mut pt),
                        ("filter", &mut filter),
                        ("depth", &mut depth),
                        ("threshold", &mut threshold),
                    ],
                )?;
                let st = pow2("spp", "st", st)?;
                let pt = pow2("spp", "pt", pt)?;
                let filter = pow2("spp", "filter", filter)?;
                if threshold > 1000 {
                    return Err(format!(
                        "prefetcher `spp` option `threshold` ({threshold}) is per-mille (max 1000)"
                    ));
                }
                Ok(Box::new(Spp::new(
                    st,
                    pt,
                    filter,
                    depth as usize,
                    threshold,
                )))
            }),
        );
        r
    }

    /// Registers a new unit name.
    ///
    /// # Errors
    ///
    /// Rejects duplicate or malformed names (lowercase alphanumeric,
    /// `none` and `+`/`:` reserved by the spec grammar).
    pub fn register(
        &mut self,
        name: &str,
        help: &str,
        factory: PrefetcherFactory,
    ) -> Result<(), String> {
        if name.is_empty()
            || !name
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit())
        {
            return Err(format!(
                "prefetcher name `{name}` must be lowercase alphanumeric"
            ));
        }
        if name == "none" {
            return Err("prefetcher name `none` is reserved".into());
        }
        if self.entries.iter().any(|e| e.name == name) {
            return Err(format!("prefetcher `{name}` is already registered"));
        }
        self.entries.push(RegistryEntry {
            name: name.to_string(),
            help: help.to_string(),
            factory,
        });
        Ok(())
    }

    /// The registered unit names with their one-line descriptions, in
    /// registration order.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries
            .iter()
            .map(|e| (e.name.as_str(), e.help.as_str()))
    }

    /// Builds the prefetcher selection a spec describes, in spec order.
    ///
    /// # Errors
    ///
    /// Rejects unknown unit names, malformed options, `none` composed
    /// with other units, duplicate units and selections longer than
    /// [`MAX_PREFETCHERS`].
    pub fn build(&self, spec: &PrefetcherSpec) -> Result<Vec<Box<dyn Prefetcher>>, String> {
        let s = spec.as_str();
        if s == "none" {
            return Ok(Vec::new());
        }
        let units: Vec<&str> = s.split('+').collect();
        if units.len() > MAX_PREFETCHERS {
            return Err(format!(
                "prefetcher spec `{s}` selects {} units, maximum {MAX_PREFETCHERS}",
                units.len()
            ));
        }
        let mut built: Vec<Box<dyn Prefetcher>> = Vec::with_capacity(units.len());
        let mut seen: Vec<&str> = Vec::with_capacity(units.len());
        for unit in units {
            let (name, opts) = unit.split_once(':').unwrap_or((unit, ""));
            if name == "none" {
                return Err(format!(
                    "prefetcher spec `{s}`: `none` cannot be composed with other units"
                ));
            }
            if seen.contains(&name) {
                return Err(format!("prefetcher spec `{s}` repeats unit `{name}`"));
            }
            seen.push(name);
            let entry = self
                .entries
                .iter()
                .find(|e| e.name == name)
                .ok_or_else(|| {
                    let known: Vec<&str> = self.entries.iter().map(|e| e.name.as_str()).collect();
                    format!(
                        "unknown prefetcher `{name}` (known: none, {})",
                        known.join(", ")
                    )
                })?;
            built.push((entry.factory)(opts)?);
        }
        Ok(built)
    }
}

impl Default for PrefetcherRegistry {
    fn default() -> PrefetcherRegistry {
        PrefetcherRegistry::builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(s: &str) -> PrefetcherSpec {
        PrefetcherSpec::new(s).unwrap()
    }

    #[test]
    fn spec_bounds_and_charset() {
        assert!(PrefetcherSpec::new("").is_err());
        assert!(PrefetcherSpec::new("a b").is_err());
        assert!(PrefetcherSpec::new(&"x".repeat(SPEC_CAP + 1)).is_err());
        assert_eq!(spec("bop+stream").as_str(), "bop+stream");
        assert_eq!(PrefetcherSpec::default(), spec("bop+stream"));
        assert!(spec("none").is_none());
        assert!(!spec("spp").is_none());
    }

    #[test]
    fn builtin_builds_every_unit_and_the_baseline() {
        let r = PrefetcherRegistry::builtin();
        for (name, _) in r.entries() {
            let built = r.build(&spec(name)).unwrap();
            assert_eq!(built.len(), 1, "{name}");
            assert_eq!(built[0].name(), name);
        }
        let base = r.build(&PrefetcherSpec::default()).unwrap();
        assert_eq!(base.len(), 2);
        assert_eq!(base[0].name(), "bop");
        assert_eq!(base[1].name(), "stream");
        assert!(r.build(&spec("none")).unwrap().is_empty());
    }

    #[test]
    fn options_are_parsed_and_validated() {
        let r = PrefetcherRegistry::builtin();
        assert_eq!(r.build(&spec("stride:degree=4")).unwrap().len(), 1);
        assert_eq!(
            r.build(&spec("spp:depth=4,threshold=100")).unwrap().len(),
            1
        );
        for bad in [
            "stride:degree=0",
            "stride:entries=3",
            "stride:bogus=1",
            "stride:degree",
            "stride:degree=x",
            "bop:rr=8",
            "spp:threshold=2000",
            "wat",
            "none+stream",
            "stream+stream",
            "bop+stream+stride+ghb+spp",
        ] {
            assert!(r.build(&spec(bad)).is_err(), "`{bad}` should be rejected");
        }
    }

    #[test]
    fn plugins_register_and_resolve() {
        #[derive(Debug)]
        struct Noop;
        impl Prefetcher for Noop {
            fn on_access(&mut self, _: u64, _: u64, _: bool, _: &mut Vec<u64>) {}
            fn name(&self) -> &'static str {
                "noop"
            }
            fn snapshot_words(&self) -> Vec<u64> {
                Vec::new()
            }
            fn restore_words(&mut self, w: &[u64]) -> Result<(), String> {
                crate::wcodec::Reader::new(w, "noop").finish()
            }
        }
        let mut r = PrefetcherRegistry::builtin();
        r.register("noop", "does nothing", Box::new(|_| Ok(Box::new(Noop))))
            .unwrap();
        assert_eq!(r.build(&spec("noop+stream")).unwrap().len(), 2);
        assert!(r
            .register("noop", "dup", Box::new(|_| Ok(Box::new(Noop))))
            .is_err());
        assert!(r
            .register("None", "bad case", Box::new(|_| Ok(Box::new(Noop))))
            .is_err());
        assert!(r
            .register("none", "reserved", Box::new(|_| Ok(Box::new(Noop))))
            .is_err());
    }
}
