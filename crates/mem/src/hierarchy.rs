use crate::{
    line_of, Bop, Cache, CacheConfig, CacheStats, Dram, DramConfig, DramStats, Ghb, Prefetcher,
    StreamPrefetcher, StridePrefetcher, LINE_BYTES,
};
use std::collections::HashMap;

/// Which level served an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HitLevel {
    /// Served by the first-level cache.
    L1,
    /// Served by the last-level cache.
    Llc,
    /// Served by DRAM (an LLC miss).
    Dram,
}

/// The outcome of one memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// Access latency in core cycles.
    pub latency: u64,
    /// The level that served the access (in-flight merges report the level
    /// the original miss went to).
    pub level: HitLevel,
}

impl AccessResult {
    /// The cycle at which the data is available, given the access started
    /// at `now`.
    pub fn ready_at(&self, now: u64) -> u64 {
        now + self.latency
    }
}

/// Data-prefetcher selection (Table 1 uses BOP + Stream).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PrefetcherKind {
    /// No data prefetching.
    None,
    /// Stream prefetcher only.
    Stream,
    /// Best-offset prefetcher only.
    Bop,
    /// Both BOP and Stream (the paper's baseline).
    #[default]
    BopAndStream,
    /// Per-PC stride prefetcher only.
    Stride,
    /// Global-history-buffer delta-correlation prefetcher only.
    Ghb,
}

/// Full configuration of the memory hierarchy.
#[derive(Clone, Copy, Debug)]
pub struct HierarchyConfig {
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Last-level cache geometry.
    pub llc: CacheConfig,
    /// L1I hit latency (cycles).
    pub l1i_latency: u64,
    /// L1D hit latency (cycles).
    pub l1d_latency: u64,
    /// LLC hit latency (cycles).
    pub llc_latency: u64,
    /// DRAM model parameters.
    pub dram: DramConfig,
    /// Data-prefetcher selection.
    pub prefetcher: PrefetcherKind,
    /// Maximum prefetches issued per demand access.
    pub max_prefetches_per_access: usize,
}

impl HierarchyConfig {
    /// The paper's Table 1 uncore: 32 KiB 8-way L1I (3 cycles), 32 KiB
    /// 8-way L1D (4 cycles), 1 MiB LLC (36 cycles; 16-way here so set
    /// counts stay powers of two vs. the paper's 20-way), DDR4-2400 with
    /// one channel, BOP + Stream prefetching.
    pub fn skylake_like() -> HierarchyConfig {
        HierarchyConfig {
            l1i: CacheConfig::new(32 * 1024, 8, LINE_BYTES),
            l1d: CacheConfig::new(32 * 1024, 8, LINE_BYTES),
            llc: CacheConfig::new(1024 * 1024, 16, LINE_BYTES),
            l1i_latency: 3,
            l1d_latency: 4,
            llc_latency: 36,
            dram: DramConfig::default(),
            prefetcher: PrefetcherKind::BopAndStream,
            max_prefetches_per_access: 4,
        }
    }

    /// Validates every cache geometry and the latency ordering.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending level or latency.
    pub fn validate(&self) -> Result<(), String> {
        self.l1i.validate().map_err(|e| format!("l1i: {e}"))?;
        self.l1d.validate().map_err(|e| format!("l1d: {e}"))?;
        self.llc.validate().map_err(|e| format!("llc: {e}"))?;
        if self.l1i_latency == 0 || self.l1d_latency == 0 || self.llc_latency == 0 {
            return Err(format!(
                "cache latencies must be nonzero (l1i {}, l1d {}, llc {})",
                self.l1i_latency, self.l1d_latency, self.llc_latency
            ));
        }
        if self.llc_latency < self.l1d_latency || self.llc_latency < self.l1i_latency {
            return Err(format!(
                "llc_latency ({}) must not be lower than the L1 latencies ({}, {})",
                self.llc_latency, self.l1i_latency, self.l1d_latency
            ));
        }
        Ok(())
    }
}

impl Default for HierarchyConfig {
    fn default() -> HierarchyConfig {
        HierarchyConfig::skylake_like()
    }
}

/// Aggregated counters of the hierarchy.
#[derive(Clone, Copy, Debug, Default)]
pub struct MemStats {
    /// Demand loads observed.
    pub loads: u64,
    /// Demand stores observed.
    pub stores: u64,
    /// Instruction fetch accesses observed.
    pub fetches: u64,
    /// Demand loads that missed the LLC (went to DRAM).
    pub load_llc_misses: u64,
    /// Demand loads that merged into an in-flight fill.
    pub load_merges: u64,
    /// Prefetch fills issued to DRAM.
    pub prefetches_issued: u64,
    /// L1I stats snapshot.
    pub l1i: CacheStats,
    /// L1D stats snapshot.
    pub l1d: CacheStats,
    /// LLC stats snapshot.
    pub llc: CacheStats,
    /// DRAM stats snapshot.
    pub dram: DramStats,
}

/// The three-level memory hierarchy plus DRAM and prefetchers.
///
/// See the crate-level example. All `now` arguments are core-cycle times;
/// the hierarchy is a passive timing oracle — it never advances time
/// itself, so it composes with any core model.
pub struct MemoryHierarchy {
    config: HierarchyConfig,
    l1i: Cache,
    l1d: Cache,
    llc: Cache,
    dram: Dram,
    bop: Option<Bop>,
    stream: Option<StreamPrefetcher>,
    stride: Option<StridePrefetcher>,
    ghb: Option<Ghb>,
    /// MSHR-style in-flight fills: line -> (ready cycle, original level).
    inflight: HashMap<u64, (u64, HitLevel)>,
    scratch: Vec<u64>,
    loads: u64,
    stores: u64,
    fetches: u64,
    load_llc_misses: u64,
    load_merges: u64,
    prefetches_issued: u64,
}

impl MemoryHierarchy {
    /// Builds the hierarchy from a configuration.
    pub fn new(config: HierarchyConfig) -> MemoryHierarchy {
        let (bop, stream, stride, ghb) = match config.prefetcher {
            PrefetcherKind::None => (None, None, None, None),
            PrefetcherKind::Stream => (None, Some(StreamPrefetcher::new(16, 4, 2)), None, None),
            PrefetcherKind::Bop => (Some(Bop::new()), None, None, None),
            PrefetcherKind::BopAndStream => (
                Some(Bop::new()),
                Some(StreamPrefetcher::new(16, 4, 2)),
                None,
                None,
            ),
            PrefetcherKind::Stride => (None, None, Some(StridePrefetcher::new(256, 2)), None),
            PrefetcherKind::Ghb => (None, None, None, Some(Ghb::new(512, 256, 4))),
        };
        MemoryHierarchy {
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            llc: Cache::new(config.llc),
            dram: Dram::new(config.dram),
            bop,
            stream,
            stride,
            ghb,
            inflight: HashMap::new(),
            scratch: Vec::new(),
            loads: 0,
            stores: 0,
            fetches: 0,
            load_llc_misses: 0,
            load_merges: 0,
            prefetches_issued: 0,
            config,
        }
    }

    /// The hierarchy's configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// A demand load of the 64-byte line containing `addr` by the
    /// instruction at `pc`, starting at cycle `now`.
    pub fn load(&mut self, addr: u64, pc: u64, now: u64) -> AccessResult {
        self.loads += 1;
        let line = line_of(addr);
        if self.l1d.access(line) {
            // The line may be present (filled at request time) but still in
            // flight from DRAM: merge into the outstanding fill.
            if let Some(res) = self.check_inflight(line, now, self.config.l1d_latency) {
                return res;
            }
            return AccessResult {
                latency: self.config.l1d_latency,
                level: HitLevel::L1,
            };
        }
        // Train prefetchers on the L1-miss stream.
        self.train_prefetchers(line, pc);
        let result = self.miss_path(line, addr, now, true);
        self.issue_prefetches(now);
        result
    }

    /// A demand store to the line containing `addr`.
    ///
    /// Stores are write-allocate but their latency is absorbed by the
    /// store buffer: the returned latency is always the L1 latency, while
    /// any required fill proceeds in the background (and occupies DRAM
    /// banks).
    pub fn store(&mut self, addr: u64, pc: u64, now: u64) -> AccessResult {
        self.stores += 1;
        let line = line_of(addr);
        if !self.l1d.access(line) {
            self.train_prefetchers(line, pc);
            let _ = self.miss_path(line, addr, now, false);
            self.issue_prefetches(now);
        }
        AccessResult {
            latency: self.config.l1d_latency,
            level: HitLevel::L1,
        }
    }

    /// An instruction fetch of the line containing byte address `addr`.
    pub fn fetch(&mut self, addr: u64, now: u64) -> AccessResult {
        self.fetches += 1;
        let line = line_of(addr);
        if self.l1i.access(line) {
            if let Some(res) = self.check_inflight(line, now, self.config.l1i_latency) {
                return res;
            }
            return AccessResult {
                latency: self.config.l1i_latency,
                level: HitLevel::L1,
            };
        }
        if let Some(res) = self.check_inflight(line, now, self.config.l1i_latency) {
            self.l1i.fill(line, false);
            return res;
        }
        if self.llc.access(line) {
            self.l1i.fill(line, false);
            return AccessResult {
                latency: self.config.l1i_latency + self.config.llc_latency,
                level: HitLevel::Llc,
            };
        }
        let done = self.dram.request(addr, now + self.config.llc_latency);
        self.llc.fill(line, false);
        self.l1i.fill(line, false);
        self.inflight.insert(line, (done, HitLevel::Dram));
        AccessResult {
            latency: done - now,
            level: HitLevel::Dram,
        }
    }

    /// Prefetches the instruction line containing `addr` into L1I (used by
    /// the FDIP frontend). No demand counters are touched.
    pub fn prefetch_inst(&mut self, addr: u64, now: u64) {
        let line = line_of(addr);
        if self.l1i.probe(line) || self.inflight.contains_key(&line) {
            return;
        }
        if self.llc.access(line) {
            self.l1i.fill(line, true);
            let ready = now + self.config.l1i_latency + self.config.llc_latency;
            self.inflight.insert(line, (ready, HitLevel::Llc));
            return;
        }
        let done = self.dram.request(addr, now + self.config.llc_latency);
        self.llc.fill(line, true);
        self.l1i.fill(line, true);
        self.inflight.insert(line, (done, HitLevel::Dram));
        self.prefetches_issued += 1;
    }

    /// Prefetches the data line containing `addr` into the LLC (software
    /// or experiment-driven prefetch injection).
    pub fn prefetch_data(&mut self, addr: u64, now: u64) {
        let line = line_of(addr);
        if self.llc.probe(line) || self.inflight.contains_key(&line) {
            return;
        }
        let done = self.dram.request(addr, now + self.config.llc_latency);
        self.llc.fill(line, true);
        self.inflight.insert(line, (done, HitLevel::Dram));
        self.prefetches_issued += 1;
    }

    fn check_inflight(&mut self, line: u64, now: u64, l1_lat: u64) -> Option<AccessResult> {
        if let Some(&(ready, level)) = self.inflight.get(&line) {
            if ready > now {
                self.load_merges += 1;
                return Some(AccessResult {
                    latency: (ready - now).max(l1_lat),
                    level,
                });
            }
            self.inflight.remove(&line);
        }
        None
    }

    fn miss_path(&mut self, line: u64, addr: u64, now: u64, is_load: bool) -> AccessResult {
        if let Some(res) = self.check_inflight(line, now, self.config.l1d_latency) {
            self.l1d.fill(line, false);
            return res;
        }
        if self.llc.access(line) {
            self.l1d.fill(line, false);
            return AccessResult {
                latency: self.config.l1d_latency + self.config.llc_latency,
                level: HitLevel::Llc,
            };
        }
        if is_load {
            self.load_llc_misses += 1;
        }
        let done = self.dram.request(addr, now + self.config.llc_latency);
        self.llc.fill(line, false);
        self.l1d.fill(line, false);
        self.inflight.insert(line, (done, HitLevel::Dram));
        if let Some(bop) = &mut self.bop {
            bop.on_fill(line);
        }
        AccessResult {
            latency: done - now,
            level: HitLevel::Dram,
        }
    }

    fn train_prefetchers(&mut self, line: u64, pc: u64) {
        self.scratch.clear();
        if let Some(p) = &mut self.bop {
            p.on_access(line, pc, false, &mut self.scratch);
        }
        if let Some(p) = &mut self.stream {
            p.on_access(line, pc, false, &mut self.scratch);
        }
        if let Some(p) = &mut self.stride {
            p.on_access(line, pc, false, &mut self.scratch);
        }
        if let Some(p) = &mut self.ghb {
            p.on_access(line, pc, false, &mut self.scratch);
        }
        self.scratch.truncate(self.config.max_prefetches_per_access);
    }

    fn issue_prefetches(&mut self, now: u64) {
        // The candidates were collected by `train_prefetchers`.
        let candidates = std::mem::take(&mut self.scratch);
        for &line in &candidates {
            if self.llc.probe(line) || self.inflight.contains_key(&line) {
                continue;
            }
            let addr = line * LINE_BYTES;
            let done = self.dram.request(addr, now + self.config.llc_latency);
            self.llc.fill(line, true);
            self.inflight.insert(line, (done, HitLevel::Dram));
            self.prefetches_issued += 1;
        }
        self.scratch = candidates;
        // Bound the MSHR map: drop long-completed fills occasionally.
        if self.inflight.len() > 4096 {
            self.inflight.retain(|_, (ready, _)| *ready > now);
        }
    }

    /// Number of in-flight (MSHR-style) fills currently tracked. The map
    /// self-bounds at 4096 entries; the simulator's invariant checker uses
    /// this to assert leak-freedom at drain.
    pub fn inflight_fills(&self) -> usize {
        self.inflight.len()
    }

    /// Number of tracked fills whose data was already ready at `now` —
    /// stale entries awaiting lazy cleanup. Anything beyond the lazy-sweep
    /// bound indicates a leak.
    pub fn stale_inflight_fills(&self, now: u64) -> usize {
        self.inflight
            .values()
            .filter(|&&(ready, _)| ready <= now)
            .count()
    }

    /// Serialises the full dynamic state — every cache level, DRAM, the
    /// configured prefetchers, the MSHR map and all counters — as a flat
    /// word vector. The MSHR map is emitted sorted by line address so the
    /// encoding is deterministic regardless of hash-map iteration order.
    pub fn snapshot_words(&self) -> Vec<u64> {
        use crate::wcodec::push_section;
        let mut w = vec![
            self.loads,
            self.stores,
            self.fetches,
            self.load_llc_misses,
            self.load_merges,
            self.prefetches_issued,
        ];
        push_section(&mut w, self.l1i.snapshot_words());
        push_section(&mut w, self.l1d.snapshot_words());
        push_section(&mut w, self.llc.snapshot_words());
        push_section(&mut w, self.dram.snapshot_words());
        let opt = |w: &mut Vec<u64>, body: Option<Vec<u64>>| match body {
            Some(body) => {
                w.push(1);
                push_section(w, body);
            }
            None => w.push(0),
        };
        opt(&mut w, self.bop.as_ref().map(Bop::snapshot_words));
        opt(
            &mut w,
            self.stream.as_ref().map(StreamPrefetcher::snapshot_words),
        );
        opt(
            &mut w,
            self.stride.as_ref().map(StridePrefetcher::snapshot_words),
        );
        opt(&mut w, self.ghb.as_ref().map(Ghb::snapshot_words));
        let mut fills: Vec<(u64, u64, HitLevel)> = self
            .inflight
            .iter()
            .map(|(&line, &(ready, level))| (line, ready, level))
            .collect();
        fills.sort_unstable_by_key(|&(line, _, _)| line);
        w.push(fills.len() as u64);
        for (line, ready, level) in fills {
            w.push(line);
            w.push(ready);
            w.push(match level {
                HitLevel::L1 => 0,
                HitLevel::Llc => 1,
                HitLevel::Dram => 2,
            });
        }
        w
    }

    /// Restores state captured by [`MemoryHierarchy::snapshot_words`] into
    /// a hierarchy built from the same configuration.
    ///
    /// # Errors
    ///
    /// Rejects geometry or prefetcher-configuration mismatches and
    /// malformed input; the hierarchy should be discarded on error (state
    /// may be partial).
    pub fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
        let mut r = crate::wcodec::Reader::new(words, "hierarchy");
        self.loads = r.u64()?;
        self.stores = r.u64()?;
        self.fetches = r.u64()?;
        self.load_llc_misses = r.u64()?;
        self.load_merges = r.u64()?;
        self.prefetches_issued = r.u64()?;
        self.l1i.restore_words(r.section()?)?;
        self.l1d.restore_words(r.section()?)?;
        self.llc.restore_words(r.section()?)?;
        self.dram.restore_words(r.section()?)?;
        fn opt<'a>(
            r: &mut crate::wcodec::Reader<'a>,
            have: bool,
            what: &str,
        ) -> Result<Option<&'a [u64]>, String> {
            let present = r.bool()?;
            if present != have {
                return Err(format!(
                    "hierarchy snapshot: {what} prefetcher presence mismatch \
                     (snapshot {present}, config {have})"
                ));
            }
            Ok(if present { Some(r.section()?) } else { None })
        }
        if let Some(s) = opt(&mut r, self.bop.is_some(), "bop")? {
            self.bop.as_mut().expect("checked").restore_words(s)?;
        }
        if let Some(s) = opt(&mut r, self.stream.is_some(), "stream")? {
            self.stream.as_mut().expect("checked").restore_words(s)?;
        }
        if let Some(s) = opt(&mut r, self.stride.is_some(), "stride")? {
            self.stride.as_mut().expect("checked").restore_words(s)?;
        }
        if let Some(s) = opt(&mut r, self.ghb.is_some(), "ghb")? {
            self.ghb.as_mut().expect("checked").restore_words(s)?;
        }
        let n_fills = r.usize()?;
        self.inflight.clear();
        for _ in 0..n_fills {
            let line = r.u64()?;
            let ready = r.u64()?;
            let level = match r.u64()? {
                0 => HitLevel::L1,
                1 => HitLevel::Llc,
                2 => HitLevel::Dram,
                v => return Err(format!("hierarchy snapshot: bad hit level {v}")),
            };
            if self.inflight.insert(line, (ready, level)).is_some() {
                return Err(format!("hierarchy snapshot: duplicate fill line {line:#x}"));
            }
        }
        self.scratch.clear();
        r.finish()
    }

    /// A snapshot of all counters.
    pub fn stats(&self) -> MemStats {
        MemStats {
            loads: self.loads,
            stores: self.stores,
            fetches: self.fetches,
            load_llc_misses: self.load_llc_misses,
            load_merges: self.load_merges,
            prefetches_issued: self.prefetches_issued,
            l1i: self.l1i.stats(),
            l1d: self.l1d.stats(),
            llc: self.llc.stats(),
            dram: self.dram.stats(),
        }
    }
}

impl std::fmt::Debug for MemoryHierarchy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryHierarchy")
            .field("config", &self.config)
            .field("inflight", &self.inflight.len())
            .field("loads", &self.loads)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_prefetch() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig {
            prefetcher: PrefetcherKind::None,
            ..HierarchyConfig::skylake_like()
        })
    }

    #[test]
    fn cold_load_goes_to_dram_then_hits_l1() {
        let mut m = no_prefetch();
        let r1 = m.load(0x100000, 1, 0);
        assert_eq!(r1.level, HitLevel::Dram);
        assert!(r1.latency > m.config().llc_latency);
        let r2 = m.load(0x100000, 1, r1.ready_at(0));
        assert_eq!(r2.level, HitLevel::L1);
        assert_eq!(r2.latency, m.config().l1d_latency);
    }

    #[test]
    fn llc_hit_after_l1_eviction() {
        let mut m = no_prefetch();
        // Fill L1D (32 KiB / 64 B = 512 lines) beyond capacity with one set.
        // Lines that alias to set 0 in L1 (64 sets): stride 64 lines.
        let base = 0x40_0000u64;
        let mut t = 0;
        for i in 0..16u64 {
            let r = m.load(base + i * 64 * 64 * 64, 1, t);
            t = r.ready_at(t) + 1;
        }
        // First line evicted from L1 (8 ways) but still in LLC.
        let r = m.load(base, 1, t);
        assert_eq!(r.level, HitLevel::Llc);
        assert_eq!(r.latency, m.config().l1d_latency + m.config().llc_latency);
    }

    #[test]
    fn inflight_merge_returns_partial_latency() {
        let mut m = no_prefetch();
        let r1 = m.load(0x200000, 1, 0);
        assert_eq!(r1.level, HitLevel::Dram);
        // A second load to the same line 10 cycles later must not pay the
        // full DRAM latency again, and must not hit L1 instantly: the line
        // is physically filled only at r1.ready_at(0).
        let merge = m.load(0x200000 + 8, 3, 10);
        assert_eq!(merge.level, HitLevel::Dram);
        assert_eq!(merge.latency, r1.latency - 10);
        assert_eq!(m.stats().load_merges, 1);
        assert_eq!(m.stats().load_llc_misses, 1);
        // After the fill lands, it is a plain L1 hit.
        let after = m.load(0x200000, 4, r1.ready_at(0));
        assert_eq!(after.level, HitLevel::L1);
    }

    #[test]
    fn store_latency_hidden_by_store_buffer() {
        let mut m = no_prefetch();
        let r = m.store(0x500000, 9, 0);
        assert_eq!(r.latency, m.config().l1d_latency);
        // But the line was allocated: next load hits.
        let r2 = m.load(0x500000, 9, 500);
        assert_eq!(r2.level, HitLevel::L1);
        assert_eq!(m.stats().stores, 1);
    }

    #[test]
    fn fetch_uses_l1i_latency() {
        let mut m = no_prefetch();
        let r1 = m.fetch(0x1000, 0);
        assert_eq!(r1.level, HitLevel::Dram);
        let r2 = m.fetch(0x1000, r1.ready_at(0));
        assert_eq!(r2.level, HitLevel::L1);
        assert_eq!(r2.latency, m.config().l1i_latency);
        assert_eq!(m.stats().fetches, 2);
    }

    #[test]
    fn inst_prefetch_hides_fetch_latency() {
        let mut m = no_prefetch();
        m.prefetch_inst(0x2000, 0);
        // After the prefetch completes, the demand fetch is an L1 hit.
        let r = m.fetch(0x2000, 1000);
        assert_eq!(r.level, HitLevel::L1);
    }

    #[test]
    fn data_prefetch_turns_miss_into_llc_hit() {
        let mut m = no_prefetch();
        m.prefetch_data(0x700000, 0);
        let r = m.load(0x700000, 4, 1000);
        assert_eq!(r.level, HitLevel::Llc);
        assert_eq!(m.stats().prefetches_issued, 1);
    }

    #[test]
    fn stream_prefetcher_covers_sequential_misses() {
        let mut with_pf = MemoryHierarchy::new(HierarchyConfig {
            prefetcher: PrefetcherKind::Stream,
            ..HierarchyConfig::skylake_like()
        });
        let mut without = no_prefetch();
        let mut lat_pf = 0u64;
        let mut lat_no = 0u64;
        let mut t = 0u64;
        for i in 0..256u64 {
            let addr = 0x100_0000 + i * 64;
            lat_pf += with_pf.load(addr, 7, t).latency;
            lat_no += without.load(addr, 7, t).latency;
            t += 400; // enough time for prefetches to land
        }
        assert!(
            lat_pf < lat_no / 2,
            "stream prefetching should slash sequential miss latency: {lat_pf} vs {lat_no}"
        );
    }

    #[test]
    fn pointer_chase_defeats_prefetchers() {
        // Irregular (hashed) addresses: prefetching should not help, which
        // is exactly the gap CRISP targets.
        let mut with_pf = MemoryHierarchy::new(HierarchyConfig::skylake_like());
        let mut t = 0u64;
        let mut x = 987654321u64;
        let mut dram_hits = 0;
        for _ in 0..200 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let addr = (x >> 20) & 0x3FFF_FFC0;
            let r = with_pf.load(addr, 11, t);
            if r.level == HitLevel::Dram {
                dram_hits += 1;
            }
            t = r.ready_at(t);
        }
        assert!(
            dram_hits > 150,
            "irregular stream must stay DRAM-bound: {dram_hits}/200"
        );
    }

    #[test]
    fn stats_snapshot_consistency() {
        let mut m = no_prefetch();
        m.load(0x1000, 1, 0);
        m.store(0x2000, 2, 10);
        m.fetch(0x3000, 20);
        let s = m.stats();
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.fetches, 1);
        assert_eq!(s.l1d.accesses, 2);
        assert_eq!(s.l1i.accesses, 1);
        assert!(s.dram.requests >= 3);
    }

    #[test]
    fn hierarchy_snapshot_round_trip_mid_burst() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::skylake_like());
        let mut t = 0u64;
        for i in 0..64u64 {
            let r = m.load(0x100_0000 + i * 64, 7, t);
            t += r.latency / 2; // leave fills in flight
        }
        m.fetch(0x4000, t);
        m.store(0x9_0000, 3, t);
        let words = m.snapshot_words();
        let mut n = MemoryHierarchy::new(HierarchyConfig::skylake_like());
        n.restore_words(&words).unwrap();
        assert_eq!(n.snapshot_words(), words, "snapshot must round-trip");
        // Both copies now behave identically, merges included.
        let a = m.load(0x100_0000 + 63 * 64, 7, t + 1);
        let b = n.load(0x100_0000 + 63 * 64, 7, t + 1);
        assert_eq!(a, b);
        assert_eq!(m.snapshot_words(), n.snapshot_words());
    }

    #[test]
    fn hierarchy_snapshot_rejects_prefetcher_mismatch() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::skylake_like());
        m.load(0x1000, 1, 0);
        let words = m.snapshot_words();
        let mut other = no_prefetch();
        assert!(other.restore_words(&words).is_err());
    }

    #[test]
    fn ghb_prefetcher_covers_strided_misses() {
        let mut with_pf = MemoryHierarchy::new(HierarchyConfig {
            prefetcher: PrefetcherKind::Ghb,
            ..HierarchyConfig::skylake_like()
        });
        let mut without = no_prefetch();
        let mut lat_pf = 0u64;
        let mut lat_no = 0u64;
        let mut t = 0u64;
        // Stride of 3 lines: too wide for L1 spatial locality, easy for
        // delta correlation.
        for i in 0..256u64 {
            let addr = 0x200_0000 + i * 192;
            lat_pf += with_pf.load(addr, 9, t).latency;
            lat_no += without.load(addr, 9, t).latency;
            t += 400;
        }
        assert!(
            lat_pf < lat_no * 3 / 4,
            "GHB should cover a strided miss stream: {lat_pf} vs {lat_no}"
        );
    }
}
