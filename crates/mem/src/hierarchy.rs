use crate::cache::FillOutcome;
use crate::registry::MAX_PREFETCHERS;
use crate::{
    line_of, Cache, CacheConfig, CacheStats, Dram, DramConfig, DramStats, Prefetcher,
    PrefetcherRegistry, PrefetcherSpec, LINE_BYTES, PF_OTHER,
};
use std::collections::HashMap;

/// Which level served an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HitLevel {
    /// Served by the first-level cache.
    L1,
    /// Served by the last-level cache.
    Llc,
    /// Served by DRAM (an LLC miss).
    Dram,
}

/// The outcome of one memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// Access latency in core cycles.
    pub latency: u64,
    /// The level that served the access (in-flight merges report the level
    /// the original miss went to).
    pub level: HitLevel,
}

impl AccessResult {
    /// The cycle at which the data is available, given the access started
    /// at `now`.
    pub fn ready_at(&self, now: u64) -> u64 {
        now + self.latency
    }
}

/// Full configuration of the memory hierarchy.
#[derive(Clone, Copy, Debug)]
pub struct HierarchyConfig {
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Last-level cache geometry.
    pub llc: CacheConfig,
    /// L1I hit latency (cycles).
    pub l1i_latency: u64,
    /// L1D hit latency (cycles).
    pub l1d_latency: u64,
    /// LLC hit latency (cycles).
    pub llc_latency: u64,
    /// DRAM model parameters.
    pub dram: DramConfig,
    /// Data-prefetcher selection spec (resolved through the
    /// [`PrefetcherRegistry`]); Table 1 uses `bop+stream`.
    pub prefetcher: PrefetcherSpec,
    /// Maximum prefetches issued per demand access.
    pub max_prefetches_per_access: usize,
}

impl HierarchyConfig {
    /// The paper's Table 1 uncore: 32 KiB 8-way L1I (3 cycles), 32 KiB
    /// 8-way L1D (4 cycles), 1 MiB LLC (36 cycles; 16-way here so set
    /// counts stay powers of two vs. the paper's 20-way), DDR4-2400 with
    /// one channel, BOP + Stream prefetching.
    pub fn skylake_like() -> HierarchyConfig {
        HierarchyConfig {
            l1i: CacheConfig::new(32 * 1024, 8, LINE_BYTES),
            l1d: CacheConfig::new(32 * 1024, 8, LINE_BYTES),
            llc: CacheConfig::new(1024 * 1024, 16, LINE_BYTES),
            l1i_latency: 3,
            l1d_latency: 4,
            llc_latency: 36,
            dram: DramConfig::default(),
            prefetcher: PrefetcherSpec::default(),
            max_prefetches_per_access: 4,
        }
    }

    /// Validates every cache geometry, the latency ordering and the
    /// prefetcher spec (against the built-in registry).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending level, latency or spec.
    pub fn validate(&self) -> Result<(), String> {
        self.l1i.validate().map_err(|e| format!("l1i: {e}"))?;
        self.l1d.validate().map_err(|e| format!("l1d: {e}"))?;
        self.llc.validate().map_err(|e| format!("llc: {e}"))?;
        if self.l1i_latency == 0 || self.l1d_latency == 0 || self.llc_latency == 0 {
            return Err(format!(
                "cache latencies must be nonzero (l1i {}, l1d {}, llc {})",
                self.l1i_latency, self.l1d_latency, self.llc_latency
            ));
        }
        if self.llc_latency < self.l1d_latency || self.llc_latency < self.l1i_latency {
            return Err(format!(
                "llc_latency ({}) must not be lower than the L1 latencies ({}, {})",
                self.llc_latency, self.l1i_latency, self.l1d_latency
            ));
        }
        PrefetcherRegistry::builtin()
            .build(&self.prefetcher)
            .map_err(|e| format!("prefetcher: {e}"))?;
        Ok(())
    }
}

impl Default for HierarchyConfig {
    fn default() -> HierarchyConfig {
        HierarchyConfig::skylake_like()
    }
}

/// Effectiveness counters of one prefetcher unit: the raw inputs to
/// accuracy (`useful / issued`), timeliness (`1 - late / useful`) and the
/// pollution rate (`polluting / issued`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrefetchEffect {
    /// Prefetch fills issued to DRAM by this unit.
    pub issued: u64,
    /// Issued prefetches later consumed by a demand access.
    pub useful: u64,
    /// Useful prefetches whose demand arrived before the fill completed
    /// (the prefetch hid only part of the miss latency).
    pub late: u64,
    /// Prefetched lines evicted without ever being demanded.
    pub polluting: u64,
}

impl PrefetchEffect {
    /// Element-wise sum.
    pub fn add(&mut self, other: &PrefetchEffect) {
        self.issued += other.issued;
        self.useful += other.useful;
        self.late += other.late;
        self.polluting += other.polluting;
    }
}

/// Aggregated counters of the hierarchy.
#[derive(Clone, Copy, Debug, Default)]
pub struct MemStats {
    /// Demand loads observed.
    pub loads: u64,
    /// Demand stores observed.
    pub stores: u64,
    /// Instruction fetch accesses observed.
    pub fetches: u64,
    /// Demand loads that missed the LLC (went to DRAM).
    pub load_llc_misses: u64,
    /// Demand loads that merged into an in-flight fill.
    pub load_merges: u64,
    /// Prefetch fills issued to DRAM.
    pub prefetches_issued: u64,
    /// Per-unit effectiveness counters, indexed by the prefetcher's
    /// position in the spec (unused slots stay zero).
    pub prefetch: [PrefetchEffect; MAX_PREFETCHERS],
    /// L1I stats snapshot.
    pub l1i: CacheStats,
    /// L1D stats snapshot.
    pub l1d: CacheStats,
    /// LLC stats snapshot.
    pub llc: CacheStats,
    /// DRAM stats snapshot.
    pub dram: DramStats,
}

impl MemStats {
    /// Effectiveness counters summed across every configured unit.
    pub fn prefetch_totals(&self) -> PrefetchEffect {
        let mut t = PrefetchEffect::default();
        for e in &self.prefetch {
            t.add(e);
        }
        t
    }
}

/// FNV-1a over a unit name, used as a snapshot consistency check so a
/// checkpoint cannot silently restore into a differently-specced zoo.
fn name_hash(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// An MSHR-style in-flight fill: completion cycle, the level the miss
/// went to, and the prefetch source tag (0 = demand fill).
type InflightFill = (u64, HitLevel, u8);

/// The three-level memory hierarchy plus DRAM and prefetchers.
///
/// See the crate-level example. All `now` arguments are core-cycle times;
/// the hierarchy is a passive timing oracle — it never advances time
/// itself, so it composes with any core model. Data prefetchers are
/// resolved from [`HierarchyConfig::prefetcher`] through a
/// [`PrefetcherRegistry`] and drive per-unit issued/useful/late/polluting
/// counters exposed via [`MemStats::prefetch`].
pub struct MemoryHierarchy {
    config: HierarchyConfig,
    l1i: Cache,
    l1d: Cache,
    llc: Cache,
    dram: Dram,
    prefetchers: Vec<Box<dyn Prefetcher>>,
    effects: [PrefetchEffect; MAX_PREFETCHERS],
    /// MSHR-style in-flight fills: line -> (ready cycle, original level,
    /// prefetch source).
    inflight: HashMap<u64, InflightFill>,
    /// Tagged prefetch candidates of the current access: (line, source).
    scratch: Vec<(u64, u8)>,
    /// Per-unit candidate buffer reused across accesses.
    unit_out: Vec<u64>,
    loads: u64,
    stores: u64,
    fetches: u64,
    load_llc_misses: u64,
    load_merges: u64,
    prefetches_issued: u64,
}

impl MemoryHierarchy {
    /// Builds the hierarchy from a configuration, resolving the
    /// prefetcher spec against the built-in registry.
    ///
    /// # Panics
    ///
    /// Panics if the spec does not resolve; validate the configuration
    /// first (or use [`MemoryHierarchy::try_new`]).
    pub fn new(config: HierarchyConfig) -> MemoryHierarchy {
        MemoryHierarchy::try_new(config, &PrefetcherRegistry::builtin())
            .unwrap_or_else(|e| panic!("invalid hierarchy config: {e}"))
    }

    /// Builds the hierarchy, resolving the prefetcher spec against a
    /// caller-supplied registry (which may carry plugin mechanisms).
    ///
    /// # Errors
    ///
    /// Returns a message if the spec does not resolve in `registry`.
    pub fn try_new(
        config: HierarchyConfig,
        registry: &PrefetcherRegistry,
    ) -> Result<MemoryHierarchy, String> {
        let prefetchers = registry.build(&config.prefetcher)?;
        Ok(MemoryHierarchy {
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            llc: Cache::new(config.llc),
            dram: Dram::new(config.dram),
            prefetchers,
            effects: [PrefetchEffect::default(); MAX_PREFETCHERS],
            inflight: HashMap::new(),
            scratch: Vec::new(),
            unit_out: Vec::new(),
            loads: 0,
            stores: 0,
            fetches: 0,
            load_llc_misses: 0,
            load_merges: 0,
            prefetches_issued: 0,
            config,
        })
    }

    /// The hierarchy's configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// The configured prefetcher unit names, in spec (and counter-slot)
    /// order.
    pub fn prefetcher_names(&self) -> Vec<&'static str> {
        self.prefetchers.iter().map(|p| p.name()).collect()
    }

    /// The counter slot of a way/fill source tag, if it belongs to a
    /// registry unit (FDIP and injected prefetches carry [`PF_OTHER`]).
    fn effect_slot(pf: u8) -> Option<usize> {
        (pf >= 1 && usize::from(pf) <= MAX_PREFETCHERS).then(|| usize::from(pf) - 1)
    }

    fn credit_useful(&mut self, pf: u8, late: bool) {
        if let Some(slot) = Self::effect_slot(pf) {
            self.effects[slot].useful += 1;
            if late {
                self.effects[slot].late += 1;
            }
        }
    }

    fn note_fill(&mut self, fill: FillOutcome) {
        if let (Some(evicted), Some(pf)) = (fill.evicted, fill.evicted_unused_prefetch) {
            if let Some(slot) = Self::effect_slot(pf) {
                self.effects[slot].polluting += 1;
            }
            // The victim may still be in flight: clear its tag so the same
            // prefetch cannot also be credited useful on a later merge.
            if let Some(f) = self.inflight.get_mut(&evicted) {
                f.2 = 0;
            }
        }
    }

    /// A demand load of the 64-byte line containing `addr` by the
    /// instruction at `pc`, starting at cycle `now`.
    pub fn load(&mut self, addr: u64, pc: u64, now: u64) -> AccessResult {
        self.loads += 1;
        let line = line_of(addr);
        if self.l1d.access(line) {
            // The line may be present (filled at request time) but still in
            // flight from DRAM: merge into the outstanding fill.
            if let Some(res) = self.check_inflight(line, now, self.config.l1d_latency) {
                return res;
            }
            return AccessResult {
                latency: self.config.l1d_latency,
                level: HitLevel::L1,
            };
        }
        // Train prefetchers on the L1-miss stream.
        self.train_prefetchers(line, pc);
        let result = self.miss_path(line, addr, now, true);
        self.issue_prefetches(now);
        result
    }

    /// A demand store to the line containing `addr`.
    ///
    /// Stores are write-allocate but their latency is absorbed by the
    /// store buffer: the returned latency is always the L1 latency, while
    /// any required fill proceeds in the background (and occupies DRAM
    /// banks).
    pub fn store(&mut self, addr: u64, pc: u64, now: u64) -> AccessResult {
        self.stores += 1;
        let line = line_of(addr);
        if !self.l1d.access(line) {
            self.train_prefetchers(line, pc);
            let _ = self.miss_path(line, addr, now, false);
            self.issue_prefetches(now);
        }
        AccessResult {
            latency: self.config.l1d_latency,
            level: HitLevel::L1,
        }
    }

    /// An instruction fetch of the line containing byte address `addr`.
    pub fn fetch(&mut self, addr: u64, now: u64) -> AccessResult {
        self.fetches += 1;
        let line = line_of(addr);
        if self.l1i.access(line) {
            if let Some(res) = self.check_inflight(line, now, self.config.l1i_latency) {
                return res;
            }
            return AccessResult {
                latency: self.config.l1i_latency,
                level: HitLevel::L1,
            };
        }
        if let Some(res) = self.check_inflight(line, now, self.config.l1i_latency) {
            let fill = self.l1i.fill_pf(line, 0);
            self.note_fill(fill);
            return res;
        }
        let out = self.llc.access_pf(line);
        if out.hit {
            if let Some(pf) = out.prefetch_src {
                self.credit_useful(pf, false);
            }
            let fill = self.l1i.fill_pf(line, 0);
            self.note_fill(fill);
            return AccessResult {
                latency: self.config.l1i_latency + self.config.llc_latency,
                level: HitLevel::Llc,
            };
        }
        let done = self.dram.request(addr, now + self.config.llc_latency);
        let fill = self.llc.fill_pf(line, 0);
        self.note_fill(fill);
        let fill = self.l1i.fill_pf(line, 0);
        self.note_fill(fill);
        self.inflight.insert(line, (done, HitLevel::Dram, 0));
        AccessResult {
            latency: done - now,
            level: HitLevel::Dram,
        }
    }

    /// Prefetches the instruction line containing `addr` into L1I (used by
    /// the FDIP frontend). No demand counters are touched: the LLC lookup
    /// lands in the prefetch probe/miss counters.
    pub fn prefetch_inst(&mut self, addr: u64, now: u64) {
        let line = line_of(addr);
        if self.l1i.probe(line) || self.inflight.contains_key(&line) {
            return;
        }
        if self.llc.access_prefetch(line) {
            let fill = self.l1i.fill_pf(line, PF_OTHER);
            self.note_fill(fill);
            let ready = now + self.config.l1i_latency + self.config.llc_latency;
            self.inflight.insert(line, (ready, HitLevel::Llc, PF_OTHER));
            return;
        }
        let done = self.dram.request(addr, now + self.config.llc_latency);
        let fill = self.llc.fill_pf(line, PF_OTHER);
        self.note_fill(fill);
        let fill = self.l1i.fill_pf(line, PF_OTHER);
        self.note_fill(fill);
        self.inflight.insert(line, (done, HitLevel::Dram, PF_OTHER));
        self.prefetches_issued += 1;
    }

    /// Prefetches the data line containing `addr` into the LLC (software
    /// or experiment-driven prefetch injection).
    pub fn prefetch_data(&mut self, addr: u64, now: u64) {
        let line = line_of(addr);
        if self.llc.probe(line) || self.inflight.contains_key(&line) {
            return;
        }
        let done = self.dram.request(addr, now + self.config.llc_latency);
        let fill = self.llc.fill_pf(line, PF_OTHER);
        self.note_fill(fill);
        self.inflight.insert(line, (done, HitLevel::Dram, PF_OTHER));
        self.prefetches_issued += 1;
    }

    fn check_inflight(&mut self, line: u64, now: u64, l1_lat: u64) -> Option<AccessResult> {
        if let Some(&(ready, level, pf)) = self.inflight.get(&line) {
            if ready > now {
                self.load_merges += 1;
                if pf != 0 {
                    // A demand merged into an in-flight prefetch: the
                    // prefetch was useful but late (it hid only part of
                    // the miss latency). Claim the tag so neither the
                    // cache hit nor the eviction recounts it.
                    self.credit_useful(pf, true);
                    self.inflight.insert(line, (ready, level, 0));
                    self.llc.claim_prefetch(line);
                }
                return Some(AccessResult {
                    latency: (ready - now).max(l1_lat),
                    level,
                });
            }
            self.inflight.remove(&line);
        }
        None
    }

    fn miss_path(&mut self, line: u64, addr: u64, now: u64, is_load: bool) -> AccessResult {
        if let Some(res) = self.check_inflight(line, now, self.config.l1d_latency) {
            let fill = self.l1d.fill_pf(line, 0);
            self.note_fill(fill);
            return res;
        }
        let out = self.llc.access_pf(line);
        if out.hit {
            if let Some(pf) = out.prefetch_src {
                // Timely useful prefetch: the demand found the line
                // resident in the LLC.
                self.credit_useful(pf, false);
            }
            let fill = self.l1d.fill_pf(line, 0);
            self.note_fill(fill);
            return AccessResult {
                latency: self.config.l1d_latency + self.config.llc_latency,
                level: HitLevel::Llc,
            };
        }
        if is_load {
            self.load_llc_misses += 1;
        }
        let done = self.dram.request(addr, now + self.config.llc_latency);
        let fill = self.llc.fill_pf(line, 0);
        self.note_fill(fill);
        let fill = self.l1d.fill_pf(line, 0);
        self.note_fill(fill);
        self.inflight.insert(line, (done, HitLevel::Dram, 0));
        for p in &mut self.prefetchers {
            p.on_fill(line);
        }
        AccessResult {
            latency: done - now,
            level: HitLevel::Dram,
        }
    }

    fn train_prefetchers(&mut self, line: u64, pc: u64) {
        self.scratch.clear();
        for (i, p) in self.prefetchers.iter_mut().enumerate() {
            self.unit_out.clear();
            p.on_access(line, pc, false, &mut self.unit_out);
            let src = i as u8 + 1;
            self.scratch.extend(self.unit_out.iter().map(|&l| (l, src)));
        }
        self.scratch.truncate(self.config.max_prefetches_per_access);
    }

    fn issue_prefetches(&mut self, now: u64) {
        // The candidates were collected by `train_prefetchers`.
        let candidates = std::mem::take(&mut self.scratch);
        for &(line, src) in &candidates {
            if self.llc.probe(line) || self.inflight.contains_key(&line) {
                continue;
            }
            let addr = line * LINE_BYTES;
            let done = self.dram.request(addr, now + self.config.llc_latency);
            let fill = self.llc.fill_pf(line, src);
            self.note_fill(fill);
            self.inflight.insert(line, (done, HitLevel::Dram, src));
            if let Some(slot) = Self::effect_slot(src) {
                self.effects[slot].issued += 1;
            }
            self.prefetches_issued += 1;
        }
        self.scratch = candidates;
        // Bound the MSHR map: drop long-completed fills occasionally.
        if self.inflight.len() > 4096 {
            self.inflight.retain(|_, (ready, _, _)| *ready > now);
        }
    }

    /// Number of in-flight (MSHR-style) fills currently tracked. The map
    /// self-bounds at 4096 entries; the simulator's invariant checker uses
    /// this to assert leak-freedom at drain.
    pub fn inflight_fills(&self) -> usize {
        self.inflight.len()
    }

    /// Number of tracked fills whose data was already ready at `now` —
    /// stale entries awaiting lazy cleanup. Anything beyond the lazy-sweep
    /// bound indicates a leak.
    pub fn stale_inflight_fills(&self, now: u64) -> usize {
        self.inflight
            .values()
            .filter(|&&(ready, _, _)| ready <= now)
            .count()
    }

    /// Serialises the full dynamic state — every cache level, DRAM, the
    /// configured prefetchers (with name checks), the per-unit
    /// effectiveness counters, the MSHR map and all counters — as a flat
    /// word vector. The MSHR map is emitted sorted by line address so the
    /// encoding is deterministic regardless of hash-map iteration order.
    pub fn snapshot_words(&self) -> Vec<u64> {
        use crate::wcodec::push_section;
        let mut w = vec![
            self.loads,
            self.stores,
            self.fetches,
            self.load_llc_misses,
            self.load_merges,
            self.prefetches_issued,
        ];
        push_section(&mut w, self.l1i.snapshot_words());
        push_section(&mut w, self.l1d.snapshot_words());
        push_section(&mut w, self.llc.snapshot_words());
        push_section(&mut w, self.dram.snapshot_words());
        w.push(self.prefetchers.len() as u64);
        for p in &self.prefetchers {
            w.push(name_hash(p.name()));
            push_section(&mut w, p.snapshot_words());
        }
        for e in &self.effects {
            w.extend_from_slice(&[e.issued, e.useful, e.late, e.polluting]);
        }
        let mut fills: Vec<(u64, InflightFill)> = self
            .inflight
            .iter()
            .map(|(&line, &fill)| (line, fill))
            .collect();
        fills.sort_unstable_by_key(|&(line, _)| line);
        w.push(fills.len() as u64);
        for (line, (ready, level, pf)) in fills {
            w.push(line);
            w.push(ready);
            w.push(match level {
                HitLevel::L1 => 0,
                HitLevel::Llc => 1,
                HitLevel::Dram => 2,
            });
            w.push(u64::from(pf));
        }
        w
    }

    /// Restores state captured by [`MemoryHierarchy::snapshot_words`] into
    /// a hierarchy built from the same configuration.
    ///
    /// # Errors
    ///
    /// Rejects geometry or prefetcher-selection mismatches and malformed
    /// input; the hierarchy should be discarded on error (state may be
    /// partial).
    pub fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
        let mut r = crate::wcodec::Reader::new(words, "hierarchy");
        self.loads = r.u64()?;
        self.stores = r.u64()?;
        self.fetches = r.u64()?;
        self.load_llc_misses = r.u64()?;
        self.load_merges = r.u64()?;
        self.prefetches_issued = r.u64()?;
        self.l1i.restore_words(r.section()?)?;
        self.l1d.restore_words(r.section()?)?;
        self.llc.restore_words(r.section()?)?;
        self.dram.restore_words(r.section()?)?;
        let n_pf = r.usize()?;
        if n_pf != self.prefetchers.len() {
            return Err(format!(
                "hierarchy snapshot: {n_pf} prefetchers, config has {} ({})",
                self.prefetchers.len(),
                self.config.prefetcher
            ));
        }
        for (i, p) in self.prefetchers.iter_mut().enumerate() {
            let hash = r.u64()?;
            if hash != name_hash(p.name()) {
                return Err(format!(
                    "hierarchy snapshot: prefetcher {i} is not `{}` \
                     (selection mismatch with config `{}`)",
                    p.name(),
                    self.config.prefetcher
                ));
            }
            p.restore_words(r.section()?)?;
        }
        for e in &mut self.effects {
            *e = PrefetchEffect {
                issued: r.u64()?,
                useful: r.u64()?,
                late: r.u64()?,
                polluting: r.u64()?,
            };
        }
        let n_fills = r.usize()?;
        self.inflight.clear();
        for _ in 0..n_fills {
            let line = r.u64()?;
            let ready = r.u64()?;
            let level = match r.u64()? {
                0 => HitLevel::L1,
                1 => HitLevel::Llc,
                2 => HitLevel::Dram,
                v => return Err(format!("hierarchy snapshot: bad hit level {v}")),
            };
            let pf = u8::try_from(r.u64()?)
                .map_err(|_| "hierarchy snapshot: fill source tag overflow".to_string())?;
            if self.inflight.insert(line, (ready, level, pf)).is_some() {
                return Err(format!("hierarchy snapshot: duplicate fill line {line:#x}"));
            }
        }
        self.scratch.clear();
        r.finish()
    }

    /// A snapshot of all counters.
    pub fn stats(&self) -> MemStats {
        MemStats {
            loads: self.loads,
            stores: self.stores,
            fetches: self.fetches,
            load_llc_misses: self.load_llc_misses,
            load_merges: self.load_merges,
            prefetches_issued: self.prefetches_issued,
            prefetch: self.effects,
            l1i: self.l1i.stats(),
            l1d: self.l1d.stats(),
            llc: self.llc.stats(),
            dram: self.dram.stats(),
        }
    }
}

impl std::fmt::Debug for MemoryHierarchy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryHierarchy")
            .field("config", &self.config)
            .field("prefetchers", &self.prefetcher_names())
            .field("inflight", &self.inflight.len())
            .field("loads", &self.loads)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_spec(spec: &str) -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig {
            prefetcher: PrefetcherSpec::new(spec).unwrap(),
            ..HierarchyConfig::skylake_like()
        })
    }

    fn no_prefetch() -> MemoryHierarchy {
        with_spec("none")
    }

    #[test]
    fn cold_load_goes_to_dram_then_hits_l1() {
        let mut m = no_prefetch();
        let r1 = m.load(0x100000, 1, 0);
        assert_eq!(r1.level, HitLevel::Dram);
        assert!(r1.latency > m.config().llc_latency);
        let r2 = m.load(0x100000, 1, r1.ready_at(0));
        assert_eq!(r2.level, HitLevel::L1);
        assert_eq!(r2.latency, m.config().l1d_latency);
    }

    #[test]
    fn llc_hit_after_l1_eviction() {
        let mut m = no_prefetch();
        // Fill L1D (32 KiB / 64 B = 512 lines) beyond capacity with one set.
        // Lines that alias to set 0 in L1 (64 sets): stride 64 lines.
        let base = 0x40_0000u64;
        let mut t = 0;
        for i in 0..16u64 {
            let r = m.load(base + i * 64 * 64 * 64, 1, t);
            t = r.ready_at(t) + 1;
        }
        // First line evicted from L1 (8 ways) but still in LLC.
        let r = m.load(base, 1, t);
        assert_eq!(r.level, HitLevel::Llc);
        assert_eq!(r.latency, m.config().l1d_latency + m.config().llc_latency);
    }

    #[test]
    fn inflight_merge_returns_partial_latency() {
        let mut m = no_prefetch();
        let r1 = m.load(0x200000, 1, 0);
        assert_eq!(r1.level, HitLevel::Dram);
        // A second load to the same line 10 cycles later must not pay the
        // full DRAM latency again, and must not hit L1 instantly: the line
        // is physically filled only at r1.ready_at(0).
        let merge = m.load(0x200000 + 8, 3, 10);
        assert_eq!(merge.level, HitLevel::Dram);
        assert_eq!(merge.latency, r1.latency - 10);
        assert_eq!(m.stats().load_merges, 1);
        assert_eq!(m.stats().load_llc_misses, 1);
        // After the fill lands, it is a plain L1 hit.
        let after = m.load(0x200000, 4, r1.ready_at(0));
        assert_eq!(after.level, HitLevel::L1);
    }

    #[test]
    fn store_latency_hidden_by_store_buffer() {
        let mut m = no_prefetch();
        let r = m.store(0x500000, 9, 0);
        assert_eq!(r.latency, m.config().l1d_latency);
        // But the line was allocated: next load hits.
        let r2 = m.load(0x500000, 9, 500);
        assert_eq!(r2.level, HitLevel::L1);
        assert_eq!(m.stats().stores, 1);
    }

    #[test]
    fn fetch_uses_l1i_latency() {
        let mut m = no_prefetch();
        let r1 = m.fetch(0x1000, 0);
        assert_eq!(r1.level, HitLevel::Dram);
        let r2 = m.fetch(0x1000, r1.ready_at(0));
        assert_eq!(r2.level, HitLevel::L1);
        assert_eq!(r2.latency, m.config().l1i_latency);
        assert_eq!(m.stats().fetches, 2);
    }

    #[test]
    fn inst_prefetch_hides_fetch_latency() {
        let mut m = no_prefetch();
        m.prefetch_inst(0x2000, 0);
        // After the prefetch completes, the demand fetch is an L1 hit.
        let r = m.fetch(0x2000, 1000);
        assert_eq!(r.level, HitLevel::L1);
    }

    #[test]
    fn inst_prefetch_probes_stay_out_of_demand_misses() {
        let mut m = no_prefetch();
        m.prefetch_inst(0x2000, 0);
        m.prefetch_inst(0x4000, 0);
        let s = m.stats();
        assert_eq!(s.llc.accesses, 0, "FDIP probes must not count as demand");
        assert_eq!(s.llc.misses, 0);
        assert_eq!(s.llc.prefetch_probes, 2);
        assert_eq!(s.llc.prefetch_misses, 2);
    }

    #[test]
    fn data_prefetch_turns_miss_into_llc_hit() {
        let mut m = no_prefetch();
        m.prefetch_data(0x700000, 0);
        let r = m.load(0x700000, 4, 1000);
        assert_eq!(r.level, HitLevel::Llc);
        assert_eq!(m.stats().prefetches_issued, 1);
        // Injected prefetches are not attributed to any registry unit.
        assert_eq!(m.stats().prefetch_totals(), PrefetchEffect::default());
    }

    #[test]
    fn stream_prefetcher_covers_sequential_misses() {
        let mut with_pf = with_spec("stream");
        let mut without = no_prefetch();
        let mut lat_pf = 0u64;
        let mut lat_no = 0u64;
        let mut t = 0u64;
        for i in 0..256u64 {
            let addr = 0x100_0000 + i * 64;
            lat_pf += with_pf.load(addr, 7, t).latency;
            lat_no += without.load(addr, 7, t).latency;
            t += 400; // enough time for prefetches to land
        }
        assert!(
            lat_pf < lat_no / 2,
            "stream prefetching should slash sequential miss latency: {lat_pf} vs {lat_no}"
        );
    }

    #[test]
    fn effectiveness_counters_track_a_covered_stream() {
        let mut m = with_spec("stream");
        let mut t = 0u64;
        for i in 0..256u64 {
            let _ = m.load(0x100_0000 + i * 64, 7, t).latency;
            t += 400;
        }
        let e = m.stats().prefetch[0];
        assert!(e.issued > 50, "stream should issue steadily: {e:?}");
        assert!(e.useful > 50, "covered stream means useful fills: {e:?}");
        assert!(e.useful <= e.issued, "conservation: {e:?}");
        assert!(e.late <= e.useful, "conservation: {e:?}");
        // Slot 1 is unconfigured and must stay silent.
        assert_eq!(m.stats().prefetch[1], PrefetchEffect::default());
    }

    #[test]
    fn late_prefetches_detected_on_fast_demand() {
        let mut m = with_spec("stream");
        // March with no time between accesses: prefetches cannot complete
        // before the next demand arrives, so useful fills are late merges.
        for i in 0..64u64 {
            m.load(0x100_0000 + i * 64, 7, 0);
        }
        let e = m.stats().prefetch[0];
        assert!(
            e.late > 0,
            "zero-latency marching must produce late merges: {e:?}"
        );
        assert!(
            m.stats().load_merges >= e.late,
            "late prefetches are a subset of merges"
        );
    }

    #[test]
    fn pollution_counted_when_unused_prefetches_evict() {
        // A small LLC and an aggressive stride stream that turns right
        // before consuming its prefetches.
        let mut m = MemoryHierarchy::new(HierarchyConfig {
            llc: CacheConfig::new(16 * 1024, 4, LINE_BYTES),
            prefetcher: PrefetcherSpec::new("stride:degree=8").unwrap(),
            max_prefetches_per_access: 8,
            ..HierarchyConfig::skylake_like()
        });
        let mut t = 0u64;
        // Phase 1: strided loads spraying prefetches.
        for i in 0..64u64 {
            m.load(0x10_0000 + i * 64 * 7, 0x40, t);
            t += 500;
        }
        // Phase 2: a dense unrelated working set that thrashes the LLC.
        for i in 0..2048u64 {
            m.load(0x900_0000 + i * 64, 0x99, t);
            t += 500;
        }
        let e = m.stats().prefetch[0];
        assert!(
            e.polluting > 0,
            "thrashing must evict unused prefetches: {e:?}"
        );
    }

    #[test]
    fn pointer_chase_defeats_prefetchers() {
        // Irregular (hashed) addresses: prefetching should not help, which
        // is exactly the gap CRISP targets.
        let mut with_pf = MemoryHierarchy::new(HierarchyConfig::skylake_like());
        let mut t = 0u64;
        let mut x = 987654321u64;
        let mut dram_hits = 0;
        for _ in 0..200 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let addr = (x >> 20) & 0x3FFF_FFC0;
            let r = with_pf.load(addr, 11, t);
            if r.level == HitLevel::Dram {
                dram_hits += 1;
            }
            t = r.ready_at(t);
        }
        assert!(
            dram_hits > 150,
            "irregular stream must stay DRAM-bound: {dram_hits}/200"
        );
    }

    #[test]
    fn stats_snapshot_consistency() {
        let mut m = no_prefetch();
        m.load(0x1000, 1, 0);
        m.store(0x2000, 2, 10);
        m.fetch(0x3000, 20);
        let s = m.stats();
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.fetches, 1);
        assert_eq!(s.l1d.accesses, 2);
        assert_eq!(s.l1i.accesses, 1);
        assert!(s.dram.requests >= 3);
    }

    #[test]
    fn hierarchy_snapshot_round_trip_mid_burst() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::skylake_like());
        let mut t = 0u64;
        for i in 0..64u64 {
            let r = m.load(0x100_0000 + i * 64, 7, t);
            t += r.latency / 2; // leave fills in flight
        }
        m.fetch(0x4000, t);
        m.store(0x9_0000, 3, t);
        let words = m.snapshot_words();
        let mut n = MemoryHierarchy::new(HierarchyConfig::skylake_like());
        n.restore_words(&words).unwrap();
        assert_eq!(n.snapshot_words(), words, "snapshot must round-trip");
        // Both copies now behave identically, merges included.
        let a = m.load(0x100_0000 + 63 * 64, 7, t + 1);
        let b = n.load(0x100_0000 + 63 * 64, 7, t + 1);
        assert_eq!(a, b);
        assert_eq!(m.snapshot_words(), n.snapshot_words());
    }

    #[test]
    fn zoo_hierarchies_snapshot_round_trip() {
        for spec in ["ghbw", "sisb", "spp", "spp:depth=4+stride"] {
            let mut m = with_spec(spec);
            let mut t = 0u64;
            for i in 0..96u64 {
                let r = m.load(0x100_0000 + i * 192, 7, t);
                t += r.latency / 2;
            }
            let words = m.snapshot_words();
            let mut n = with_spec(spec);
            n.restore_words(&words)
                .unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(n.snapshot_words(), words, "{spec} must round-trip");
            let a = m.load(0x100_0000, 7, t + 1);
            let b = n.load(0x100_0000, 7, t + 1);
            assert_eq!(a, b, "{spec}");
        }
    }

    #[test]
    fn hierarchy_snapshot_rejects_prefetcher_mismatch() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::skylake_like());
        m.load(0x1000, 1, 0);
        let words = m.snapshot_words();
        let mut other = no_prefetch();
        assert!(other.restore_words(&words).is_err(), "count mismatch");
        // Same unit count, different selection: the name check fires.
        let mut m = with_spec("sisb+spp");
        m.load(0x1000, 1, 0);
        let words = m.snapshot_words();
        let mut other = with_spec("spp+sisb");
        let err = other.restore_words(&words).unwrap_err();
        assert!(err.contains("selection mismatch"), "{err}");
    }

    #[test]
    fn invalid_spec_is_rejected_by_validate_and_try_new() {
        let cfg = HierarchyConfig {
            prefetcher: PrefetcherSpec::new("warpdrive").unwrap(),
            ..HierarchyConfig::skylake_like()
        };
        assert!(cfg.validate().unwrap_err().contains("warpdrive"));
        assert!(MemoryHierarchy::try_new(cfg, &PrefetcherRegistry::builtin()).is_err());
    }

    #[test]
    fn ghb_prefetcher_covers_strided_misses() {
        let mut with_pf = with_spec("ghb");
        let mut without = no_prefetch();
        let mut lat_pf = 0u64;
        let mut lat_no = 0u64;
        let mut t = 0u64;
        // Stride of 3 lines: too wide for L1 spatial locality, easy for
        // delta correlation.
        for i in 0..256u64 {
            let addr = 0x200_0000 + i * 192;
            lat_pf += with_pf.load(addr, 9, t).latency;
            lat_no += without.load(addr, 9, t).latency;
            t += 400;
        }
        assert!(
            lat_pf < lat_no * 3 / 4,
            "GHB should cover a strided miss stream: {lat_pf} vs {lat_no}"
        );
    }

    #[test]
    fn zoo_prefetchers_cover_their_native_patterns() {
        // ghbw and spp on a strided stream; sisb on a repeating pointer
        // chain. Each must beat the no-prefetch hierarchy.
        for (spec, addrs) in [
            (
                "ghbw",
                (0..256u64)
                    .map(|i| 0x300_0000 + i * 192)
                    .collect::<Vec<_>>(),
            ),
            (
                "spp",
                (0..256u64)
                    .map(|i| 0x400_0000 + (i / 32) * 4096 + (i % 32) * 128)
                    .collect(),
            ),
            ("sisb:tu=4096,map=65536", {
                // A pointer chain of 32 Ki distinct lines — twice the LLC —
                // so revisits miss all the way to DRAM without prefetching.
                // Multiplying by an odd constant mod 2^15 is a bijection,
                // so every chain element is unique.
                let chain: Vec<u64> = (0..32768u64)
                    .map(|i| 0x500_0000 / 64 + ((i * 2654435761) % 32768))
                    .map(|l| l * 64)
                    .collect();
                (0..3).flat_map(|_| chain.clone()).collect()
            }),
        ] {
            let mut with_pf = with_spec(spec);
            let mut without = no_prefetch();
            let (mut lat_pf, mut lat_no, mut t) = (0u64, 0u64, 0u64);
            for &addr in &addrs {
                lat_pf += with_pf.load(addr, 9, t).latency;
                lat_no += without.load(addr, 9, t).latency;
                t += 400;
            }
            assert!(
                lat_pf < lat_no,
                "{spec} should beat no-prefetch on its native pattern: {lat_pf} vs {lat_no}"
            );
            let e = with_pf.stats().prefetch[0];
            assert!(e.useful > 0, "{spec} should have useful prefetches: {e:?}");
            assert!(e.useful <= e.issued, "{spec} conservation: {e:?}");
        }
    }
}
