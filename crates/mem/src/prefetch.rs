/// A hardware data prefetcher observing the demand-access stream below L1.
///
/// Implementations append candidate *line* addresses to `out`; the
/// hierarchy issues them as prefetch fills into the LLC (and optionally
/// L1). Every implementor must also be checkpointable: the word-vector
/// codec pair keeps `--audit-restore` byte-identity working for any
/// prefetcher the registry can build.
pub trait Prefetcher {
    /// Observes a demand access to `line` (a line address) by the load or
    /// store at `pc`. `l1_hit` tells whether L1 already had the line
    /// (prefetchers typically train on the miss stream only).
    fn on_access(&mut self, line: u64, pc: u64, l1_hit: bool, out: &mut Vec<u64>);

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Observes a completed demand fill of `line` (default no-op). BOP
    /// trains its recent-requests table here; most prefetchers ignore it.
    fn on_fill(&mut self, _line: u64) {}

    /// Serialises the prefetcher's dynamic state as a word vector.
    fn snapshot_words(&self) -> Vec<u64>;

    /// Restores state captured by [`Prefetcher::snapshot_words`] into an
    /// identically-parameterised instance.
    ///
    /// # Errors
    ///
    /// Rejects parameter mismatches and malformed input.
    fn restore_words(&mut self, words: &[u64]) -> Result<(), String>;
}

/// A classic multi-stream sequential prefetcher.
///
/// Tracks up to `max_streams` active streams; a miss within `window` lines
/// ahead of a stream head advances the stream and prefetches `degree`
/// lines ahead. New miss addresses allocate streams (LRU replacement).
#[derive(Clone, Debug)]
pub struct StreamPrefetcher {
    streams: Vec<StreamEntry>,
    max_streams: usize,
    window: u64,
    degree: u64,
    stamp: u64,
}

#[derive(Clone, Copy, Debug)]
struct StreamEntry {
    head: u64,
    dir: i64,
    confidence: u8,
    stamp: u64,
}

impl StreamPrefetcher {
    /// Creates a stream prefetcher; Table 1's "Stream" companion to BOP.
    pub fn new(max_streams: usize, window: u64, degree: u64) -> StreamPrefetcher {
        assert!(max_streams > 0 && degree > 0);
        StreamPrefetcher {
            streams: Vec::with_capacity(max_streams),
            max_streams,
            window,
            degree,
            stamp: 0,
        }
    }

    /// Serialises the tracked streams and LRU stamp as a word vector.
    pub fn snapshot_words(&self) -> Vec<u64> {
        let mut w = vec![self.stamp, self.streams.len() as u64];
        for s in &self.streams {
            w.push(s.head);
            w.push(s.dir as u64);
            w.push(u64::from(s.confidence));
            w.push(s.stamp);
        }
        w
    }

    /// Restores state captured by [`StreamPrefetcher::snapshot_words`]
    /// into an identically-parameterised prefetcher.
    ///
    /// # Errors
    ///
    /// Rejects more streams than this instance can track and malformed
    /// input.
    pub fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
        let mut r = crate::wcodec::Reader::new(words, "stream-prefetcher");
        let stamp = r.u64()?;
        let n = r.usize()?;
        if n > self.max_streams {
            return Err(format!(
                "stream-prefetcher snapshot: {n} streams, capacity {}",
                self.max_streams
            ));
        }
        self.stamp = stamp;
        self.streams.clear();
        for _ in 0..n {
            self.streams.push(StreamEntry {
                head: r.u64()?,
                dir: r.i64()?,
                confidence: r.u8()?,
                stamp: r.u64()?,
            });
        }
        r.finish()
    }
}

impl Prefetcher for StreamPrefetcher {
    fn on_access(&mut self, line: u64, _pc: u64, l1_hit: bool, out: &mut Vec<u64>) {
        if l1_hit {
            return;
        }
        self.stamp += 1;
        let stamp = self.stamp;
        // Try to match an existing stream in either direction.
        for s in &mut self.streams {
            let delta = line as i64 - s.head as i64;
            let in_window = if s.dir >= 0 {
                delta > 0 && delta <= self.window as i64
            } else {
                delta < 0 && -delta <= self.window as i64
            };
            if in_window || (s.confidence == 0 && delta.unsigned_abs() <= self.window) {
                if s.confidence == 0 {
                    s.dir = if delta >= 0 { 1 } else { -1 };
                }
                s.head = line;
                s.confidence = (s.confidence + 1).min(3);
                s.stamp = stamp;
                if s.confidence >= 2 {
                    for k in 1..=self.degree {
                        let next = line as i64 + s.dir * k as i64;
                        if next >= 0 {
                            out.push(next as u64);
                        }
                    }
                }
                return;
            }
        }
        // Allocate a new stream.
        let entry = StreamEntry {
            head: line,
            dir: 1,
            confidence: 0,
            stamp,
        };
        if self.streams.len() < self.max_streams {
            self.streams.push(entry);
        } else if let Some(victim) = self.streams.iter_mut().min_by_key(|s| s.stamp) {
            *victim = entry;
        }
    }

    fn name(&self) -> &'static str {
        "stream"
    }

    fn snapshot_words(&self) -> Vec<u64> {
        StreamPrefetcher::snapshot_words(self)
    }

    fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
        StreamPrefetcher::restore_words(self, words)
    }
}

/// A per-PC stride prefetcher (reference predictor table).
#[derive(Clone, Debug)]
pub struct StridePrefetcher {
    table: Vec<StrideEntry>,
    mask: u64,
    degree: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct StrideEntry {
    pc_tag: u64,
    last: u64,
    stride: i64,
    confidence: u8,
}

impl StridePrefetcher {
    /// Creates a stride prefetcher with `entries` table slots (power of
    /// two) issuing `degree` prefetches ahead.
    pub fn new(entries: usize, degree: u64) -> StridePrefetcher {
        assert!(entries.is_power_of_two());
        StridePrefetcher {
            table: vec![StrideEntry::default(); entries],
            mask: entries as u64 - 1,
            degree,
        }
    }

    /// Serialises the reference-prediction table as a word vector.
    pub fn snapshot_words(&self) -> Vec<u64> {
        let mut w = vec![self.table.len() as u64];
        for e in &self.table {
            w.push(e.pc_tag);
            w.push(e.last);
            w.push(e.stride as u64);
            w.push(u64::from(e.confidence));
        }
        w
    }

    /// Restores state captured by [`StridePrefetcher::snapshot_words`]
    /// into an identically-sized table.
    ///
    /// # Errors
    ///
    /// Rejects table-size mismatches and malformed input.
    pub fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
        let mut r = crate::wcodec::Reader::new(words, "stride-prefetcher");
        let n = r.usize()?;
        if n != self.table.len() {
            return Err(format!(
                "stride-prefetcher snapshot: {n} entries, expected {}",
                self.table.len()
            ));
        }
        for e in &mut self.table {
            *e = StrideEntry {
                pc_tag: r.u64()?,
                last: r.u64()?,
                stride: r.i64()?,
                confidence: r.u8()?,
            };
        }
        r.finish()
    }
}

impl Prefetcher for StridePrefetcher {
    fn on_access(&mut self, line: u64, pc: u64, _l1_hit: bool, out: &mut Vec<u64>) {
        let e = &mut self.table[(pc & self.mask) as usize];
        if e.pc_tag != pc {
            *e = StrideEntry {
                pc_tag: pc,
                last: line,
                stride: 0,
                confidence: 0,
            };
            return;
        }
        let stride = line as i64 - e.last as i64;
        if stride != 0 && stride == e.stride {
            e.confidence = (e.confidence + 1).min(3);
        } else {
            e.confidence = e.confidence.saturating_sub(1);
            e.stride = stride;
        }
        e.last = line;
        if e.confidence >= 2 && e.stride != 0 {
            for k in 1..=self.degree {
                let next = line as i64 + e.stride * k as i64;
                if next >= 0 {
                    out.push(next as u64);
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "stride"
    }

    fn snapshot_words(&self) -> Vec<u64> {
        StridePrefetcher::snapshot_words(self)
    }

    fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
        StridePrefetcher::restore_words(self, words)
    }
}

/// The Best-Offset prefetcher (Michaud, HPCA 2016) — Table 1's "BOP".
///
/// BOP learns one global best offset `D` by testing candidate offsets
/// against a recent-requests (RR) table: if line `X - d` was recently
/// filled when `X` is demanded, offset `d` earns a point. At the end of a
/// scoring round the best-scoring offset becomes the prefetch offset; a
/// weak best score turns prefetching off (the original's "BAD_SCORE"
/// throttle).
#[derive(Clone, Debug)]
pub struct Bop {
    offsets: Vec<i64>,
    scores: Vec<u32>,
    test_idx: usize,
    round: u32,
    best_offset: i64,
    active: bool,
    rr: Vec<u64>,
    rr_mask: u64,
    max_rounds: u32,
    score_max: u32,
    bad_score: u32,
}

impl Bop {
    /// The candidate offset list of the original design, truncated to 64
    /// lines: every integer of the form 2^i · 3^j · 5^k.
    pub fn default_offsets() -> Vec<i64> {
        let mut v: Vec<i64> = (1..=64)
            .filter(|&n| {
                let mut m = n;
                for f in [2, 3, 5] {
                    while m % f == 0 {
                        m /= f;
                    }
                }
                m == 1
            })
            .collect();
        v.sort_unstable();
        v
    }

    /// Creates a BOP with the standard parameters (256-entry RR table,
    /// SCORE_MAX 31, ROUND_MAX 100, BAD_SCORE 1).
    pub fn new() -> Bop {
        Bop::with_params(Bop::default_offsets(), 256, 31, 100, 1)
    }

    /// Fully parameterised constructor.
    ///
    /// # Panics
    ///
    /// Panics if `rr_entries` is not a power of two or `offsets` is empty.
    pub fn with_params(
        offsets: Vec<i64>,
        rr_entries: usize,
        score_max: u32,
        max_rounds: u32,
        bad_score: u32,
    ) -> Bop {
        assert!(rr_entries.is_power_of_two());
        assert!(!offsets.is_empty());
        let n = offsets.len();
        Bop {
            offsets,
            scores: vec![0; n],
            test_idx: 0,
            round: 0,
            best_offset: 1,
            active: true,
            rr: vec![u64::MAX; rr_entries],
            rr_mask: rr_entries as u64 - 1,
            max_rounds,
            score_max,
            bad_score,
        }
    }

    /// The currently selected prefetch offset (lines).
    pub fn best_offset(&self) -> i64 {
        self.best_offset
    }

    /// Whether prefetching is currently enabled (best score was above the
    /// bad-score threshold in the last learning phase).
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Records a completed fill of `line` into the RR table. The hierarchy
    /// calls this for demand fills (with the base address `line`), giving
    /// the learner its timeliness signal.
    pub fn on_fill(&mut self, line: u64) {
        let idx = (line ^ (line >> 8)) & self.rr_mask;
        self.rr[idx as usize] = line;
    }

    fn rr_contains(&self, line: u64) -> bool {
        let idx = (line ^ (line >> 8)) & self.rr_mask;
        self.rr[idx as usize] == line
    }

    /// Serialises the learner state (scores, round position, selected
    /// offset, RR table) as a word vector. The candidate-offset list is a
    /// construction parameter and is captured only as a consistency check.
    pub fn snapshot_words(&self) -> Vec<u64> {
        let mut w = vec![
            self.test_idx as u64,
            u64::from(self.round),
            self.best_offset as u64,
            u64::from(self.active),
            self.scores.len() as u64,
        ];
        w.extend(self.scores.iter().map(|&s| u64::from(s)));
        w.push(self.rr.len() as u64);
        w.extend_from_slice(&self.rr);
        w
    }

    /// Restores state captured by [`Bop::snapshot_words`] into an
    /// identically-parameterised learner.
    ///
    /// # Errors
    ///
    /// Rejects score/RR-table size mismatches and malformed input.
    pub fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
        let mut r = crate::wcodec::Reader::new(words, "bop");
        let test_idx = r.usize()?;
        let round = u32::try_from(r.u64()?).map_err(|_| "bop snapshot: round overflow")?;
        let best_offset = r.i64()?;
        let active = r.bool()?;
        let n_scores = r.usize()?;
        if n_scores != self.scores.len() || test_idx >= n_scores {
            return Err(format!(
                "bop snapshot: {n_scores} scores / test_idx {test_idx}, expected {} candidates",
                self.scores.len()
            ));
        }
        for s in &mut self.scores {
            *s = u32::try_from(r.u64()?).map_err(|_| "bop snapshot: score overflow")?;
        }
        let n_rr = r.usize()?;
        if n_rr != self.rr.len() {
            return Err(format!(
                "bop snapshot: {n_rr} RR entries, expected {}",
                self.rr.len()
            ));
        }
        for e in &mut self.rr {
            *e = r.u64()?;
        }
        self.test_idx = test_idx;
        self.round = round;
        self.best_offset = best_offset;
        self.active = active;
        r.finish()
    }

    fn finish_round(&mut self) {
        let (best_i, &best_s) = self
            .scores
            .iter()
            .enumerate()
            .max_by_key(|&(_, s)| *s)
            .expect("non-empty offsets");
        self.best_offset = self.offsets[best_i];
        self.active = best_s > self.bad_score;
        self.scores.iter_mut().for_each(|s| *s = 0);
        self.round = 0;
        self.test_idx = 0;
    }
}

impl Default for Bop {
    fn default() -> Bop {
        Bop::new()
    }
}

impl Prefetcher for Bop {
    fn on_access(&mut self, line: u64, _pc: u64, l1_hit: bool, out: &mut Vec<u64>) {
        if l1_hit {
            return;
        }
        // Learning: test the next candidate offset against the RR table.
        let d = self.offsets[self.test_idx];
        let base = line as i64 - d;
        if base >= 0 && self.rr_contains(base as u64) {
            self.scores[self.test_idx] += 1;
            if self.scores[self.test_idx] >= self.score_max {
                self.finish_round();
            }
        }
        if self.round > 0 || self.test_idx + 1 < self.offsets.len() {
            self.test_idx += 1;
            if self.test_idx == self.offsets.len() {
                self.test_idx = 0;
                self.round += 1;
                if self.round >= self.max_rounds {
                    self.finish_round();
                }
            }
        } else {
            self.test_idx += 1;
            if self.test_idx == self.offsets.len() {
                self.test_idx = 0;
                self.round += 1;
            }
        }
        // Prefetch with the current best offset.
        if self.active {
            let target = line as i64 + self.best_offset;
            if target >= 0 {
                out.push(target as u64);
            }
        }
    }

    fn name(&self) -> &'static str {
        "bop"
    }

    fn on_fill(&mut self, line: u64) {
        Bop::on_fill(self, line);
    }

    fn snapshot_words(&self) -> Vec<u64> {
        Bop::snapshot_words(self)
    }

    fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
        Bop::restore_words(self, words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_detects_ascending_sequence() {
        let mut p = StreamPrefetcher::new(4, 4, 2);
        let mut out = Vec::new();
        for line in 100..110u64 {
            out.clear();
            p.on_access(line, 0, false, &mut out);
        }
        assert_eq!(out, vec![110, 111]);
    }

    #[test]
    fn stream_detects_descending_sequence() {
        let mut p = StreamPrefetcher::new(4, 4, 2);
        let mut out = Vec::new();
        for line in (50..60u64).rev() {
            out.clear();
            p.on_access(line, 0, false, &mut out);
        }
        assert_eq!(out, vec![49, 48]);
    }

    #[test]
    fn stream_ignores_l1_hits() {
        let mut p = StreamPrefetcher::new(4, 4, 2);
        let mut out = Vec::new();
        for line in 0..10u64 {
            p.on_access(line, 0, true, &mut out);
        }
        assert!(out.is_empty());
    }

    #[test]
    fn stream_tracks_multiple_streams() {
        let mut p = StreamPrefetcher::new(4, 4, 1);
        let mut out = Vec::new();
        for i in 0..6u64 {
            p.on_access(1000 + i, 0, false, &mut out);
            p.on_access(9000 + i, 0, false, &mut out);
        }
        out.clear();
        p.on_access(1006, 0, false, &mut out);
        p.on_access(9006, 0, false, &mut out);
        assert_eq!(out, vec![1007, 9007]);
    }

    #[test]
    fn stride_learns_constant_stride_per_pc() {
        let mut p = StridePrefetcher::new(64, 2);
        let mut out = Vec::new();
        for i in 0..6u64 {
            out.clear();
            p.on_access(10 + 3 * i, 0x40, false, &mut out);
        }
        assert_eq!(out, vec![28, 31]);
    }

    #[test]
    fn stride_resets_on_pc_conflict() {
        let mut p = StridePrefetcher::new(1, 2);
        let mut out = Vec::new();
        p.on_access(0, 0x1, false, &mut out);
        p.on_access(100, 0x2, false, &mut out); // evicts tag 0x1
        p.on_access(3, 0x1, false, &mut out); // fresh entry, no prefetch
        assert!(out.is_empty());
    }

    #[test]
    fn stride_irregular_pattern_stays_quiet() {
        let mut p = StridePrefetcher::new(64, 2);
        let mut out = Vec::new();
        for &line in &[5u64, 99, 3, 1000, 42, 7] {
            p.on_access(line, 0x40, false, &mut out);
        }
        assert!(out.is_empty(), "no confident stride should emerge");
    }

    #[test]
    fn bop_offset_list_is_235_smooth() {
        let offs = Bop::default_offsets();
        assert!(offs.contains(&1));
        assert!(offs.contains(&8));
        assert!(offs.contains(&15));
        assert!(!offs.contains(&7));
        assert!(!offs.contains(&14));
        assert!(offs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn bop_learns_dominant_offset() {
        let mut p = Bop::new();
        let mut out = Vec::new();
        // Access stream with constant stride 4 lines; fills lag behind.
        let mut line = 1000u64;
        for _ in 0..3000 {
            out.clear();
            p.on_access(line, 0, false, &mut out);
            p.on_fill(line);
            line += 4;
        }
        assert!(p.is_active());
        assert_eq!(p.best_offset(), 4);
    }

    #[test]
    fn bop_goes_inactive_on_random_stream() {
        let mut p = Bop::with_params(Bop::default_offsets(), 256, 31, 20, 1);
        let mut out = Vec::new();
        let mut x = 123456789u64;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let line = x >> 40;
            out.clear();
            p.on_access(line, 0, false, &mut out);
            p.on_fill(line);
        }
        assert!(!p.is_active(), "random stream should disable BOP");
    }

    #[test]
    fn bop_emits_prefetch_with_best_offset() {
        let mut p = Bop::new();
        let mut out = Vec::new();
        p.on_access(100, 0, false, &mut out);
        // Initial best offset is 1 and active.
        assert_eq!(out, vec![101]);
    }

    #[test]
    fn stream_snapshot_round_trip() {
        let mut p = StreamPrefetcher::new(4, 4, 2);
        let mut out = Vec::new();
        for line in 100..110u64 {
            p.on_access(line, 0, false, &mut out);
        }
        let words = p.snapshot_words();
        let mut q = StreamPrefetcher::new(4, 4, 2);
        q.restore_words(&words).unwrap();
        assert_eq!(q.snapshot_words(), words);
        // Future behaviour is identical.
        let (mut a, mut b) = (Vec::new(), Vec::new());
        p.on_access(110, 0, false, &mut a);
        q.on_access(110, 0, false, &mut b);
        assert_eq!(a, b);
        // Too many streams for a smaller instance is rejected.
        let mut tiny = StreamPrefetcher::new(1, 4, 2);
        let mut big = StreamPrefetcher::new(4, 4, 2);
        for base in [0u64, 1000, 2000] {
            big.on_access(base, 0, false, &mut out);
        }
        assert!(tiny.restore_words(&big.snapshot_words()).is_err());
    }

    #[test]
    fn stride_snapshot_round_trip() {
        let mut p = StridePrefetcher::new(64, 2);
        let mut out = Vec::new();
        for i in 0..6u64 {
            p.on_access(10 + 3 * i, 0x40, false, &mut out);
        }
        let words = p.snapshot_words();
        let mut q = StridePrefetcher::new(64, 2);
        q.restore_words(&words).unwrap();
        assert_eq!(q.snapshot_words(), words);
        let mut wrong = StridePrefetcher::new(32, 2);
        assert!(wrong.restore_words(&words).is_err());
    }

    #[test]
    fn bop_snapshot_round_trip() {
        let mut p = Bop::new();
        let mut out = Vec::new();
        let mut line = 1000u64;
        for _ in 0..500 {
            out.clear();
            p.on_access(line, 0, false, &mut out);
            p.on_fill(line);
            line += 4;
        }
        let words = p.snapshot_words();
        let mut q = Bop::new();
        q.restore_words(&words).unwrap();
        assert_eq!(q.snapshot_words(), words);
        assert_eq!(q.best_offset(), p.best_offset());
        assert_eq!(q.is_active(), p.is_active());
        let mut wrong = Bop::with_params(vec![1, 2], 256, 31, 100, 1);
        assert!(wrong.restore_words(&words).is_err());
    }
}

/// A Global History Buffer (GHB) delta-correlation prefetcher
/// (Nesbit & Smith, HPCA 2004) — the third prefetcher the paper's
/// methodology section mentions evaluating.
///
/// A FIFO of recent miss line addresses is threaded per *index* (here the
/// load PC) through linked pointers; on each miss the last two deltas are
/// matched against history and the following deltas are prefetched.
#[derive(Clone, Debug)]
pub struct Ghb {
    /// Circular global history of (line, previous-entry-with-same-index).
    buffer: Vec<(u64, Option<usize>)>,
    head: usize,
    filled: bool,
    /// Index table: pc -> most recent GHB entry.
    index: Vec<Option<(u64, usize)>>,
    index_mask: u64,
    degree: usize,
}

impl Ghb {
    /// Creates a GHB with `entries` history slots and an `index_entries`
    /// PC-index table, prefetching `degree` deltas ahead.
    ///
    /// # Panics
    ///
    /// Panics if `index_entries` is not a power of two or sizes are zero.
    pub fn new(entries: usize, index_entries: usize, degree: usize) -> Ghb {
        assert!(entries > 0 && degree > 0);
        assert!(index_entries.is_power_of_two());
        Ghb {
            buffer: vec![(0, None); entries],
            head: 0,
            filled: false,
            index: vec![None; index_entries],
            index_mask: index_entries as u64 - 1,
            degree,
        }
    }

    /// Serialises the history ring, link pointers and PC index table as a
    /// word vector.
    pub fn snapshot_words(&self) -> Vec<u64> {
        let mut w = vec![
            self.head as u64,
            u64::from(self.filled),
            self.buffer.len() as u64,
        ];
        for &(line, prev) in &self.buffer {
            w.push(line);
            match prev {
                Some(i) => {
                    w.push(1);
                    w.push(i as u64);
                }
                None => {
                    w.push(0);
                    w.push(0);
                }
            }
        }
        w.push(self.index.len() as u64);
        for e in &self.index {
            match e {
                Some((tag, at)) => {
                    w.push(1);
                    w.push(*tag);
                    w.push(*at as u64);
                }
                None => {
                    w.push(0);
                    w.push(0);
                    w.push(0);
                }
            }
        }
        w
    }

    /// Restores state captured by [`Ghb::snapshot_words`] into an
    /// identically-sized GHB.
    ///
    /// # Errors
    ///
    /// Rejects size mismatches, out-of-range links and malformed input.
    pub fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
        let mut r = crate::wcodec::Reader::new(words, "ghb");
        let head = r.usize()?;
        let filled = r.bool()?;
        let n_buf = r.usize()?;
        if n_buf != self.buffer.len() || head >= n_buf {
            return Err(format!(
                "ghb snapshot: {n_buf} buffer slots / head {head}, expected {}",
                self.buffer.len()
            ));
        }
        let mut buffer = Vec::with_capacity(n_buf);
        for _ in 0..n_buf {
            let line = r.u64()?;
            let present = r.bool()?;
            let at = r.usize()?;
            if present && at >= n_buf {
                return Err(format!("ghb snapshot: link {at} out of range"));
            }
            buffer.push((line, present.then_some(at)));
        }
        let n_idx = r.usize()?;
        if n_idx != self.index.len() {
            return Err(format!(
                "ghb snapshot: {n_idx} index slots, expected {}",
                self.index.len()
            ));
        }
        let mut index = Vec::with_capacity(n_idx);
        for _ in 0..n_idx {
            let present = r.bool()?;
            let tag = r.u64()?;
            let at = r.usize()?;
            if present && at >= n_buf {
                return Err(format!("ghb snapshot: index link {at} out of range"));
            }
            index.push(present.then_some((tag, at)));
        }
        r.finish()?;
        self.head = head;
        self.filled = filled;
        self.buffer = buffer;
        self.index = index;
        Ok(())
    }

    /// Walks the per-PC chain from `start`, newest first, yielding line
    /// addresses (bounded by the buffer size and chain validity).
    fn chain(&self, start: usize) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cur = Some(start);
        let mut guard = 0;
        while let Some(i) = cur {
            out.push(self.buffer[i].0);
            cur = self.buffer[i].1;
            guard += 1;
            if guard >= self.buffer.len() {
                break;
            }
        }
        out
    }
}

impl Prefetcher for Ghb {
    fn on_access(&mut self, line: u64, pc: u64, l1_hit: bool, out: &mut Vec<u64>) {
        if l1_hit {
            return;
        }
        let slot = (pc & self.index_mask) as usize;
        // Link the new entry into the pc's chain, invalidating stale links
        // (an entry is stale once the ring has lapped it).
        let prev = match self.index[slot] {
            Some((tag, at)) if tag == pc => Some(at),
            _ => None,
        };
        self.buffer[self.head] = (line, prev);
        self.index[slot] = Some((pc, self.head));
        let inserted = self.head;
        self.head = (self.head + 1) % self.buffer.len();
        if self.head == 0 {
            self.filled = true;
        }
        let _ = self.filled;

        // Delta correlation: chain = [line, a, b, c, ...] newest-first.
        let chain = self.chain(inserted);
        if chain.len() < 3 {
            return;
        }
        let d1 = chain[0].wrapping_sub(chain[1]) as i64;
        let d2 = chain[1].wrapping_sub(chain[2]) as i64;
        // Find the same (d2, d1) pair earlier in history; replay what
        // followed it.
        for w in 2..chain.len().saturating_sub(1) {
            let e1 = chain[w - 1].wrapping_sub(chain[w]) as i64;
            let e2 = chain[w].wrapping_sub(chain[w + 1]) as i64;
            if e1 == d1 && e2 == d2 {
                // Replay deltas moving toward the present.
                let mut next = chain[0] as i64;
                for k in (0..w.saturating_sub(1)).rev() {
                    let d = chain[k].wrapping_sub(chain[k + 1]) as i64;
                    next += d;
                    if next >= 0 {
                        out.push(next as u64);
                    }
                    if out.len() >= self.degree {
                        return;
                    }
                }
                return;
            }
        }
    }

    fn name(&self) -> &'static str {
        "ghb"
    }

    fn snapshot_words(&self) -> Vec<u64> {
        Ghb::snapshot_words(self)
    }

    fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
        Ghb::restore_words(self, words)
    }
}

#[cfg(test)]
mod ghb_tests {
    use super::*;

    #[test]
    fn constant_stride_is_replayed() {
        let mut g = Ghb::new(256, 64, 4);
        let mut out = Vec::new();
        for i in 0..12u64 {
            out.clear();
            g.on_access(100 + 7 * i, 0x40, false, &mut out);
        }
        assert!(
            out.contains(&(100 + 7 * 12)),
            "stride-7 continuation expected, got {out:?}"
        );
    }

    #[test]
    fn repeating_delta_pattern_is_learned() {
        // Deltas +3, +5 alternating: classic delta correlation.
        let mut g = Ghb::new(256, 64, 2);
        let mut line = 1000u64;
        let mut out = Vec::new();
        let deltas = [3u64, 5];
        for i in 0..20 {
            out.clear();
            g.on_access(line, 0x88, false, &mut out);
            line += deltas[i % 2];
        }
        // After the last access the next delta in the pattern is known.
        assert!(!out.is_empty(), "pattern should be recognised");
    }

    #[test]
    fn random_stream_stays_mostly_quiet() {
        let mut g = Ghb::new(128, 64, 4);
        let mut out_total = 0;
        let mut x = 0x1234_5678u64;
        let mut out = Vec::new();
        for _ in 0..200 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            out.clear();
            g.on_access(x >> 33, 0x10, false, &mut out);
            out_total += out.len();
        }
        assert!(
            out_total < 60,
            "random stream should rarely match: {out_total}"
        );
    }

    #[test]
    fn l1_hits_are_ignored() {
        let mut g = Ghb::new(64, 16, 2);
        let mut out = Vec::new();
        for i in 0..10u64 {
            g.on_access(i, 0, true, &mut out);
        }
        assert!(out.is_empty());
    }

    #[test]
    fn ghb_snapshot_round_trip() {
        let mut g = Ghb::new(128, 64, 4);
        let mut out = Vec::new();
        for i in 0..40u64 {
            g.on_access(100 + 7 * i, 0x40, false, &mut out);
            g.on_access(9000 + 3 * i, 0x88, false, &mut out);
        }
        let words = g.snapshot_words();
        let mut h = Ghb::new(128, 64, 4);
        h.restore_words(&words).unwrap();
        assert_eq!(h.snapshot_words(), words);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        g.on_access(100 + 7 * 40, 0x40, false, &mut a);
        h.on_access(100 + 7 * 40, 0x40, false, &mut b);
        assert_eq!(a, b);
        let mut wrong = Ghb::new(64, 64, 4);
        assert!(wrong.restore_words(&words).is_err());
    }

    #[test]
    fn distinct_pcs_use_distinct_chains() {
        let mut g = Ghb::new(256, 64, 2);
        let mut out = Vec::new();
        for i in 0..10u64 {
            g.on_access(1000 + 4 * i, 0x1, false, &mut out);
            g.on_access(9000 + 9 * i, 0x2, false, &mut out);
        }
        out.clear();
        g.on_access(1000 + 4 * 10, 0x1, false, &mut out);
        assert!(
            out.iter().all(|&l| l < 5000),
            "chains must not mix: {out:?}"
        );
    }
}
