//! Minimal word-vector decode helper shared by the snapshot codecs.
//!
//! Snapshots across the workspace are flat `Vec<u64>` encodings (the
//! binary container, CRCs and fingerprints live in `crisp-harness`); this
//! cursor centralises bounds checking and context-tagged error messages.

/// A checked cursor over a `&[u64]` snapshot.
pub(crate) struct Reader<'a> {
    words: &'a [u64],
    pos: usize,
    ctx: &'static str,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(words: &'a [u64], ctx: &'static str) -> Reader<'a> {
        Reader { words, pos: 0, ctx }
    }

    pub(crate) fn u64(&mut self) -> Result<u64, String> {
        let v = self
            .words
            .get(self.pos)
            .copied()
            .ok_or_else(|| format!("{} snapshot: truncated at word {}", self.ctx, self.pos))?;
        self.pos += 1;
        Ok(v)
    }

    pub(crate) fn usize(&mut self) -> Result<usize, String> {
        usize::try_from(self.u64()?).map_err(|_| format!("{} snapshot: length overflow", self.ctx))
    }

    pub(crate) fn bool(&mut self) -> Result<bool, String> {
        match self.u64()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(format!("{} snapshot: bad flag {v}", self.ctx)),
        }
    }

    pub(crate) fn i64(&mut self) -> Result<i64, String> {
        Ok(self.u64()? as i64)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, String> {
        u8::try_from(self.u64()?).map_err(|_| format!("{} snapshot: byte out of range", self.ctx))
    }

    /// Reads a length-prefixed sub-slice.
    pub(crate) fn section(&mut self) -> Result<&'a [u64], String> {
        let n = self.usize()?;
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.words.len())
            .ok_or_else(|| format!("{} snapshot: truncated section", self.ctx))?;
        let s = &self.words[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Asserts the whole input was consumed.
    pub(crate) fn finish(self) -> Result<(), String> {
        if self.pos == self.words.len() {
            Ok(())
        } else {
            Err(format!(
                "{} snapshot: {} trailing words",
                self.ctx,
                self.words.len() - self.pos
            ))
        }
    }
}

/// Appends `body` to `out` as a length-prefixed section (the encode-side
/// dual of [`Reader::section`]).
pub(crate) fn push_section(out: &mut Vec<u64>, body: Vec<u64>) {
    out.push(body.len() as u64);
    out.extend(body);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_walks_and_checks() {
        let words = [7u64, 1, 2, 10, 20];
        let mut r = Reader::new(&words, "test");
        assert_eq!(r.u64().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.section().unwrap(), &[10, 20]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_and_trailing_are_errors() {
        let mut r = Reader::new(&[], "t");
        assert!(r.u64().is_err());
        let words = [5u64, 1];
        let mut r = Reader::new(&words, "t");
        assert!(r.section().is_err(), "section longer than input");
        let words = [1u64, 2];
        let mut r = Reader::new(&words, "t");
        r.u64().unwrap();
        assert!(r.finish().is_err(), "trailing word must be rejected");
    }

    #[test]
    fn bad_flag_rejected() {
        let words = [3u64];
        let mut r = Reader::new(&words, "t");
        assert!(r.bool().is_err());
    }

    #[test]
    fn push_section_round_trips() {
        let mut out = vec![9u64];
        push_section(&mut out, vec![4, 5]);
        let mut r = Reader::new(&out, "t");
        assert_eq!(r.u64().unwrap(), 9);
        assert_eq!(r.section().unwrap(), &[4, 5]);
        r.finish().unwrap();
    }
}
