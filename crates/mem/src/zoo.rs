//! The competitor prefetcher zoo: the three classic table-based designs
//! CRISP is evaluated against beyond the Table 1 baseline — a GHB
//! stride/width prefetcher (Nesbit & Smith, HPCA 2004), SISB temporal
//! streaming (Wu et al., MICRO 2019 lineage), and SPP signature-path
//! prefetching with path-confidence throttling (Kim et al., MICRO 2016).
//!
//! Every design is table-bounded, deterministic, and carries a full
//! word-vector snapshot codec so checkpoint/restore and `--audit-restore`
//! hold for any registry selection.

use crate::prefetch::Prefetcher;
use crate::wcodec::Reader;

/// Folds a signed line delta into a small hash key.
#[inline]
fn delta_key(delta: i64) -> u64 {
    (delta as u64) ^ ((delta as u64) >> 17)
}

/// A Global History Buffer prefetcher in its stride/width configuration:
/// the global miss stream lives in a ring buffer whose entries are linked
/// per *delta* through an address-index table. On a miss, the chain of
/// past occurrences of the current delta is walked `width` entries back,
/// and from each occurrence up to `depth` of the misses that historically
/// followed it are replayed (rebased to the current line). When the delta
/// has no history yet, a stride fallback prefetches `degree` lines ahead
/// at the observed delta.
#[derive(Clone, Debug)]
pub struct GhbWidth {
    /// Ring of recent miss lines; `prev` links the previous occurrence of
    /// the same delta.
    buffer: Vec<GhbwEntry>,
    head: usize,
    live: usize,
    last_line: u64,
    has_last: bool,
    /// Address-index table: delta -> most recent ring entry with it.
    ait: Vec<Option<AitEntry>>,
    ait_mask: u64,
    width: usize,
    depth: usize,
    degree: usize,
}

#[derive(Clone, Copy, Debug)]
struct GhbwEntry {
    line: u64,
    valid: bool,
    prev: Option<usize>,
}

#[derive(Clone, Copy, Debug)]
struct AitEntry {
    delta: i64,
    at: usize,
}

impl GhbWidth {
    /// Creates a GHB stride/width prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if `ait_entries` is not a power of two or any size is zero.
    pub fn new(
        entries: usize,
        ait_entries: usize,
        width: usize,
        depth: usize,
        degree: usize,
    ) -> GhbWidth {
        assert!(entries > 0 && width > 0 && depth > 0 && degree > 0);
        assert!(ait_entries.is_power_of_two());
        GhbWidth {
            buffer: vec![
                GhbwEntry {
                    line: 0,
                    valid: false,
                    prev: None
                };
                entries
            ],
            head: 0,
            live: 0,
            last_line: 0,
            has_last: false,
            ait: vec![None; ait_entries],
            ait_mask: ait_entries as u64 - 1,
            width,
            depth,
            degree,
        }
    }

    /// Serialises the ring, delta index and stream cursor as a word vector.
    pub fn snapshot_words(&self) -> Vec<u64> {
        let mut w = vec![
            self.head as u64,
            self.live as u64,
            self.last_line,
            u64::from(self.has_last),
            self.buffer.len() as u64,
        ];
        for e in &self.buffer {
            w.push(e.line);
            w.push(u64::from(e.valid));
            match e.prev {
                Some(i) => {
                    w.push(1);
                    w.push(i as u64);
                }
                None => {
                    w.push(0);
                    w.push(0);
                }
            }
        }
        w.push(self.ait.len() as u64);
        for e in &self.ait {
            match e {
                Some(a) => {
                    w.push(1);
                    w.push(a.delta as u64);
                    w.push(a.at as u64);
                }
                None => {
                    w.push(0);
                    w.push(0);
                    w.push(0);
                }
            }
        }
        w
    }

    /// Restores state captured by [`GhbWidth::snapshot_words`] into an
    /// identically-sized instance.
    ///
    /// # Errors
    ///
    /// Rejects size mismatches, out-of-range links and malformed input.
    pub fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
        let mut r = Reader::new(words, "ghbw");
        let head = r.usize()?;
        let live = r.usize()?;
        let last_line = r.u64()?;
        let has_last = r.bool()?;
        let n_buf = r.usize()?;
        if n_buf != self.buffer.len() || head >= n_buf || live > n_buf {
            return Err(format!(
                "ghbw snapshot: {n_buf} ring slots / head {head} / live {live}, expected {}",
                self.buffer.len()
            ));
        }
        let mut buffer = Vec::with_capacity(n_buf);
        for _ in 0..n_buf {
            let line = r.u64()?;
            let valid = r.bool()?;
            let present = r.bool()?;
            let at = r.usize()?;
            if present && at >= n_buf {
                return Err(format!("ghbw snapshot: link {at} out of range"));
            }
            buffer.push(GhbwEntry {
                line,
                valid,
                prev: present.then_some(at),
            });
        }
        let n_ait = r.usize()?;
        if n_ait != self.ait.len() {
            return Err(format!(
                "ghbw snapshot: {n_ait} index slots, expected {}",
                self.ait.len()
            ));
        }
        let mut ait = Vec::with_capacity(n_ait);
        for _ in 0..n_ait {
            let present = r.bool()?;
            let delta = r.i64()?;
            let at = r.usize()?;
            if present && at >= n_buf {
                return Err(format!("ghbw snapshot: index link {at} out of range"));
            }
            ait.push(present.then_some(AitEntry { delta, at }));
        }
        r.finish()?;
        self.head = head;
        self.live = live;
        self.last_line = last_line;
        self.has_last = has_last;
        self.buffer = buffer;
        self.ait = ait;
        Ok(())
    }

    /// The ring index of the entry `k` steps after `at` in stream order,
    /// if it exists and is not past the write cursor.
    fn successor(&self, at: usize, k: usize) -> Option<usize> {
        let n = self.buffer.len();
        let idx = (at + k) % n;
        // Entries at or past the head are either the oldest (about to be
        // overwritten) or unwritten; walking into them would replay lines
        // out of stream order.
        let dist_at = (self.head + n - 1 - at) % n; // age of `at` (0 = newest)
        let dist_idx = (self.head + n - 1 - idx) % n;
        (self.buffer[idx].valid && dist_idx < dist_at).then_some(idx)
    }
}

impl Prefetcher for GhbWidth {
    fn on_access(&mut self, line: u64, _pc: u64, l1_hit: bool, out: &mut Vec<u64>) {
        if l1_hit {
            return;
        }
        if !self.has_last {
            self.has_last = true;
            self.last_line = line;
            return;
        }
        let delta = line as i64 - self.last_line as i64;
        self.last_line = line;
        if delta == 0 {
            return;
        }
        let slot = (delta_key(delta) & self.ait_mask) as usize;
        let prev = match self.ait[slot] {
            // `a.at == head` means the index points at the slot we are
            // about to overwrite (a lapped entry): treat as no history.
            Some(a) if a.delta == delta && a.at != self.head && self.buffer[a.at].valid => {
                Some(a.at)
            }
            _ => None,
        };
        self.buffer[self.head] = GhbwEntry {
            line,
            valid: true,
            prev,
        };
        self.ait[slot] = Some(AitEntry {
            delta,
            at: self.head,
        });
        self.head = (self.head + 1) % self.buffer.len();
        self.live = (self.live + 1).min(self.buffer.len());

        // Width: consult up to `width` past occurrences of this delta,
        // newest first; depth: replay the misses that followed each,
        // rebased onto the current line.
        let mut cur = prev;
        let mut consulted = 0;
        let mut emitted = false;
        while let Some(at) = cur {
            if consulted >= self.width {
                break;
            }
            consulted += 1;
            let base = self.buffer[at].line;
            for k in 1..=self.depth {
                let Some(succ) = self.successor(at, k) else {
                    break;
                };
                let shift = self.buffer[succ].line as i64 - base as i64;
                let cand = line as i64 + shift;
                if cand >= 0 && shift != 0 {
                    out.push(cand as u64);
                    emitted = true;
                }
            }
            cur = self.buffer[at].prev;
            if cur == Some(at) {
                break;
            }
        }
        if !emitted {
            // Stride fallback: no usable history for this delta yet.
            for k in 1..=self.degree {
                let cand = line as i64 + delta * k as i64;
                if cand >= 0 {
                    out.push(cand as u64);
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "ghbw"
    }

    fn snapshot_words(&self) -> Vec<u64> {
        GhbWidth::snapshot_words(self)
    }

    fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
        GhbWidth::restore_words(self, words)
    }
}

/// SISB-style temporal streaming: a training unit maps each load PC to the
/// last miss line it produced; when the same PC misses again, the pair
/// (previous line -> current line) is recorded in a mapping cache. On a
/// miss, the mapping cache is chained up to `degree` steps ahead from the
/// current line, replaying arbitrary (pointer-chasing) temporal streams
/// that stride/delta prefetchers cannot express.
#[derive(Clone, Debug)]
pub struct Sisb {
    /// Training unit: pc -> last miss line (direct-mapped, tag = pc).
    tu: Vec<Option<(u64, u64)>>,
    tu_mask: u64,
    /// Mapping cache: line -> successor line (direct-mapped, tag = line).
    map: Vec<Option<(u64, u64)>>,
    map_mask: u64,
    degree: usize,
}

#[inline]
fn line_slot(line: u64, mask: u64) -> usize {
    ((line ^ (line >> 13)) & mask) as usize
}

impl Sisb {
    /// Creates a SISB prefetcher with a `tu_entries` training unit and a
    /// `map_entries` mapping cache, chaining `degree` predictions.
    ///
    /// # Panics
    ///
    /// Panics if the table sizes are not powers of two or `degree` is 0.
    pub fn new(tu_entries: usize, map_entries: usize, degree: usize) -> Sisb {
        assert!(tu_entries.is_power_of_two() && map_entries.is_power_of_two());
        assert!(degree > 0);
        Sisb {
            tu: vec![None; tu_entries],
            tu_mask: tu_entries as u64 - 1,
            map: vec![None; map_entries],
            map_mask: map_entries as u64 - 1,
            degree,
        }
    }

    /// Serialises both tables as a word vector.
    pub fn snapshot_words(&self) -> Vec<u64> {
        let mut w = Vec::new();
        for table in [&self.tu, &self.map] {
            w.push(table.len() as u64);
            for e in table {
                match e {
                    Some((tag, val)) => {
                        w.push(1);
                        w.push(*tag);
                        w.push(*val);
                    }
                    None => {
                        w.push(0);
                        w.push(0);
                        w.push(0);
                    }
                }
            }
        }
        w
    }

    /// Restores state captured by [`Sisb::snapshot_words`] into an
    /// identically-sized instance.
    ///
    /// # Errors
    ///
    /// Rejects table-size mismatches and malformed input.
    pub fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
        let mut r = Reader::new(words, "sisb");
        let sizes = [self.tu.len(), self.map.len()];
        let mut tables = Vec::with_capacity(2);
        for want in sizes {
            let n = r.usize()?;
            if n != want {
                return Err(format!("sisb snapshot: {n} table slots, expected {want}"));
            }
            let mut t = Vec::with_capacity(n);
            for _ in 0..n {
                let present = r.bool()?;
                let tag = r.u64()?;
                let val = r.u64()?;
                t.push(present.then_some((tag, val)));
            }
            tables.push(t);
        }
        r.finish()?;
        self.map = tables.pop().expect("two tables");
        self.tu = tables.pop().expect("two tables");
        Ok(())
    }
}

impl Prefetcher for Sisb {
    fn on_access(&mut self, line: u64, pc: u64, l1_hit: bool, out: &mut Vec<u64>) {
        if l1_hit {
            return;
        }
        // Train: record last->current for this PC's miss stream.
        let slot = (pc & self.tu_mask) as usize;
        if let Some((tag, last)) = self.tu[slot] {
            if tag == pc && last != line {
                self.map[line_slot(last, self.map_mask)] = Some((last, line));
            }
        }
        self.tu[slot] = Some((pc, line));
        // Predict: chain the mapping cache forward.
        let mut cur = line;
        for _ in 0..self.degree {
            match self.map[line_slot(cur, self.map_mask)] {
                Some((tag, next)) if tag == cur && next != line => {
                    out.push(next);
                    cur = next;
                }
                _ => break,
            }
        }
    }

    fn name(&self) -> &'static str {
        "sisb"
    }

    fn snapshot_words(&self) -> Vec<u64> {
        Sisb::snapshot_words(self)
    }

    fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
        Sisb::restore_words(self, words)
    }
}

/// Lines per 4 KiB page (64 B lines).
const PAGE_LINES: u64 = 64;
/// Signature width (bits) and mask.
const SIG_BITS: u32 = 12;
const SIG_MASK: u16 = (1 << SIG_BITS) - 1;
/// Delta slots per pattern-table entry.
const PT_WAYS: usize = 4;
/// Counter saturation point; on reaching it an entry's counters halve.
const C_SAT: u16 = 255;

/// Compresses a signed in-page delta into the signature hash key.
#[inline]
fn sig_advance(sig: u16, delta: i16) -> u16 {
    ((sig << 3) ^ (delta as u16 & 0x3F)) & SIG_MASK
}

/// SPP: signature-path prefetching with path-confidence throttling. Each
/// page's recent delta history is compressed into a signature; a pattern
/// table maps signatures to observed next deltas with confidence
/// counters. Prefetching walks the signature path speculatively,
/// multiplying per-step confidences (modulated by a global
/// issued-vs-useful accuracy register) and stops when the path confidence
/// drops below the throttle threshold or the page boundary is crossed.
#[derive(Clone, Debug)]
pub struct Spp {
    /// Signature table: page -> (signature, last offset).
    st: Vec<Option<StEntry>>,
    st_mask: u64,
    /// Pattern table: signature -> delta candidates with confidences.
    pt: Vec<PtEntry>,
    pt_mask: u64,
    /// Prefetch filter: recently issued lines (u64::MAX = empty slot).
    filter: Vec<u64>,
    filter_mask: u64,
    /// Global accuracy register: prefetches issued / proven useful.
    pf_issued: u64,
    pf_useful: u64,
    max_depth: usize,
    /// Path-confidence floor, per-mille.
    threshold: u64,
}

#[derive(Clone, Copy, Debug)]
struct StEntry {
    page: u64,
    sig: u16,
    last_off: u8,
}

#[derive(Clone, Copy, Debug, Default)]
struct PtSlot {
    delta: i16,
    c_delta: u16,
}

#[derive(Clone, Copy, Debug, Default)]
struct PtEntry {
    c_sig: u16,
    slots: [PtSlot; PT_WAYS],
}

impl PtEntry {
    fn train(&mut self, delta: i16) {
        self.c_sig += 1;
        if let Some(s) = self
            .slots
            .iter_mut()
            .find(|s| s.c_delta > 0 && s.delta == delta)
        {
            s.c_delta += 1;
        } else {
            let victim = self
                .slots
                .iter_mut()
                .min_by_key(|s| s.c_delta)
                .expect("PT_WAYS > 0");
            *victim = PtSlot { delta, c_delta: 1 };
        }
        if self.c_sig >= C_SAT {
            self.c_sig /= 2;
            for s in &mut self.slots {
                s.c_delta /= 2;
            }
        }
    }

    /// The highest-confidence delta (ties break toward the lowest slot
    /// index, keeping selection deterministic).
    fn best(&self) -> Option<PtSlot> {
        self.slots
            .iter()
            .filter(|s| s.c_delta > 0)
            .max_by_key(|s| s.c_delta)
            .copied()
    }
}

impl Spp {
    /// Creates an SPP prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if any table size is not a power of two, `max_depth` is 0,
    /// or `threshold` exceeds 1000 (per-mille).
    pub fn new(
        st_entries: usize,
        pt_entries: usize,
        filter_entries: usize,
        max_depth: usize,
        threshold: u64,
    ) -> Spp {
        assert!(st_entries.is_power_of_two());
        assert!(pt_entries.is_power_of_two());
        assert!(filter_entries.is_power_of_two());
        assert!(max_depth > 0 && threshold <= 1000);
        Spp {
            st: vec![None; st_entries],
            st_mask: st_entries as u64 - 1,
            pt: vec![PtEntry::default(); pt_entries],
            pt_mask: pt_entries as u64 - 1,
            filter: vec![u64::MAX; filter_entries],
            filter_mask: filter_entries as u64 - 1,
            pf_issued: 0,
            pf_useful: 0,
            max_depth,
            threshold,
        }
    }

    /// The global accuracy estimate in per-mille (1000 until the issued
    /// count is large enough to be meaningful).
    fn global_accuracy(&self) -> u64 {
        if self.pf_issued < 32 {
            1000
        } else {
            (1000 * self.pf_useful / self.pf_issued).min(1000)
        }
    }

    /// Serialises every table and the accuracy register as a word vector.
    pub fn snapshot_words(&self) -> Vec<u64> {
        let mut w = vec![self.pf_issued, self.pf_useful, self.st.len() as u64];
        for e in &self.st {
            match e {
                Some(s) => {
                    w.push(1);
                    w.push(s.page);
                    w.push(u64::from(s.sig));
                    w.push(u64::from(s.last_off));
                }
                None => w.extend_from_slice(&[0, 0, 0, 0]),
            }
        }
        w.push(self.pt.len() as u64);
        for e in &self.pt {
            w.push(u64::from(e.c_sig));
            for s in &e.slots {
                w.push(s.delta as u64);
                w.push(u64::from(s.c_delta));
            }
        }
        w.push(self.filter.len() as u64);
        w.extend_from_slice(&self.filter);
        w
    }

    /// Restores state captured by [`Spp::snapshot_words`] into an
    /// identically-sized instance.
    ///
    /// # Errors
    ///
    /// Rejects table-size mismatches and malformed input.
    pub fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
        let mut r = Reader::new(words, "spp");
        let pf_issued = r.u64()?;
        let pf_useful = r.u64()?;
        let n_st = r.usize()?;
        if n_st != self.st.len() {
            return Err(format!(
                "spp snapshot: {n_st} signature slots, expected {}",
                self.st.len()
            ));
        }
        let mut st = Vec::with_capacity(n_st);
        for _ in 0..n_st {
            let present = r.bool()?;
            let page = r.u64()?;
            let sig = r.u64()?;
            let last_off = r.u64()?;
            if sig > u64::from(SIG_MASK) || last_off >= PAGE_LINES {
                return Err(format!("spp snapshot: bad ST entry ({sig}, {last_off})"));
            }
            st.push(present.then_some(StEntry {
                page,
                sig: sig as u16,
                last_off: last_off as u8,
            }));
        }
        let n_pt = r.usize()?;
        if n_pt != self.pt.len() {
            return Err(format!(
                "spp snapshot: {n_pt} pattern slots, expected {}",
                self.pt.len()
            ));
        }
        let mut pt = Vec::with_capacity(n_pt);
        for _ in 0..n_pt {
            let c_sig = u16::try_from(r.u64()?).map_err(|_| "spp snapshot: c_sig overflow")?;
            let mut slots = [PtSlot::default(); PT_WAYS];
            for s in &mut slots {
                let delta = r.u64()? as i64;
                let c_delta =
                    u16::try_from(r.u64()?).map_err(|_| "spp snapshot: c_delta overflow")?;
                let delta = i16::try_from(delta).map_err(|_| "spp snapshot: delta overflow")?;
                *s = PtSlot { delta, c_delta };
            }
            pt.push(PtEntry { c_sig, slots });
        }
        let n_f = r.usize()?;
        if n_f != self.filter.len() {
            return Err(format!(
                "spp snapshot: {n_f} filter slots, expected {}",
                self.filter.len()
            ));
        }
        let mut filter = Vec::with_capacity(n_f);
        for _ in 0..n_f {
            filter.push(r.u64()?);
        }
        r.finish()?;
        self.pf_issued = pf_issued;
        self.pf_useful = pf_useful;
        self.st = st;
        self.pt = pt;
        self.filter = filter;
        Ok(())
    }
}

impl Prefetcher for Spp {
    fn on_access(&mut self, line: u64, _pc: u64, l1_hit: bool, out: &mut Vec<u64>) {
        if l1_hit {
            return;
        }
        // Global accuracy: a demand miss on a line we recently issued a
        // prefetch for proves that prefetch useful.
        let fslot = ((line ^ (line >> 11)) & self.filter_mask) as usize;
        if self.filter[fslot] == line {
            self.filter[fslot] = u64::MAX;
            self.pf_useful += 1;
        }
        let page = line / PAGE_LINES;
        let off = (line % PAGE_LINES) as u8;
        let slot = ((page ^ (page >> 9)) & self.st_mask) as usize;
        let mut sig = u16::from(off) & SIG_MASK;
        match self.st[slot] {
            Some(e) if e.page == page => {
                let delta = i16::from(off) - i16::from(e.last_off);
                if delta == 0 {
                    return;
                }
                self.pt[(u64::from(e.sig) & self.pt_mask) as usize].train(delta);
                sig = sig_advance(e.sig, delta);
            }
            _ => {}
        }
        self.st[slot] = Some(StEntry {
            page,
            sig,
            last_off: off,
        });

        // Lookahead: walk the signature path while the multiplied
        // (accuracy-modulated) confidence stays above the throttle floor.
        let ga = self.global_accuracy();
        let mut cur_sig = sig;
        let mut base = line;
        let mut path_conf = 1000u64;
        for _ in 0..self.max_depth {
            let Some(best) = self.pt[(u64::from(cur_sig) & self.pt_mask) as usize].best() else {
                break;
            };
            let entry = &self.pt[(u64::from(cur_sig) & self.pt_mask) as usize];
            let c_sig = u64::from(entry.c_sig).max(1);
            let conf = path_conf * u64::from(best.c_delta) / c_sig;
            let conf = conf * ga / 1000;
            if conf < self.threshold {
                break;
            }
            let cand = base as i64 + i64::from(best.delta);
            if cand < 0 || (cand as u64) / PAGE_LINES != page {
                break; // physical prefetching stops at the page boundary
            }
            let cand = cand as u64;
            let fslot = ((cand ^ (cand >> 11)) & self.filter_mask) as usize;
            if self.filter[fslot] != cand {
                self.filter[fslot] = cand;
                self.pf_issued += 1;
                out.push(cand);
            }
            base = cand;
            cur_sig = sig_advance(cur_sig, best.delta);
            path_conf = conf;
        }
    }

    fn name(&self) -> &'static str {
        "spp"
    }

    fn snapshot_words(&self) -> Vec<u64> {
        Spp::snapshot_words(self)
    }

    fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
        Spp::restore_words(self, words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn misses(p: &mut dyn Prefetcher, lines: &[u64], pc: u64) -> Vec<u64> {
        let mut out = Vec::new();
        for &l in lines {
            out.clear();
            p.on_access(l, pc, false, &mut out);
        }
        out
    }

    #[test]
    fn ghbw_replays_constant_stride() {
        let mut g = GhbWidth::new(256, 256, 3, 3, 3);
        let lines: Vec<u64> = (0..12).map(|i| 1000 + 5 * i).collect();
        let out = misses(&mut g, &lines, 0x40);
        assert!(
            out.contains(&(1000 + 5 * 12)),
            "stride-5 continuation expected, got {out:?}"
        );
    }

    #[test]
    fn ghbw_stride_fallback_on_cold_delta() {
        let mut g = GhbWidth::new(256, 256, 3, 3, 3);
        let out = misses(&mut g, &[100, 107], 0x40);
        // Delta 7 has no history: fallback prefetches 7 ahead, degree 3.
        assert_eq!(out, vec![114, 121, 128]);
    }

    #[test]
    fn ghbw_width_replays_what_followed() {
        // Pattern: after delta +2 the stream historically jumps +10.
        let mut g = GhbWidth::new(256, 256, 3, 3, 3);
        let lines = [100u64, 102, 112, 200, 202];
        let out = misses(&mut g, &lines, 0x1);
        assert!(
            out.contains(&212),
            "the +10 follower of delta +2 should replay rebased: {out:?}"
        );
    }

    #[test]
    fn ghbw_snapshot_round_trip() {
        let mut g = GhbWidth::new(64, 64, 3, 3, 3);
        let lines: Vec<u64> = (0..40).map(|i| 500 + 3 * i).collect();
        misses(&mut g, &lines, 0x40);
        let words = GhbWidth::snapshot_words(&g);
        let mut h = GhbWidth::new(64, 64, 3, 3, 3);
        GhbWidth::restore_words(&mut h, &words).unwrap();
        assert_eq!(GhbWidth::snapshot_words(&h), words);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        g.on_access(500 + 3 * 40, 0x40, false, &mut a);
        h.on_access(500 + 3 * 40, 0x40, false, &mut b);
        assert_eq!(a, b);
        let mut wrong = GhbWidth::new(32, 64, 3, 3, 3);
        assert!(GhbWidth::restore_words(&mut wrong, &words).is_err());
    }

    #[test]
    fn sisb_learns_temporal_chains() {
        let mut s = Sisb::new(64, 1024, 3);
        // An irregular but repeating pointer chain from one PC.
        let chain = [900u64, 17, 5000, 333, 900, 17, 5000, 333];
        misses(&mut s, &chain, 0x20);
        // On revisiting the chain head, the successors replay.
        let mut out = Vec::new();
        s.on_access(900, 0x20, false, &mut out);
        assert_eq!(out, vec![17, 5000, 333]);
    }

    #[test]
    fn sisb_distinct_pcs_do_not_cross_train() {
        let mut s = Sisb::new(64, 1024, 2);
        misses(&mut s, &[10, 20, 10, 20], 0x1);
        let out = misses(&mut s, &[10], 0x2);
        // PC 0x2 sees line 10 fresh, but the mapping cache is shared by
        // design (temporal streams are PC-agnostic once learned).
        assert_eq!(out, vec![20]);
    }

    #[test]
    fn sisb_ignores_l1_hits() {
        let mut s = Sisb::new(64, 1024, 2);
        let mut out = Vec::new();
        for l in [1u64, 2, 1, 2] {
            s.on_access(l, 0x9, true, &mut out);
        }
        assert!(out.is_empty());
    }

    #[test]
    fn sisb_snapshot_round_trip() {
        let mut s = Sisb::new(64, 256, 3);
        misses(&mut s, &[900, 17, 5000, 333, 900, 17], 0x20);
        let words = Sisb::snapshot_words(&s);
        let mut t = Sisb::new(64, 256, 3);
        Sisb::restore_words(&mut t, &words).unwrap();
        assert_eq!(Sisb::snapshot_words(&t), words);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        s.on_access(5000, 0x20, false, &mut a);
        t.on_access(5000, 0x20, false, &mut b);
        assert_eq!(a, b);
        let mut wrong = Sisb::new(64, 128, 3);
        assert!(Sisb::restore_words(&mut wrong, &words).is_err());
    }

    #[test]
    fn spp_learns_in_page_stride() {
        let mut p = Spp::new(64, 1024, 256, 8, 250);
        // Stride +2 within one page, repeated enough to build confidence.
        let lines: Vec<u64> = (0..20).map(|i| 64 * 7 + 2 * i).collect();
        let out = misses(&mut p, &lines, 0x4);
        // Earlier misses already issued (and filtered) the near lookahead,
        // so the final miss extends the frontier past the accessed stream —
        // strictly ahead, still inside page 7.
        let last = 64 * 7 + 2 * 19;
        assert!(
            !out.is_empty() && out.iter().all(|&l| l > last && l / 64 == 7),
            "in-page stride should prefetch ahead: {out:?}"
        );
    }

    #[test]
    fn spp_throttles_on_random_offsets() {
        let mut p = Spp::new(64, 1024, 256, 8, 250);
        let mut x = 0xDEAD_BEEFu64;
        let mut issued = 0usize;
        let mut out = Vec::new();
        for _ in 0..400 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let line = 64 * (x % 8) + ((x >> 32) % 64); // 8 pages, random offsets
            out.clear();
            p.on_access(line, 0x4, false, &mut out);
            issued += out.len();
        }
        assert!(
            issued < 400,
            "path confidence must throttle on noise: {issued} issued"
        );
    }

    #[test]
    fn spp_stays_inside_the_page() {
        let mut p = Spp::new(64, 1024, 256, 8, 250);
        // Stride +8 marching toward the page end.
        let lines: Vec<u64> = (0..8).map(|i| 64 * 3 + 8 * i).collect();
        let out = misses(&mut p, &lines, 0x4);
        assert!(
            out.iter().all(|&l| l / 64 == 3),
            "prefetches must not cross the page: {out:?}"
        );
    }

    #[test]
    fn spp_counter_saturation_halves() {
        let mut e = PtEntry::default();
        for _ in 0..C_SAT {
            e.train(2);
        }
        assert!(e.c_sig < C_SAT, "saturation must halve the counters");
        assert!(e.best().expect("slot").c_delta > 0);
    }

    #[test]
    fn spp_snapshot_round_trip() {
        let mut p = Spp::new(64, 512, 128, 8, 250);
        let lines: Vec<u64> = (0..30).map(|i| 64 * 5 + (3 * i) % 64).collect();
        misses(&mut p, &lines, 0x4);
        let words = Spp::snapshot_words(&p);
        let mut q = Spp::new(64, 512, 128, 8, 250);
        Spp::restore_words(&mut q, &words).unwrap();
        assert_eq!(Spp::snapshot_words(&q), words);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        p.on_access(64 * 5 + 1, 0x4, false, &mut a);
        q.on_access(64 * 5 + 1, 0x4, false, &mut b);
        assert_eq!(a, b);
        let mut wrong = Spp::new(64, 256, 128, 8, 250);
        assert!(Spp::restore_words(&mut wrong, &words).is_err());
    }
}
