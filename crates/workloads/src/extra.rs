//! Additional SPEC-like kernels beyond the paper's evaluated set —
//! useful for robustness testing and for exploring the mechanism on
//! patterns the paper does not cover. They are registered in the
//! workload registry but excluded from the figure reproductions.

use crate::common::{emit_filler_dot, fill_u64, init_ring, regs, rng_for, scaled};
use crate::{Input, Workload};
use crisp_emu::Memory;
use crisp_isa::{AluOp, Cond, ProgramBuilder, Reg};
use rand::Rng;

const R1: Reg = Reg::new_const(1);
const R2: Reg = Reg::new_const(2);
const R7: Reg = Reg::new_const(7);
const R9: Reg = Reg::new_const(9);
const R10: Reg = Reg::new_const(10);
const R18: Reg = Reg::new_const(18);
const R19: Reg = Reg::new_const(19);

const HEAP_BASE: u64 = 0x1000_0000;
const ARR_A: u64 = 0x10_0000;
const ARR_B: u64 = 0x12_0000;

/// `omnetpp`-like: discrete-event simulation — a binary-heap event queue
/// whose sift-down walks data-dependent child pointers (delinquent,
/// serial) with event handlers providing the dense work.
pub fn omnetpp(input: Input) -> Workload {
    let heap_nodes = scaled(input, 1 << 15, 1 << 16);
    let mut rng = rng_for(input, 0x6F6D_6E00);
    let mut memory = Memory::new();
    // Heap nodes: 64-byte records; the child pointers form a random
    // permutation cycle so the sift walk keeps missing (a random *mapping*
    // would collapse into a ~sqrt(n) rho-cycle and become cache-resident).
    init_ring(&mut memory, HEAP_BASE, heap_nodes, 64, &mut rng);
    fill_u64(&mut memory, ARR_A, 4096, |_| rng.gen::<u64>() >> 32);
    fill_u64(&mut memory, ARR_B, 4096, |_| rng.gen::<u64>() >> 32);

    let mut b = ProgramBuilder::new();
    b.li(R1, HEAP_BASE as i64);
    let top = b.label();
    b.bind(top);
    b.load(R2, R1, 8, 8); // event payload (delinquent)
                          // Event handler: dense payload-dependent work.
    emit_filler_dot(&mut b, ARR_A as i64, ARR_B as i64, 18, R2);
    // Priority comparison branch on payload bits (moderately hard).
    b.alu_ri(AluOp::And, R18, R2, 3);
    let reschedule = b.label();
    b.branch(Cond::Ne, R18, Reg::ZERO, reschedule);
    b.alu_rr(AluOp::Add, regs::ACCS[0], regs::ACCS[0], R2);
    b.bind(reschedule);
    b.load(R1, R1, 0, 8); // sift to child (delinquent, loop bottom)
    b.jump(top);
    b.halt();

    Workload {
        name: "omnetpp",
        description: "discrete-event simulation: binary-heap sift-down over pointer-scrambled 64-byte nodes with payload-dependent event handlers; serial delinquent chain like mcf",
        program: b.build(),
        memory,
    }
}

/// `xalancbmk`-like: XML/DOM processing — a tree walk alternating between
/// child and sibling pointers selected by loaded node tags, plus a string
/// (byte-granularity) comparison loop.
pub fn xalancbmk(input: Input) -> Workload {
    let nodes = scaled(input, 1 << 16, 1 << 17);
    let mut rng = rng_for(input, 0x7861_6C00);
    let mut memory = Memory::new();
    // DOM nodes: {child, sibling, tag, text[40]} on 64-byte records.
    // Child pointers form one permutation cycle (so descent never gets
    // stuck); siblings point into a second shuffled ring shifted by an
    // odd offset, keeping both arms irregular.
    init_ring(&mut memory, HEAP_BASE, nodes, 64, &mut rng);
    for i in 0..nodes {
        let addr = HEAP_BASE + i * 64;
        let sib = HEAP_BASE + ((i * 48_271 + 11) % nodes) * 64;
        memory.write_u64(addr + 8, sib);
        memory.write_u64(addr + 16, rng.gen::<u64>());
        memory.write_u64(addr + 24, rng.gen::<u64>());
    }
    fill_u64(&mut memory, ARR_A, 4096, |_| rng.gen::<u64>() >> 32);
    fill_u64(&mut memory, ARR_B, 4096, |_| rng.gen::<u64>() >> 32);

    let mut b = ProgramBuilder::new();
    b.li(R1, HEAP_BASE as i64);
    b.li(R10, 0xFF);
    let top = b.label();
    b.bind(top);
    b.load(R2, R1, 16, 8); // node tag (delinquent)
                           // Tag-match "string compare": byte loads from the node text.
    b.load(R18, R1, 24, 1);
    b.load(R19, R1, 25, 1);
    b.alu_rr(AluOp::Xor, R18, R18, R19);
    // Transform work dependent on the tag.
    emit_filler_dot(&mut b, ARR_A as i64, ARR_B as i64, 14, R2);
    // Tag xor visit-counter decides child vs sibling descent: the same
    // node takes different arms on different visits, so the walk is a
    // genuine random walk over the whole tree (a fixed per-node choice
    // would collapse into a short cycle). The branch is data-dependent
    // and hard.
    b.alu_ri(AluOp::Add, R7, R7, 1);
    b.alu_rr(AluOp::Xor, R9, R2, R7);
    b.alu_ri(AluOp::And, R9, R9, 1);
    let sibling = b.label();
    let walked = b.label();
    b.branch(Cond::Ne, R9, Reg::ZERO, sibling);
    b.load(R1, R1, 0, 8); // child (delinquent)
    b.jump(walked);
    b.bind(sibling);
    b.load(R1, R1, 8, 8); // sibling (delinquent)
    b.bind(walked);
    b.alu_rr(AluOp::Add, regs::ACCS[1], regs::ACCS[1], R18);
    b.jump(top);
    b.halt();

    Workload {
        name: "xalancbmk",
        description: "DOM tree walk: tag load steers child-vs-sibling descent through a data-dependent branch whose both arms end in delinquent pointer loads; byte-width text compares",
        program: b.build(),
        memory,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_emu::Emulator;

    #[test]
    fn omnetpp_chases_the_heap() {
        let w = omnetpp(Input::Train);
        let trace = Emulator::new(&w.program, w.memory.clone()).run(50_000);
        let distinct: std::collections::HashSet<u64> = trace
            .iter()
            .filter(|r| r.addr >= HEAP_BASE && w.program.inst(r.pc).is_load())
            .map(|r| r.addr & !63)
            .collect();
        assert!(
            distinct.len() > 300,
            "heap walk visits many nodes: {}",
            distinct.len()
        );
    }

    #[test]
    fn xalancbmk_takes_both_descent_arms() {
        let w = xalancbmk(Input::Train);
        let trace = Emulator::new(&w.program, w.memory.clone()).run(50_000);
        let branch_pc = w
            .program
            .iter()
            .find(|(_, i)| i.op.is_cond_branch())
            .map(|(pc, _)| pc)
            .expect("has branch");
        let (mut taken, mut total) = (0u64, 0u64);
        for r in &trace {
            if r.pc == branch_pc {
                total += 1;
                taken += u64::from(r.taken);
            }
        }
        let ratio = taken as f64 / total.max(1) as f64;
        assert!(ratio > 0.3 && ratio < 0.7, "descent split ~50/50: {ratio}");
    }

    #[test]
    fn extras_use_byte_width_loads() {
        let w = xalancbmk(Input::Train);
        let has_byte_load = w
            .program
            .iter()
            .any(|(_, i)| i.is_load() && i.width.bytes() == 1);
        assert!(has_byte_load);
    }

    #[test]
    fn ring_helper_not_needed_but_available() {
        let mut mem = Memory::new();
        let mut rng = rng_for(Input::Train, 1);
        init_ring(&mut mem, 0x4000, 8, 64, &mut rng);
        let mut cur = 0x4000u64;
        for _ in 0..8 {
            cur = mem.read_u64(cur);
        }
        assert_eq!(cur, 0x4000);
    }

    #[test]
    fn extras_scale_with_input() {
        let t = omnetpp(Input::Train);
        let r = omnetpp(Input::Ref);
        assert!(r.memory.page_count() > t.memory.page_count());
        let t2 = xalancbmk(Input::Train);
        let r2 = xalancbmk(Input::Ref);
        assert!(r2.memory.page_count() > t2.memory.page_count());
    }
}
