//! HPC kernels: the Figure 1/2 pointer-chase microbenchmark and the
//! Xhpcg sparse conjugate-gradient stand-in.

use crate::common::{emit_filler_dot, fill_u64, init_ring, regs, rng_for, scaled};
use crate::{Input, Workload};
use crisp_emu::Memory;
use crisp_isa::{AluOp, Cond, Opcode, ProgramBuilder, Reg};
use rand::Rng;

const R1: Reg = Reg::new_const(1);
const R2: Reg = Reg::new_const(2);
const R7: Reg = Reg::new_const(7);
const R8: Reg = Reg::new_const(8);
const R9: Reg = Reg::new_const(9);
const R10: Reg = Reg::new_const(10);
const R11: Reg = Reg::new_const(11);
const R12: Reg = Reg::new_const(12);
const R18: Reg = Reg::new_const(18);
const R19: Reg = Reg::new_const(19);

const RING_BASE: u64 = 0x1000_0000;
const ARR_A: u64 = 0x10_0000;
const ARR_B: u64 = 0x12_0000;

/// The paper's motivating microbenchmark (Figures 1 and 2): a linked-list
/// traversal interleaved with an embarrassingly parallel vector kernel.
/// `val = cur->val` feeds the vector work and `cur = cur->next` sits at
/// the loop bottom, so oldest-ready-first scheduling starves both
/// delinquent loads behind the dense older work.
pub fn pointer_chase(input: Input) -> Workload {
    let nodes = scaled(input, 1 << 14, 1 << 15);
    let node_bytes = 4096;
    let mut rng = rng_for(input, 0x7063_6800);
    let mut memory = Memory::new();
    init_ring(&mut memory, RING_BASE, nodes, node_bytes, &mut rng);
    fill_u64(&mut memory, ARR_A, 4096, |_| rng.gen::<u64>() >> 32);
    fill_u64(&mut memory, ARR_B, 4096, |_| rng.gen::<u64>() >> 32);

    let mut b = ProgramBuilder::new();
    b.li(R1, RING_BASE as i64);
    let top = b.label();
    b.bind(top);
    b.load(R2, R1, 8, 8); // val = cur->val (delinquent)
    emit_filler_dot(&mut b, ARR_A as i64, ARR_B as i64, 30, R2); // vec *= val
    b.load(R1, R1, 0, 8); // cur = cur->next (delinquent, loop bottom)
    b.alu_ri(AluOp::Add, R7, R7, 1);
    // Trivially-predicted loop branch (always taken).
    b.branch(Cond::Geu, R7, Reg::ZERO, top);
    b.halt();

    Workload {
        name: "pointer_chase",
        description: "the Figure 1/2 microbenchmark: linked-list traversal (node stride 4 KiB, random permutation) interleaved with a dense 30-element vector kernel; both node loads are delinquent",
        program: b.build(),
        memory,
    }
}

/// `xhpcg`-like: sparse matrix-vector multiply (CSR), the `x[col[j]]`
/// gather being the delinquent load. Gathers across the row are mutually
/// independent, so promoting them converts scheduler queueing directly
/// into memory-level parallelism — the paper's biggest winner (up to 38 %,
/// growing with RS/ROB in Figure 9).
pub fn xhpcg(input: Input) -> Workload {
    let x_len = scaled(input, 1 << 17, 1 << 18); // 1–2 MiB x vector (LLC-straddling)
    let nnz_stream = 1 << 15;
    let mut rng = rng_for(input, 0x6870_6300);
    let mut memory = Memory::new();
    const X_BASE: u64 = 0x9000_0000;
    const COLS: u64 = 0x7000_0000;
    const VALS: u64 = 0x7400_0000;
    fill_u64(&mut memory, X_BASE, x_len, |_| rng.gen::<u64>());
    fill_u64(&mut memory, COLS, nnz_stream, |_| {
        (rng.gen::<u64>() % x_len) * 8
    });
    fill_u64(&mut memory, VALS, nnz_stream, |_| rng.gen::<u64>() >> 33);
    fill_u64(&mut memory, ARR_A, 4096, |_| rng.gen::<u64>() >> 32);
    fill_u64(&mut memory, ARR_B, 4096, |_| rng.gen::<u64>() >> 32);

    let mut b = ProgramBuilder::new();
    b.li(R7, 0); // nnz cursor
    b.li(R10, COLS as i64);
    b.li(R11, VALS as i64);
    b.li(R12, X_BASE as i64);
    let row = b.label();
    b.bind(row);
    // One "row": 4 gathers. The col stream and val stream are regular
    // (prefetched); each x[col] gather is irregular and delinquent. The
    // row's dense epilogue depends on the gathered values, so the next
    // row's gathers (below it in program order) lose the oldest-first
    // pick to the epilogue burst.
    b.alu_ri(AluOp::And, R8, R7, (nnz_stream - 16) as i64);
    b.alu_ri(AluOp::Shl, R8, R8, 3);
    for k in 0..4i64 {
        b.alu_rr(AluOp::Add, R9, R10, R8);
        b.load(R18, R9, 8 * k, 8); // col offset (streaming)
        b.alu_rr(AluOp::Add, R18, R18, R12);
        b.alu_rr(AluOp::Add, R9, R11, R8);
        b.load(R19, R9, 8 * k, 8); // matrix value (streaming)
        b.load(R2, R18, 0, 8); // x[col] gather (delinquent)
        b.mul(R2, R2, R19);
        b.fp(
            Opcode::FAdd,
            regs::ACCS[(k % 4) as usize],
            regs::ACCS[(k % 4) as usize],
            R2,
        );
    }
    // Row epilogue: dense norm/update work dependent on the gathered row.
    emit_filler_dot(&mut b, ARR_A as i64, ARR_B as i64, 22, R2);
    b.alu_ri(AluOp::Add, R7, R7, 4);
    // Predictable row-end branch.
    b.alu_ri(AluOp::And, R18, R7, 127);
    let cont = b.label();
    b.branch(Cond::Ne, R18, Reg::ZERO, cont);
    b.alu_ri(AluOp::Add, R19, R19, 1);
    b.bind(cont);
    b.jump(row);
    b.halt();

    Workload {
        name: "xhpcg",
        description: "CSR sparse matrix-vector multiply: independent x[col[j]] gathers per row behind streaming col/val loads; promoting the gathers buys MLP, gains grow with RS/ROB",
        program: b.build(),
        memory,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_emu::Emulator;

    #[test]
    fn pointer_chase_touches_the_whole_ring() {
        let w = pointer_chase(Input::Train);
        let mut emu = Emulator::new(&w.program, w.memory.clone());
        let trace = emu.run(200_000);
        // Distinct chase addresses grow with the run (random permutation).
        let distinct: std::collections::HashSet<u64> = trace
            .iter()
            .filter(|r| r.pc == 151 && r.addr != 0) // chase load
            .map(|r| r.addr)
            .collect();
        // pc of the chase load: computed dynamically instead of hardcoding.
        let chase_addrs: std::collections::HashSet<u64> = trace
            .iter()
            .filter_map(|r| {
                let inst = w.program.inst(r.pc);
                (inst.is_load() && inst.imm == 0 && r.addr >= 0x1000_0000).then_some(r.addr)
            })
            .collect();
        assert!(chase_addrs.len() > 500, "chase visits many nodes");
        let _ = distinct;
    }

    #[test]
    fn xhpcg_gathers_are_irregular() {
        let w = xhpcg(Input::Train);
        let mut emu = Emulator::new(&w.program, w.memory.clone());
        let trace = emu.run(100_000);
        let gathers: Vec<u64> = trace
            .iter()
            .filter(|r| r.addr >= 0x9000_0000 && r.addr < 0x9000_0000 + (1 << 22))
            .map(|r| r.addr)
            .collect();
        assert!(gathers.len() > 1000);
        // Consecutive gathers should have wildly varying deltas.
        let mut big_jumps = 0;
        for w2 in gathers.windows(2) {
            if w2[0].abs_diff(w2[1]) > 4096 {
                big_jumps += 1;
            }
        }
        assert!(
            big_jumps * 10 > gathers.len() * 8,
            "gathers must be irregular: {big_jumps}/{}",
            gathers.len()
        );
    }
}
