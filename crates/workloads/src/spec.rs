//! SPEC2017-like kernels. Each reproduces the published bottleneck
//! character of its namesake (see per-function docs), not its semantics.

use crate::common::{
    emit_filler_alu, emit_filler_dot, emit_hash_slice, fill_u64, init_ring, regs, rng_for, scaled,
};
use crate::{Input, Workload};
use crisp_emu::Memory;
use crisp_isa::{AluOp, Cond, Opcode, ProgramBuilder, Reg};
use rand::Rng;

const R1: Reg = Reg::new_const(1);
const R2: Reg = Reg::new_const(2);
const R3: Reg = Reg::new_const(3);
const R7: Reg = Reg::new_const(7);
const R8: Reg = Reg::new_const(8);
const R9: Reg = Reg::new_const(9);
const R10: Reg = Reg::new_const(10);
const R11: Reg = Reg::new_const(11);
const R12: Reg = Reg::new_const(12);
const R13: Reg = Reg::new_const(13);
const R18: Reg = Reg::new_const(18);
const R19: Reg = Reg::new_const(19);
const R20: Reg = Reg::new_const(20);

const RING_BASE: u64 = 0x1000_0000;
const RING2_BASE: u64 = 0x3000_0000;
const TABLE_BASE: u64 = 0x5000_0000;
const ARR_A: u64 = 0x10_0000;
const ARR_B: u64 = 0x12_0000;
const STREAM_BASE: u64 = 0x7000_0000;

/// `mcf`-like: network-simplex pointer chasing. Two interleaved
/// random-permutation rings (arcs and nodes) with the chase loads at the
/// bottom of the loop behind dense pricing arithmetic — high LLC MPKI,
/// MLP ≈ 2, deep reorder pressure. The paper's classic
/// delinquent-load-bound app.
pub fn mcf(input: Input) -> Workload {
    let nodes = scaled(input, 1 << 15, 1 << 16);
    let mut rng = rng_for(input, 0x6D63_6600);
    let mut memory = Memory::new();
    init_ring(&mut memory, RING_BASE, nodes, 64, &mut rng);
    init_ring(&mut memory, RING2_BASE, nodes, 64, &mut rng);
    fill_u64(&mut memory, ARR_A, 4096, |_| rng.gen::<u64>() >> 32);
    fill_u64(&mut memory, ARR_B, 4096, |_| rng.gen::<u64>() >> 32);

    let mut b = ProgramBuilder::new();
    b.li(R1, RING_BASE as i64);
    b.li(R3, RING2_BASE as i64);
    let top = b.label();
    b.bind(top);
    // Arc pricing: cost from the current arc, dense reduced-cost math.
    b.load(R2, R1, 8, 8); // val = arc->cost (delinquent)
    emit_filler_dot(&mut b, ARR_A as i64, ARR_B as i64, 26, R2);
    // Data-dependent pivot branch (hard, ~25% taken).
    b.alu_ri(AluOp::And, R18, R2, 3);
    let skip = b.label();
    b.branch(Cond::Ne, R18, Reg::ZERO, skip);
    emit_filler_alu(&mut b, 6);
    b.bind(skip);
    // Node potential update on the second structure.
    b.load(R19, R3, 8, 8); // node->potential (delinquent)
    b.alu_rr(AluOp::Add, regs::ACCS[0], regs::ACCS[0], R19);
    // The chases sit at the loop bottom (the Figure 2 pathology).
    b.load(R1, R1, 0, 8); // arc = arc->next
    b.load(R3, R3, 0, 8); // node = node->next
    b.jump(top);
    b.halt();

    Workload {
        name: "mcf",
        description: "network-simplex style dual pointer chase; delinquent loads at loop bottom behind dense pricing arithmetic; low MLP, high LLC MPKI",
        program: b.build(),
        memory,
    }
}

/// `lbm`-like: a streaming collision–propagation kernel whose loop time is
/// dominated by a *hard-to-predict collision branch*; load slicing alone
/// barely helps until branch slices resolve the branch early (the paper's
/// Section 3.4 motivation).
pub fn lbm(input: Input) -> Workload {
    let cells = scaled(input, 1 << 15, 1 << 16);
    let mut rng = rng_for(input, 0x6C62_6D00);
    let mut memory = Memory::new();
    // 64-byte cell records: a sequential field (streamed, prefetched) and a
    // far "neighbour" field reached with a 97-cell stride that defeats the
    // prefetchers.
    fill_u64(&mut memory, STREAM_BASE, cells * 8, |_| rng.gen::<u64>());
    fill_u64(&mut memory, ARR_A, 4096, |_| rng.gen::<u64>() >> 32);
    fill_u64(&mut memory, ARR_B, 4096, |_| rng.gen::<u64>() >> 32);

    let mut b = ProgramBuilder::new();
    b.li(R7, 0); // cell index
    b.li(R10, STREAM_BASE as i64);
    b.li(R11, (cells - 1) as i64); // index mask
    b.li(R12, 0x9E37_79B1u32 as i64);
    b.li(R13, 3);
    let top = b.label();
    b.bind(top);
    // Streaming cell fetch (BOP-covered).
    b.alu_ri(AluOp::And, R8, R7, (cells - 1) as i64);
    b.alu_ri(AluOp::Shl, R8, R8, 6);
    b.alu_rr(AluOp::Add, R9, R10, R8);
    b.load(R3, R9, 0, 8); // cell state (prefetched)
    b.load(R18, R9, 8, 8); // east distribution
                           // Collision decision: resolving the outcome needs a multiply + divide
                           // chain (~25 cycles) and the result is a coin flip, so every second
                           // iteration eats a late-resolving mispredict that stalls fetch — and
                           // with it the *independent* delinquent gathers below. Branch slices
                           // ({load, mul, div, and}) shorten exactly that resolve time
                           // (Section 3.4's lbm motivation).
    b.mul(R20, R3, R12);
    b.div(R20, R20, R13);
    b.mul(R20, R20, R12);
    b.alu_ri(AluOp::Shr, R20, R20, 11);
    b.alu_ri(AluOp::And, R20, R20, 1);
    let bounce = b.label();
    let join = b.label();
    b.branch(Cond::Ne, R20, Reg::ZERO, bounce);
    b.fp(Opcode::FAdd, R18, R18, R3);
    b.store(R9, 24, R18, 8);
    b.jump(join);
    b.bind(bounce);
    b.fp(Opcode::FMul, R18, R18, R3);
    b.store(R9, 32, R18, 8);
    b.bind(join);
    // Far-neighbour gather: independent across iterations (MLP-limited by
    // how far the frontend runs ahead), delinquent.
    b.mul(R19, R7, R13); // pseudo-neighbour index: i * 3 * 97
    b.mul(R19, R19, R12);
    b.alu_ri(AluOp::And, R19, R19, (cells * 8 - 8) as i64);
    b.alu_ri(AluOp::Shl, R19, R19, 3);
    b.alu_rr(AluOp::Add, R19, R19, R10);
    b.load(R2, R19, 0, 8); // far distribution (delinquent)
                           // Dense collision update dependent on the gathered value.
    emit_filler_dot(&mut b, ARR_A as i64, ARR_B as i64, 20, R2);
    b.alu_ri(AluOp::Add, R7, R7, 1);
    b.jump(top);
    b.halt();

    Workload {
        name: "lbm",
        description: "streaming collision kernel whose 50/50 branch resolves through a multiply/divide chain, gating independent far-neighbour gathers: branch slices unlock the load-slice benefit (Section 3.4/5.3)",
        program: b.build(),
        memory,
    }
}

/// `bwaves`-like: blocked solver with batches of *independent* large-stride
/// loads — high LLC MPKI but executed at high MLP, so the misses overlap
/// already. The paper's classifier rejects these loads (MLP gate); IBDA
/// tags them anyway and loses (Section 5.2).
pub fn bwaves(input: Input) -> Workload {
    let span = scaled(input, 1 << 17, 1 << 18); // u64 slots, 1-2 MiB per array
    let mut rng = rng_for(input, 0x6277_6100);
    let mut memory = Memory::new();
    fill_u64(&mut memory, STREAM_BASE, 64, |_| {
        (rng.gen::<u64>() % span) * 8
    });
    fill_u64(&mut memory, ARR_A, 4096, |_| rng.gen::<u64>() >> 32);
    fill_u64(&mut memory, ARR_B, 4096, |_| rng.gen::<u64>() >> 32);

    let mut b = ProgramBuilder::new();
    b.li(R10, STREAM_BASE as i64); // offset table
    b.li(R11, 0x9000_0000); // matrix base
    b.li(R7, 0); // block counter
    let top = b.label();
    b.bind(top);
    // Load 8 precomputed offsets (L1 hits) and issue 8 *independent*
    // wide-stride loads: MLP 8, misses overlap regardless of scheduling.
    for k in 0..8 {
        b.load(R8, R10, 8 * k, 8);
        b.alu_rr(AluOp::Add, R9, R11, R8);
        b.load(R18, R9, 0, 8);
        b.alu_rr(
            AluOp::Add,
            regs::ACCS[(k % 4) as usize],
            regs::ACCS[(k % 4) as usize],
            R18,
        );
        // Rotate the offset so each block touches new rows.
        b.alu_ri(AluOp::Add, R8, R8, 4096 * 8 + 64);
        b.alu_ri(AluOp::And, R8, R8, (span * 8 - 1) as i64);
        b.store(R10, 8 * k, R8, 8);
    }
    // FP block between miss batches.
    emit_filler_dot(&mut b, ARR_A as i64, ARR_B as i64, 10, R18);
    b.alu_ri(AluOp::Add, R7, R7, 1);
    let wrap = b.label();
    b.branch(Cond::Ltu, R7, R12, wrap); // R12 = 0 => never taken; fallthrough
    b.bind(wrap);
    b.jump(top);
    b.halt();

    Workload {
        name: "bwaves",
        description: "batched independent wide-stride loads at MLP 8: high MPKI that is already overlapped; CRISP's MLP gate rejects them, IBDA tags them and regresses",
        program: b.build(),
        memory,
    }
}

/// `cactusBSSN`-like: multi-stream stencil sweeps (prefetch-friendly) plus
/// one indirect gather and a moderately-biased boundary branch per point —
/// modest load-slice and branch-slice gains that *combine* (Figure 8
/// synergy group).
pub fn cactus(input: Input) -> Workload {
    let span = scaled(input, 1 << 17, 1 << 18);
    let mut rng = rng_for(input, 0x6361_6300);
    let mut memory = Memory::new();
    fill_u64(&mut memory, STREAM_BASE, span, |_| rng.gen::<u64>());
    let idx_entries = 1 << 12;
    fill_u64(&mut memory, TABLE_BASE, idx_entries, |_| {
        (rng.gen::<u64>() % span) * 8
    });
    fill_u64(&mut memory, ARR_A, 4096, |_| rng.gen::<u64>() >> 32);
    fill_u64(&mut memory, ARR_B, 4096, |_| rng.gen::<u64>() >> 32);

    let mut b = ProgramBuilder::new();
    b.li(R7, 0);
    b.li(R10, STREAM_BASE as i64);
    b.li(R11, TABLE_BASE as i64);
    b.li(R12, 0x9000_0000);
    let top = b.label();
    b.bind(top);
    b.alu_ri(AluOp::And, R8, R7, (span - 4) as i64);
    b.alu_ri(AluOp::Shl, R8, R8, 3);
    b.alu_rr(AluOp::Add, R9, R10, R8);
    // Stencil: three streaming loads + FP chain.
    b.load(R18, R9, 0, 8);
    b.load(R19, R9, 8, 8);
    b.load(R20, R9, 16, 8);
    b.fp(Opcode::FMa, R18, R18, R19);
    b.fp(Opcode::FAdd, R18, R18, R20);
    b.store(R9, 24, R18, 8);
    // Indirect curvature gather (delinquent): idx -> big array.
    b.alu_ri(AluOp::And, R2, R7, (idx_entries - 1) as i64);
    b.alu_ri(AluOp::Shl, R2, R2, 3);
    b.alu_rr(AluOp::Add, R2, R2, R11);
    b.load(R3, R2, 0, 8); // offset (L1/LLC)
    b.alu_rr(AluOp::Add, R3, R3, R12);
    b.load(R2, R3, 0, 8); // gather (delinquent, loop bottom-ish)
                          // Boundary branch: biased ~75/25 on gathered data.
    b.alu_ri(AluOp::And, R18, R2, 3);
    let inner_pt = b.label();
    b.branch(Cond::Ne, R18, Reg::ZERO, inner_pt);
    emit_filler_alu(&mut b, 8); // boundary fix-up
    b.bind(inner_pt);
    emit_filler_dot(&mut b, ARR_A as i64, ARR_B as i64, 18, R2);
    b.alu_ri(AluOp::Add, R7, R7, 1);
    b.jump(top);
    b.halt();

    Workload {
        name: "cactus",
        description: "stencil sweeps plus an indirect curvature gather and a 75/25 boundary branch; modest load and branch slice gains that combine super-additively",
        program: b.build(),
        memory,
    }
}

/// `deepsjeng`-like: transposition-table probing. A 4-instruction hash
/// slice feeds a delinquent table load; a data-dependent cutoff branch
/// (~30 % mispredict) gates the search path — branch slices alone give
/// >3 % (Figure 8's branch group).
pub fn deepsjeng(input: Input) -> Workload {
    let table_slots = scaled(input, 1 << 17, 1 << 18); // 1-2 MiB
    let mut rng = rng_for(input, 0x646A_7300);
    let mut memory = Memory::new();
    fill_u64(&mut memory, TABLE_BASE, table_slots, |_| rng.gen::<u64>());
    fill_u64(&mut memory, ARR_A, 4096, |_| rng.gen::<u64>() >> 32);
    fill_u64(&mut memory, ARR_B, 4096, |_| rng.gen::<u64>() >> 32);

    let mut b = ProgramBuilder::new();
    b.li(R2, 0x1234_5678_9ABC_DEF0u64 as i64); // position key
    b.li(R10, TABLE_BASE as i64);
    b.li(R11, 0x9E37_79B9); // hash multiplier
    let top = b.label();
    b.bind(top);
    // Move generation filler (ALU heavy).
    emit_filler_alu(&mut b, 10);
    // Position key evolution (xorshift).
    b.alu_ri(AluOp::Shl, R18, R2, 13);
    b.alu_rr(AluOp::Xor, R2, R2, R18);
    b.alu_ri(AluOp::Shr, R18, R2, 7);
    b.alu_rr(AluOp::Xor, R2, R2, R18);
    // Hash slice -> transposition-table probe (delinquent).
    emit_hash_slice(&mut b, R9, R2, R11, 17, (table_slots - 1) as i64);
    b.alu_rr(AluOp::Add, R9, R9, R10);
    b.load(R3, R9, 0, 8); // probe
                          // Cutoff branch: compares hashed entry to key bits — ~50/50.
    b.alu_rr(AluOp::Xor, R18, R3, R2);
    b.alu_ri(AluOp::And, R18, R18, 1);
    let cut = b.label();
    let cont = b.label();
    b.branch(Cond::Eq, R18, Reg::ZERO, cut);
    emit_filler_dot(&mut b, ARR_A as i64, ARR_B as i64, 16, R3);
    b.jump(cont);
    b.bind(cut);
    b.store(R9, 0, R2, 8); // table update
    emit_filler_alu(&mut b, 6);
    b.bind(cont);
    b.jump(top);
    b.halt();

    Workload {
        name: "deepsjeng",
        description: "transposition-table probe: hash slice into a delinquent table load plus a ~50/50 cutoff branch; branch slices alone contribute >3%",
        program: b.build(),
        memory,
    }
}

/// `fotonik3d`-like: FDTD field sweeps that prefetchers mostly cover, with
/// a *wide* but shallow address-generation web. CRISP's critical-path
/// filter keeps tagging lean; IBDA floods its priority with the whole web
/// and regresses (the Section 5.2 fotonik case).
pub fn fotonik3d(input: Input) -> Workload {
    let span = scaled(input, 1 << 17, 1 << 18);
    let mut rng = rng_for(input, 0x666F_7400);
    let mut memory = Memory::new();
    fill_u64(&mut memory, STREAM_BASE, span, |_| rng.gen::<u64>());
    fill_u64(&mut memory, ARR_A, 4096, |_| rng.gen::<u64>() >> 32);
    fill_u64(&mut memory, ARR_B, 4096, |_| rng.gen::<u64>() >> 32);
    init_ring(
        &mut memory,
        RING_BASE,
        scaled(input, 1 << 13, 1 << 14),
        64,
        &mut rng,
    );

    let mut b = ProgramBuilder::new();
    b.li(R7, 0);
    b.li(R10, STREAM_BASE as i64);
    b.li(R1, RING_BASE as i64);
    let top = b.label();
    b.bind(top);
    // Wide address web: many cheap index computations feeding streaming
    // loads (every one is an "address-generating instruction" to IBDA).
    for k in 0..4i64 {
        b.alu_ri(AluOp::Add, R8, R7, k * 3);
        b.alu_ri(AluOp::And, R8, R8, (span - 8) as i64);
        b.alu_ri(AluOp::Shl, R8, R8, 3);
        b.alu_rr(AluOp::Add, R9, R10, R8);
        b.load(R18, R9, 0, 8);
        b.fp(
            Opcode::FAdd,
            regs::ACCS[(k % 4) as usize],
            regs::ACCS[(k % 4) as usize],
            R18,
        );
        b.store(R9, 8, R18, 8);
    }
    // Small irregular component with a payload-dependent update.
    b.load(R2, R1, 8, 8);
    emit_filler_dot(&mut b, ARR_A as i64, ARR_B as i64, 5, R2);
    b.alu_rr(AluOp::Add, regs::ACCS[2], regs::ACCS[2], R2);
    b.load(R1, R1, 0, 8);
    // Predictable sweep branch.
    b.alu_ri(AluOp::Add, R7, R7, 1);
    b.alu_ri(AluOp::And, R19, R7, 1023);
    let cont = b.label();
    b.branch(Cond::Ne, R19, Reg::ZERO, cont);
    emit_filler_alu(&mut b, 4);
    b.bind(cont);
    b.jump(top);
    b.halt();

    Workload {
        name: "fotonik3d",
        description: "FDTD field sweeps largely covered by prefetching, plus a wide shallow address web: IBDA over-tags it and regresses, CRISP's critical-path filter stays lean",
        program: b.build(),
        memory,
    }
}

/// `gcc`-like: a big-footprint pass pipeline — an indirect dispatch over
/// dozens of distinct handler blocks (instruction-cache pressure, >10K
/// critical instructions in Figure 11) doing symbol-table hashing and
/// IR pointer chasing.
pub fn gcc(input: Input) -> Workload {
    let handlers = 64i64;
    let table_slots = scaled(input, 1 << 18, 1 << 19);
    let mut rng = rng_for(input, 0x6763_6300);
    let mut memory = Memory::new();
    fill_u64(&mut memory, TABLE_BASE, table_slots, |_| rng.gen::<u64>());
    init_ring(
        &mut memory,
        RING_BASE,
        scaled(input, 1 << 14, 1 << 15),
        64,
        &mut rng,
    );
    fill_u64(&mut memory, ARR_A, 4096, |_| rng.gen::<u64>() >> 32);
    fill_u64(&mut memory, ARR_B, 4096, |_| rng.gen::<u64>() >> 32);

    const JUMPTAB: u64 = 0x6000_0000;
    let mut b = ProgramBuilder::new();
    b.li(R1, RING_BASE as i64); // IR node cursor
    b.li(R10, TABLE_BASE as i64);
    b.li(R11, 0x9E37_79B9);
    b.li(R12, JUMPTAB as i64);
    b.li(R7, 0); // dispatch counter
    b.li(R2, 1); // opcode seed
    let dispatch = b.label();
    b.bind(dispatch);
    // Pick the next pass round-robin (the indirect target predictor can
    // learn the repeating pattern, like real pass pipelines); the node
    // payload feeds the handler's hashing instead.
    b.load(R2, R1, 8, 8); // node payload (delinquent)
    b.alu_ri(AluOp::And, R8, R7, handlers - 1);
    b.alu_ri(AluOp::Shl, R8, R8, 3);
    b.alu_rr(AluOp::Add, R8, R8, R12);
    b.load(R9, R8, 0, 8); // handler pc from jump table
    b.load(R1, R1, 0, 8); // advance IR cursor (delinquent chase)
                          // Periodic GC-check branch (predictable, taken 1/64).
    b.alu_ri(AluOp::Add, R7, R7, 1);
    b.alu_ri(AluOp::And, R18, R7, 63);
    let no_gc = b.label();
    b.branch(Cond::Ne, R18, Reg::ZERO, no_gc);
    emit_filler_alu(&mut b, 4);
    b.bind(no_gc);
    b.jump_ind(R9);
    // Handlers: distinct code blocks (static footprint), each hashing into
    // the symbol table and accumulating.
    let mut handler_pcs = Vec::new();
    for h in 0..handlers {
        handler_pcs.push(b.here());
        b.alu_ri(AluOp::Xor, R18, R2, h * 0x55);
        emit_hash_slice(&mut b, R9, R18, R11, 13, (table_slots - 1) as i64);
        b.alu_rr(AluOp::Add, R9, R9, R10);
        b.load(R3, R9, 0, 8); // symbol probe (delinquent)
        b.alu_rr(
            AluOp::Add,
            regs::ACCS[(h % 4) as usize],
            regs::ACCS[(h % 4) as usize],
            R3,
        );
        emit_filler_alu(&mut b, 6 + (h % 5));
        emit_filler_dot(&mut b, ARR_A as i64, ARR_B as i64, 12 + (h % 3), R3);
        b.jump(dispatch);
    }
    b.halt();
    let program = b.build();
    for (i, pc) in handler_pcs.iter().enumerate() {
        memory.write_u64(JUMPTAB + 8 * i as u64, u64::from(*pc));
    }

    Workload {
        name: "gcc",
        description: "pass pipeline with 48 distinct handler blocks behind an indirect dispatch: large code footprint, symbol-table hash probes and IR pointer chasing; >10K critical instructions",
        program,
        memory,
    }
}

/// `nab`-like: molecular dynamics neighbour lists — a streaming index load
/// feeding an indirect position gather, a cutoff branch (~25 %
/// mispredict), and an FP force block. Load + branch slices both matter.
pub fn nab(input: Input) -> Workload {
    let positions = scaled(input, 1 << 17, 1 << 18);
    let nbr_entries = 1 << 14;
    let mut rng = rng_for(input, 0x6E61_6200);
    let mut memory = Memory::new();
    fill_u64(&mut memory, TABLE_BASE, nbr_entries, |_| {
        (rng.gen::<u64>() % positions) * 8
    });
    fill_u64(&mut memory, STREAM_BASE, positions, |_| rng.gen::<u64>());
    fill_u64(&mut memory, ARR_A, 4096, |_| rng.gen::<u64>() >> 32);
    fill_u64(&mut memory, ARR_B, 4096, |_| rng.gen::<u64>() >> 32);

    let mut b = ProgramBuilder::new();
    b.li(R7, 0);
    b.li(R10, TABLE_BASE as i64);
    b.li(R11, STREAM_BASE as i64);
    let top = b.label();
    b.bind(top);
    b.alu_ri(AluOp::And, R8, R7, (nbr_entries - 1) as i64);
    b.alu_ri(AluOp::Shl, R8, R8, 3);
    b.alu_rr(AluOp::Add, R8, R8, R10);
    b.load(R9, R8, 0, 8); // neighbour index (streaming)
    b.alu_rr(AluOp::Add, R9, R9, R11);
    b.load(R2, R9, 0, 8); // position gather (delinquent)
                          // Cutoff branch on gathered distance bits (~25% taken).
    b.alu_ri(AluOp::And, R18, R2, 3);
    let skip = b.label();
    b.branch(Cond::Ne, R18, Reg::ZERO, skip);
    // In-cutoff: expensive force computation.
    b.fp(Opcode::FMul, R19, R2, R2);
    b.fp(Opcode::FAdd, R19, R19, R2);
    b.div(R20, R19, R2);
    b.alu_rr(AluOp::Add, regs::ACCS[0], regs::ACCS[0], R20);
    b.bind(skip);
    emit_filler_dot(&mut b, ARR_A as i64, ARR_B as i64, 20, R2);
    b.alu_ri(AluOp::Add, R7, R7, 1);
    b.jump(top);
    b.halt();

    Workload {
        name: "nab",
        description: "neighbour-list position gathers behind streaming index loads, a 75/25 cutoff branch gating a divide-heavy force block; branch slices contribute >3%",
        program: b.build(),
        memory,
    }
}

/// `namd`-like: pair-list gathers whose address chain passes through a
/// **register spill on the stack** — the dependence-through-memory case
/// that register-only IBDA cannot slice (Section 5.2's namd failure).
pub fn namd(input: Input) -> Workload {
    let positions = scaled(input, 1 << 17, 1 << 18);
    let pairs = 1 << 14;
    let mut rng = rng_for(input, 0x6E61_6D00);
    let mut memory = Memory::new();
    fill_u64(&mut memory, TABLE_BASE, pairs, |_| {
        (rng.gen::<u64>() % positions) * 8
    });
    fill_u64(&mut memory, STREAM_BASE, positions, |_| rng.gen::<u64>());
    fill_u64(&mut memory, ARR_A, 4096, |_| rng.gen::<u64>() >> 32);
    fill_u64(&mut memory, ARR_B, 4096, |_| rng.gen::<u64>() >> 32);

    const STACK: u64 = 0x20_0000;
    let mut b = ProgramBuilder::new();
    b.li(Reg::SP, STACK as i64);
    b.li(R7, 0);
    b.li(R10, TABLE_BASE as i64);
    b.li(R11, STREAM_BASE as i64);
    let top = b.label();
    b.bind(top);
    b.alu_ri(AluOp::And, R8, R7, (pairs - 1) as i64);
    b.alu_ri(AluOp::Shl, R8, R8, 3);
    b.alu_rr(AluOp::Add, R8, R8, R10);
    b.load(R9, R8, 0, 8); // pair index
    b.alu_rr(AluOp::Add, R9, R9, R11); // gather address
                                       // Force-block on the *previous* gather: the dense burst that competes
                                       // with this iteration's address chain under oldest-ready-first.
    emit_filler_dot(&mut b, ARR_A as i64, ARR_B as i64, 20, R2);
    // Spill the gather address (register pressure), clobber, reload: the
    // spill store is *younger* than the burst above, so only a slicer that
    // can follow the dependence through memory will tag and promote it —
    // register-only IBDA leaves the whole chain waiting (Section 5.2).
    b.store(Reg::SP, 0, R9, 8);
    b.li(R9, 0); // clobber
    b.load(R9, Reg::SP, 0, 8); // reload through memory
    b.load(R2, R9, 0, 8); // position gather (delinquent)
    b.fp(Opcode::FMa, regs::ACCS[1], regs::ACCS[1], R2);
    // Mildly-biased exclusion branch.
    b.alu_ri(AluOp::And, R18, R2, 7);
    let cont = b.label();
    b.branch(Cond::Ne, R18, Reg::ZERO, cont);
    emit_filler_alu(&mut b, 5);
    b.bind(cont);
    b.alu_ri(AluOp::Add, R7, R7, 1);
    b.jump(top);
    b.halt();

    Workload {
        name: "namd",
        description: "pair-list gathers whose address chain passes through a stack spill: CRISP slices through memory, register-only IBDA misses the slice entirely",
        program: b.build(),
        memory,
    }
}

/// `perlbench`-like: a bytecode interpreter — indirect dispatch with a
/// data-dependent target, per-op hash-table lookups, and a very large set
/// of address-generating instructions. IBDA over-selects and regresses;
/// CRISP's filtered slices stay profitable (Section 5.2).
pub fn perlbench(input: Input) -> Workload {
    let ops = 32i64;
    let table_slots = scaled(input, 1 << 18, 1 << 19);
    let bytecode_len = 1 << 12;
    let mut rng = rng_for(input, 0x7065_7200);
    let mut memory = Memory::new();
    fill_u64(&mut memory, TABLE_BASE, table_slots, |_| rng.gen::<u64>());
    const BYTECODE: u64 = 0x6800_0000;
    fill_u64(&mut memory, BYTECODE, bytecode_len, |_| {
        rng.gen::<u64>() % ops as u64
    });
    fill_u64(&mut memory, ARR_A, 4096, |_| rng.gen::<u64>() >> 32);
    fill_u64(&mut memory, ARR_B, 4096, |_| rng.gen::<u64>() >> 32);

    const JUMPTAB: u64 = 0x6000_0000;
    let mut b = ProgramBuilder::new();
    b.li(R7, 0); // interpreter pc
    b.li(R10, TABLE_BASE as i64);
    b.li(R11, 0x9E37_79B9);
    b.li(R12, JUMPTAB as i64);
    b.li(R19, BYTECODE as i64);
    let dispatch = b.label();
    b.bind(dispatch);
    b.alu_ri(AluOp::And, R8, R7, (bytecode_len - 1) as i64);
    b.alu_ri(AluOp::Shl, R8, R8, 3);
    b.alu_rr(AluOp::Add, R8, R8, R19);
    b.load(R2, R8, 0, 8); // opcode fetch
    b.alu_ri(AluOp::Shl, R9, R2, 3);
    b.alu_rr(AluOp::Add, R9, R9, R12);
    b.load(R9, R9, 0, 8); // handler target (data-dependent)
    b.alu_ri(AluOp::Add, R7, R7, 1);
    // Signal-check branch (predictable, almost never taken).
    b.alu_ri(AluOp::And, R18, R7, 255);
    let no_sig = b.label();
    b.branch(Cond::Ne, R18, Reg::ZERO, no_sig);
    emit_filler_alu(&mut b, 3);
    b.bind(no_sig);
    b.jump_ind(R9); // hard-to-predict indirect jump
    let mut handler_pcs = Vec::new();
    for h in 0..ops {
        handler_pcs.push(b.here());
        // Roll entropy into the interpreter state (R20 accumulates a
        // xorshift of every opcode seen), then hash it (delinquent probe).
        b.alu_rr(AluOp::Add, R20, R20, R2);
        b.alu_ri(AluOp::Shl, R18, R20, 13);
        b.alu_rr(AluOp::Xor, R20, R20, R18);
        b.alu_ri(AluOp::Shr, R18, R20, 7);
        b.alu_rr(AluOp::Xor, R20, R20, R18);
        b.alu_ri(AluOp::Xor, R18, R20, h * 0x101);
        emit_hash_slice(&mut b, R3, R18, R11, 11, (table_slots - 1) as i64);
        b.alu_rr(AluOp::Add, R3, R3, R10);
        b.load(regs::T3, R3, 0, 8);
        b.alu_rr(
            AluOp::Add,
            regs::ACCS[(h % 4) as usize],
            regs::ACCS[(h % 4) as usize],
            regs::T3,
        );
        emit_filler_alu(&mut b, 4 + (h % 4));
        emit_filler_dot(&mut b, ARR_A as i64, ARR_B as i64, 12, regs::T3);
        b.jump(dispatch);
    }
    b.halt();
    let program = b.build();
    for (i, pc) in handler_pcs.iter().enumerate() {
        memory.write_u64(JUMPTAB + 8 * i as u64, u64::from(*pc));
    }

    Workload {
        name: "perlbench",
        description: "bytecode interpreter: data-dependent indirect dispatch over 32 handlers plus per-op hash probes; huge address-generating set that IBDA floods itself with",
        program,
        memory,
    }
}

/// `xz`-like: LZMA match finding — hash-chain walks with a data-dependent
/// chain-exit branch and byte-granularity loads.
pub fn xz(input: Input) -> Workload {
    let window = scaled(input, 1 << 20, 1 << 21); // bytes
    let hash_slots = 1 << 15;
    let mut rng = rng_for(input, 0x787A_0000);
    let mut memory = Memory::new();
    const WINDOW: u64 = 0x9000_0000;
    for i in 0..(window / 8) {
        memory.write_u64(WINDOW + i * 8, rng.gen::<u64>());
    }
    fill_u64(&mut memory, TABLE_BASE, hash_slots, |_| {
        WINDOW + (rng.gen::<u64>() % (window - 64))
    });
    fill_u64(&mut memory, ARR_A, 4096, |_| rng.gen::<u64>() >> 32);
    fill_u64(&mut memory, ARR_B, 4096, |_| rng.gen::<u64>() >> 32);

    let mut b = ProgramBuilder::new();
    b.li(R7, 0); // window position
    b.li(R10, WINDOW as i64);
    b.li(R11, TABLE_BASE as i64);
    b.li(R12, 0x9E37_79B9);
    let top = b.label();
    b.bind(top);
    b.alu_ri(AluOp::And, R8, R7, (window - 16) as i64);
    b.alu_rr(AluOp::Add, R8, R8, R10);
    b.load(R2, R8, 0, 4); // next 4 bytes
    emit_hash_slice(&mut b, R9, R2, R12, 15, (hash_slots - 1) as i64);
    b.alu_rr(AluOp::Add, R9, R9, R11);
    b.load(R3, R9, 0, 8); // hash head -> candidate position (delinquent)
    b.load(R18, R3, 0, 4); // candidate bytes (delinquent, dependent)
                           // Match test: data-dependent, hard.
    b.alu_rr(AluOp::Xor, R19, R18, R2);
    b.alu_ri(AluOp::And, R19, R19, 0xFF);
    let nomatch = b.label();
    b.branch(Cond::Ne, R19, Reg::ZERO, nomatch);
    emit_filler_dot(&mut b, ARR_A as i64, ARR_B as i64, 6, R18); // extend match
    b.bind(nomatch);
    b.store(R9, 0, R8, 8); // update hash head
    emit_filler_dot(&mut b, ARR_A as i64, ARR_B as i64, 12, R18); // range coder
    emit_filler_alu(&mut b, 5);
    b.alu_ri(AluOp::Add, R7, R7, 7);
    b.jump(top);
    b.halt();

    Workload {
        name: "xz",
        description: "LZMA-style match finder: hash-head load feeding a dependent candidate load (two-deep delinquent chain) and a data-dependent match branch",
        program: b.build(),
        memory,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Input;
    use crisp_emu::Emulator;
    use std::collections::HashSet;

    fn trace_of(w: &Workload, n: u64) -> crisp_isa::Trace {
        Emulator::new(&w.program, w.memory.clone()).run(n)
    }

    #[test]
    fn mcf_walks_two_disjoint_rings() {
        let w = mcf(Input::Train);
        let t = trace_of(&w, 60_000);
        let ring1: HashSet<u64> = t
            .iter()
            .filter(|r| (RING_BASE..RING2_BASE).contains(&r.addr))
            .map(|r| r.addr & !63)
            .collect();
        let ring2: HashSet<u64> = t
            .iter()
            .filter(|r| r.addr >= RING2_BASE && r.addr < TABLE_BASE)
            .map(|r| r.addr & !63)
            .collect();
        assert!(ring1.len() > 100, "arc ring walked: {}", ring1.len());
        assert!(ring2.len() > 100, "node ring walked: {}", ring2.len());
        assert!(ring1.is_disjoint(&ring2));
    }

    #[test]
    fn lbm_collision_branch_is_a_coin_flip() {
        let w = lbm(Input::Train);
        let t = trace_of(&w, 60_000);
        // The first conditional branch in the program is the collision
        // decision; its taken ratio must be near 50%.
        let branch_pc = w
            .program
            .iter()
            .find(|(_, i)| i.op.is_cond_branch())
            .map(|(pc, _)| pc)
            .expect("collision branch");
        let (mut taken, mut total) = (0u64, 0u64);
        for r in &t {
            if r.pc == branch_pc {
                total += 1;
                taken += u64::from(r.taken);
            }
        }
        let ratio = taken as f64 / total.max(1) as f64;
        assert!((0.4..0.6).contains(&ratio), "collision ratio {ratio}");
    }

    #[test]
    fn lbm_gathers_are_spread_beyond_prefetch_reach() {
        let w = lbm(Input::Train);
        let t = trace_of(&w, 60_000);
        // Gather loads (to STREAM_BASE region, not 64-byte-sequential).
        let gathers: Vec<u64> = t
            .iter()
            .filter(|r| w.program.inst(r.pc).is_load() && r.addr >= STREAM_BASE && r.addr != 0)
            .map(|r| r.addr)
            .collect();
        assert!(gathers.len() > 1000);
    }

    #[test]
    fn bwaves_issues_batches_of_independent_offsets() {
        let w = bwaves(Input::Train);
        let t = trace_of(&w, 30_000);
        // The 8 wide-stride loads per block target 8 distinct rows.
        let wide: Vec<u64> = t
            .iter()
            .filter(|r| r.addr >= 0x9000_0000)
            .map(|r| r.addr / 8192)
            .take(8)
            .collect();
        let distinct: HashSet<u64> = wide.iter().copied().collect();
        assert!(distinct.len() >= 6, "MLP batch rows: {distinct:?}");
    }

    #[test]
    fn namd_passes_the_gather_address_through_memory() {
        let w = namd(Input::Train);
        let t = trace_of(&w, 30_000);
        // Spill store and reload to the stack page must both appear.
        let spills = t
            .iter()
            .filter(|r| w.program.inst(r.pc).is_store() && (0x20_0000..0x20_1000).contains(&r.addr))
            .count();
        let reloads = t
            .iter()
            .filter(|r| w.program.inst(r.pc).is_load() && (0x20_0000..0x20_1000).contains(&r.addr))
            .count();
        assert!(spills > 50, "spill stores: {spills}");
        // The fixed-length trace may end between a spill and its reload,
        // so the counts are allowed to differ by the one cut-off pair.
        assert!(
            spills - reloads <= 1,
            "every spill is reloaded (spills {spills}, reloads {reloads})"
        );
    }

    #[test]
    fn gcc_dispatch_reaches_every_handler() {
        let w = gcc(Input::Train);
        let t = trace_of(&w, 120_000);
        // Handlers start right after each jump back to dispatch; count
        // distinct indirect-jump targets instead.
        let targets: HashSet<u32> = t
            .iter()
            .filter(|r| w.program.inst(r.pc).op == crisp_isa::Opcode::JumpInd)
            .map(|r| r.next_pc)
            .collect();
        assert_eq!(targets.len(), 64, "all 64 passes dispatched");
    }

    #[test]
    fn perlbench_touches_a_wide_hash_range() {
        let w = perlbench(Input::Train);
        let t = trace_of(&w, 120_000);
        let lines: HashSet<u64> = t
            .iter()
            .filter(|r| (TABLE_BASE..TABLE_BASE + (1 << 24)).contains(&r.addr))
            .map(|r| r.addr & !63)
            .collect();
        assert!(lines.len() > 500, "hash probes spread: {}", lines.len());
    }

    #[test]
    fn xz_reads_bytes_and_words() {
        let w = xz(Input::Train);
        let widths: HashSet<u64> = w
            .program
            .iter()
            .filter(|(_, i)| i.is_load())
            .map(|(_, i)| i.width.bytes())
            .collect();
        assert!(widths.contains(&4), "4-byte window reads");
        assert!(widths.contains(&8), "8-byte table reads");
    }

    #[test]
    fn deepsjeng_probe_addresses_are_hash_spread() {
        let w = deepsjeng(Input::Train);
        let t = trace_of(&w, 60_000);
        let probes: Vec<u64> = t
            .iter()
            .filter(|r| {
                w.program.inst(r.pc).is_load()
                    && (TABLE_BASE..TABLE_BASE + (1 << 24)).contains(&r.addr)
            })
            .map(|r| r.addr)
            .collect();
        assert!(probes.len() > 500);
        // Consecutive probes should rarely land in the same 4 KiB page.
        let same_page = probes
            .windows(2)
            .filter(|w2| w2[0] >> 12 == w2[1] >> 12)
            .count();
        assert!(
            same_page * 10 < probes.len(),
            "probes must be spread: {same_page}/{}",
            probes.len()
        );
    }

    #[test]
    fn fotonik_and_cactus_mix_streams_with_irregular_accesses() {
        for w in [fotonik3d(Input::Train), cactus(Input::Train)] {
            let t = trace_of(&w, 40_000);
            let stats = t.stats(&w.program);
            assert!(stats.stores > 250, "{}: stencils store", w.name);
            assert!(stats.loads > 5_000, "{}: stencils load", w.name);
        }
    }

    #[test]
    fn nab_cutoff_branch_is_biased_not_balanced() {
        let w = nab(Input::Train);
        let t = trace_of(&w, 60_000);
        let branch_pc = w
            .program
            .iter()
            .find(|(_, i)| i.op.is_cond_branch())
            .map(|(pc, _)| pc)
            .expect("cutoff branch");
        let (mut taken, mut total) = (0u64, 0u64);
        for r in &t {
            if r.pc == branch_pc {
                total += 1;
                taken += u64::from(r.taken);
            }
        }
        let ratio = taken as f64 / total.max(1) as f64;
        // ~75% taken (skip the force block 3 times out of 4).
        assert!((0.6..0.9).contains(&ratio), "cutoff ratio {ratio}");
    }
}
