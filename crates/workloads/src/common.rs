//! Shared construction helpers for the workload builders.

use crate::Input;
use crisp_emu::Memory;
use crisp_isa::{AluOp, ProgramBuilder, Reg};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic RNG; train and ref inputs use different streams.
pub fn rng_for(input: Input, salt: u64) -> SmallRng {
    let seed = match input {
        Input::Train => 0x5EED_0000_0000_0001 ^ salt,
        Input::Ref => 0x5EED_0000_0000_0002 ^ salt.rotate_left(17),
    };
    SmallRng::seed_from_u64(seed)
}

/// Picks a structure size by input set.
pub fn scaled(input: Input, train: u64, reference: u64) -> u64 {
    match input {
        Input::Train => train,
        Input::Ref => reference,
    }
}

/// Initialises a random-permutation ring of `nodes` records of
/// `node_bytes` each at `base`: `mem[node] = next_node_address`, and a
/// random payload at `node + 8`. The permutation is a single cycle, so a
/// pointer chase visits every node — the canonical hard-to-prefetch
/// pattern.
pub fn init_ring(mem: &mut Memory, base: u64, nodes: u64, node_bytes: u64, rng: &mut SmallRng) {
    let mut order: Vec<u64> = (0..nodes).collect();
    // Fisher-Yates shuffle.
    for i in (1..nodes as usize).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    for w in 0..nodes as usize {
        let cur = order[w];
        let next = order[(w + 1) % nodes as usize];
        mem.write_u64(base + cur * node_bytes, base + next * node_bytes);
        mem.write_u64(base + cur * node_bytes + 8, rng.gen::<u64>());
    }
}

/// Fills `n` consecutive u64 slots at `base` from a generator.
pub fn fill_u64(mem: &mut Memory, base: u64, n: u64, mut f: impl FnMut(u64) -> u64) {
    for i in 0..n {
        mem.write_u64(base + 8 * i, f(i));
    }
}

/// Registers conventionally used by the emit helpers (r10–r17 are left to
/// the individual workloads).
pub mod regs {
    use crisp_isa::Reg;
    /// Scratch register A.
    pub const T1: Reg = Reg::new_const(4);
    /// Scratch register B.
    pub const T2: Reg = Reg::new_const(5);
    /// Scratch register C.
    pub const T3: Reg = Reg::new_const(6);
    /// Rotating accumulators.
    pub const ACCS: [Reg; 4] = [
        Reg::new_const(24),
        Reg::new_const(25),
        Reg::new_const(26),
        Reg::new_const(27),
    ];
}

/// Emits an unrolled "dot product" filler block: per element two
/// always-ready loads, a multiply against `val`, and an accumulate into a
/// rotating accumulator. This is the dense independent work that keeps the
/// machine busy (UPC ≈ 6) so that oldest-ready-first scheduling starves
/// younger critical loads — the Figure 1 setup.
pub fn emit_filler_dot(b: &mut ProgramBuilder, a_base: i64, b_base: i64, elems: i64, val: Reg) {
    for e in 0..elems {
        b.load(regs::T1, Reg::ZERO, a_base + 8 * e, 8);
        b.load(regs::T2, Reg::ZERO, b_base + 8 * e, 8);
        b.mul(regs::T1, regs::T1, val);
        b.alu_rr(AluOp::Xor, regs::T2, regs::T2, regs::T1);
        let acc = regs::ACCS[(e % 4) as usize];
        b.alu_rr(AluOp::Add, acc, acc, regs::T2);
    }
}

/// Emits a pure-ALU filler block (shifts/xors over the accumulators) —
/// independent work with no memory traffic, used by branch-bound kernels.
pub fn emit_filler_alu(b: &mut ProgramBuilder, ops: i64) {
    for e in 0..ops {
        let acc = regs::ACCS[(e % 4) as usize];
        match e % 3 {
            0 => b.alu_ri(AluOp::Xor, acc, acc, 0x9E37),
            1 => b.alu_ri(AluOp::Add, acc, acc, 0x79B9),
            _ => b.alu_ri(AluOp::Shl, acc, acc, 1),
        };
    }
}

/// Emits the address-hash slice `dst = ((key * C) >> shift) & mask` — a
/// 4-instruction address-generating chain, the typical hash-table probe
/// slice (deepsjeng / memcached / moses character).
pub fn emit_hash_slice(
    b: &mut ProgramBuilder,
    dst: Reg,
    key: Reg,
    mult: Reg,
    shift: i64,
    mask: i64,
) {
    b.mul(dst, key, mult);
    b.alu_ri(AluOp::Shr, dst, dst, shift);
    b.alu_ri(AluOp::And, dst, dst, mask);
    b.alu_ri(AluOp::Shl, dst, dst, 3);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Input;

    #[test]
    fn rngs_differ_by_input_and_salt() {
        let mut a = rng_for(Input::Train, 1);
        let mut b = rng_for(Input::Ref, 1);
        let mut c = rng_for(Input::Train, 2);
        let (x, y, z) = (a.gen::<u64>(), b.gen::<u64>(), c.gen::<u64>());
        assert_ne!(x, y);
        assert_ne!(x, z);
        // And deterministic:
        assert_eq!(rng_for(Input::Train, 1).gen::<u64>(), x);
    }

    #[test]
    fn ring_is_a_single_cycle() {
        let mut mem = Memory::new();
        let mut rng = rng_for(Input::Train, 9);
        let base = 0x10_0000;
        let nodes = 257;
        init_ring(&mut mem, base, nodes, 64, &mut rng);
        let mut cur = base;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..nodes {
            assert!(seen.insert(cur), "revisited {cur:#x} early");
            cur = mem.read_u64(cur);
            assert!(cur >= base && cur < base + nodes * 64);
            assert_eq!((cur - base) % 64, 0);
        }
        assert_eq!(seen.len(), nodes as usize);
        assert!(seen.contains(&cur), "ring must close");
    }

    #[test]
    fn fill_writes_generator_values() {
        let mut mem = Memory::new();
        fill_u64(&mut mem, 0x4000, 4, |i| i * i);
        assert_eq!(mem.read_u64(0x4000 + 16), 4);
    }

    #[test]
    fn scaled_selects_by_input() {
        assert_eq!(scaled(Input::Train, 10, 20), 10);
        assert_eq!(scaled(Input::Ref, 10, 20), 20);
    }
}
