//! Datacenter (Tailbench) kernels: moses, memcached and img-dnn.

use crate::common::{
    emit_filler_alu, emit_filler_dot, emit_hash_slice, fill_u64, regs, rng_for, scaled,
};
use crate::{Input, Workload};
use crisp_emu::Memory;
use crisp_isa::{AluOp, Cond, Opcode, ProgramBuilder, Reg};
use rand::Rng;

const R1: Reg = Reg::new_const(1);
const R2: Reg = Reg::new_const(2);
const R3: Reg = Reg::new_const(3);
const R7: Reg = Reg::new_const(7);
const R8: Reg = Reg::new_const(8);
const R9: Reg = Reg::new_const(9);
const R10: Reg = Reg::new_const(10);
const R11: Reg = Reg::new_const(11);
const R12: Reg = Reg::new_const(12);
const R18: Reg = Reg::new_const(18);
const R19: Reg = Reg::new_const(19);
const R20: Reg = Reg::new_const(20);

const TABLE_BASE: u64 = 0x5000_0000;
const ARR_A: u64 = 0x10_0000;
const ARR_B: u64 = 0x12_0000;

/// `moses`-like (statistical machine translation): phrase-table lookups
/// with *very deep* hash slices — three chained hash functions and two
/// dependent probe loads per phrase. Slices exceed the 1K IST (the
/// Section 5.2 moses failure) and most of the benefit is already captured
/// by a small window (Figure 9: best at 64RS/180ROB).
pub fn moses(input: Input) -> Workload {
    let table_slots = scaled(input, 1 << 17, 1 << 18);
    let mut rng = rng_for(input, 0x6D6F_7300);
    let mut memory = Memory::new();
    fill_u64(&mut memory, TABLE_BASE, table_slots, |_| rng.gen::<u64>());
    const TABLE2: u64 = 0x5800_0000;
    fill_u64(&mut memory, TABLE2, table_slots, |_| rng.gen::<u64>());
    fill_u64(&mut memory, ARR_A, 4096, |_| rng.gen::<u64>() >> 32);
    fill_u64(&mut memory, ARR_B, 4096, |_| rng.gen::<u64>() >> 32);

    let mut b = ProgramBuilder::new();
    b.li(R2, 0xC0FF_EE00_1234_5678u64 as i64); // phrase key
    b.li(R10, TABLE_BASE as i64);
    b.li(R12, TABLE2 as i64);
    b.li(R11, 0x9E37_79B9);
    let top = b.label();
    b.bind(top);
    // Phrase key evolution + three chained hash stages (deep slice: the
    // address of the second probe depends on the result of the first).
    b.alu_ri(AluOp::Shl, R18, R2, 7);
    b.alu_rr(AluOp::Xor, R2, R2, R18);
    b.alu_ri(AluOp::Shr, R18, R2, 9);
    b.alu_rr(AluOp::Xor, R2, R2, R18);
    emit_hash_slice(&mut b, R9, R2, R11, 19, (table_slots - 1) as i64);
    b.alu_rr(AluOp::Add, R9, R9, R10);
    b.load(R3, R9, 0, 8); // first probe (delinquent)
                          // Second-stage hash on the probe *result* -> dependent second probe.
    b.alu_rr(AluOp::Xor, R19, R3, R2);
    emit_hash_slice(&mut b, R9, R19, R11, 13, (table_slots - 1) as i64);
    b.alu_rr(AluOp::Add, R9, R9, R12);
    b.load(R20, R9, 0, 8); // second probe (delinquent, dependent)
    b.alu_rr(AluOp::Add, regs::ACCS[0], regs::ACCS[0], R20);
    // Scoring: dense work per phrase.
    emit_filler_dot(&mut b, ARR_A as i64, ARR_B as i64, 22, R20);
    // Pruning branch (moderately hard).
    b.alu_ri(AluOp::And, R18, R20, 3);
    let keep = b.label();
    b.branch(Cond::Ne, R18, Reg::ZERO, keep);
    emit_filler_alu(&mut b, 6);
    b.bind(keep);
    b.jump(top);
    b.halt();

    Workload {
        name: "moses",
        description: "phrase-table decoding: two dependent hash probes per phrase with deep (20+ instruction) address slices that overflow a 1K IST; window-limited, best CRISP gain at small RS/ROB",
        program: b.build(),
        memory,
    }
}

/// `memcached`-like: GET request processing — request keys stream in, a
/// hash slice selects a bucket (delinquent head load), and a short chain
/// walk with a data-dependent key-compare branch finds the item. Load and
/// branch slices combine (Figure 8 synergy group).
pub fn memcached(input: Input) -> Workload {
    let buckets = scaled(input, 1 << 16, 1 << 17);
    let items = buckets * 2;
    let mut rng = rng_for(input, 0x6D63_6400);
    let mut memory = Memory::new();
    const ITEMS: u64 = 0x9000_0000;
    const REQS: u64 = 0x7000_0000;
    let req_count = 1 << 14;
    // Item records: {next, key, value} x 32 bytes; buckets point at items.
    for i in 0..items {
        let addr = ITEMS + i * 32;
        let next = if i % 3 == 0 {
            ITEMS + (rng.gen::<u64>() % items) * 32
        } else {
            0
        };
        memory.write_u64(addr, next);
        memory.write_u64(addr + 8, rng.gen::<u64>());
        memory.write_u64(addr + 16, rng.gen::<u64>());
    }
    fill_u64(&mut memory, TABLE_BASE, buckets, |_| {
        ITEMS + (rng.gen::<u64>() % items) * 32
    });
    fill_u64(&mut memory, REQS, req_count, |_| rng.gen::<u64>());
    fill_u64(&mut memory, ARR_A, 4096, |_| rng.gen::<u64>() >> 32);
    fill_u64(&mut memory, ARR_B, 4096, |_| rng.gen::<u64>() >> 32);

    let mut b = ProgramBuilder::new();
    b.li(R7, 0); // request cursor
    b.li(R10, REQS as i64);
    b.li(R11, TABLE_BASE as i64);
    b.li(R12, 0x9E37_79B9);
    let top = b.label();
    b.bind(top);
    b.alu_ri(AluOp::And, R8, R7, (req_count - 1) as i64);
    b.alu_ri(AluOp::Shl, R8, R8, 3);
    b.alu_rr(AluOp::Add, R8, R8, R10);
    b.load(R2, R8, 0, 8); // request key (streaming)
                          // Bucket selection: hash slice -> bucket head (delinquent).
    emit_hash_slice(&mut b, R9, R2, R12, 16, (buckets - 1) as i64);
    b.alu_rr(AluOp::Add, R9, R9, R11);
    b.load(R1, R9, 0, 8); // bucket head pointer
    b.load(R3, R1, 8, 8); // item key (delinquent, dependent)
                          // Key compare: data-dependent branch (hard).
    b.alu_rr(AluOp::Xor, R18, R3, R2);
    b.alu_ri(AluOp::And, R18, R18, 1);
    let hit = b.label();
    let done = b.label();
    b.branch(Cond::Eq, R18, Reg::ZERO, hit);
    // Miss path: walk one chain link.
    b.load(R1, R1, 0, 8); // item->next
    let empty = b.label();
    b.branch(Cond::Eq, R1, Reg::ZERO, empty);
    b.load(R19, R1, 16, 8); // next item value
    b.alu_rr(AluOp::Add, regs::ACCS[1], regs::ACCS[1], R19);
    b.bind(empty);
    b.jump(done);
    b.bind(hit);
    b.load(R19, R1, 16, 8); // value (delinquent)
    b.alu_rr(AluOp::Add, regs::ACCS[0], regs::ACCS[0], R19);
    b.bind(done);
    // Response serialisation filler.
    emit_filler_dot(&mut b, ARR_A as i64, ARR_B as i64, 18, R19);
    b.alu_ri(AluOp::Add, R7, R7, 1);
    b.jump(top);
    b.halt();

    Workload {
        name: "memcached",
        description: "hash-table GET service: hash slice to a delinquent bucket-head load, dependent item-key load, data-dependent compare branch and a short chain walk; load+branch synergy",
        program: b.build(),
        memory,
    }
}

/// `img-dnn`-like: an image-recognition inner loop — dense FMA tiles with
/// im2col-style indirect row indexing. Mostly compute-bound, small but
/// positive CRISP gain.
pub fn img_dnn(input: Input) -> Workload {
    let act_len = scaled(input, 1 << 17, 1 << 18);
    let idx_len = 1 << 13;
    let mut rng = rng_for(input, 0x696D_6700);
    let mut memory = Memory::new();
    const ACTS: u64 = 0x9000_0000;
    const IDX: u64 = 0x7000_0000;
    fill_u64(&mut memory, ACTS, act_len, |_| rng.gen::<u64>() >> 32);
    fill_u64(&mut memory, IDX, idx_len, |_| {
        (rng.gen::<u64>() % act_len) * 8
    });
    fill_u64(&mut memory, ARR_A, 4096, |_| rng.gen::<u64>() >> 32);
    fill_u64(&mut memory, ARR_B, 4096, |_| rng.gen::<u64>() >> 32);

    let mut b = ProgramBuilder::new();
    b.li(R7, 0);
    b.li(R10, IDX as i64);
    b.li(R11, ACTS as i64);
    let top = b.label();
    b.bind(top);
    // im2col row fetch: index load + indirect activation gather.
    b.alu_ri(AluOp::And, R8, R7, (idx_len - 1) as i64);
    b.alu_ri(AluOp::Shl, R8, R8, 3);
    b.alu_rr(AluOp::Add, R8, R8, R10);
    b.load(R9, R8, 0, 8); // row offset (streaming)
    b.alu_rr(AluOp::Add, R9, R9, R11);
    b.load(R2, R9, 0, 8); // activation gather (delinquent)
                          // Dense GEMM tile: the ILP that hides most, but not all, latency.
    emit_filler_dot(&mut b, ARR_A as i64, ARR_B as i64, 22, R2);
    for k in 0..4 {
        b.fp(Opcode::FMa, regs::ACCS[k], regs::ACCS[k], R2);
    }
    // ReLU-ish predictable branch.
    b.alu_ri(AluOp::And, R18, R2, 15);
    let relu = b.label();
    b.branch(Cond::Ne, R18, Reg::ZERO, relu);
    b.alu_ri(AluOp::Mov, R2, Reg::ZERO, 0);
    b.bind(relu);
    b.alu_ri(AluOp::Add, R7, R7, 1);
    b.jump(top);
    b.halt();

    Workload {
        name: "img_dnn",
        description: "image-recognition inner loop: dense FMA tiles with im2col indirect activation gathers; compute-rich, so CRISP's gain is positive but small",
        program: b.build(),
        memory,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_emu::Emulator;

    #[test]
    fn moses_probes_two_tables() {
        let w = moses(Input::Train);
        let mut emu = Emulator::new(&w.program, w.memory.clone());
        let trace = emu.run(50_000);
        let t1 = trace
            .iter()
            .filter(|r| (0x5000_0000..0x5800_0000).contains(&r.addr))
            .count();
        let t2 = trace
            .iter()
            .filter(|r| (0x5800_0000..0x6000_0000).contains(&r.addr))
            .count();
        assert!(t1 > 100, "first table probed: {t1}");
        assert!(t2 > 100, "second table probed: {t2}");
    }

    #[test]
    fn memcached_walks_chains_occasionally() {
        let w = memcached(Input::Train);
        let mut emu = Emulator::new(&w.program, w.memory.clone());
        let trace = emu.run(100_000);
        let item_loads = trace
            .iter()
            .filter(|r| r.addr >= 0x9000_0000 && w.program.inst(r.pc).is_load())
            .count();
        assert!(item_loads > 1000, "item accesses: {item_loads}");
    }

    #[test]
    fn img_dnn_is_compute_heavy() {
        let w = img_dnn(Input::Train);
        let mut emu = Emulator::new(&w.program, w.memory.clone());
        let trace = emu.run(50_000);
        let stats = trace.stats(&w.program);
        // Loads stay under half the stream: compute dominates.
        assert!(stats.loads * 2 < stats.instructions);
    }

    #[test]
    fn memcached_buckets_point_at_items() {
        let w = memcached(Input::Train);
        // Every bucket head lies inside the item arena.
        for i in 0..16u64 {
            let head = w.memory.read_u64(TABLE_BASE + 8 * i);
            assert!(
                (0x9000_0000..0xA000_0000).contains(&head),
                "bucket {i}: {head:#x}"
            );
        }
    }
}
