//! # crisp-workloads
//!
//! Synthetic stand-ins for the paper's evaluation workloads — the
//! memory-intensive SPEC2017 subset, Xhpcg, and the Tailbench datacenter
//! applications (moses, memcached, img-dnn) — plus the Figure 1/2
//! pointer-chase microbenchmark.
//!
//! Each builder produces a [`Workload`]: a program in the CRISP mini-ISA
//! plus an initial memory image, engineered to reproduce the *published
//! bottleneck character* of its namesake (documented per builder): the
//! irregular-load patterns, slice depths, branch behaviour and MLP that
//! determine how CRISP, IBDA and the OOO baseline rank on it. The
//! semantics of the original applications are irrelevant to the
//! experiments and are not reproduced.
//!
//! Every workload has separate *train* and *ref* inputs (different sizes
//! and seeds); the CRISP pipeline profiles on train and evaluates on ref,
//! like the paper (Section 5.1).
//!
//! ## Example
//!
//! ```
//! use crisp_workloads::{build, Input};
//! use crisp_emu::Emulator;
//!
//! let w = build("pointer_chase", Input::Train).expect("known workload");
//! let mut emu = Emulator::new(&w.program, w.memory.clone());
//! let trace = emu.run(50_000);
//! assert_eq!(trace.len(), 50_000); // long-running loop
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod common;
mod datacenter;
mod extra;
mod hpc;
mod spec;

use crisp_emu::Memory;
use crisp_isa::Program;

/// Input set selection (paper Section 5.1: train for profiling, ref for
/// evaluation).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Input {
    /// Smaller structures, profiling seed.
    Train,
    /// Larger structures, evaluation seed.
    Ref,
}

/// The only failure of the workload registry: a name nobody registered.
/// `crisp-core` folds this into its `CrispError::UnknownWorkload` variant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownWorkload {
    /// The name that was requested.
    pub name: String,
}

impl std::fmt::Display for UnknownWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown workload: {}", self.name)
    }
}

impl std::error::Error for UnknownWorkload {}

/// A runnable workload: program text plus initial memory image.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Short name (matches the paper's figures).
    pub name: &'static str,
    /// Which published bottleneck this kernel reproduces.
    pub description: &'static str,
    /// The program.
    pub program: Program,
    /// The initial memory image.
    pub memory: Memory,
}

/// All workload names, in the order the paper's figures list them.
pub fn all_names() -> &'static [&'static str] {
    &[
        "pointer_chase",
        "bwaves",
        "cactus",
        "deepsjeng",
        "fotonik3d",
        "gcc",
        "lbm",
        "mcf",
        "nab",
        "namd",
        "perlbench",
        "xz",
        "xhpcg",
        "moses",
        "memcached",
        "img_dnn",
        "omnetpp",
        "xalancbmk",
    ]
}

/// Builds a workload by name.
///
/// # Errors
///
/// Returns [`UnknownWorkload`] for a name not in [`all_names`].
pub fn build(name: &str, input: Input) -> Result<Workload, UnknownWorkload> {
    Ok(match name {
        "pointer_chase" => hpc::pointer_chase(input),
        "xhpcg" => hpc::xhpcg(input),
        "bwaves" => spec::bwaves(input),
        "cactus" => spec::cactus(input),
        "deepsjeng" => spec::deepsjeng(input),
        "fotonik3d" => spec::fotonik3d(input),
        "gcc" => spec::gcc(input),
        "lbm" => spec::lbm(input),
        "mcf" => spec::mcf(input),
        "nab" => spec::nab(input),
        "namd" => spec::namd(input),
        "perlbench" => spec::perlbench(input),
        "xz" => spec::xz(input),
        "moses" => datacenter::moses(input),
        "memcached" => datacenter::memcached(input),
        "img_dnn" => datacenter::img_dnn(input),
        "omnetpp" => extra::omnetpp(input),
        "xalancbmk" => extra::xalancbmk(input),
        _ => {
            return Err(UnknownWorkload {
                name: name.to_string(),
            })
        }
    })
}

/// Builds every workload for one input set. Infallible by construction:
/// [`all_names`] and [`build`] cover exactly the same set (asserted by the
/// registry tests), so the per-name results are flattened here.
pub fn build_all(input: Input) -> Vec<Workload> {
    all_names()
        .iter()
        .filter_map(|n| build(n, input).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_emu::Emulator;

    #[test]
    fn registry_is_complete_and_closed() {
        for name in all_names() {
            assert!(build(name, Input::Train).is_ok(), "{name} missing");
        }
        let err = build("nonexistent", Input::Train).unwrap_err();
        assert_eq!(err.name, "nonexistent");
        assert_eq!(err.to_string(), "unknown workload: nonexistent");
        assert_eq!(all_names().len(), 18);
        assert_eq!(build_all(Input::Train).len(), all_names().len());
    }

    #[test]
    fn every_workload_runs_long_without_halting() {
        for w in build_all(Input::Train) {
            let mut emu = Emulator::new(&w.program, w.memory.clone());
            let (trace, stop) = emu.try_run(30_000).expect(w.name);
            assert_eq!(
                stop,
                crisp_emu::StopReason::BudgetExhausted,
                "{} halted after only {} instructions",
                w.name,
                trace.len()
            );
        }
    }

    #[test]
    fn every_workload_contains_loads_and_branches() {
        for w in build_all(Input::Train) {
            let mut emu = Emulator::new(&w.program, w.memory.clone());
            let trace = emu.run(30_000);
            let stats = trace.stats(&w.program);
            assert!(
                stats.loads * 20 >= stats.instructions,
                "{}: too few loads ({})",
                w.name,
                stats.loads
            );
            assert!(
                stats.cond_branches > 0,
                "{}: no conditional branches",
                w.name
            );
        }
    }

    #[test]
    fn train_and_ref_differ() {
        for name in all_names() {
            let t = build(name, Input::Train).expect("train");
            let r = build(name, Input::Ref).expect("ref");
            // Same code, different data (sizes/seeds live in memory or in
            // immediates; at least one must differ).
            let differs = t.program != r.program
                || format!("{:?}", t.memory.page_count()) != format!("{:?}", r.memory.page_count());
            assert!(differs, "{name}: train and ref identical");
        }
    }

    #[test]
    fn descriptions_are_informative() {
        for w in build_all(Input::Train) {
            assert!(
                w.description.len() > 20,
                "{}: description too short",
                w.name
            );
        }
    }

    #[test]
    fn deterministic_construction() {
        let a = build("mcf", Input::Ref).expect("mcf");
        let b = build("mcf", Input::Ref).expect("mcf");
        assert_eq!(a.program, b.program);
        let mut ea = Emulator::new(&a.program, a.memory.clone());
        let mut eb = Emulator::new(&b.program, b.memory.clone());
        assert_eq!(ea.run(5_000), eb.run(5_000));
    }
}
