//! # crisp-profile
//!
//! The profiling / classification stage of the CRISP pipeline (paper
//! Section 3.2): consumes the per-PC statistics a profiling simulation
//! collects (the simulated analogue of Intel PEBS / PMU counters / LBR)
//! and decides which loads are *delinquent* and which branches are
//! *hard to predict*.
//!
//! The classifier implements the paper's heuristic:
//!
//! * a load is critical if it represents a sufficient share of executed
//!   loads, its LLC miss ratio exceeds a threshold (20 % by default), the
//!   observed memory-level parallelism around its misses is low (< 5), and
//!   it contributes at least `T` of all LLC misses (the Figure 10 knob);
//! * thresholds scale linearly with the program's instruction mix and
//!   baseline IPC ("application-specific behaviour", Section 3.2);
//! * a branch is hard if its misprediction ratio exceeds 15 %.
//!
//! ## Example
//!
//! ```
//! use crisp_profile::{ClassifierConfig, ProfileSummary};
//! let cfg = ClassifierConfig::default();
//! assert!((cfg.llc_miss_ratio_threshold - 0.20).abs() < 1e-12);
//! assert!((cfg.branch_mispredict_threshold - 0.15).abs() < 1e-12);
//! let _ = ProfileSummary::default();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use crisp_isa::{ConfigError, Pc};
use crisp_sim::SimResult;
use std::collections::HashMap;

/// Thresholds of the Section 3.2 criticality heuristic.
///
/// The paper quotes a 5 % execution-share bar for x86 binaries; the
/// mini-ISA workloads here have unrolled loop bodies (and gcc-like apps
/// spread probes over dozens of handler PCs), so the default share bar is
/// 0.01 % — the miss-ratio and miss-contribution thresholds (`T`,
/// Figure 10) remain the primary filters exactly as in the paper.
#[derive(Clone, Copy, Debug)]
pub struct ClassifierConfig {
    /// Minimum share of all executed loads (default 0.01 %).
    pub exec_ratio_threshold: f64,
    /// Minimum per-load LLC miss ratio (default 20 %).
    pub llc_miss_ratio_threshold: f64,
    /// Maximum average MLP observed at the load's misses (default 5).
    pub mlp_threshold: f64,
    /// Minimum share of the application's total LLC misses this load must
    /// contribute — the Figure 10 sensitivity knob `T` (default 1 %).
    pub miss_contribution_threshold: f64,
    /// Minimum branch misprediction ratio (default 15 %).
    pub branch_mispredict_threshold: f64,
    /// Minimum share of all conditional-branch executions for a branch to
    /// qualify (filters cold branches; default 0.5 %).
    pub branch_exec_ratio_threshold: f64,
    /// Scale load thresholds linearly with instruction mix and baseline
    /// IPC, per Section 3.2 (default on).
    pub scale_with_application: bool,
}

impl Default for ClassifierConfig {
    fn default() -> ClassifierConfig {
        ClassifierConfig {
            exec_ratio_threshold: 0.0001,
            llc_miss_ratio_threshold: 0.20,
            mlp_threshold: 5.0,
            miss_contribution_threshold: 0.01,
            branch_mispredict_threshold: 0.15,
            branch_exec_ratio_threshold: 0.005,
            scale_with_application: true,
        }
    }
}

impl ClassifierConfig {
    /// Returns a copy with the miss-contribution threshold `T` replaced
    /// (the Figure 10 sweep: 5 %, 1 %, 0.2 %).
    pub fn with_miss_threshold(mut self, t: f64) -> ClassifierConfig {
        self.miss_contribution_threshold = t;
        self
    }

    /// Validates the thresholds: every ratio must be a finite value in
    /// `[0, 1]` and the MLP bar must be finite and positive.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first offending threshold.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let ratios = [
            ("exec_ratio_threshold", self.exec_ratio_threshold),
            ("llc_miss_ratio_threshold", self.llc_miss_ratio_threshold),
            (
                "miss_contribution_threshold",
                self.miss_contribution_threshold,
            ),
            (
                "branch_mispredict_threshold",
                self.branch_mispredict_threshold,
            ),
            (
                "branch_exec_ratio_threshold",
                self.branch_exec_ratio_threshold,
            ),
        ];
        for (field, v) in ratios {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(ConfigError::new(
                    field,
                    format!("must be a ratio in [0, 1] (got {v})"),
                ));
            }
        }
        if !self.mlp_threshold.is_finite() || self.mlp_threshold <= 0.0 {
            return Err(ConfigError::new(
                "mlp_threshold",
                format!("must be finite and positive (got {})", self.mlp_threshold),
            ));
        }
        Ok(())
    }
}

/// One classified delinquent load, with the evidence that qualified it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DelinquentLoad {
    /// The load's static PC.
    pub pc: Pc,
    /// Dynamic executions.
    pub execs: u64,
    /// LLC miss ratio of this load.
    pub llc_miss_ratio: f64,
    /// Average memory access time in cycles.
    pub amat: f64,
    /// Average MLP at this load's misses.
    pub mlp: f64,
    /// Share of the application's LLC misses this load causes.
    pub miss_contribution: f64,
}

/// One classified hard-to-predict branch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HardBranch {
    /// The branch's static PC.
    pub pc: Pc,
    /// Dynamic executions.
    pub execs: u64,
    /// Misprediction ratio.
    pub mispredict_ratio: f64,
}

/// Application-level summary derived from a profiling run, used for the
/// Section 3.2 threshold scaling and for reports.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ProfileSummary {
    /// Baseline IPC of the profiling run.
    pub ipc: f64,
    /// Fraction of retired instructions that are loads.
    pub load_fraction: f64,
    /// Total dynamic loads.
    pub total_loads: u64,
    /// Total LLC misses from demand loads.
    pub total_llc_misses: u64,
    /// Total conditional branches.
    pub total_branches: u64,
    /// Conditional-branch MPKI.
    pub branch_mpki: f64,
}

impl ProfileSummary {
    /// Builds the summary from a simulation result.
    pub fn from_result(result: &SimResult) -> ProfileSummary {
        let retired = result.retired.max(1);
        ProfileSummary {
            ipc: result.ipc(),
            load_fraction: result.mem.loads as f64 / retired as f64,
            total_loads: result.mem.loads,
            total_llc_misses: result.mem.load_llc_misses,
            total_branches: result.cond_branches,
            branch_mpki: result.branch_mpki(),
        }
    }
}

/// Classifies delinquent loads from a profiling run, **sorted by LLC-miss
/// contribution descending** (the order the annotator's greedy budget
/// consumes them in).
pub fn classify_loads(result: &SimResult, cfg: &ClassifierConfig) -> Vec<DelinquentLoad> {
    let summary = ProfileSummary::from_result(result);
    let total_loads: u64 = result
        .load_pc_stats
        .values()
        .map(|s| s.execs)
        .sum::<u64>()
        .max(1);
    let total_misses: u64 = result
        .load_pc_stats
        .values()
        .map(|s| s.llc_misses)
        .sum::<u64>()
        .max(1);

    // Section 3.2 scaling: load-heavy programs (many loads competing) raise
    // the execution-share bar; low-IPC (memory-bound) programs lower the
    // miss-contribution bar so more of the problem loads qualify.
    let (exec_scale, miss_scale) = if cfg.scale_with_application {
        (
            (summary.load_fraction / 0.25).clamp(0.5, 2.0),
            (summary.ipc / 2.0).clamp(0.5, 2.0),
        )
    } else {
        (1.0, 1.0)
    };
    let exec_thresh = cfg.exec_ratio_threshold * exec_scale;
    let miss_thresh = cfg.miss_contribution_threshold * miss_scale;

    let mut out: Vec<DelinquentLoad> = result
        .load_pc_stats
        .iter()
        .filter_map(|(&pc, s)| {
            let exec_ratio = s.execs as f64 / total_loads as f64;
            let contribution = s.llc_misses as f64 / total_misses as f64;
            let qualifies = exec_ratio >= exec_thresh.min(0.5)
                && s.llc_miss_ratio() >= cfg.llc_miss_ratio_threshold
                && (s.llc_misses == 0 || s.avg_mlp() < cfg.mlp_threshold)
                && contribution >= miss_thresh
                && s.llc_misses > 0;
            qualifies.then(|| DelinquentLoad {
                pc,
                execs: s.execs,
                llc_miss_ratio: s.llc_miss_ratio(),
                amat: s.amat(),
                mlp: s.avg_mlp(),
                miss_contribution: contribution,
            })
        })
        .collect();
    out.sort_by(|a, b| {
        b.miss_contribution
            .partial_cmp(&a.miss_contribution)
            .expect("finite")
            .then(a.pc.cmp(&b.pc))
    });
    out
}

/// Classifies hard-to-predict branches (Section 3.4), sorted by
/// misprediction volume descending.
pub fn classify_branches(result: &SimResult, cfg: &ClassifierConfig) -> Vec<HardBranch> {
    let total: u64 = result
        .branch_pc_stats
        .values()
        .map(|s| s.execs)
        .sum::<u64>()
        .max(1);
    let mut out: Vec<HardBranch> = result
        .branch_pc_stats
        .iter()
        .filter_map(|(&pc, s)| {
            let exec_ratio = s.execs as f64 / total as f64;
            let qualifies = s.mispredict_ratio() >= cfg.branch_mispredict_threshold
                && exec_ratio >= cfg.branch_exec_ratio_threshold;
            qualifies.then(|| HardBranch {
                pc,
                execs: s.execs,
                mispredict_ratio: s.mispredict_ratio(),
            })
        })
        .collect();
    out.sort_by(|a, b| {
        let va = a.mispredict_ratio * a.execs as f64;
        let vb = b.mispredict_ratio * b.execs as f64;
        vb.partial_cmp(&va).expect("finite").then(a.pc.cmp(&b.pc))
    });
    out
}

/// Extracts the per-load AMAT table the slicer's latency model needs
/// (Section 3.5: "for loads we utilize the AMAT in cycles as determined in
/// Section 3.2").
pub fn amat_map(result: &SimResult) -> HashMap<Pc, f64> {
    result
        .load_pc_stats
        .iter()
        .map(|(&pc, s)| (pc, s.amat()))
        .collect()
}

/// A classified high-latency arithmetic instruction (the Section 6.1
/// extension: "other high-latency instructions such as division can be
/// accelerated with CRISP").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlowOp {
    /// The instruction's static PC.
    pub pc: Pc,
    /// Dynamic executions in the profiled trace.
    pub execs: u64,
    /// The opcode's fixed latency in cycles.
    pub latency: u32,
}

/// Finds unpipelined/high-latency arithmetic instructions (divides) whose
/// dynamic execution share makes them worth prioritising — the paper's
/// Section 6.1 first extension. Results are sorted by total stall
/// contribution (`execs × latency`) descending.
///
/// Unlike loads, the evidence here comes straight from the trace: the
/// latency is architectural, so no timing run is needed (the paper instead
/// proposes new PMU events for this).
pub fn classify_slow_ops(
    program: &crisp_isa::Program,
    trace: &crisp_isa::Trace,
    min_exec_share: f64,
) -> Vec<SlowOp> {
    let mut counts: HashMap<Pc, u64> = HashMap::new();
    let mut total = 0u64;
    for rec in trace {
        total += 1;
        let inst = program.inst(rec.pc);
        if inst.op.unpipelined() {
            *counts.entry(rec.pc).or_insert(0) += 1;
        }
    }
    let mut out: Vec<SlowOp> = counts
        .into_iter()
        .filter(|&(_, execs)| total > 0 && execs as f64 / total as f64 >= min_exec_share)
        .map(|(pc, execs)| SlowOp {
            pc,
            execs,
            latency: program.inst(pc).op.latency(),
        })
        .collect();
    out.sort_by_key(|s| std::cmp::Reverse(s.execs * u64::from(s.latency)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_sim::{BranchPcStats, LoadPcStats};

    #[test]
    fn classifier_defaults_validate() {
        ClassifierConfig::default().validate().expect("defaults ok");
    }

    #[test]
    fn classifier_rejects_out_of_range_ratios() {
        let c = ClassifierConfig {
            llc_miss_ratio_threshold: 1.5,
            ..ClassifierConfig::default()
        };
        let err = c.validate().unwrap_err();
        assert_eq!(err.field, "llc_miss_ratio_threshold");

        let c = ClassifierConfig {
            miss_contribution_threshold: f64::NAN,
            ..ClassifierConfig::default()
        };
        assert_eq!(
            c.validate().unwrap_err().field,
            "miss_contribution_threshold"
        );

        let c = ClassifierConfig {
            mlp_threshold: 0.0,
            ..ClassifierConfig::default()
        };
        assert_eq!(c.validate().unwrap_err().field, "mlp_threshold");
    }

    /// Builds a SimResult with two loads: one hot-and-missing (delinquent),
    /// one hot-but-hitting.
    fn synthetic_result() -> SimResult {
        let mut r = SimResult {
            cycles: 100_000,
            retired: 120_000,
            cond_branches: 10_000,
            ..SimResult::default()
        };
        r.mem.loads = 30_000;
        r.mem.load_llc_misses = 5_000;
        r.load_pc_stats.insert(
            10,
            LoadPcStats {
                execs: 10_000,
                l1_hits: 4_000,
                llc_hits: 1_000,
                llc_misses: 5_000,
                total_latency: 1_100_000,
                mlp_sum: 10_000,
            },
        );
        r.load_pc_stats.insert(
            11,
            LoadPcStats {
                execs: 20_000,
                l1_hits: 20_000,
                llc_hits: 0,
                llc_misses: 0,
                total_latency: 80_000,
                mlp_sum: 0,
            },
        );
        r.branch_pc_stats.insert(
            20,
            BranchPcStats {
                execs: 5_000,
                mispredicts: 1_500,
            },
        );
        r.branch_pc_stats.insert(
            21,
            BranchPcStats {
                execs: 5_000,
                mispredicts: 50,
            },
        );
        r
    }

    #[test]
    fn delinquent_load_is_found_and_hitting_load_is_not() {
        let r = synthetic_result();
        let loads = classify_loads(&r, &ClassifierConfig::default());
        assert_eq!(loads.len(), 1);
        let d = &loads[0];
        assert_eq!(d.pc, 10);
        assert!((d.llc_miss_ratio - 0.5).abs() < 1e-12);
        assert!((d.mlp - 2.0).abs() < 1e-12);
        assert!((d.miss_contribution - 1.0).abs() < 1e-12);
        assert!(d.amat > 100.0);
    }

    #[test]
    fn high_mlp_load_is_excluded() {
        // The bwaves case from Section 5.2: high MPKI but executed in
        // phases of high MLP => not performance-critical.
        let mut r = synthetic_result();
        r.load_pc_stats.get_mut(&10).unwrap().mlp_sum = 50_000; // MLP 10
        let loads = classify_loads(&r, &ClassifierConfig::default());
        assert!(loads.is_empty());
    }

    #[test]
    fn low_miss_ratio_load_is_excluded() {
        let mut r = synthetic_result();
        let s = r.load_pc_stats.get_mut(&10).unwrap();
        s.llc_misses = 1_500; // 15% < 20%
        s.l1_hits = 7_500;
        let loads = classify_loads(&r, &ClassifierConfig::default());
        assert!(loads.is_empty());
    }

    #[test]
    fn miss_contribution_threshold_filters_small_contributors() {
        let mut r = synthetic_result();
        // Add a second delinquent load with tiny miss volume.
        r.load_pc_stats.insert(
            12,
            LoadPcStats {
                execs: 2_000,
                l1_hits: 1_000,
                llc_hits: 0,
                llc_misses: 1_000,
                total_latency: 250_000,
                mlp_sum: 2_000,
            },
        );
        // T = 0.2%: both qualify; T = 50%: only the big one.
        let loose = ClassifierConfig::default().with_miss_threshold(0.002);
        let strict = ClassifierConfig::default().with_miss_threshold(0.50);
        assert_eq!(classify_loads(&r, &loose).len(), 2);
        let strict_loads = classify_loads(&r, &strict);
        assert_eq!(strict_loads.len(), 1);
        assert_eq!(strict_loads[0].pc, 10);
    }

    #[test]
    fn loads_sorted_by_miss_contribution() {
        let mut r = synthetic_result();
        r.load_pc_stats.insert(
            12,
            LoadPcStats {
                execs: 8_000,
                l1_hits: 6_000,
                llc_hits: 0,
                llc_misses: 2_000,
                total_latency: 600_000,
                mlp_sum: 4_000,
            },
        );
        let cfg = ClassifierConfig::default().with_miss_threshold(0.001);
        let loads = classify_loads(&r, &cfg);
        assert_eq!(loads.len(), 2);
        assert_eq!(loads[0].pc, 10, "bigger miss contributor first");
        assert_eq!(loads[1].pc, 12);
    }

    #[test]
    fn hard_branch_classified_cold_and_predictable_excluded() {
        let r = synthetic_result();
        let branches = classify_branches(&r, &ClassifierConfig::default());
        assert_eq!(branches.len(), 1);
        assert_eq!(branches[0].pc, 20);
        assert!((branches[0].mispredict_ratio - 0.3).abs() < 1e-12);
    }

    #[test]
    fn cold_branch_excluded_by_exec_ratio() {
        let mut r = synthetic_result();
        r.branch_pc_stats.insert(
            22,
            BranchPcStats {
                execs: 10, // 0.1% of branches
                mispredicts: 9,
            },
        );
        let branches = classify_branches(&r, &ClassifierConfig::default());
        assert!(branches.iter().all(|b| b.pc != 22));
    }

    #[test]
    fn amat_map_matches_stats() {
        let r = synthetic_result();
        let m = amat_map(&r);
        assert!((m[&10] - 110.0).abs() < 1e-9);
        assert!((m[&11] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn summary_reflects_run() {
        let r = synthetic_result();
        let s = ProfileSummary::from_result(&r);
        assert!((s.ipc - 1.2).abs() < 1e-12);
        assert!((s.load_fraction - 0.25).abs() < 1e-12);
        assert_eq!(s.total_llc_misses, 5_000);
    }

    #[test]
    fn scaling_can_change_the_verdict() {
        // A memory-bound (low IPC), load-heavy run: scaling lowers the
        // miss-contribution bar.
        let mut r = synthetic_result();
        r.cycles = 1_000_000; // IPC 0.12 -> miss_scale 0.5
        r.load_pc_stats.insert(
            12,
            LoadPcStats {
                execs: 3_000,
                l1_hits: 2_100,
                llc_hits: 0,
                llc_misses: 900,
                total_latency: 500_000,
                mlp_sum: 1_800,
            },
        );
        let t = 0.02; // 2%: load 12 contributes 900/5900 = 15% (passes both)
        let no_scale = ClassifierConfig {
            scale_with_application: false,
            ..ClassifierConfig::default().with_miss_threshold(t)
        };
        let with_scale = ClassifierConfig::default().with_miss_threshold(t);
        // Both find it here; the exec-ratio scaling differs though:
        // exec_ratio(12) = 3000/33000 = 9.1%; unscaled bar 5%;
        // scaled bar: load_fraction = 30000/120000=0.25 -> scale 1.0.
        assert_eq!(classify_loads(&no_scale_result(&r), &no_scale).len(), 2);
        assert_eq!(classify_loads(&r, &with_scale).len(), 2);
    }

    fn no_scale_result(r: &SimResult) -> SimResult {
        r.clone()
    }

    #[test]
    fn slow_ops_classifier_finds_hot_divides() {
        use crisp_isa::{AluOp, Cond, ProgramBuilder, Reg};
        let r = Reg::new;
        let mut b = ProgramBuilder::new();
        b.li(r(1), 64);
        b.li(r(2), 7);
        let top = b.label();
        b.bind(top);
        b.div(r(3), r(2), r(2)); // hot divide
        b.alu_ri(AluOp::Add, r(4), r(4), 1);
        b.alu_ri(AluOp::Sub, r(1), r(1), 1);
        b.branch(Cond::Ne, r(1), Reg::ZERO, top);
        b.halt();
        let p = b.build();
        let t = crisp_emu::Emulator::new(&p, crisp_emu::Memory::new()).run(10_000);
        let slow = classify_slow_ops(&p, &t, 0.05);
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].pc, 2);
        assert_eq!(slow[0].latency, 20);
        // A higher share bar excludes it.
        assert!(classify_slow_ops(&p, &t, 0.5).is_empty());
    }

    #[test]
    fn slow_ops_sorted_by_stall_contribution() {
        use crisp_isa::{Cond, Opcode, ProgramBuilder, Reg};
        let r = Reg::new;
        let mut b = ProgramBuilder::new();
        b.li(r(1), 32);
        let top = b.label();
        b.bind(top);
        b.div(r(3), r(2), r(2)); // int div, 20 cycles
        b.fp(Opcode::FDiv, r(4), r(2), r(2)); // fdiv, 14 cycles
        b.alu_ri(crisp_isa::AluOp::Sub, r(1), r(1), 1);
        b.branch(Cond::Ne, r(1), Reg::ZERO, top);
        b.halt();
        let p = b.build();
        let t = crisp_emu::Emulator::new(&p, crisp_emu::Memory::new()).run(10_000);
        let slow = classify_slow_ops(&p, &t, 0.01);
        assert_eq!(slow.len(), 2);
        assert_eq!(slow[0].latency, 20, "heavier divide first");
    }
}
