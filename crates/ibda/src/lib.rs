//! # crisp-ibda
//!
//! The hardware-only baseline CRISP is compared against in Figure 7:
//! **iterative backwards dependency analysis** (IBDA) from the Load Slice
//! Architecture (Carlson et al., ISCA 2015), with the paper's evaluation
//! configuration — a 32-entry delinquent load table (DLT) capturing the
//! most frequently LLC-missing loads, and a set-associative instruction
//! slice table (IST) of 1K/8K/64K/∞ entries.
//!
//! IBDA's defining limitations, reproduced here deliberately:
//!
//! * it observes dependencies **through registers only** — a value passed
//!   through memory (register spill) breaks the backward walk;
//! * slices grow **one producer level per execution** of an IST-resident
//!   instruction (that is the "iterative" in IBDA), so cold slices take
//!   many loop iterations to capture;
//! * the IST has finite capacity — large slices thrash it (the `moses`
//!   failure mode in Section 5.2);
//! * there is **no critical-path filtering** — every address-generating
//!   instruction found becomes critical, flooding the scheduler's priority
//!   (the `fotonik`/`perlbench` regression in Section 5.2);
//! * there is no notion of MLP, so high-MPKI-but-well-overlapped loads are
//!   still captured (the `bwaves` failure mode).
//!
//! ## Example
//!
//! ```
//! use crisp_ibda::{Ibda, IbdaConfig};
//! use crisp_isa::{ProgramBuilder, Reg, AluOp};
//! use crisp_emu::{Emulator, Memory};
//!
//! let mut b = ProgramBuilder::new();
//! b.li(Reg::new(1), 0x1000);
//! let load = b.load(Reg::new(2), Reg::new(1), 0, 8);
//! b.halt();
//! let program = b.build();
//! let trace = Emulator::new(&program, Memory::new()).run(100);
//!
//! let mut ibda = Ibda::new(IbdaConfig::ist_1k(), &[load]);
//! ibda.train(&program, &trace);
//! let map = ibda.criticality_map(program.len());
//! assert!(map[load as usize]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use crisp_isa::{Pc, Program, Trace};
use std::collections::HashSet;

/// Geometry of the IBDA hardware structures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IbdaConfig {
    /// Instruction-slice-table entries (`usize::MAX` = infinite).
    pub ist_entries: usize,
    /// IST associativity (ignored for the infinite IST).
    pub ist_ways: usize,
    /// Delinquent-load-table entries (the paper uses 32).
    pub dlt_entries: usize,
}

impl IbdaConfig {
    /// The paper's primary configuration: 1024-entry, 4-way IST.
    pub fn ist_1k() -> IbdaConfig {
        IbdaConfig {
            ist_entries: 1024,
            ist_ways: 4,
            dlt_entries: 32,
        }
    }

    /// 8K-entry, 8-way IST.
    pub fn ist_8k() -> IbdaConfig {
        IbdaConfig {
            ist_entries: 8192,
            ist_ways: 8,
            dlt_entries: 32,
        }
    }

    /// 64K-entry, 16-way IST.
    pub fn ist_64k() -> IbdaConfig {
        IbdaConfig {
            ist_entries: 65536,
            ist_ways: 16,
            dlt_entries: 32,
        }
    }

    /// Infinitely sized IST (isolates the capacity limitation).
    pub fn ist_infinite() -> IbdaConfig {
        IbdaConfig {
            ist_entries: usize::MAX,
            ist_ways: 1,
            dlt_entries: 32,
        }
    }
}

/// A set-associative table of PCs with LRU replacement (the IST).
#[derive(Clone, Debug)]
struct PcTable {
    sets: Vec<Vec<(u64, Pc)>>,
    ways: usize,
    stamp: u64,
    infinite: Option<HashSet<Pc>>,
}

impl PcTable {
    fn new(entries: usize, ways: usize) -> PcTable {
        if entries == usize::MAX {
            return PcTable {
                sets: Vec::new(),
                ways: 0,
                stamp: 0,
                infinite: Some(HashSet::new()),
            };
        }
        assert!(
            entries.is_multiple_of(ways),
            "entries must divide into ways"
        );
        let num_sets = (entries / ways).max(1);
        assert!(num_sets.is_power_of_two(), "sets must be a power of two");
        PcTable {
            sets: vec![Vec::with_capacity(ways); num_sets],
            ways,
            stamp: 0,
            infinite: None,
        }
    }

    fn set_of(&self, pc: Pc) -> usize {
        (pc as usize) & (self.sets.len() - 1)
    }

    fn contains(&mut self, pc: Pc) -> bool {
        if let Some(set) = &self.infinite {
            return set.contains(&pc);
        }
        self.stamp += 1;
        let stamp = self.stamp;
        let set = self.set_of(pc);
        for slot in &mut self.sets[set] {
            if slot.1 == pc {
                slot.0 = stamp;
                return true;
            }
        }
        false
    }

    fn insert(&mut self, pc: Pc) {
        if let Some(set) = &mut self.infinite {
            set.insert(pc);
            return;
        }
        self.stamp += 1;
        let stamp = self.stamp;
        let ways = self.ways;
        let set_idx = self.set_of(pc);
        let set = &mut self.sets[set_idx];
        if let Some(slot) = set.iter_mut().find(|s| s.1 == pc) {
            slot.0 = stamp;
            return;
        }
        if set.len() < ways {
            set.push((stamp, pc));
        } else {
            *set.iter_mut().min_by_key(|s| s.0).expect("full") = (stamp, pc);
        }
    }

    fn pcs(&self) -> Vec<Pc> {
        match &self.infinite {
            Some(set) => set.iter().copied().collect(),
            None => self
                .sets
                .iter()
                .flat_map(|s| s.iter().map(|&(_, pc)| pc))
                .collect(),
        }
    }
}

/// The 32-entry delinquent load table: frequency-of-miss admission with
/// clock-style decay, approximating the hardware's miss counters.
#[derive(Clone, Debug)]
struct Dlt {
    entries: Vec<(Pc, u32)>,
    capacity: usize,
}

impl Dlt {
    fn new(capacity: usize) -> Dlt {
        Dlt {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Records an LLC miss of `pc`; returns whether the pc is (now)
    /// resident.
    fn observe_miss(&mut self, pc: Pc) -> bool {
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == pc) {
            e.1 = e.1.saturating_add(1);
            return true;
        }
        if self.entries.len() < self.capacity {
            self.entries.push((pc, 1));
            return true;
        }
        // Decay all counters; replace a zero-count victim if one exists.
        for e in &mut self.entries {
            e.1 = e.1.saturating_sub(1);
        }
        if let Some(victim) = self.entries.iter_mut().find(|e| e.1 == 0) {
            *victim = (pc, 1);
            return true;
        }
        false
    }

    fn contains(&self, pc: Pc) -> bool {
        self.entries.iter().any(|e| e.0 == pc)
    }
}

/// The IBDA engine: streams a trace the way the hardware would observe a
/// running program, learning the DLT and growing the IST one backward
/// dependency level per execution.
#[derive(Clone, Debug)]
pub struct Ibda {
    ist: PcTable,
    dlt: Dlt,
    /// Set of load PCs that miss the LLC (what the hardware observes from
    /// its own cache-miss signal). Instance-level miss behaviour is
    /// approximated by a per-PC miss period.
    missing_loads: HashSet<Pc>,
    reg_writer_pc: [Option<Pc>; crisp_isa::Reg::COUNT],
}

impl Ibda {
    /// Creates the engine. `missing_loads` is the set of load PCs that
    /// experience LLC misses (the hardware's runtime miss signal); a more
    /// refined per-instance signal is unnecessary because the DLT only
    /// counts frequency.
    pub fn new(config: IbdaConfig, missing_loads: &[Pc]) -> Ibda {
        Ibda {
            ist: PcTable::new(config.ist_entries, config.ist_ways),
            dlt: Dlt::new(config.dlt_entries),
            missing_loads: missing_loads.iter().copied().collect(),
            reg_writer_pc: [None; crisp_isa::Reg::COUNT],
        }
    }

    /// Streams `trace`, updating the DLT and IST exactly one backward
    /// level per instruction execution.
    pub fn train(&mut self, program: &Program, trace: &Trace) {
        for rec in trace {
            let inst = program.inst(rec.pc);
            // Delinquent loads enter via the DLT.
            if inst.is_load()
                && self.missing_loads.contains(&rec.pc)
                && self.dlt.observe_miss(rec.pc)
            {
                self.ist.insert(rec.pc);
            }
            // IST-resident instructions pull their register producers in —
            // the iterative backward step. Memory producers are invisible.
            if self.ist.contains(rec.pc) {
                for src in inst.dep_srcs() {
                    if let Some(producer) = self.reg_writer_pc[src.index()] {
                        self.ist.insert(producer);
                    }
                }
            }
            if let Some(d) = inst.dep_dst() {
                self.reg_writer_pc[d.index()] = Some(rec.pc);
            }
        }
    }

    /// The learned criticality map: IST contents plus DLT residents.
    pub fn criticality_map(&self, program_len: usize) -> Vec<bool> {
        let mut map = vec![false; program_len];
        for pc in self.ist.pcs() {
            if (pc as usize) < program_len {
                map[pc as usize] = true;
            }
        }
        for &(pc, _) in &self.dlt.entries {
            if (pc as usize) < program_len {
                map[pc as usize] = true;
            }
        }
        map
    }

    /// Number of distinct PCs currently held by the IST.
    pub fn ist_occupancy(&self) -> usize {
        self.ist.pcs().len()
    }

    /// Number of loads currently resident in the DLT.
    pub fn dlt_occupancy(&self) -> usize {
        self.dlt.entries.len()
    }

    /// Whether a load is currently resident in the DLT.
    pub fn dlt_contains(&self, pc: Pc) -> bool {
        self.dlt.contains(pc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_emu::{Emulator, Memory};
    use crisp_isa::{AluOp, Cond, ProgramBuilder, Reg};

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    /// A loop recomputing a load address each iteration so IBDA can grow
    /// the slice iteratively: add -> shl -> load.
    fn loop_with_address_chain() -> (Program, Trace, Pc) {
        let mut b = ProgramBuilder::new();
        b.li(r(1), 0); // 0: i
        b.li(r(5), 64); // 1: count
        let top = b.label();
        b.bind(top);
        b.alu_ri(AluOp::Add, r(2), r(1), 3); // 2
        b.alu_ri(AluOp::Shl, r(3), r(2), 6); // 3
        let load = b.load(r(4), r(3), 0x10000, 8); // 4
        b.alu_ri(AluOp::Add, r(1), r(1), 1); // 5
        b.branch(Cond::Ne, r(1), r(5), top); // 6
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p, Memory::new()).run(10_000);
        (p, t, load)
    }

    #[test]
    fn iterative_growth_captures_register_slice() {
        let (p, t, load) = loop_with_address_chain();
        let mut ibda = Ibda::new(IbdaConfig::ist_1k(), &[load]);
        ibda.train(&p, &t);
        let map = ibda.criticality_map(p.len());
        assert!(map[load as usize], "delinquent load tagged");
        assert!(map[3], "first-level producer (shl) captured");
        assert!(map[2], "second-level producer (add) captured");
    }

    #[test]
    fn growth_is_one_level_per_execution() {
        let (p, t, load) = loop_with_address_chain();
        // After one loop iteration the load and its direct producer are in
        // the IST (the DLT admission marks the load before its own lookup,
        // so level one lands in the same iteration); the second backward
        // level (the add) needs a second execution of the shl.
        let one_iter: Trace = t.iter().take(2 + 5).copied().collect();
        let mut ibda = Ibda::new(IbdaConfig::ist_1k(), &[load]);
        ibda.train(&p, &one_iter);
        let map = ibda.criticality_map(p.len());
        assert!(map[load as usize]);
        assert!(map[3], "first backward level after one iteration");
        assert!(!map[2], "second level needs another execution");

        let two_iters: Trace = t.iter().take(2 + 2 * 5).copied().collect();
        let mut ibda2 = Ibda::new(IbdaConfig::ist_1k(), &[load]);
        ibda2.train(&p, &two_iters);
        let map2 = ibda2.criticality_map(p.len());
        assert!(map2[2], "second level after the second iteration");
        assert!(!map2[0], "loop-invariant li of i needs a third iteration");
    }

    #[test]
    fn memory_dependencies_are_invisible() {
        // Spill/reload: IBDA finds the reload's address producer but not
        // the spilled value's producer.
        let mut b = ProgramBuilder::new();
        b.li(r(30), 0x8000); // 0
        b.li(r(2), 0x4000); // 1: true origin
        b.store(r(30), 0, r(2), 8); // 2: spill
        b.li(r(2), 0); // 3
        b.load(r(4), r(30), 0, 8); // 4: reload
        let load = b.load(r(5), r(4), 0, 8); // 5: delinquent
        b.halt();
        let p = b.build();
        // Execute the block repeatedly so IBDA has iterations to grow.
        // (a single block is enough: all producers are in-block)
        let t = Emulator::new(&p, Memory::new()).run(100);
        let mut ibda = Ibda::new(IbdaConfig::ist_infinite(), &[load]);
        // Train multiple times to let the slice grow fully.
        for _ in 0..4 {
            ibda.train(&p, &t);
        }
        let map = ibda.criticality_map(p.len());
        assert!(map[5]);
        assert!(map[4], "address producer (reload) captured");
        assert!(
            !map[1],
            "value passed through memory must stay invisible to IBDA"
        );
        assert!(!map[2], "the spill store is not a register producer");
    }

    #[test]
    fn dlt_is_capacity_bounded_and_retains_hot_loads() {
        // One hot missing load inside a loop plus many cold missing loads:
        // the frequency-counting DLT keeps the hot load resident while the
        // cold ones churn through, and never exceeds its capacity.
        let mut b = ProgramBuilder::new();
        let mut load_pcs = Vec::new();
        b.li(r(1), 0x100000); // 0
        b.li(r(5), 50); // 1
        let top = b.label();
        b.bind(top);
        let hot = b.load(r(2), r(1), 0, 8);
        load_pcs.push(hot);
        b.alu_ri(AluOp::Sub, r(5), r(5), 1);
        b.branch(Cond::Ne, r(5), Reg::ZERO, top);
        for i in 0..40 {
            load_pcs.push(b.load(r(2), r(1), 64 * (i + 1), 8));
        }
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p, Memory::new()).run(10_000);
        let cfg = IbdaConfig {
            dlt_entries: 4,
            ..IbdaConfig::ist_infinite()
        };
        let mut ibda = Ibda::new(cfg, &load_pcs);
        ibda.train(&p, &t);
        assert!(ibda.dlt_occupancy() <= 4);
        assert!(
            ibda.dlt_contains(hot),
            "hot load must survive the cold-load churn"
        );
    }

    #[test]
    fn small_ist_thrashes_on_large_slices() {
        // A program with many address-generating instructions: the 8-entry
        // IST retains only a fraction, the infinite IST keeps them all.
        let mut b = ProgramBuilder::new();
        b.li(r(1), 0); // 0
        b.li(r(5), 32); // 1
        let top = b.label();
        b.bind(top);
        // 16-deep address chain.
        for k in 0..16 {
            b.alu_ri(AluOp::Add, r(2), if k == 0 { r(1) } else { r(2) }, 1);
        }
        let load = b.load(r(4), r(2), 0x20000, 8); // 18
        b.alu_ri(AluOp::Add, r(1), r(1), 1);
        b.branch(Cond::Ne, r(1), r(5), top);
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p, Memory::new()).run(10_000);

        let mut tiny = Ibda::new(
            IbdaConfig {
                ist_entries: 8,
                ist_ways: 2,
                dlt_entries: 32,
            },
            &[load],
        );
        tiny.train(&p, &t);
        let mut infinite = Ibda::new(IbdaConfig::ist_infinite(), &[load]);
        infinite.train(&p, &t);
        assert!(infinite.ist_occupancy() >= 17, "full slice captured");
        assert!(
            tiny.ist_occupancy() <= 8,
            "tiny IST bounded: {}",
            tiny.ist_occupancy()
        );
    }

    #[test]
    fn non_missing_loads_never_enter() {
        let (p, t, load) = loop_with_address_chain();
        let mut ibda = Ibda::new(IbdaConfig::ist_1k(), &[]);
        ibda.train(&p, &t);
        let map = ibda.criticality_map(p.len());
        assert!(!map[load as usize]);
        assert_eq!(ibda.ist_occupancy(), 0);
    }

    #[test]
    fn config_presets() {
        assert_eq!(IbdaConfig::ist_1k().ist_entries, 1024);
        assert_eq!(IbdaConfig::ist_8k().ist_ways, 8);
        assert_eq!(IbdaConfig::ist_64k().ist_entries, 65536);
        assert_eq!(IbdaConfig::ist_infinite().ist_entries, usize::MAX);
    }
}
