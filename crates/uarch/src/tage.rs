use crate::{DirectionPredictor, SatCounter};

/// Configuration of a [`Tage`] predictor.
///
/// Defaults model the TAGE predictor of the paper's Table 1 baseline: a
/// bimodal base plus 6 tagged components with geometric history lengths.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TageConfig {
    /// Number of tagged components.
    pub num_tables: usize,
    /// Entries in the bimodal base predictor (power of two).
    pub base_entries: usize,
    /// Entries per tagged table (power of two).
    pub table_entries: usize,
    /// Tag width in bits (≤ 14).
    pub tag_bits: u32,
    /// Shortest history length.
    pub min_hist: u32,
    /// Longest history length.
    pub max_hist: u32,
    /// Updates between useful-counter resets.
    pub u_reset_period: u64,
}

impl Default for TageConfig {
    fn default() -> TageConfig {
        TageConfig {
            num_tables: 6,
            base_entries: 1 << 13,
            table_entries: 1 << 10,
            tag_bits: 10,
            min_hist: 5,
            max_hist: 640,
            u_reset_period: 1 << 18,
        }
    }
}

impl TageConfig {
    /// The geometric history length of tagged table `i` (0-based).
    pub fn history_length(&self, i: usize) -> u32 {
        if self.num_tables == 1 {
            return self.min_hist;
        }
        let ratio = (self.max_hist as f64 / self.min_hist as f64)
            .powf(i as f64 / (self.num_tables - 1) as f64);
        (self.min_hist as f64 * ratio).round() as u32
    }
}

/// Folded (compressed) history register, per Seznec's TAGE
/// implementations: an `orig_len`-bit history folded down to
/// `comp_len` bits by cyclic XOR, updated incrementally in O(1).
#[derive(Clone, Debug)]
struct FoldedHistory {
    comp: u32,
    comp_len: u32,
    orig_len: u32,
    out_point: u32,
}

impl FoldedHistory {
    fn new(orig_len: u32, comp_len: u32) -> FoldedHistory {
        FoldedHistory {
            comp: 0,
            comp_len,
            orig_len,
            out_point: orig_len % comp_len,
        }
    }

    /// Shifts in `new_bit`; `old_bit` is the bit leaving the original
    /// history window.
    fn update(&mut self, new_bit: bool, old_bit: bool) {
        self.comp = (self.comp << 1) | u32::from(new_bit);
        self.comp ^= u32::from(old_bit) << self.out_point;
        self.comp ^= self.comp >> self.comp_len;
        self.comp &= (1u32 << self.comp_len) - 1;
        let _ = self.orig_len;
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct TageEntry {
    tag: u16,
    ctr: SatCounter,
    useful: u8,
}

/// The TAGE conditional-branch predictor (Seznec, "A case for
/// (partially)-tagged geometric history length predictors", JILP 2006).
///
/// A bimodal base table provides the default prediction; tagged components
/// indexed by hashes of geometrically increasing history lengths override it
/// when they hold a matching tag. Allocation happens on mispredictions into
/// longer-history components, guarded by per-entry useful counters.
///
/// See the crate-level example for usage.
#[derive(Clone, Debug)]
pub struct Tage {
    config: TageConfig,
    base: Vec<SatCounter>,
    tables: Vec<Vec<TageEntry>>,
    hist_lens: Vec<u32>,
    index_fold: Vec<FoldedHistory>,
    tag_fold0: Vec<FoldedHistory>,
    tag_fold1: Vec<FoldedHistory>,
    /// Circular buffer of raw outcome bits, newest at `hist_pos`.
    history: Vec<bool>,
    hist_pos: usize,
    use_alt_on_na: SatCounter,
    lfsr: u32,
    updates: u64,
    // Per-prediction bookkeeping (filled by `predict`, consumed by `update`).
    last: PredState,
}

#[derive(Clone, Copy, Debug, Default)]
struct PredState {
    provider: Option<usize>,
    provider_idx: usize,
    alt_provider: Option<usize>,
    alt_idx: usize,
    base_idx: usize,
    provider_pred: bool,
    alt_pred: bool,
    final_pred: bool,
    provider_weak: bool,
    indices: [usize; 16],
    tags: [u16; 16],
}

impl Tage {
    /// Creates a TAGE predictor from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if table sizes are not powers of two or `num_tables > 16`.
    pub fn new(config: TageConfig) -> Tage {
        assert!(config.base_entries.is_power_of_two());
        assert!(config.table_entries.is_power_of_two());
        assert!(config.num_tables <= 16, "at most 16 tagged tables");
        assert!(config.tag_bits <= 14);
        let hist_lens: Vec<u32> = (0..config.num_tables)
            .map(|i| config.history_length(i))
            .collect();
        let index_bits = config.table_entries.trailing_zeros();
        let index_fold = hist_lens
            .iter()
            .map(|&l| FoldedHistory::new(l, index_bits))
            .collect();
        let tag_fold0 = hist_lens
            .iter()
            .map(|&l| FoldedHistory::new(l, config.tag_bits))
            .collect();
        let tag_fold1 = hist_lens
            .iter()
            .map(|&l| FoldedHistory::new(l, config.tag_bits - 1))
            .collect();
        Tage {
            base: vec![SatCounter::new(2, 0); config.base_entries],
            tables: vec![vec![TageEntry::default(); config.table_entries]; config.num_tables],
            history: vec![false; config.max_hist as usize + 1],
            hist_pos: 0,
            hist_lens,
            index_fold,
            tag_fold0,
            tag_fold1,
            use_alt_on_na: SatCounter::new(4, 0),
            lfsr: 0xACE1,
            updates: 0,
            last: PredState::default(),
            config,
        }
    }

    /// Creates a TAGE predictor with the default (Table 1) configuration.
    pub fn default_config() -> Tage {
        Tage::new(TageConfig::default())
    }

    /// The predictor's configuration.
    pub fn config(&self) -> &TageConfig {
        &self.config
    }

    /// Serialises the full learned state — base counters, tagged tables,
    /// the raw outcome history ring, the folded-history registers, the
    /// use-alt policy counter, the allocation LFSR and the update count —
    /// as a flat word vector.
    ///
    /// The per-prediction scratch (provider/alternate bookkeeping between
    /// `predict` and `update`) is *not* captured: snapshots are taken at
    /// instruction boundaries, never between a predict and its update.
    pub fn snapshot_words(&self) -> Vec<u64> {
        let mut w = vec![self.base.len() as u64];
        w.extend(self.base.iter().map(|c| c.to_word()));
        w.push(self.tables.len() as u64);
        for table in &self.tables {
            w.push(table.len() as u64);
            for e in table {
                w.push(u64::from(e.tag));
                w.push(e.ctr.to_word());
                w.push(u64::from(e.useful));
            }
        }
        w.push(self.history.len() as u64);
        w.extend(self.history.iter().map(|&b| u64::from(b)));
        w.push(self.hist_pos as u64);
        for folds in [&self.index_fold, &self.tag_fold0, &self.tag_fold1] {
            w.push(folds.len() as u64);
            w.extend(folds.iter().map(|f| u64::from(f.comp)));
        }
        w.push(self.use_alt_on_na.to_word());
        w.push(u64::from(self.lfsr));
        w.push(self.updates);
        w
    }

    /// Restores state captured by [`Tage::snapshot_words`] into a
    /// predictor built from the same configuration. Resets the
    /// per-prediction scratch.
    ///
    /// # Errors
    ///
    /// Rejects geometry mismatches, out-of-range folded histories and
    /// malformed input; the predictor should be discarded on error.
    pub fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
        let mut r = crate::wcodec::Reader::new(words, "tage");
        let n_base = r.usize()?;
        if n_base != self.base.len() {
            return Err(format!(
                "tage snapshot: {n_base} base counters, expected {}",
                self.base.len()
            ));
        }
        for c in &mut self.base {
            *c = SatCounter::from_word(r.u64()?)?;
        }
        let n_tables = r.usize()?;
        if n_tables != self.tables.len() {
            return Err(format!(
                "tage snapshot: {n_tables} tagged tables, expected {}",
                self.tables.len()
            ));
        }
        let tag_mask = !((1u64 << self.config.tag_bits) - 1);
        for table in &mut self.tables {
            let n = r.usize()?;
            if n != table.len() {
                return Err(format!(
                    "tage snapshot: {n} entries in a table, expected {}",
                    table.len()
                ));
            }
            for e in table.iter_mut() {
                let tag = r.u64()?;
                if tag & tag_mask != 0 {
                    return Err(format!("tage snapshot: tag {tag:#x} wider than configured"));
                }
                e.tag = tag as u16;
                e.ctr = SatCounter::from_word(r.u64()?)?;
                e.useful = r.u8()?;
            }
        }
        let n_hist = r.usize()?;
        if n_hist != self.history.len() {
            return Err(format!(
                "tage snapshot: {n_hist} history bits, expected {}",
                self.history.len()
            ));
        }
        for b in &mut self.history {
            *b = r.bool()?;
        }
        let hist_pos = r.usize()?;
        if hist_pos >= self.history.len() {
            return Err(format!(
                "tage snapshot: history cursor {hist_pos} out of range"
            ));
        }
        self.hist_pos = hist_pos;
        for folds in [
            &mut self.index_fold,
            &mut self.tag_fold0,
            &mut self.tag_fold1,
        ] {
            let n = r.usize()?;
            if n != folds.len() {
                return Err(format!(
                    "tage snapshot: {n} folded histories, expected {}",
                    folds.len()
                ));
            }
            for f in folds.iter_mut() {
                let comp = r.u64()?;
                if comp >> f.comp_len != 0 {
                    return Err(format!(
                        "tage snapshot: folded history {comp:#x} wider than {} bits",
                        f.comp_len
                    ));
                }
                f.comp = comp as u32;
            }
        }
        self.use_alt_on_na = SatCounter::from_word(r.u64()?)?;
        self.lfsr = u32::try_from(r.u64()?).map_err(|_| "tage snapshot: lfsr overflow")?;
        self.updates = r.u64()?;
        self.last = PredState::default();
        r.finish()
    }

    fn index(&self, pc: u64, table: usize) -> usize {
        let mask = self.config.table_entries - 1;
        let fold = self.index_fold[table].comp as u64;
        let h = pc ^ (pc >> 4) ^ fold ^ ((table as u64) << 3);
        (h as usize) & mask
    }

    fn tag(&self, pc: u64, table: usize) -> u16 {
        let t0 = self.tag_fold0[table].comp;
        let t1 = self.tag_fold1[table].comp;
        let mask = (1u32 << self.config.tag_bits) - 1;
        (((pc as u32) ^ t0 ^ (t1 << 1)) & mask) as u16
    }

    fn base_index(&self, pc: u64) -> usize {
        (pc as usize) & (self.config.base_entries - 1)
    }

    fn rand(&mut self) -> u32 {
        // 16-bit Fibonacci LFSR: deterministic allocation randomness.
        let bit = (self.lfsr ^ (self.lfsr >> 2) ^ (self.lfsr >> 3) ^ (self.lfsr >> 5)) & 1;
        self.lfsr = (self.lfsr >> 1) | (bit << 15);
        self.lfsr
    }

    fn push_history(&mut self, taken: bool) {
        self.hist_pos = (self.hist_pos + 1) % self.history.len();
        self.history[self.hist_pos] = taken;
        for i in 0..self.config.num_tables {
            let len = self.hist_lens[i] as usize;
            // The bit that just left table i's history window.
            let old_pos = (self.hist_pos + self.history.len() - len) % self.history.len();
            let old_bit = self.history[old_pos];
            self.index_fold[i].update(taken, old_bit);
            self.tag_fold0[i].update(taken, old_bit);
            self.tag_fold1[i].update(taken, old_bit);
        }
    }
}

impl DirectionPredictor for Tage {
    fn predict(&mut self, pc: u64) -> bool {
        let mut st = PredState {
            base_idx: self.base_index(pc),
            ..Default::default()
        };
        for t in 0..self.config.num_tables {
            st.indices[t] = self.index(pc, t);
            st.tags[t] = self.tag(pc, t);
        }
        // Longest matching component provides; next longest is alternate.
        for t in (0..self.config.num_tables).rev() {
            let e = &self.tables[t][st.indices[t]];
            if e.tag == st.tags[t] && e.useful != u8::MAX {
                if st.provider.is_none() {
                    st.provider = Some(t);
                    st.provider_idx = st.indices[t];
                    st.provider_pred = e.ctr.is_taken();
                    st.provider_weak = e.ctr.is_weak();
                } else if st.alt_provider.is_none() {
                    st.alt_provider = Some(t);
                    st.alt_idx = st.indices[t];
                    st.alt_pred = e.ctr.is_taken();
                    break;
                }
            }
        }
        if st.alt_provider.is_none() {
            st.alt_pred = self.base[st.base_idx].is_taken();
        }
        st.final_pred = match st.provider {
            Some(_) => {
                if st.provider_weak && self.use_alt_on_na.is_taken() {
                    st.alt_pred
                } else {
                    st.provider_pred
                }
            }
            None => st.alt_pred,
        };
        self.last = st;
        st.final_pred
    }

    fn update(&mut self, _pc: u64, taken: bool, pred: bool) {
        let st = self.last;
        self.updates += 1;

        match st.provider {
            Some(t) => {
                // Track whether trusting weak providers pays off.
                if st.provider_weak && st.provider_pred != st.alt_pred {
                    self.use_alt_on_na.train(st.alt_pred == taken);
                }
                let e = &mut self.tables[t][st.provider_idx];
                e.ctr = {
                    let mut c = e.ctr;
                    c.train(taken);
                    c
                };
                // Useful counter: provider differed from alternate.
                if st.provider_pred != st.alt_pred {
                    let e = &mut self.tables[t][st.provider_idx];
                    if st.provider_pred == taken {
                        e.useful = (e.useful + 1).min(3);
                    } else {
                        e.useful = e.useful.saturating_sub(1);
                    }
                }
                // Train the alternate too when the provider entry is new.
                if st.provider_weak {
                    match st.alt_provider {
                        Some(a) => {
                            let ea = &mut self.tables[a][st.alt_idx];
                            let mut c = ea.ctr;
                            c.train(taken);
                            ea.ctr = c;
                        }
                        None => self.base[st.base_idx].train(taken),
                    }
                }
            }
            None => self.base[st.base_idx].train(taken),
        }

        // Allocate a new entry on misprediction, in a longer-history table.
        if pred != taken {
            let start = st.provider.map_or(0, |t| t + 1);
            if start < self.config.num_tables {
                // Choose among candidate tables with u == 0; prefer shorter
                // history with 2:1 odds (standard TAGE allocation).
                let mut free: Vec<usize> = (start..self.config.num_tables)
                    .filter(|&t| self.tables[t][st.indices[t]].useful == 0)
                    .collect();
                if free.is_empty() {
                    for t in start..self.config.num_tables {
                        let e = &mut self.tables[t][st.indices[t]];
                        e.useful = e.useful.saturating_sub(1);
                    }
                } else {
                    let pick = if free.len() > 1 && self.rand() & 1 == 0 {
                        free.remove(0)
                    } else {
                        free[0]
                    };
                    let e = &mut self.tables[pick][st.indices[pick]];
                    e.tag = st.tags[pick];
                    e.ctr = SatCounter::new(3, if taken { 0 } else { -1 });
                    e.useful = 0;
                }
            }
        }

        // Periodic graceful reset of useful counters.
        if self.updates.is_multiple_of(self.config.u_reset_period) {
            for table in &mut self.tables {
                for e in table.iter_mut() {
                    e.useful >>= 1;
                }
            }
        }

        self.push_history(taken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_pattern(tage: &mut Tage, pc: u64, pattern: &[bool], reps: usize) -> (u64, u64) {
        let mut total = 0;
        let mut wrong = 0;
        for rep in 0..reps {
            for &taken in pattern {
                let pred = tage.predict(pc);
                // Only count accuracy in the second half (after warm-up).
                if rep * 2 >= reps {
                    total += 1;
                    if pred != taken {
                        wrong += 1;
                    }
                }
                tage.update(pc, taken, pred);
            }
        }
        (wrong, total)
    }

    #[test]
    fn history_lengths_are_geometric_and_monotonic() {
        let c = TageConfig::default();
        let mut prev = 0;
        for i in 0..c.num_tables {
            let l = c.history_length(i);
            assert!(l > prev, "history lengths must increase");
            prev = l;
        }
        assert_eq!(c.history_length(0), c.min_hist);
        assert_eq!(c.history_length(c.num_tables - 1), c.max_hist);
    }

    #[test]
    fn learns_strong_bias() {
        let mut t = Tage::default_config();
        let (wrong, total) = run_pattern(&mut t, 0x1234, &[true], 200);
        assert!(wrong * 100 <= total, "biased branch: {wrong}/{total}");
    }

    #[test]
    fn learns_short_periodic_pattern() {
        let mut t = Tage::default_config();
        let pattern = [true, true, false, true, false, false];
        let (wrong, total) = run_pattern(&mut t, 0x777, &pattern, 400);
        assert!(
            (wrong as f64) < total as f64 * 0.10,
            "period-6 pattern should be learnable: {wrong}/{total}"
        );
    }

    #[test]
    fn learns_long_correlation_beyond_bimodal() {
        // Loop-exit style branch with period 24: taken 23x, not-taken 1x.
        let mut t = Tage::default_config();
        let mut pattern = vec![true; 23];
        pattern.push(false);
        let (wrong, total) = run_pattern(&mut t, 0xBEEF, &pattern, 300);
        // Bimodal alone would miss every exit: ~4.2% floor. TAGE should
        // learn the loop count through its longer-history components.
        assert!(
            (wrong as f64) < total as f64 * 0.02,
            "loop-exit pattern: {wrong}/{total}"
        );
    }

    #[test]
    fn random_outcomes_do_not_crash_and_hover_near_chance() {
        let mut t = Tage::default_config();
        // Deterministic pseudo-random outcome stream.
        let mut x = 0x12345678u64;
        let mut wrong = 0;
        let n = 4000;
        for _ in 0..n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let taken = (x >> 63) == 1;
            let pred = t.predict(0xAAA);
            if pred != taken {
                wrong += 1;
            }
            t.update(0xAAA, taken, pred);
        }
        let rate = wrong as f64 / n as f64;
        assert!(rate > 0.3 && rate < 0.7, "random stream accuracy: {rate}");
    }

    #[test]
    fn multiple_branches_coexist() {
        let mut t = Tage::default_config();
        for _ in 0..500 {
            for (pc, taken) in [(0x10u64, true), (0x20, false), (0x30, true)] {
                let pred = t.predict(pc);
                t.update(pc, taken, pred);
            }
        }
        assert!(t.predict(0x10));
        assert!(!t.predict(0x20));
        assert!(t.predict(0x30));
    }

    #[test]
    fn folded_history_stays_in_range() {
        let mut f = FoldedHistory::new(131, 10);
        let mut x = 1u32;
        for i in 0..10_000 {
            x = x.wrapping_mul(1103515245).wrapping_add(12345);
            f.update(x & 1 == 1, x & 2 == 2);
            assert!(f.comp < (1 << 10), "iteration {i}");
        }
    }

    #[test]
    fn beats_bimodal_on_loop_exits() {
        use crate::Bimodal;
        let mut pattern = vec![true; 15];
        pattern.push(false);

        let mut tage = Tage::default_config();
        let (tage_wrong, _) = run_pattern(&mut tage, 0x5050, &pattern, 300);

        let mut bim = Bimodal::new(1 << 13);
        let mut bim_wrong = 0;
        for rep in 0..300 {
            for &taken in &pattern {
                let pred = bim.predict(0x5050);
                if rep >= 150 && pred != taken {
                    bim_wrong += 1;
                }
                bim.update(0x5050, taken, pred);
            }
        }
        assert!(
            tage_wrong < bim_wrong / 4,
            "TAGE ({tage_wrong}) should decisively beat bimodal ({bim_wrong})"
        );
    }

    #[test]
    fn snapshot_round_trip_continues_in_lockstep() {
        let mut t = Tage::default_config();
        // Warm up with a mixed pattern so tables, folds and the LFSR all
        // carry non-trivial state.
        let mut x = 0xC0FFEEu64;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let pc = 0x40 + (x & 0xF0);
            let taken = (x >> 62) & 1 == 1;
            let pred = t.predict(pc);
            t.update(pc, taken, pred);
        }
        let words = t.snapshot_words();
        let mut u = Tage::default_config();
        u.restore_words(&words).unwrap();
        assert_eq!(u.snapshot_words(), words, "snapshot must round-trip");
        // Both predictors must now agree on every future prediction.
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let pc = 0x40 + (x & 0xF0);
            let taken = (x >> 62) & 1 == 1;
            let a = t.predict(pc);
            let b = u.predict(pc);
            assert_eq!(a, b, "divergence after restore");
            t.update(pc, taken, a);
            u.update(pc, taken, b);
        }
        assert_eq!(t.snapshot_words(), u.snapshot_words());
    }

    #[test]
    fn snapshot_rejects_mismatched_geometry_and_garbage() {
        let t = Tage::default_config();
        let words = t.snapshot_words();
        let mut small = Tage::new(TageConfig {
            table_entries: 1 << 8,
            ..TageConfig::default()
        });
        assert!(small.restore_words(&words).is_err());
        let mut u = Tage::default_config();
        assert!(u.restore_words(&words[..10]).is_err(), "truncated");
        let mut corrupt = words.clone();
        let last = corrupt.len() - 1;
        corrupt[last] = u64::MAX; // updates is unconstrained; add a word instead
        corrupt.push(0);
        assert!(u.restore_words(&corrupt).is_err(), "trailing words");
    }

    #[test]
    fn tage_beats_gshare_on_long_loops() {
        use crate::Gshare;
        // Loop exit with period 30: a 12-bit gshare sees an all-taken
        // history at every point and cannot locate the exit; TAGE's
        // 34-bit-history component can.
        let mut pattern = vec![true; 29];
        pattern.push(false);

        let mut tage = Tage::default_config();
        let (tage_wrong, total) = run_pattern(&mut tage, 0x9191, &pattern, 400);

        let mut gs = Gshare::new(1 << 12, 12);
        let mut gs_wrong = 0;
        for rep in 0..400 {
            for &taken in &pattern {
                let pred = gs.predict(0x9191);
                if rep >= 200 && pred != taken {
                    gs_wrong += 1;
                }
                gs.update(0x9191, taken, pred);
            }
        }
        assert!(
            tage_wrong * 2 < gs_wrong.max(1),
            "TAGE {tage_wrong}/{total} should beat gshare {gs_wrong}"
        );
    }
}
