use crate::{DirectionPredictor, SatCounter};

/// A gshare predictor: 2-bit counters indexed by `pc XOR global history`.
///
/// Provided as an intermediate baseline between [`crate::Bimodal`] and
/// [`crate::Tage`]; it learns short correlated patterns that bimodal
/// cannot.
///
/// # Example
///
/// ```
/// use crisp_uarch::{Gshare, DirectionPredictor};
/// let mut p = Gshare::new(1 << 12, 12);
/// // Alternating branch becomes predictable through history correlation.
/// let mut taken = false;
/// for _ in 0..256 {
///     taken = !taken;
///     let pred = p.predict(0x88);
///     p.update(0x88, taken, pred);
/// }
/// let next = p.predict(0x88);
/// assert_eq!(next, !taken);
/// ```
#[derive(Clone, Debug)]
pub struct Gshare {
    table: Vec<SatCounter>,
    mask: u64,
    history: u64,
    hist_mask: u64,
}

impl Gshare {
    /// Creates a predictor with `entries` counters and `hist_bits` bits of
    /// global history.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `hist_bits > 63`.
    pub fn new(entries: usize, hist_bits: u32) -> Gshare {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        assert!(hist_bits <= 63, "history too long");
        Gshare {
            table: vec![SatCounter::new(2, 0); entries],
            mask: entries as u64 - 1,
            history: 0,
            hist_mask: (1u64 << hist_bits) - 1,
        }
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        ((pc ^ self.history) & self.mask) as usize
    }

    /// The current global-history register value.
    pub fn history(&self) -> u64 {
        self.history
    }

    /// Serialises the history register and counter table as a word vector.
    pub fn snapshot_words(&self) -> Vec<u64> {
        let mut w = vec![self.history, self.table.len() as u64];
        w.extend(self.table.iter().map(|c| c.to_word()));
        w
    }

    /// Restores state captured by [`Gshare::snapshot_words`] into an
    /// identically-sized predictor.
    ///
    /// # Errors
    ///
    /// Rejects table-size or history-width mismatches and malformed input.
    pub fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
        let mut r = crate::wcodec::Reader::new(words, "gshare");
        let history = r.u64()?;
        if history & !self.hist_mask != 0 {
            return Err("gshare snapshot: history wider than configured".to_string());
        }
        let n = r.usize()?;
        if n != self.table.len() {
            return Err(format!(
                "gshare snapshot: {n} counters, expected {}",
                self.table.len()
            ));
        }
        self.history = history;
        for c in &mut self.table {
            *c = SatCounter::from_word(r.u64()?)?;
        }
        r.finish()
    }
}

impl DirectionPredictor for Gshare {
    fn predict(&mut self, pc: u64) -> bool {
        self.table[self.index(pc)].is_taken()
    }

    fn update(&mut self, pc: u64, taken: bool, _pred: bool) {
        let idx = self.index(pc);
        self.table[idx].train(taken);
        self.history = ((self.history << 1) | u64::from(taken)) & self.hist_mask;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_alternating_pattern() {
        let mut p = Gshare::new(1 << 10, 10);
        let mut taken = false;
        let mut wrong_late = 0;
        for i in 0..400 {
            taken = !taken;
            let pred = p.predict(0x33);
            if i >= 200 && pred != taken {
                wrong_late += 1;
            }
            p.update(0x33, taken, pred);
        }
        assert!(
            wrong_late < 5,
            "gshare failed to learn alternation: {wrong_late}"
        );
    }

    #[test]
    fn history_shifts_in_outcomes() {
        let mut p = Gshare::new(64, 8);
        p.update(0, true, true);
        p.update(0, false, false);
        p.update(0, true, true);
        assert_eq!(p.history() & 0b111, 0b101);
    }

    #[test]
    fn history_is_bounded() {
        let mut p = Gshare::new(64, 4);
        for _ in 0..100 {
            p.update(0, true, true);
        }
        assert!(p.history() <= 0xF);
    }

    #[test]
    fn snapshot_round_trip_preserves_learning() {
        let mut p = Gshare::new(1 << 10, 10);
        let mut taken = false;
        for _ in 0..300 {
            taken = !taken;
            let pred = p.predict(0x33);
            p.update(0x33, taken, pred);
        }
        let words = p.snapshot_words();
        let mut q = Gshare::new(1 << 10, 10);
        q.restore_words(&words).unwrap();
        assert_eq!(q.snapshot_words(), words);
        assert_eq!(q.predict(0x33), p.predict(0x33));
        let mut wrong = Gshare::new(1 << 9, 10);
        assert!(wrong.restore_words(&words).is_err());
    }
}
