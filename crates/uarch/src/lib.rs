//! # crisp-uarch
//!
//! Branch-prediction substrate for the CRISP reproduction: the
//! state-of-the-art [`Tage`] predictor used by the paper's simulated core
//! (Table 1), simpler [`Bimodal`] and [`Gshare`] baselines, an 8K-entry
//! [`Btb`], a return-address stack ([`Ras`]) and a last-target
//! [`IndirectPredictor`].
//!
//! All direction predictors implement [`DirectionPredictor`] so the
//! simulator's decoupled frontend (and the sensitivity studies) can swap
//! them freely.
//!
//! ## Example
//!
//! ```
//! use crisp_uarch::{Tage, DirectionPredictor};
//!
//! let mut tage = Tage::default_config();
//! // A strongly biased branch becomes predictable after a few outcomes.
//! for _ in 0..64 {
//!     let pred = tage.predict(0x400);
//!     tage.update(0x400, true, pred);
//! }
//! assert!(tage.predict(0x400));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bimodal;
mod btb;
mod gshare;
mod indirect;
mod ras;
mod tage;
mod wcodec;

pub use bimodal::Bimodal;
pub use btb::{Btb, BtbEntry};
pub use gshare::Gshare;
pub use indirect::IndirectPredictor;
pub use ras::Ras;
pub use tage::{Tage, TageConfig};

/// A conditional-branch direction predictor.
///
/// The trace-driven frontend calls [`DirectionPredictor::predict`] at fetch
/// and [`DirectionPredictor::update`] immediately after (outcomes are known
/// from the trace); the misprediction *penalty* is modelled by the pipeline,
/// not the predictor.
pub trait DirectionPredictor {
    /// Predicts the direction of the conditional branch at byte address
    /// `pc`.
    fn predict(&mut self, pc: u64) -> bool;

    /// Trains the predictor with the resolved outcome. `pred` must be the
    /// value returned by the matching [`DirectionPredictor::predict`] call
    /// (predictors use it for allocation decisions).
    fn update(&mut self, pc: u64, taken: bool, pred: bool);
}

/// An always-taken predictor, useful as a degenerate baseline in tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct AlwaysTaken;

impl DirectionPredictor for AlwaysTaken {
    fn predict(&mut self, _pc: u64) -> bool {
        true
    }
    fn update(&mut self, _pc: u64, _taken: bool, _pred: bool) {}
}

/// A saturating n-bit counter helper shared by the predictors.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct SatCounter {
    value: i8,
    max: i8,
}

impl SatCounter {
    /// Creates a counter with `bits` width, initialised to `value`.
    pub(crate) fn new(bits: u32, value: i8) -> SatCounter {
        let max = ((1i16 << (bits - 1)) - 1) as i8;
        debug_assert!((-max - 1..=max).contains(&value));
        SatCounter { value, max }
    }

    #[inline]
    pub(crate) fn get(self) -> i8 {
        self.value
    }

    #[inline]
    pub(crate) fn is_taken(self) -> bool {
        self.value >= 0
    }

    #[inline]
    pub(crate) fn inc(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    #[inline]
    pub(crate) fn dec(&mut self) {
        if self.value > -self.max - 1 {
            self.value -= 1;
        }
    }

    #[inline]
    pub(crate) fn train(&mut self, taken: bool) {
        if taken {
            self.inc()
        } else {
            self.dec()
        }
    }

    /// Whether the counter is at neither extreme (weakly biased).
    #[inline]
    pub(crate) fn is_weak(self) -> bool {
        self.value == 0 || self.value == -1
    }

    /// Packs the counter (value and saturation bound) into one snapshot
    /// word.
    pub(crate) fn to_word(self) -> u64 {
        u64::from(self.value as u8) | (u64::from(self.max as u8) << 8)
    }

    /// Rebuilds a counter from [`SatCounter::to_word`] output, validating
    /// that the value sits inside the saturation range.
    pub(crate) fn from_word(w: u64) -> Result<SatCounter, String> {
        if w >> 16 != 0 {
            return Err(format!("sat-counter snapshot: bad word {w:#x}"));
        }
        let value = (w & 0xFF) as u8 as i8;
        let max = ((w >> 8) & 0xFF) as u8 as i8;
        if max < 0 || !(-max - 1..=max).contains(&value) {
            return Err(format!(
                "sat-counter snapshot: value {value} outside range of max {max}"
            ));
        }
        Ok(SatCounter { value, max })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sat_counter_saturates_both_ways() {
        let mut c = SatCounter::new(3, 0);
        for _ in 0..10 {
            c.inc();
        }
        assert_eq!(c.get(), 3);
        assert!(c.is_taken());
        for _ in 0..20 {
            c.dec();
        }
        assert_eq!(c.get(), -4);
        assert!(!c.is_taken());
    }

    #[test]
    fn sat_counter_weak_detection() {
        let mut c = SatCounter::new(2, 0);
        assert!(c.is_weak());
        c.dec();
        assert!(c.is_weak());
        c.dec();
        assert!(!c.is_weak());
    }

    #[test]
    fn train_moves_toward_outcome() {
        let mut c = SatCounter::new(2, -1);
        c.train(true);
        assert!(c.is_taken());
        c.train(false);
        c.train(false);
        assert!(!c.is_taken());
    }

    #[test]
    fn always_taken_is_constant() {
        let mut p = AlwaysTaken;
        assert!(p.predict(0));
        p.update(0, false, true);
        assert!(p.predict(0));
    }
}
