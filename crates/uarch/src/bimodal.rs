use crate::{DirectionPredictor, SatCounter};

/// A classic bimodal predictor: a direct-mapped table of 2-bit saturating
/// counters indexed by the branch pc.
///
/// Serves as the base component of [`crate::Tage`] and as a standalone
/// baseline.
///
/// # Example
///
/// ```
/// use crisp_uarch::{Bimodal, DirectionPredictor};
/// let mut p = Bimodal::new(1 << 12);
/// let pred = p.predict(0x40);
/// p.update(0x40, true, pred);
/// p.update(0x40, true, true);
/// assert!(p.predict(0x40));
/// ```
#[derive(Clone, Debug)]
pub struct Bimodal {
    table: Vec<SatCounter>,
    mask: u64,
}

impl Bimodal {
    /// Creates a predictor with `entries` counters.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Bimodal {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        Bimodal {
            table: vec![SatCounter::new(2, 0); entries],
            mask: entries as u64 - 1,
        }
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        // Low bits above the (assumed) 1-byte granularity.
        (pc & self.mask) as usize
    }

    /// Direct read of the counter state for a pc (diagnostics).
    pub fn counter(&self, pc: u64) -> i8 {
        self.table[self.index(pc)].get()
    }

    /// Serialises the counter table as a flat word vector.
    pub fn snapshot_words(&self) -> Vec<u64> {
        let mut w = vec![self.table.len() as u64];
        w.extend(self.table.iter().map(|c| c.to_word()));
        w
    }

    /// Restores state captured by [`Bimodal::snapshot_words`] into an
    /// identically-sized predictor.
    ///
    /// # Errors
    ///
    /// Rejects table-size mismatches and malformed input.
    pub fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
        let mut r = crate::wcodec::Reader::new(words, "bimodal");
        let n = r.usize()?;
        if n != self.table.len() {
            return Err(format!(
                "bimodal snapshot: {n} counters, expected {}",
                self.table.len()
            ));
        }
        for c in &mut self.table {
            *c = SatCounter::from_word(r.u64()?)?;
        }
        r.finish()
    }
}

impl DirectionPredictor for Bimodal {
    fn predict(&mut self, pc: u64) -> bool {
        let idx = self.index(pc);
        self.table[idx].is_taken()
    }

    fn update(&mut self, pc: u64, taken: bool, _pred: bool) {
        let idx = self.index(pc);
        self.table[idx].train(taken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_bias_quickly() {
        let mut p = Bimodal::new(64);
        for _ in 0..4 {
            let pr = p.predict(10);
            p.update(10, false, pr);
        }
        assert!(!p.predict(10));
    }

    #[test]
    fn distinct_pcs_do_not_interfere_without_aliasing() {
        let mut p = Bimodal::new(64);
        for _ in 0..4 {
            p.update(1, true, true);
            p.update(2, false, false);
        }
        assert!(p.predict(1));
        assert!(!p.predict(2));
    }

    #[test]
    fn aliased_pcs_share_a_counter() {
        let mut p = Bimodal::new(16);
        for _ in 0..4 {
            p.update(0, true, true);
        }
        assert!(p.predict(16)); // 16 & 15 == 0
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = Bimodal::new(100);
    }

    #[test]
    fn alternating_pattern_defeats_bimodal() {
        // Sanity: bimodal cannot learn period-2 patterns; it stays near the
        // weak states and mispredicts about half the time.
        let mut p = Bimodal::new(64);
        let mut wrong = 0;
        let mut taken = false;
        for _ in 0..100 {
            taken = !taken;
            let pred = p.predict(5);
            if pred != taken {
                wrong += 1;
            }
            p.update(5, taken, pred);
        }
        assert!(wrong >= 40, "bimodal should not learn alternation: {wrong}");
    }
}
