/// A return-address stack (RAS) of fixed depth with wrap-around on
/// overflow, as in real frontends.
///
/// # Example
///
/// ```
/// use crisp_uarch::Ras;
/// let mut ras = Ras::new(16);
/// ras.push(0x104);
/// ras.push(0x208);
/// assert_eq!(ras.pop(), Some(0x208));
/// assert_eq!(ras.pop(), Some(0x104));
/// assert_eq!(ras.pop(), None);
/// ```
#[derive(Clone, Debug)]
pub struct Ras {
    stack: Vec<u64>,
    top: usize,
    depth: usize,
    capacity: usize,
}

impl Ras {
    /// Creates a RAS holding up to `capacity` return addresses.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Ras {
        assert!(capacity > 0, "RAS capacity must be positive");
        Ras {
            stack: vec![0; capacity],
            top: 0,
            depth: 0,
            capacity,
        }
    }

    /// Pushes a return address (on a call). Overflow overwrites the oldest
    /// entry.
    pub fn push(&mut self, ret_addr: u64) {
        self.top = (self.top + 1) % self.capacity;
        self.stack[self.top] = ret_addr;
        self.depth = (self.depth + 1).min(self.capacity);
    }

    /// Pops the predicted return address (on a return), or `None` when
    /// empty.
    pub fn pop(&mut self) -> Option<u64> {
        if self.depth == 0 {
            return None;
        }
        let v = self.stack[self.top];
        self.top = (self.top + self.capacity - 1) % self.capacity;
        self.depth -= 1;
        Some(v)
    }

    /// Current number of valid entries.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Discards all entries (e.g. on a pipeline flush in simpler recovery
    /// schemes).
    pub fn clear(&mut self) {
        self.depth = 0;
    }

    /// Serialises the stack contents and cursor as a word vector.
    pub fn snapshot_words(&self) -> Vec<u64> {
        let mut w = vec![self.top as u64, self.depth as u64, self.stack.len() as u64];
        w.extend_from_slice(&self.stack);
        w
    }

    /// Restores state captured by [`Ras::snapshot_words`] into a RAS of
    /// the same capacity.
    ///
    /// # Errors
    ///
    /// Rejects capacity mismatches, out-of-range cursors and malformed
    /// input.
    pub fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
        let mut r = crate::wcodec::Reader::new(words, "ras");
        let top = r.usize()?;
        let depth = r.usize()?;
        let n = r.usize()?;
        if n != self.capacity || top >= self.capacity || depth > self.capacity {
            return Err(format!(
                "ras snapshot: capacity {n} / top {top} / depth {depth}, expected capacity {}",
                self.capacity
            ));
        }
        self.top = top;
        self.depth = depth;
        for slot in &mut self.stack {
            *slot = r.u64()?;
        }
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut r = Ras::new(8);
        for a in [1u64, 2, 3] {
            r.push(a);
        }
        assert_eq!(r.depth(), 3);
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), Some(1));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn overflow_wraps_and_keeps_newest() {
        let mut r = Ras::new(2);
        r.push(1);
        r.push(2);
        r.push(3); // overwrites 1
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        // Deep frame lost: returns stale slot or empty, never 1.
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn interleaved_push_pop() {
        let mut r = Ras::new(4);
        r.push(10);
        assert_eq!(r.pop(), Some(10));
        r.push(20);
        r.push(30);
        assert_eq!(r.pop(), Some(30));
        r.push(40);
        assert_eq!(r.pop(), Some(40));
        assert_eq!(r.pop(), Some(20));
    }

    #[test]
    fn clear_empties() {
        let mut r = Ras::new(4);
        r.push(1);
        r.clear();
        assert_eq!(r.depth(), 0);
        assert_eq!(r.pop(), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = Ras::new(0);
    }

    #[test]
    fn snapshot_round_trip_preserves_stack() {
        let mut r = Ras::new(4);
        r.push(10);
        r.push(20);
        r.push(30);
        r.pop();
        let words = r.snapshot_words();
        let mut s = Ras::new(4);
        s.restore_words(&words).unwrap();
        assert_eq!(s.snapshot_words(), words);
        assert_eq!(s.pop(), Some(20));
        assert_eq!(s.pop(), Some(10));
        let mut wrong = Ras::new(8);
        assert!(wrong.restore_words(&words).is_err());
    }
}
