use crisp_isa::CtrlKind;

/// One branch-target-buffer entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BtbEntry {
    /// Full tag (the branch byte address).
    pub pc: u64,
    /// Predicted target byte address.
    pub target: u64,
    /// Kind of control transfer, so the frontend knows whether to consult
    /// the direction predictor, the RAS or the indirect predictor.
    pub kind: CtrlKind,
}

/// A set-associative branch target buffer.
///
/// Table 1 of the paper specifies 8K entries; the default constructor
/// models that as 2048 sets × 4 ways with true-LRU replacement.
///
/// # Example
///
/// ```
/// use crisp_uarch::Btb;
/// use crisp_isa::CtrlKind;
/// let mut btb = Btb::new(8192, 4);
/// assert!(btb.lookup(0x400).is_none());
/// btb.insert(0x400, 0x800, CtrlKind::Jump);
/// assert_eq!(btb.lookup(0x400).unwrap().target, 0x800);
/// ```
#[derive(Clone, Debug)]
pub struct Btb {
    sets: Vec<Vec<(u64 /* lru stamp */, BtbEntry)>>,
    ways: usize,
    set_mask: u64,
    stamp: u64,
    lookups: u64,
    misses: u64,
}

impl Btb {
    /// Creates a BTB with `entries` total entries and `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not divisible into a power-of-two number of
    /// sets of `ways` entries.
    pub fn new(entries: usize, ways: usize) -> Btb {
        assert!(ways >= 1 && entries.is_multiple_of(ways));
        let num_sets = entries / ways;
        assert!(num_sets.is_power_of_two(), "sets must be a power of two");
        Btb {
            sets: vec![Vec::with_capacity(ways); num_sets],
            ways,
            set_mask: num_sets as u64 - 1,
            stamp: 0,
            lookups: 0,
            misses: 0,
        }
    }

    #[inline]
    fn set_index(&self, pc: u64) -> usize {
        ((pc ^ (pc >> 12)) & self.set_mask) as usize
    }

    /// Looks up the control-flow metadata for the instruction at byte
    /// address `pc`. Returns `None` on a BTB miss (the frontend then treats
    /// the instruction as a fall-through until it decodes).
    pub fn lookup(&mut self, pc: u64) -> Option<BtbEntry> {
        self.lookups += 1;
        self.stamp += 1;
        let set = self.set_index(pc);
        for slot in &mut self.sets[set] {
            if slot.1.pc == pc {
                slot.0 = self.stamp;
                return Some(slot.1);
            }
        }
        self.misses += 1;
        None
    }

    /// Inserts or updates the entry for `pc`.
    pub fn insert(&mut self, pc: u64, target: u64, kind: CtrlKind) {
        self.stamp += 1;
        let stamp = self.stamp;
        let ways = self.ways;
        let set_idx = self.set_index(pc);
        let set = &mut self.sets[set_idx];
        if let Some(slot) = set.iter_mut().find(|s| s.1.pc == pc) {
            slot.0 = stamp;
            slot.1.target = target;
            slot.1.kind = kind;
            return;
        }
        let entry = BtbEntry { pc, target, kind };
        if set.len() < ways {
            set.push((stamp, entry));
        } else {
            // Evict true-LRU.
            let victim = set.iter_mut().min_by_key(|s| s.0).expect("non-empty set");
            *victim = (stamp, entry);
        }
    }

    /// `(lookups, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.lookups, self.misses)
    }

    /// Serialises tags, targets, LRU stamps and counters as a word vector.
    pub fn snapshot_words(&self) -> Vec<u64> {
        let mut w = vec![
            self.stamp,
            self.lookups,
            self.misses,
            self.sets.len() as u64,
        ];
        for set in &self.sets {
            w.push(set.len() as u64);
            for (stamp, e) in set {
                w.push(*stamp);
                w.push(e.pc);
                w.push(e.target);
                w.push(match e.kind {
                    CtrlKind::CondBranch => 0,
                    CtrlKind::Jump => 1,
                    CtrlKind::IndirectJump => 2,
                    CtrlKind::Call => 3,
                    CtrlKind::Ret => 4,
                });
            }
        }
        w
    }

    /// Restores state captured by [`Btb::snapshot_words`] into a BTB of
    /// the same geometry.
    ///
    /// # Errors
    ///
    /// Rejects geometry mismatches and malformed input.
    pub fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
        let mut r = crate::wcodec::Reader::new(words, "btb");
        let stamp = r.u64()?;
        let lookups = r.u64()?;
        let misses = r.u64()?;
        let n_sets = r.usize()?;
        if n_sets != self.sets.len() {
            return Err(format!(
                "btb snapshot: {n_sets} sets, expected {}",
                self.sets.len()
            ));
        }
        self.stamp = stamp;
        self.lookups = lookups;
        self.misses = misses;
        for set in &mut self.sets {
            let n = r.usize()?;
            if n > self.ways {
                return Err(format!(
                    "btb snapshot: {n} ways in a set, expected at most {}",
                    self.ways
                ));
            }
            set.clear();
            for _ in 0..n {
                let stamp = r.u64()?;
                let pc = r.u64()?;
                let target = r.u64()?;
                let kind = match r.u64()? {
                    0 => CtrlKind::CondBranch,
                    1 => CtrlKind::Jump,
                    2 => CtrlKind::IndirectJump,
                    3 => CtrlKind::Call,
                    4 => CtrlKind::Ret,
                    v => return Err(format!("btb snapshot: bad control kind {v}")),
                };
                set.push((stamp, BtbEntry { pc, target, kind }));
            }
        }
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_after_insert() {
        let mut btb = Btb::new(64, 4);
        assert!(btb.lookup(0x100).is_none());
        btb.insert(0x100, 0x200, CtrlKind::CondBranch);
        let e = btb.lookup(0x100).unwrap();
        assert_eq!(e.target, 0x200);
        assert_eq!(e.kind, CtrlKind::CondBranch);
        assert_eq!(btb.stats(), (2, 1));
    }

    #[test]
    fn update_in_place_changes_target() {
        let mut btb = Btb::new(64, 4);
        btb.insert(0x100, 0x200, CtrlKind::IndirectJump);
        btb.insert(0x100, 0x300, CtrlKind::IndirectJump);
        assert_eq!(btb.lookup(0x100).unwrap().target, 0x300);
    }

    #[test]
    fn lru_eviction_within_set() {
        // 4 sets x 2 ways: pcs that map to set 0 are multiples of 4
        // (set index uses pc ^ (pc>>12), small pcs => pc & 3).
        let mut btb = Btb::new(8, 2);
        btb.insert(0x0, 1, CtrlKind::Jump);
        btb.insert(0x4, 2, CtrlKind::Jump);
        // Touch 0x0 so 0x4 becomes LRU.
        assert!(btb.lookup(0x0).is_some());
        btb.insert(0x8, 3, CtrlKind::Jump);
        assert!(btb.lookup(0x4).is_none(), "LRU way should be evicted");
        assert!(btb.lookup(0x0).is_some());
        assert!(btb.lookup(0x8).is_some());
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut btb = Btb::new(8, 2);
        for pc in [0u64, 1, 2, 3] {
            btb.insert(pc, pc + 100, CtrlKind::Jump);
        }
        for pc in [0u64, 1, 2, 3] {
            assert_eq!(btb.lookup(pc).unwrap().target, pc + 100);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        let _ = Btb::new(12, 4);
    }

    #[test]
    fn snapshot_round_trip_preserves_lru_and_counters() {
        let mut btb = Btb::new(64, 4);
        btb.insert(0x100, 0x200, CtrlKind::CondBranch);
        btb.insert(0x104, 0x300, CtrlKind::Call);
        btb.lookup(0x100);
        btb.lookup(0x999); // miss
        let words = btb.snapshot_words();
        let mut other = Btb::new(64, 4);
        other.restore_words(&words).unwrap();
        assert_eq!(other.snapshot_words(), words);
        assert_eq!(other.stats(), btb.stats());
        assert_eq!(other.lookup(0x104).unwrap().kind, CtrlKind::Call);
        // Geometry mismatch is rejected.
        let mut wrong = Btb::new(32, 4);
        assert!(wrong.restore_words(&words).is_err());
    }
}
