/// A history-hashed indirect-target predictor (ITTAGE-lite): a
/// direct-mapped table of last targets indexed by `pc XOR target history`.
///
/// Indirect jumps (dispatch loops, virtual calls) with few targets per
/// history context become predictable; truly data-dependent targets miss,
/// which is exactly the behaviour the paper's branch-slice mechanism
/// exploits.
///
/// # Example
///
/// ```
/// use crisp_uarch::IndirectPredictor;
/// let mut p = IndirectPredictor::new(1 << 10, 8);
/// assert_eq!(p.predict(0x40), None);
/// p.update(0x40, 0x1000);
/// // Same history context predicts the recorded target.
/// assert_eq!(p.predict(0x40), Some(0x1000));
/// ```
#[derive(Clone, Debug)]
pub struct IndirectPredictor {
    table: Vec<Option<(u64, u64)>>, // (tag pc, target)
    mask: u64,
    history: u64,
    hist_bits: u32,
}

impl IndirectPredictor {
    /// Creates a predictor with `entries` slots and `hist_bits` bits of
    /// path history.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize, hist_bits: u32) -> IndirectPredictor {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        IndirectPredictor {
            table: vec![None; entries],
            mask: entries as u64 - 1,
            history: 0,
            hist_bits,
        }
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        ((pc ^ self.history.wrapping_mul(0x9E37_79B9)) & self.mask) as usize
    }

    /// Predicts the target byte address for the indirect branch at `pc`,
    /// or `None` if no prediction is available.
    pub fn predict(&self, pc: u64) -> Option<u64> {
        match self.table[self.index(pc)] {
            Some((tag, target)) if tag == pc => Some(target),
            _ => None,
        }
    }

    /// Records the resolved target and folds it into the path history.
    pub fn update(&mut self, pc: u64, target: u64) {
        let idx = self.index(pc);
        self.table[idx] = Some((pc, target));
        let mask = (1u64 << self.hist_bits) - 1;
        self.history = ((self.history << 2) ^ (target >> 2)) & mask;
    }

    /// Serialises the path history and target table as a word vector.
    pub fn snapshot_words(&self) -> Vec<u64> {
        let mut w = vec![self.history, self.table.len() as u64];
        for e in &self.table {
            match e {
                Some((tag, target)) => {
                    w.push(1);
                    w.push(*tag);
                    w.push(*target);
                }
                None => {
                    w.push(0);
                    w.push(0);
                    w.push(0);
                }
            }
        }
        w
    }

    /// Restores state captured by
    /// [`IndirectPredictor::snapshot_words`] into an identically-sized
    /// predictor.
    ///
    /// # Errors
    ///
    /// Rejects table-size mismatches and malformed input.
    pub fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
        let mut r = crate::wcodec::Reader::new(words, "indirect-predictor");
        let history = r.u64()?;
        let n = r.usize()?;
        if n != self.table.len() {
            return Err(format!(
                "indirect-predictor snapshot: {n} entries, expected {}",
                self.table.len()
            ));
        }
        self.history = history;
        for e in &mut self.table {
            let present = match r.u64()? {
                0 => false,
                1 => true,
                v => return Err(format!("indirect-predictor snapshot: bad flag {v}")),
            };
            let tag = r.u64()?;
            let target = r.u64()?;
            *e = present.then_some((tag, target));
        }
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monomorphic_target_is_predicted() {
        let mut p = IndirectPredictor::new(256, 8);
        for _ in 0..4 {
            p.update(0x10, 0x5000);
        }
        // With a stable history the prediction holds.
        assert_eq!(p.predict(0x10), Some(0x5000));
    }

    #[test]
    fn history_disambiguates_polymorphic_targets() {
        // A dispatch branch alternating between two targets in a fixed
        // pattern: after warm-up, each history context maps to one target.
        let mut p = IndirectPredictor::new(1 << 10, 10);
        let targets = [0x100u64, 0x200, 0x100, 0x300];
        let mut correct = 0;
        let mut total = 0;
        for rep in 0..200 {
            for &t in &targets {
                let pred = p.predict(0x40);
                if rep >= 100 {
                    total += 1;
                    if pred == Some(t) {
                        correct += 1;
                    }
                }
                p.update(0x40, t);
            }
        }
        assert!(
            correct * 10 >= total * 9,
            "patterned dispatch should be predictable: {correct}/{total}"
        );
    }

    #[test]
    fn tag_mismatch_yields_none() {
        let mut p = IndirectPredictor::new(2, 0);
        p.update(0x0, 0x111);
        // 0x2 aliases to the same slot (mask 1) but the tag differs.
        assert_eq!(p.predict(0x2), None);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_size_rejected() {
        let _ = IndirectPredictor::new(3, 4);
    }

    #[test]
    fn snapshot_round_trip_preserves_history() {
        let mut p = IndirectPredictor::new(256, 8);
        for t in [0x100u64, 0x200, 0x100, 0x300] {
            p.update(0x40, t);
        }
        let words = p.snapshot_words();
        let mut q = IndirectPredictor::new(256, 8);
        q.restore_words(&words).unwrap();
        assert_eq!(q.snapshot_words(), words);
        assert_eq!(q.predict(0x40), p.predict(0x40));
        let mut wrong = IndirectPredictor::new(128, 8);
        assert!(wrong.restore_words(&words).is_err());
    }
}
