use crate::Slice;
use crisp_isa::{Pc, Program};
use std::collections::{HashMap, HashSet};

/// Latency model for critical-path analysis (paper Section 3.5): fixed
/// latencies per the processor implementation, except loads, which use the
/// per-PC average memory access time measured during profiling.
#[derive(Clone, Debug, Default)]
pub struct LatencyModel {
    amat: HashMap<Pc, f64>,
    default_load_latency: f64,
}

impl LatencyModel {
    /// Creates a model with measured per-load AMATs; loads without a
    /// measurement fall back to `default_load_latency` (an L1 hit).
    pub fn new(amat: HashMap<Pc, f64>, default_load_latency: f64) -> LatencyModel {
        LatencyModel {
            amat,
            default_load_latency,
        }
    }

    /// The latency assigned to the instruction at `pc`.
    pub fn latency(&self, program: &Program, pc: Pc) -> f64 {
        let inst = program.inst(pc);
        if inst.is_load() {
            *self
                .amat
                .get(&pc)
                .unwrap_or(&self.default_load_latency.max(1.0))
        } else {
            f64::from(inst.op.latency())
        }
    }
}

/// Filters a slice down to the instructions lying on (near-)critical paths
/// of its latency-weighted DAG.
///
/// For each slice instruction the analysis computes the longest
/// latency-weighted path from any leaf, through that instruction, to the
/// root (the delinquent load / branch). Instructions whose best path is at
/// least `keep_fraction` of the overall critical path survive; the rest
/// are dropped so they do not occupy scheduler priority (Section 3.5's
/// answer to slices that would fill the whole reservation station).
///
/// Loop-carried slices make the static edge set cyclic; path lengths are
/// computed by bounded relaxation, which converges to the acyclic longest
/// path and merely saturates on cycles.
///
/// The root is always retained. `keep_fraction` is clamped to `[0, 1]`.
pub fn critical_path_filter(
    program: &Program,
    slice: &Slice,
    model: &LatencyModel,
    keep_fraction: f64,
) -> HashSet<Pc> {
    let keep_fraction = keep_fraction.clamp(0.0, 1.0);
    let mut kept = HashSet::new();
    if slice.pcs.is_empty() {
        return kept;
    }
    kept.insert(slice.root);
    let nodes: Vec<Pc> = {
        let mut v: Vec<Pc> = slice.pcs.iter().copied().collect();
        v.sort_unstable();
        v
    };
    let lat: HashMap<Pc, f64> = nodes
        .iter()
        .map(|&pc| (pc, model.latency(program, pc)))
        .collect();
    // Relaxation is bounded, so on cyclic (loop-carried) edge sets the
    // saturated values depend on edge visit order. Sort so the result is a
    // pure function of the slice, not of `HashSet` iteration order.
    let edges: Vec<(Pc, Pc)> = {
        let mut v: Vec<(Pc, Pc)> = slice.edges.iter().copied().collect();
        v.sort_unstable();
        v
    };

    // `up[n]`: longest path latency from n (inclusive) up to the root,
    // following producer→consumer direction. `down[n]`: longest chain
    // strictly below n towards the leaves.
    let mut up: HashMap<Pc, f64> = nodes.iter().map(|&n| (n, f64::NEG_INFINITY)).collect();
    up.insert(slice.root, lat[&slice.root]);
    let mut down: HashMap<Pc, f64> = nodes.iter().map(|&n| (n, 0.0)).collect();

    // Bounded relaxation (handles loop-carried cycles gracefully).
    let rounds = nodes.len().min(64) + 1;
    for _ in 0..rounds {
        let mut changed = false;
        for &(consumer, producer) in &edges {
            let (Some(&upc), Some(&lp)) = (up.get(&consumer), lat.get(&producer)) else {
                continue;
            };
            if upc == f64::NEG_INFINITY {
                continue;
            }
            let candidate = upc + lp;
            let entry = up.get_mut(&producer).expect("node present");
            if candidate > *entry + 1e-9 {
                *entry = candidate;
                changed = true;
            }
            // down: producer chains extend the consumer's downward reach.
            let cand_down = down[&producer] + lp;
            let entry = down.get_mut(&consumer).expect("node present");
            if cand_down > *entry + 1e-9 {
                *entry = cand_down;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let best = nodes
        .iter()
        .filter(|&&n| up[&n] != f64::NEG_INFINITY)
        .map(|&n| up[&n] + down[&n])
        .fold(0.0f64, f64::max);
    if best <= 0.0 {
        return kept;
    }
    for &n in &nodes {
        if up[&n] == f64::NEG_INFINITY {
            continue; // disconnected from the root (stale edge)
        }
        if up[&n] + down[&n] >= keep_fraction * best - 1e-9 {
            kept.insert(n);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_isa::{AluOp, ProgramBuilder, Reg};

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    /// Diamond: two address paths into one load; the slow path contains a
    /// missing load (AMAT 200), the fast path a single add.
    fn diamond() -> (Program, Slice, LatencyModel) {
        let mut b = ProgramBuilder::new();
        b.li(r(1), 0x1000); // 0 (shared source)
        b.load(r(2), r(1), 0, 8); // 1: slow path (delinquent, AMAT 200)
        b.alu_ri(AluOp::Add, r(3), r(1), 8); // 2: fast path
        b.alu_rr(AluOp::Add, r(4), r(2), r(3)); // 3: join (address)
        let root = b.load(r(5), r(4), 0, 8); // 4: root load
        b.halt();
        let p = b.build();
        let slice = Slice {
            root,
            pcs: [0, 1, 2, 3, 4].into_iter().collect(),
            instances: 1,
            mean_dynamic_len: 5.0,
            edges: [(4u32, 3u32), (3, 1), (3, 2), (1, 0), (2, 0)]
                .into_iter()
                .collect(),
        };
        let model = LatencyModel::new([(1u32, 200.0)].into_iter().collect(), 4.0);
        (p, slice, model)
    }

    #[test]
    fn keeps_full_slice_at_fraction_zero() {
        let (p, s, m) = diamond();
        let kept = critical_path_filter(&p, &s, &m, 0.0);
        assert_eq!(kept.len(), 5);
    }

    #[test]
    fn drops_fast_path_at_high_fraction() {
        let (p, s, m) = diamond();
        let kept = critical_path_filter(&p, &s, &m, 0.9);
        assert!(kept.contains(&4), "root always kept");
        assert!(kept.contains(&3));
        assert!(kept.contains(&1), "slow (critical) path kept");
        assert!(kept.contains(&0));
        assert!(!kept.contains(&2), "fast path dropped");
    }

    #[test]
    fn root_kept_even_for_empty_edges() {
        let mut b = ProgramBuilder::new();
        let root = b.load(r(1), Reg::ZERO, 0x40, 8);
        b.halt();
        let p = b.build();
        let s = Slice {
            root,
            pcs: [root].into_iter().collect(),
            instances: 1,
            mean_dynamic_len: 1.0,
            edges: HashSet::new(),
        };
        let kept = critical_path_filter(&p, &s, &LatencyModel::default(), 0.8);
        assert_eq!(kept.len(), 1);
        assert!(kept.contains(&root));
    }

    #[test]
    fn empty_slice_yields_empty_set() {
        let mut b = ProgramBuilder::new();
        b.halt();
        let p = b.build();
        let s = Slice {
            root: 0,
            pcs: HashSet::new(),
            instances: 0,
            mean_dynamic_len: 0.0,
            edges: HashSet::new(),
        };
        assert!(critical_path_filter(&p, &s, &LatencyModel::default(), 0.5).is_empty());
    }

    #[test]
    fn cyclic_slice_terminates_and_keeps_cycle_nodes() {
        // Loop-carried pointer chase: load depends on itself.
        let mut b = ProgramBuilder::new();
        b.li(r(1), 0x1000); // 0
        let root = b.load(r(1), r(1), 0, 8); // 1: self-edge
        b.halt();
        let p = b.build();
        let s = Slice {
            root,
            pcs: [0, 1].into_iter().collect(),
            instances: 1,
            mean_dynamic_len: 2.0,
            edges: [(1u32, 1u32), (1, 0)].into_iter().collect(),
        };
        let kept = critical_path_filter(&p, &s, &LatencyModel::default(), 0.5);
        assert!(kept.contains(&1));
        assert!(kept.contains(&0));
    }

    #[test]
    fn latency_model_uses_amat_for_loads_only() {
        let mut b = ProgramBuilder::new();
        b.alu_ri(AluOp::Add, r(1), r(1), 1); // 0
        b.load(r(2), r(1), 0, 8); // 1
        b.load(r(3), r(1), 8, 8); // 2 (unmeasured)
        b.halt();
        let p = b.build();
        let m = LatencyModel::new([(1u32, 150.0)].into_iter().collect(), 4.0);
        assert_eq!(m.latency(&p, 0), 1.0);
        assert_eq!(m.latency(&p, 1), 150.0);
        assert_eq!(m.latency(&p, 2), 4.0);
    }

    #[test]
    fn fraction_is_clamped() {
        let (p, s, m) = diamond();
        let kept_lo = critical_path_filter(&p, &s, &m, -3.0);
        let kept_hi = critical_path_filter(&p, &s, &m, 7.0);
        assert_eq!(kept_lo.len(), 5);
        assert!(kept_hi.contains(&s.root));
    }
}
