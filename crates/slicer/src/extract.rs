use crate::DepGraph;
use crisp_isa::{ConfigError, Pc, Program, Trace};
use std::collections::{HashMap, HashSet, VecDeque};

/// Configuration of the slice extractor.
#[derive(Clone, Copy, Debug)]
pub struct SliceConfig {
    /// How many dynamic instances of each root to slice (the paper slices
    /// every instance in a 100M-instruction trace; sampling instances and
    /// unioning their static slices converges quickly).
    pub instances_per_root: usize,
    /// Hard cap on dynamic slice nodes explored per instance — load slices
    /// "can contain thousands of instructions" (Section 3.5); the cap
    /// bounds the walk on pathological chains.
    pub max_nodes_per_instance: usize,
    /// Follow store→load dependencies through memory (CRISP: true; the
    /// IBDA baseline's defining limitation is that it cannot).
    pub follow_memory_deps: bool,
    /// Drop slice instructions that appear in fewer than this fraction of
    /// the sampled instances — the paper's "filtering out uncommon code
    /// paths" step (Section 4.1). The root is always kept.
    pub min_instance_fraction: f64,
}

impl SliceConfig {
    /// Validates the extraction knobs: nonzero sampling/walk bounds and an
    /// instance-fraction filter in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.instances_per_root == 0 {
            return Err(ConfigError::new(
                "instances_per_root",
                "must be nonzero (got 0): no instances means no slices",
            ));
        }
        if self.max_nodes_per_instance == 0 {
            return Err(ConfigError::new(
                "max_nodes_per_instance",
                "must be nonzero (got 0): the walk could never leave the root",
            ));
        }
        if !self.min_instance_fraction.is_finite()
            || !(0.0..=1.0).contains(&self.min_instance_fraction)
        {
            return Err(ConfigError::new(
                "min_instance_fraction",
                format!(
                    "must be a fraction in [0, 1] (got {})",
                    self.min_instance_fraction
                ),
            ));
        }
        Ok(())
    }
}

impl Default for SliceConfig {
    fn default() -> SliceConfig {
        SliceConfig {
            instances_per_root: 16,
            max_nodes_per_instance: 50_000,
            follow_memory_deps: true,
            min_instance_fraction: 0.1,
        }
    }
}

/// The backward slice of one root instruction (a delinquent load or a
/// hard-to-predict branch).
#[derive(Clone, Debug)]
pub struct Slice {
    /// The root instruction.
    pub root: Pc,
    /// Static instructions in the union of the sampled instance slices
    /// (includes the root).
    pub pcs: HashSet<Pc>,
    /// Number of dynamic instances sliced.
    pub instances: usize,
    /// Mean dynamic slice length over the sampled instances (Figure 4's
    /// metric).
    pub mean_dynamic_len: f64,
    /// Producer edges among slice PCs, as `(consumer, producer)` pairs —
    /// the DAG input for critical-path filtering.
    pub edges: HashSet<(Pc, Pc)>,
}

/// Extracts backward slices for each root PC using the frontier algorithm
/// of paper Section 3.3.
///
/// The walk starts at each dynamic instance of a root and repeatedly
/// expands the oldest unexplored ancestor, terminating a path when (1) the
/// ancestor is already in the slice, (2) the operand is a constant (no
/// producer), or (3) the beginning of the trace is reached. (The paper's
/// rule (3), system-call returns, has no analogue in the mini-ISA.)
///
/// See the crate-level example.
pub fn extract_slices(
    program: &Program,
    trace: &Trace,
    graph: &DepGraph,
    roots: &[Pc],
    config: &SliceConfig,
) -> Vec<Slice> {
    assert!(
        roots.iter().all(|&r| (r as usize) < program.len()),
        "root pc outside program"
    );
    // Index root instances: last `instances_per_root` occurrences of each
    // root PC (later instances have deeper history to slice through).
    let root_set: HashSet<Pc> = roots.iter().copied().collect();
    let mut instances: HashMap<Pc, Vec<u32>> = HashMap::new();
    for (seq, rec) in trace.iter().enumerate() {
        if root_set.contains(&rec.pc) {
            instances.entry(rec.pc).or_default().push(seq as u32);
        }
    }

    roots
        .iter()
        .map(|&root| {
            let mut appearances: HashMap<Pc, usize> = HashMap::new();
            let mut edges: HashSet<(Pc, Pc)> = HashSet::new();
            let empty = Vec::new();
            let seqs = instances.get(&root).unwrap_or(&empty);
            let take = seqs.len().min(config.instances_per_root);
            let sampled = &seqs[seqs.len() - take..];
            let mut total_len = 0usize;
            for &start in sampled {
                let mut pcs = HashSet::new();
                total_len += slice_instance(trace, graph, start, config, &mut pcs, &mut edges);
                for pc in pcs {
                    *appearances.entry(pc).or_insert(0) += 1;
                }
            }
            // Section 4.1: drop uncommon code paths — instructions seen in
            // only a small fraction of the sampled instances.
            let min_count = ((config.min_instance_fraction * take as f64).ceil() as usize).max(1);
            let mut pcs: HashSet<Pc> = appearances
                .into_iter()
                .filter(|&(_, n)| n >= min_count)
                .map(|(pc, _)| pc)
                .collect();
            if !seqs.is_empty() {
                pcs.insert(root);
            }
            edges.retain(|(c, p)| pcs.contains(c) && pcs.contains(p));
            Slice {
                root,
                instances: take,
                mean_dynamic_len: if take == 0 {
                    0.0
                } else {
                    total_len as f64 / take as f64
                },
                pcs,
                edges,
            }
        })
        .collect()
}

/// Walks one dynamic instance backwards; returns the dynamic slice length.
fn slice_instance(
    trace: &Trace,
    graph: &DepGraph,
    start: u32,
    config: &SliceConfig,
    pcs: &mut HashSet<Pc>,
    edges: &mut HashSet<(Pc, Pc)>,
) -> usize {
    // Frontier of unexplored dynamic instances (Section 3.3).
    let mut frontier: VecDeque<u32> = VecDeque::new();
    let mut visited: HashSet<u32> = HashSet::new();
    frontier.push_back(start);
    visited.insert(start);
    let mut count = 0usize;

    while let Some(seq) = frontier.pop_front() {
        count += 1;
        if count > config.max_nodes_per_instance {
            break;
        }
        let consumer_pc = trace.record(u64::from(seq)).pc;
        pcs.insert(consumer_pc);
        let mem_prod = if config.follow_memory_deps {
            graph.mem_producer(u64::from(seq))
        } else {
            None
        };
        for prod in graph
            .reg_producers(u64::from(seq))
            .iter()
            .flatten()
            .copied()
            .chain(mem_prod)
        {
            let prod_pc = trace.record(u64::from(prod)).pc;
            edges.insert((consumer_pc, prod_pc));
            // Termination rule: ancestor already explored (covers the
            // recursive loop-carried case of Figure 3). Constants and the
            // trace start terminate naturally (no producer link).
            if visited.insert(prod) {
                frontier.push_back(prod);
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_emu::{Emulator, Memory};
    use crisp_isa::{AluOp, Cond, ProgramBuilder, Reg};

    #[test]
    fn slice_config_validation() {
        SliceConfig::default().validate().expect("defaults ok");
        let c = SliceConfig {
            instances_per_root: 0,
            ..SliceConfig::default()
        };
        assert_eq!(c.validate().unwrap_err().field, "instances_per_root");
        let c = SliceConfig {
            max_nodes_per_instance: 0,
            ..SliceConfig::default()
        };
        assert_eq!(c.validate().unwrap_err().field, "max_nodes_per_instance");
        let c = SliceConfig {
            min_instance_fraction: -0.5,
            ..SliceConfig::default()
        };
        assert_eq!(c.validate().unwrap_err().field, "min_instance_fraction");
    }

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    fn slices_for(p: &Program, t: &Trace, roots: &[Pc], config: &SliceConfig) -> Vec<Slice> {
        let g = DepGraph::build(p, t);
        extract_slices(p, t, &g, roots, config)
    }

    #[test]
    fn straight_line_address_chain() {
        let mut b = ProgramBuilder::new();
        b.li(r(2), 0x1000); // 0
        b.alu_ri(AluOp::Add, r(1), r(2), 8); // 1
        let load = b.load(r(3), r(1), 0, 8); // 2
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p, Memory::new()).run(100);
        let s = &slices_for(&p, &t, &[load], &SliceConfig::default())[0];
        assert_eq!(s.root, load);
        let mut expect: Vec<Pc> = vec![0, 1, 2];
        let mut got: Vec<Pc> = s.pcs.iter().copied().collect();
        got.sort_unstable();
        expect.sort_unstable();
        assert_eq!(got, expect);
        assert_eq!(s.instances, 1);
        assert!(s.mean_dynamic_len >= 3.0);
    }

    #[test]
    fn forward_dependencies_are_excluded() {
        // Figure 3's point: instructions that only *consume* the load are
        // not in its slice.
        let mut b = ProgramBuilder::new();
        b.li(r(1), 0x1000); // 0
        let load = b.load(r(2), r(1), 0, 8); // 1
        b.alu_ri(AluOp::Add, r(3), r(2), 1); // 2: consumer, NOT in slice
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p, Memory::new()).run(100);
        let s = &slices_for(&p, &t, &[load], &SliceConfig::default())[0];
        assert!(s.pcs.contains(&0));
        assert!(s.pcs.contains(&load));
        assert!(!s.pcs.contains(&2));
    }

    #[test]
    fn recursive_pointer_chase_terminates() {
        // cur = cur->next in a loop: the slice is {li, load} plus loop
        // control never enters (no data dep), and recursion terminates via
        // the already-visited rule.
        let mut mem = Memory::new();
        for i in 0..64u64 {
            mem.write_u64(0x1000 + i * 64, 0x1000 + ((i + 1) % 64) * 64);
        }
        let mut b = ProgramBuilder::new();
        b.li(r(1), 0x1000); // 0
        b.li(r(2), 40); // 1
        let top = b.label();
        b.bind(top);
        let load = b.load(r(1), r(1), 0, 8); // 2
        b.alu_ri(AluOp::Sub, r(2), r(2), 1); // 3
        b.branch(Cond::Ne, r(2), Reg::ZERO, top); // 4
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p, Memory::new().clone()).run(1000);
        let _ = mem;
        let s = &slices_for(&p, &t, &[load], &SliceConfig::default())[0];
        // Slice: the load itself (recursively) and the initial li.
        assert!(s.pcs.contains(&load));
        assert!(s.pcs.contains(&0));
        assert!(!s.pcs.contains(&3), "loop counter not in address slice");
        assert!(!s.pcs.contains(&4), "branch not in address slice");
    }

    #[test]
    fn dependency_through_memory_is_followed() {
        // Spill/reload: slicing through the stack finds the original
        // producer — the paper's key advantage over IBDA.
        let mut b = ProgramBuilder::new();
        b.li(r(30), 0x8000); // 0: stack pointer
        b.li(r(2), 0x4000); // 1: address source
        b.store(r(30), 0, r(2), 8); // 2: spill r2
        b.li(r(2), 0); // 3: clobber r2
        b.load(r(4), r(30), 0, 8); // 4: reload
        let load = b.load(r(5), r(4), 0, 8); // 5: delinquent
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p, Memory::new()).run(100);

        let with_mem = &slices_for(&p, &t, &[load], &SliceConfig::default())[0];
        assert!(with_mem.pcs.contains(&1), "must reach the spilled producer");
        assert!(with_mem.pcs.contains(&2), "spill store in slice");

        let no_mem = SliceConfig {
            follow_memory_deps: false,
            ..SliceConfig::default()
        };
        let without = &slices_for(&p, &t, &[load], &no_mem)[0];
        assert!(
            !without.pcs.contains(&1),
            "register-only slicing must miss the memory-carried producer"
        );
    }

    #[test]
    fn branch_slice_contains_condition_chain() {
        let mut b = ProgramBuilder::new();
        b.li(r(1), 0x1000); // 0
        b.load(r(2), r(1), 0, 8); // 1
        b.alu_ri(AluOp::And, r(3), r(2), 1); // 2
        let skip = b.label();
        let branch = b.branch(Cond::Eq, r(3), Reg::ZERO, skip); // 3
        b.nop(); // 4
        b.bind(skip);
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p, Memory::new()).run(100);
        let s = &slices_for(&p, &t, &[branch], &SliceConfig::default())[0];
        for pc in [0, 1, 2, 3] {
            assert!(s.pcs.contains(&pc), "missing pc {pc}");
        }
        assert!(!s.pcs.contains(&4));
    }

    #[test]
    fn instance_sampling_unions_paths() {
        // A load whose address alternates between two producers across
        // iterations: sampling multiple instances captures both.
        let mut mem = Memory::new();
        mem.write_u64(0x2000, 7);
        mem.write_u64(0x3000, 9);
        let mut b = ProgramBuilder::new();
        b.li(r(5), 4); // 0: counter
        let top = b.label();
        let even = b.label();
        let join = b.label();
        b.bind(top);
        b.alu_ri(AluOp::And, r(6), r(5), 1); // 1
        b.branch(Cond::Eq, r(6), Reg::ZERO, even); // 2
        b.li(r(1), 0x2000); // 3 (odd path)
        b.jump(join); // 4
        b.bind(even);
        b.li(r(1), 0x3000); // 5 (even path)
        b.bind(join);
        let load = b.load(r(2), r(1), 0, 8); // 6
        b.alu_ri(AluOp::Sub, r(5), r(5), 1); // 7
        b.branch(Cond::Ne, r(5), Reg::ZERO, top); // 8
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p, mem).run(1000);
        let s = &slices_for(&p, &t, &[load], &SliceConfig::default())[0];
        assert!(s.pcs.contains(&3), "odd-path producer sampled");
        assert!(s.pcs.contains(&5), "even-path producer sampled");
        assert_eq!(s.instances, 4);
    }

    #[test]
    fn node_cap_bounds_exploration() {
        // A long serial chain with a tiny cap: the walk stops early.
        let mut b = ProgramBuilder::new();
        b.li(r(1), 0);
        for _ in 0..100 {
            b.alu_ri(AluOp::Add, r(1), r(1), 1);
        }
        let load = b.load(r(2), r(1), 0x1000, 8);
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p, Memory::new()).run(1000);
        let cfg = SliceConfig {
            max_nodes_per_instance: 10,
            ..SliceConfig::default()
        };
        let s = &slices_for(&p, &t, &[load], &cfg)[0];
        assert!(s.pcs.len() <= 11);
        assert!(s.mean_dynamic_len <= 11.0);
    }

    #[test]
    fn unexecuted_root_yields_empty_slice() {
        let mut b = ProgramBuilder::new();
        let done = b.label();
        b.jump(done); // 0
        b.load(r(1), r(2), 0, 8); // 1: dead code
        b.bind(done);
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p, Memory::new()).run(100);
        let s = &slices_for(&p, &t, &[1], &SliceConfig::default())[0];
        assert!(s.pcs.is_empty());
        assert_eq!(s.instances, 0);
        assert_eq!(s.mean_dynamic_len, 0.0);
    }

    #[test]
    fn edges_connect_consumers_to_producers() {
        let mut b = ProgramBuilder::new();
        b.li(r(2), 0x1000); // 0
        b.alu_ri(AluOp::Add, r(1), r(2), 8); // 1
        let load = b.load(r(3), r(1), 0, 8); // 2
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p, Memory::new()).run(100);
        let s = &slices_for(&p, &t, &[load], &SliceConfig::default())[0];
        assert!(s.edges.contains(&(2, 1)));
        assert!(s.edges.contains(&(1, 0)));
        assert!(!s.edges.contains(&(0, 1)));
    }

    #[test]
    fn uncommon_paths_are_filtered() {
        // The load's address comes from producer A on 15 of 16 sampled
        // iterations and from producer B on one: B is an uncommon path.
        let mut b = ProgramBuilder::new();
        b.li(r(5), 32); // 0: counter
        let top = b.label();
        let rare = b.label();
        let join = b.label();
        b.bind(top);
        b.alu_ri(AluOp::And, r(6), r(5), 15); // 1
        b.branch(Cond::Eq, r(6), Reg::ZERO, rare); // 2
        b.li(r(1), 0x2000); // 3: common producer
        b.jump(join); // 4
        b.bind(rare);
        b.li(r(1), 0x3000); // 5: rare producer (1 in 16)
        b.bind(join);
        let load = b.load(r(2), r(1), 0, 8); // 6
        b.alu_ri(AluOp::Sub, r(5), r(5), 1); // 7
        b.branch(Cond::Ne, r(5), Reg::ZERO, top); // 8
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p, Memory::new()).run(10_000);

        let strict = SliceConfig {
            min_instance_fraction: 0.2,
            instances_per_root: 16,
            ..SliceConfig::default()
        };
        let s = &slices_for(&p, &t, &[load], &strict)[0];
        assert!(s.pcs.contains(&3), "common producer kept");
        assert!(!s.pcs.contains(&5), "uncommon path dropped");

        let keep_all = SliceConfig {
            min_instance_fraction: 0.0,
            instances_per_root: 16,
            ..SliceConfig::default()
        };
        let s2 = &slices_for(&p, &t, &[load], &keep_all)[0];
        assert!(s2.pcs.contains(&5), "fraction 0 keeps everything sampled");
    }
}
