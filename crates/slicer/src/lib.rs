//! # crisp-slicer
//!
//! The software half of CRISP: extraction of **load slices** and **branch
//! slices** from execution traces (paper Sections 3.3–3.5), critical-path
//! filtering, slice merging, and the final criticality annotation that
//! stands in for the paper's post-link binary rewriting.
//!
//! * [`DepGraph`] precomputes, in one forward pass over the trace, every
//!   dynamic instruction's producers — through registers **and through
//!   memory** (store→load edges), the capability the paper highlights as
//!   missing from hardware IBDA.
//! * [`extract_slices`] runs the frontier algorithm backwards from each
//!   root instance, with the paper's termination rules.
//! * [`critical_path_filter`] treats a slice instance as a latency-weighted
//!   DAG and keeps only instructions on near-critical paths, so slices
//!   don't flood the reservation station (Section 3.5).
//! * [`Annotator`] merges load and branch slices, enforces the 5–40 %
//!   critical-instruction budget of Section 3.2, and produces the
//!   [`CriticalityMap`] plus the code-footprint report of Figure 12.
//!
//! ## Example
//!
//! ```
//! use crisp_isa::{ProgramBuilder, Reg, AluOp};
//! use crisp_emu::{Emulator, Memory};
//! use crisp_slicer::{DepGraph, SliceConfig, extract_slices};
//!
//! // r3 = mem[r1 + 0] where r1 = r2 + 8: the slice of the load contains
//! // both address-generating instructions.
//! let mut b = ProgramBuilder::new();
//! b.li(Reg::new(2), 0x1000);
//! b.alu_ri(AluOp::Add, Reg::new(1), Reg::new(2), 8);
//! let load_pc = b.load(Reg::new(3), Reg::new(1), 0, 8);
//! b.halt();
//! let program = b.build();
//! let trace = Emulator::new(&program, Memory::new()).run(100);
//!
//! let graph = DepGraph::build(&program, &trace);
//! let slices = extract_slices(&program, &trace, &graph, &[load_pc], &SliceConfig::default());
//! assert_eq!(slices[0].pcs.len(), 3); // li, add, load
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod annotate;
mod critical_path;
mod depgraph;
mod extract;

pub use annotate::{Annotator, CriticalityMap, FootprintReport};
pub use critical_path::{critical_path_filter, LatencyModel};
pub use depgraph::DepGraph;
pub use extract::{extract_slices, Slice, SliceConfig};
