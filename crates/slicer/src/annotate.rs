use crisp_isa::{Pc, Program};
use std::collections::{HashMap, HashSet};

/// The final criticality annotation: one bit per static instruction — the
/// in-memory equivalent of the paper's one-byte `critical` instruction
/// prefix injected by post-link rewriting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CriticalityMap {
    bits: Vec<bool>,
}

impl CriticalityMap {
    /// An all-non-critical map for a program of `len` instructions.
    pub fn new(len: usize) -> CriticalityMap {
        CriticalityMap {
            bits: vec![false; len],
        }
    }

    /// Marks `pc` critical.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    pub fn set(&mut self, pc: Pc) {
        self.bits[pc as usize] = true;
    }

    /// Whether `pc` is tagged critical.
    pub fn is_critical(&self, pc: Pc) -> bool {
        self.bits.get(pc as usize).copied().unwrap_or(false)
    }

    /// Number of critical static instructions (Figure 11's metric).
    pub fn count(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Fraction of static instructions tagged critical.
    pub fn static_ratio(&self) -> f64 {
        if self.bits.is_empty() {
            0.0
        } else {
            self.count() as f64 / self.bits.len() as f64
        }
    }

    /// Builds a map directly from a bit vector (one bit per static
    /// instruction). Used by the fault-injection harness and by loaders of
    /// externally produced annotations.
    pub fn from_bits(bits: Vec<bool>) -> CriticalityMap {
        CriticalityMap { bits }
    }

    /// Number of bits in the map (== the annotated program's length).
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the map covers zero instructions.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Flips the bit at `pc` if it is in range (out-of-range is a no-op —
    /// fault injectors may aim anywhere).
    pub fn toggle(&mut self, pc: Pc) {
        if let Some(b) = self.bits.get_mut(pc as usize) {
            *b = !*b;
        }
    }

    /// Clears every bit, keeping the length.
    pub fn clear(&mut self) {
        self.bits.iter_mut().for_each(|b| *b = false);
    }

    /// Returns a copy truncated or zero-extended to `len` bits — how a map
    /// built for one binary is forced onto another (the stale-profile
    /// scenario).
    pub fn resized(&self, len: usize) -> CriticalityMap {
        let mut bits = self.bits.clone();
        bits.resize(len, false);
        CriticalityMap { bits }
    }

    /// The raw bit vector, indexable by [`Pc`] — the form the simulator
    /// consumes.
    pub fn as_slice(&self) -> &[bool] {
        &self.bits
    }

    /// Iterates over critical PCs in ascending order.
    pub fn iter_critical(&self) -> impl Iterator<Item = Pc> + '_ {
        self.bits
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i as Pc)
    }
}

/// Code-footprint impact of the annotation (paper Section 5.7 / Figure 12):
/// the one-byte prefix grows both the static image and the dynamic fetch
/// stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FootprintReport {
    /// Static code bytes without prefixes.
    pub static_bytes_base: u64,
    /// Static code bytes with one prefix byte per critical instruction.
    pub static_bytes_annotated: u64,
    /// Dynamic (execution-weighted) code bytes without prefixes.
    pub dynamic_bytes_base: u64,
    /// Dynamic code bytes with prefixes.
    pub dynamic_bytes_annotated: u64,
    /// Unique critical static instructions.
    pub critical_static: u64,
    /// Dynamic executions of critical instructions.
    pub critical_dynamic: u64,
}

impl FootprintReport {
    /// Static footprint overhead in percent.
    pub fn static_overhead_pct(&self) -> f64 {
        pct(self.static_bytes_base, self.static_bytes_annotated)
    }

    /// Dynamic footprint overhead in percent.
    pub fn dynamic_overhead_pct(&self) -> f64 {
        pct(self.dynamic_bytes_base, self.dynamic_bytes_annotated)
    }
}

fn pct(base: u64, new: u64) -> f64 {
    if base == 0 {
        0.0
    } else {
        (new as f64 / base as f64 - 1.0) * 100.0
    }
}

/// Merges per-root slices into one [`CriticalityMap`] under the paper's
/// critical-instruction budget (Section 3.2: prioritisation works best when
/// 5–40 % of *dynamic* instructions are critical, so the scheduler has
/// non-critical work to deprioritise).
#[derive(Clone, Copy, Debug)]
pub struct Annotator {
    /// Maximum fraction of dynamic instructions that may be critical.
    pub max_dynamic_ratio: f64,
}

impl Default for Annotator {
    fn default() -> Annotator {
        Annotator {
            max_dynamic_ratio: 0.40,
        }
    }
}

impl Annotator {
    /// Greedily merges `slices` — **ordered most-important first** (the
    /// pipeline orders them by LLC-miss contribution) — stopping before a
    /// slice would push the dynamic critical ratio past the budget. The
    /// first slice is always admitted.
    ///
    /// `exec_counts` maps each PC to its dynamic execution count in the
    /// profiling trace.
    pub fn annotate(
        &self,
        program: &Program,
        slices: &[HashSet<Pc>],
        exec_counts: &HashMap<Pc, u64>,
    ) -> CriticalityMap {
        let total: u64 = exec_counts.values().sum();
        let mut map = CriticalityMap::new(program.len());
        let mut critical_dyn = 0u64;
        for (i, slice) in slices.iter().enumerate() {
            let added: u64 = slice
                .iter()
                .filter(|&&pc| !map.is_critical(pc))
                .map(|pc| exec_counts.get(pc).copied().unwrap_or(0))
                .sum();
            let would_be = critical_dyn + added;
            if i > 0 && total > 0 && (would_be as f64 / total as f64) > self.max_dynamic_ratio {
                continue; // skip this slice; later (smaller) ones may fit
            }
            for &pc in slice {
                map.set(pc);
            }
            critical_dyn = would_be;
        }
        map
    }

    /// Computes the footprint report for an annotation.
    pub fn footprint(
        program: &Program,
        map: &CriticalityMap,
        exec_counts: &HashMap<Pc, u64>,
    ) -> FootprintReport {
        let mut rep = FootprintReport::default();
        for (pc, inst) in program.iter() {
            let size = u64::from(inst.size);
            let execs = exec_counts.get(&pc).copied().unwrap_or(0);
            rep.static_bytes_base += size;
            rep.dynamic_bytes_base += size * execs;
            if map.is_critical(pc) {
                rep.static_bytes_annotated += size + 1;
                rep.dynamic_bytes_annotated += (size + 1) * execs;
                rep.critical_static += 1;
                rep.critical_dynamic += execs;
            } else {
                rep.static_bytes_annotated += size;
                rep.dynamic_bytes_annotated += size * execs;
            }
        }
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_isa::{AluOp, ProgramBuilder, Reg};

    fn program_of(n: usize) -> Program {
        let mut b = ProgramBuilder::new();
        for _ in 0..n - 1 {
            b.alu_ri(AluOp::Add, Reg::new(1), Reg::new(1), 1);
        }
        b.halt();
        b.build()
    }

    #[test]
    fn map_set_and_query() {
        let mut m = CriticalityMap::new(4);
        m.set(2);
        assert!(m.is_critical(2));
        assert!(!m.is_critical(0));
        assert!(!m.is_critical(99)); // out of range is non-critical
        assert_eq!(m.count(), 1);
        assert!((m.static_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(m.iter_critical().collect::<Vec<_>>(), vec![2]);
        assert_eq!(m.as_slice(), &[false, false, true, false]);
    }

    #[test]
    fn map_fault_helpers() {
        let mut m = CriticalityMap::from_bits(vec![false, true, false]);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        m.toggle(0);
        m.toggle(1);
        m.toggle(999); // out of range: no-op
        assert_eq!(m.as_slice(), &[true, false, false]);
        let grown = m.resized(5);
        assert_eq!(grown.len(), 5);
        assert!(grown.is_critical(0) && !grown.is_critical(4));
        let shrunk = m.resized(1);
        assert_eq!(shrunk.as_slice(), &[true]);
        m.clear();
        assert_eq!(m.count(), 0);
        assert_eq!(m.len(), 3);
        assert!(CriticalityMap::new(0).is_empty());
    }

    #[test]
    fn annotate_merges_within_budget() {
        let p = program_of(10);
        let counts: HashMap<Pc, u64> = (0..10).map(|pc| (pc as Pc, 10)).collect();
        let s1: HashSet<Pc> = [0, 1].into_iter().collect();
        let s2: HashSet<Pc> = [2].into_iter().collect();
        let ann = Annotator {
            max_dynamic_ratio: 0.40,
        };
        let m = ann.annotate(&p, &[s1, s2], &counts);
        assert_eq!(m.count(), 3);
    }

    #[test]
    fn annotate_skips_over_budget_slice_but_admits_smaller() {
        let p = program_of(10);
        let counts: HashMap<Pc, u64> = (0..10).map(|pc| (pc as Pc, 10)).collect();
        let s1: HashSet<Pc> = [0, 1, 2].into_iter().collect(); // 30%
        let s2: HashSet<Pc> = [3, 4].into_iter().collect(); // +20% > 40%
        let s3: HashSet<Pc> = [5].into_iter().collect(); // +10% = 40%
        let ann = Annotator {
            max_dynamic_ratio: 0.40,
        };
        let m = ann.annotate(&p, &[s1, s2, s3], &counts);
        assert!(m.is_critical(0) && m.is_critical(2));
        assert!(!m.is_critical(3) && !m.is_critical(4), "s2 skipped");
        assert!(m.is_critical(5), "s3 fits after skipping s2");
    }

    #[test]
    fn first_slice_always_admitted_even_if_huge() {
        let p = program_of(10);
        let counts: HashMap<Pc, u64> = (0..10).map(|pc| (pc as Pc, 1)).collect();
        let s1: HashSet<Pc> = (0..9).collect();
        let ann = Annotator {
            max_dynamic_ratio: 0.10,
        };
        let m = ann.annotate(&p, &[s1], &counts);
        assert_eq!(m.count(), 9);
    }

    #[test]
    fn overlapping_slices_counted_once() {
        let p = program_of(10);
        let counts: HashMap<Pc, u64> = (0..10).map(|pc| (pc as Pc, 10)).collect();
        let s1: HashSet<Pc> = [0, 1, 2].into_iter().collect();
        let s2: HashSet<Pc> = [1, 2, 3].into_iter().collect(); // only +10% new
        let ann = Annotator {
            max_dynamic_ratio: 0.40,
        };
        let m = ann.annotate(&p, &[s1, s2], &counts);
        assert_eq!(m.count(), 4);
    }

    #[test]
    fn footprint_accounts_prefix_bytes() {
        let p = program_of(4); // 3 adds (3 B each) + halt (2 B)
        let mut m = CriticalityMap::new(4);
        m.set(0);
        m.set(1);
        let counts: HashMap<Pc, u64> = [(0u32, 100u64), (1, 50), (2, 10), (3, 1)]
            .into_iter()
            .collect();
        let rep = Annotator::footprint(&p, &m, &counts);
        assert_eq!(rep.static_bytes_base, 3 * 3 + 2);
        assert_eq!(rep.static_bytes_annotated, rep.static_bytes_base + 2);
        assert_eq!(rep.critical_static, 2);
        assert_eq!(rep.critical_dynamic, 150);
        assert_eq!(
            rep.dynamic_bytes_annotated - rep.dynamic_bytes_base,
            150 // one extra byte per critical execution
        );
        assert!(rep.static_overhead_pct() > 0.0);
        assert!(rep.dynamic_overhead_pct() > 0.0);
    }

    #[test]
    fn empty_program_report_is_zero() {
        let rep = FootprintReport::default();
        assert_eq!(rep.static_overhead_pct(), 0.0);
        assert_eq!(rep.dynamic_overhead_pct(), 0.0);
    }
}
