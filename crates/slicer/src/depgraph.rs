use crisp_isa::{Program, Seq, Trace};
use std::collections::HashMap;

/// Producer links for every dynamic instruction of a trace: up to three
/// register producers plus one memory producer (the youngest older store
/// overlapping a load's bytes).
///
/// Built in a single forward pass; this is the information DynamoRIO's
/// Memtrace (or Intel PT + `PTWRITE`) provides the paper's offline
/// analysis, and precisely what hardware IBDA *cannot* see for the memory
/// edge.
#[derive(Clone, Debug)]
pub struct DepGraph {
    /// `reg_producers[seq]` = producer sequence numbers for each source
    /// operand slot of the instruction at dynamic position `seq`.
    reg_producers: Vec<[Option<u32>; 3]>,
    /// `mem_producers[seq]` = the store instance feeding this load.
    mem_producers: Vec<Option<u32>>,
}

impl DepGraph {
    /// Builds the dependence graph for `trace` over `program`.
    ///
    /// Dependencies through memory are tracked at 8-byte granule
    /// resolution, matching the ISA's widest access.
    ///
    /// # Panics
    ///
    /// Panics if the trace is longer than `u32::MAX` records.
    pub fn build(program: &Program, trace: &Trace) -> DepGraph {
        assert!(trace.len() < u32::MAX as usize, "trace too long");
        let n = trace.len();
        let mut reg_producers = vec![[None; 3]; n];
        let mut mem_producers = vec![None; n];
        let mut reg_writer: [Option<u32>; crisp_isa::Reg::COUNT] = [None; crisp_isa::Reg::COUNT];
        let mut mem_writer: HashMap<u64, u32> = HashMap::new();

        for (seq, rec) in trace.iter().enumerate() {
            let inst = program.inst(rec.pc);
            for (slot, src) in inst.srcs.iter().enumerate() {
                if let Some(r) = src {
                    if !r.is_zero() {
                        reg_producers[seq][slot] = reg_writer[r.index()];
                    }
                }
            }
            if inst.is_load() {
                // Youngest older store on any overlapped granule.
                let mut newest: Option<u32> = None;
                for g in granules(rec.addr, inst.width.bytes()) {
                    if let Some(&w) = mem_writer.get(&g) {
                        newest = Some(newest.map_or(w, |n| n.max(w)));
                    }
                }
                mem_producers[seq] = newest;
            }
            if inst.is_store() {
                for g in granules(rec.addr, inst.width.bytes()) {
                    mem_writer.insert(g, seq as u32);
                }
            }
            if let Some(d) = inst.dep_dst() {
                reg_writer[d.index()] = Some(seq as u32);
            }
        }
        DepGraph {
            reg_producers,
            mem_producers,
        }
    }

    /// Register producers (by operand slot) of the instruction at `seq`.
    #[inline]
    pub fn reg_producers(&self, seq: Seq) -> &[Option<u32>; 3] {
        &self.reg_producers[seq as usize]
    }

    /// The store instance feeding the load at `seq` (dependence through
    /// memory), if any.
    #[inline]
    pub fn mem_producer(&self, seq: Seq) -> Option<u32> {
        self.mem_producers[seq as usize]
    }

    /// Iterates over all producers (register + memory) of `seq`.
    pub fn producers(&self, seq: Seq) -> impl Iterator<Item = u32> + '_ {
        self.reg_producers[seq as usize]
            .iter()
            .flatten()
            .copied()
            .chain(self.mem_producers[seq as usize])
    }

    /// Number of dynamic instructions covered.
    pub fn len(&self) -> usize {
        self.reg_producers.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.reg_producers.is_empty()
    }
}

fn granules(addr: u64, bytes: u64) -> impl Iterator<Item = u64> {
    let first = addr / 8;
    let last = (addr + bytes - 1) / 8;
    first..=last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_emu::{Emulator, Memory};
    use crisp_isa::{AluOp, ProgramBuilder, Reg};

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn register_dependencies_link_to_latest_writer() {
        let mut b = ProgramBuilder::new();
        b.li(r(1), 5); // seq 0
        b.li(r(1), 7); // seq 1 (overwrites)
        b.alu_ri(AluOp::Add, r(2), r(1), 1); // seq 2: depends on seq 1
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p, Memory::new()).run(100);
        let g = DepGraph::build(&p, &t);
        assert_eq!(g.reg_producers(2)[0], Some(1));
        assert_eq!(g.reg_producers(0)[0], None); // li reads r0
    }

    #[test]
    fn memory_dependence_links_load_to_store() {
        // The paper's register-spill scenario: a value passes through the
        // stack, invisible to register-only analysis.
        let mut b = ProgramBuilder::new();
        b.li(r(1), 0x1000); // 0
        b.li(r(2), 42); // 1
        b.store(r(1), 0, r(2), 8); // 2: spill
        b.load(r(3), r(1), 0, 8); // 3: reload
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p, Memory::new()).run(100);
        let g = DepGraph::build(&p, &t);
        assert_eq!(g.mem_producer(3), Some(2));
        // The load's register producers point at the address source only.
        assert_eq!(g.reg_producers(3)[0], Some(0));
        let producers: Vec<u32> = g.producers(3).collect();
        assert!(producers.contains(&2) && producers.contains(&0));
    }

    #[test]
    fn partial_overlap_still_creates_memory_edge() {
        let mut b = ProgramBuilder::new();
        b.li(r(1), 0x1000); // 0
        b.li(r(2), 0xFF); // 1
        b.store(r(1), 4, r(2), 4); // 2: bytes [0x1004, 0x1008)
        b.load(r(3), r(1), 0, 8); // 3: bytes [0x1000, 0x1008) overlap
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p, Memory::new()).run(100);
        let g = DepGraph::build(&p, &t);
        assert_eq!(g.mem_producer(3), Some(2));
    }

    #[test]
    fn youngest_store_wins() {
        let mut b = ProgramBuilder::new();
        b.li(r(1), 0x1000); // 0
        b.li(r(2), 1); // 1
        b.store(r(1), 0, r(2), 8); // 2
        b.store(r(1), 0, r(2), 8); // 3
        b.load(r(3), r(1), 0, 8); // 4
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p, Memory::new()).run(100);
        let g = DepGraph::build(&p, &t);
        assert_eq!(g.mem_producer(4), Some(3));
    }

    #[test]
    fn disjoint_store_creates_no_edge() {
        let mut b = ProgramBuilder::new();
        b.li(r(1), 0x1000); // 0
        b.li(r(2), 9); // 1
        b.store(r(1), 64, r(2), 8); // 2: different granule
        b.load(r(3), r(1), 0, 8); // 3
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p, Memory::new()).run(100);
        let g = DepGraph::build(&p, &t);
        assert_eq!(g.mem_producer(3), None);
    }

    #[test]
    fn zero_register_never_produces() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::ZERO, 3); // 0: write discarded
        b.alu_ri(AluOp::Add, r(1), Reg::ZERO, 1); // 1
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p, Memory::new()).run(100);
        let g = DepGraph::build(&p, &t);
        assert_eq!(g.reg_producers(1)[0], None);
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
    }

    #[test]
    fn granule_iteration_covers_unaligned_spans() {
        let gs: Vec<u64> = granules(0x1006, 8).collect();
        assert_eq!(gs, vec![0x200, 0x201]);
        let gs1: Vec<u64> = granules(0x1000, 1).collect();
        assert_eq!(gs1, vec![0x200]);
    }
}
