//! Cross-process span model and tree renderer.
//!
//! A *span* is one named interval of host wall-clock time — `[start_ns,
//! end_ns)` in unix nanoseconds, so spans written by different
//! processes (daemon, supervisor, pool workers) share a clock. Spans
//! link into a tree through `parent` span ids; the daemon's root span
//! covers a job from submission to result, and every layer underneath
//! appends its own children to the job's `spans.jsonl`.
//!
//! This module is the dependency-free core: the record type, the tree
//! renderer, and the critical-path breakdown. Parsing the JSONL wire
//! form lives with the CLI (which owns a JSON parser); writers live in
//! the harness.

/// One recorded span. Ids are opaque `u64`s (the writers derive them
/// deterministically from the trace id and span name, so re-runs of a
/// resumed job converge on the same tree).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRec {
    /// Span id (unique within the trace).
    pub span: u64,
    /// Parent span id; `0` marks a root.
    pub parent: u64,
    /// Span name, e.g. `queue`, `cell fig1:mcf#1`, `simulate`.
    pub name: String,
    /// Emitting process, e.g. `daemon`, `supervisor`, `worker:4711`.
    pub proc: String,
    /// Start, unix nanoseconds.
    pub start_ns: u64,
    /// End, unix nanoseconds.
    pub end_ns: u64,
}

impl SpanRec {
    /// The span's duration (0 for malformed end < start).
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.1}ms", ns as f64 / 1e6)
}

/// Renders the span tree plus a critical-path breakdown.
///
/// Orphan spans (parent id never recorded — e.g. a worker crashed
/// before its ancestors closed) render as extra roots rather than being
/// dropped, so partial traces stay inspectable. The breakdown
/// aggregates *exclusive* time (a span's duration minus its children's)
/// by span-name prefix and reports each as a share of the root span —
/// the "queue 12% / simulate 78% / store publish 7%" view.
pub fn render_spans(spans: &[SpanRec]) -> String {
    if spans.is_empty() {
        return "no spans recorded\n".to_string();
    }
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by_key(|&i| (spans[i].start_ns, spans[i].span));
    let known = |id: u64| spans.iter().any(|s| s.span == id);
    let roots: Vec<usize> = order
        .iter()
        .copied()
        .filter(|&i| spans[i].parent == 0 || !known(spans[i].parent))
        .collect();
    let children = |id: u64| -> Vec<usize> {
        order
            .iter()
            .copied()
            .filter(|&i| spans[i].parent == id && spans[i].span != id)
            .collect()
    };

    let mut out = String::new();
    // Tree rendering, depth-first with box-drawing rails. `frame` is
    // `None` for the headline root (no rail, no share) and
    // `Some((prefix, is_last_sibling))` below it.
    fn walk(
        spans: &[SpanRec],
        children: &dyn Fn(u64) -> Vec<usize>,
        idx: usize,
        frame: Option<(&str, bool)>,
        root_dur: u64,
        out: &mut String,
    ) {
        let s = &spans[idx];
        let share = s.dur_ns() as f64 * 100.0 / root_dur.max(1) as f64;
        match frame {
            None => {
                out.push_str(&format!("{} [{}] {}\n", s.name, s.proc, fmt_ms(s.dur_ns())));
            }
            Some((prefix, last)) => {
                let rail = if last { "└─" } else { "├─" };
                out.push_str(&format!(
                    "{prefix}{rail} {} [{}] {} ({share:.1}%)\n",
                    s.name,
                    s.proc,
                    fmt_ms(s.dur_ns())
                ));
            }
        }
        let kids = children(s.span);
        for (k, &c) in kids.iter().enumerate() {
            let deeper = match frame {
                None => String::new(),
                Some((prefix, true)) => format!("{prefix}   "),
                Some((prefix, false)) => format!("{prefix}│  "),
            };
            walk(
                spans,
                children,
                c,
                Some((&deeper, k + 1 == kids.len())),
                root_dur,
                out,
            );
        }
    }
    let root_dur = roots
        .first()
        .map(|&i| spans[i].dur_ns())
        .unwrap_or(0)
        .max(1);
    for (k, &r) in roots.iter().enumerate() {
        let frame = (k > 0).then_some(("", k + 1 == roots.len()));
        walk(spans, &children, r, frame, root_dur, &mut out);
    }

    // Critical-path breakdown: exclusive time per span-name prefix.
    let mut excl: Vec<(String, u64)> = Vec::new();
    for s in spans {
        let child_ns: u64 = spans
            .iter()
            .filter(|c| c.parent == s.span && c.span != s.span)
            .map(SpanRec::dur_ns)
            .sum();
        let own = s.dur_ns().saturating_sub(child_ns);
        // Group `cell fig1:mcf#1` and `cell fig2:lbm#1` as `cell`.
        let key = s
            .name
            .split_whitespace()
            .next()
            .unwrap_or(&s.name)
            .to_string();
        match excl.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v += own,
            None => excl.push((key, own)),
        }
    }
    excl.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let parts: Vec<String> = excl
        .iter()
        .filter(|(_, ns)| *ns > 0)
        .map(|(k, ns)| format!("{k} {:.0}%", *ns as f64 * 100.0 / root_dur as f64))
        .collect();
    out.push_str(&format!("critical path: {}\n", parts.join(" / ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: u64, name: &str, proc: &str, start: u64, end: u64) -> SpanRec {
        SpanRec {
            span: id,
            parent,
            name: name.to_string(),
            proc: proc.to_string(),
            start_ns: start,
            end_ns: end,
        }
    }

    #[test]
    fn renders_tree_with_shares_and_breakdown() {
        let spans = vec![
            span(1, 0, "job", "daemon", 0, 1_000_000_000),
            span(2, 1, "queue", "daemon", 0, 120_000_000),
            span(3, 1, "execute", "daemon", 120_000_000, 1_000_000_000),
            span(
                4,
                3,
                "cell fig1:mcf#1",
                "supervisor",
                130_000_000,
                900_000_000,
            ),
            span(5, 4, "simulate", "worker:42", 140_000_000, 880_000_000),
        ];
        let txt = render_spans(&spans);
        assert!(txt.starts_with("job [daemon] 1000.0ms"), "{txt}");
        assert!(txt.contains("├─ queue [daemon] 120.0ms (12.0%)"), "{txt}");
        assert!(txt.contains("└─ simulate [worker:42]"), "{txt}");
        assert!(txt.contains("critical path:"), "{txt}");
        // Simulate dominates the exclusive-time breakdown.
        assert!(txt.contains("simulate 74%"), "{txt}");
        assert!(txt.contains("queue 12%"), "{txt}");
    }

    #[test]
    fn orphans_become_roots_and_empty_input_is_named() {
        assert!(render_spans(&[]).contains("no spans"));
        let spans = vec![
            span(1, 0, "job", "daemon", 0, 100),
            span(9, 77, "stray", "worker:1", 10, 20),
        ];
        let txt = render_spans(&spans);
        assert!(txt.contains("stray"), "{txt}");
    }

    #[test]
    fn malformed_span_duration_clamps_to_zero() {
        let s = span(1, 0, "x", "p", 100, 40);
        assert_eq!(s.dur_ns(), 0);
    }
}
