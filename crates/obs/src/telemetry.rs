//! Interval telemetry: the engine samples a set of cumulative counters and
//! instantaneous occupancies every K cycles (on its cancellation-poll
//! path); the log differences consecutive samples into per-interval
//! deltas.

use crate::wcodec::Reader;

/// The number of numeric fields in a [`TelemetrySample`].
pub const SAMPLE_FIELDS: usize = 22;

/// JSONL field names, in [`TelemetrySample::values`] order. The bench
/// harness writes these names and `crisp obs summarize` reads them back.
pub const FIELD_NAMES: [&str; SAMPLE_FIELDS] = [
    "cycle",
    "interval_cycles",
    "retired",
    "rob",
    "rs",
    "loads",
    "stores",
    "mshr",
    "dram_outstanding",
    "cond_branches",
    "mispredicts",
    "l1i_accesses",
    "l1i_misses",
    "l1d_accesses",
    "l1d_misses",
    "llc_accesses",
    "llc_misses",
    "issued_critical",
    "issued_noncritical",
    "pf_issued",
    "pf_useful",
    "pf_late",
];

/// The counter set the engine hands to [`TelemetryLog::record`] at each
/// sample point: cumulative counters since cycle 0 plus instantaneous
/// occupancies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TelemetryInputs {
    /// Current cycle.
    pub cycle: u64,
    /// Instructions retired so far (cumulative).
    pub retired: u64,
    /// Conditional branches executed so far (cumulative).
    pub cond_branches: u64,
    /// Branch mispredictions so far (cumulative).
    pub mispredicts: u64,
    /// L1I accesses so far (cumulative).
    pub l1i_accesses: u64,
    /// L1I misses so far (cumulative).
    pub l1i_misses: u64,
    /// L1D accesses so far (cumulative).
    pub l1d_accesses: u64,
    /// L1D misses so far (cumulative).
    pub l1d_misses: u64,
    /// LLC accesses so far (cumulative).
    pub llc_accesses: u64,
    /// LLC misses so far (cumulative).
    pub llc_misses: u64,
    /// Critical instructions issued so far (cumulative).
    pub issued_critical: u64,
    /// Non-critical instructions issued so far (cumulative).
    pub issued_noncritical: u64,
    /// Data prefetches issued so far, summed over units (cumulative).
    pub pf_issued: u64,
    /// Useful data prefetches so far, summed over units (cumulative).
    pub pf_useful: u64,
    /// Late data prefetches so far, summed over units (cumulative).
    pub pf_late: u64,
    /// ROB occupancy right now.
    pub rob: u64,
    /// Reservation-station occupancy right now.
    pub rs: u64,
    /// Loads in flight right now.
    pub loads: u64,
    /// Stores in flight right now.
    pub stores: u64,
    /// MSHR (in-flight fill) entries right now.
    pub mshr: u64,
    /// Outstanding DRAM loads right now (instantaneous MLP).
    pub dram_outstanding: u64,
}

impl TelemetryInputs {
    fn words(&self, out: &mut Vec<u64>) {
        out.extend_from_slice(&[
            self.cycle,
            self.retired,
            self.cond_branches,
            self.mispredicts,
            self.l1i_accesses,
            self.l1i_misses,
            self.l1d_accesses,
            self.l1d_misses,
            self.llc_accesses,
            self.llc_misses,
            self.issued_critical,
            self.issued_noncritical,
            self.pf_issued,
            self.pf_useful,
            self.pf_late,
        ]);
    }

    fn read(r: &mut Reader) -> Result<TelemetryInputs, String> {
        Ok(TelemetryInputs {
            cycle: r.u64()?,
            retired: r.u64()?,
            cond_branches: r.u64()?,
            mispredicts: r.u64()?,
            l1i_accesses: r.u64()?,
            l1i_misses: r.u64()?,
            l1d_accesses: r.u64()?,
            l1d_misses: r.u64()?,
            llc_accesses: r.u64()?,
            llc_misses: r.u64()?,
            issued_critical: r.u64()?,
            issued_noncritical: r.u64()?,
            pf_issued: r.u64()?,
            pf_useful: r.u64()?,
            pf_late: r.u64()?,
            ..TelemetryInputs::default()
        })
    }
}

/// One interval sample: counter fields are deltas over the interval,
/// occupancy fields are instantaneous values at the sample cycle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TelemetrySample {
    /// Cycle the sample was taken.
    pub cycle: u64,
    /// Interval length in cycles.
    pub interval_cycles: u64,
    /// Instructions retired in the interval.
    pub retired: u64,
    /// ROB occupancy at the sample cycle.
    pub rob: u64,
    /// RS occupancy at the sample cycle.
    pub rs: u64,
    /// Loads in flight at the sample cycle.
    pub loads: u64,
    /// Stores in flight at the sample cycle.
    pub stores: u64,
    /// MSHR entries at the sample cycle.
    pub mshr: u64,
    /// Outstanding DRAM loads at the sample cycle (instantaneous MLP).
    pub dram_outstanding: u64,
    /// Conditional branches executed in the interval.
    pub cond_branches: u64,
    /// Branch mispredictions in the interval.
    pub mispredicts: u64,
    /// L1I accesses in the interval.
    pub l1i_accesses: u64,
    /// L1I misses in the interval.
    pub l1i_misses: u64,
    /// L1D accesses in the interval.
    pub l1d_accesses: u64,
    /// L1D misses in the interval.
    pub l1d_misses: u64,
    /// LLC accesses in the interval.
    pub llc_accesses: u64,
    /// LLC misses in the interval.
    pub llc_misses: u64,
    /// Critical instructions issued in the interval.
    pub issued_critical: u64,
    /// Non-critical instructions issued in the interval.
    pub issued_noncritical: u64,
    /// Data prefetches issued in the interval (summed over units).
    pub pf_issued: u64,
    /// Useful data prefetches in the interval (summed over units).
    pub pf_useful: u64,
    /// Late data prefetches in the interval (summed over units).
    pub pf_late: u64,
}

impl TelemetrySample {
    /// Field values in [`FIELD_NAMES`] order.
    pub fn values(&self) -> [u64; SAMPLE_FIELDS] {
        [
            self.cycle,
            self.interval_cycles,
            self.retired,
            self.rob,
            self.rs,
            self.loads,
            self.stores,
            self.mshr,
            self.dram_outstanding,
            self.cond_branches,
            self.mispredicts,
            self.l1i_accesses,
            self.l1i_misses,
            self.l1d_accesses,
            self.l1d_misses,
            self.llc_accesses,
            self.llc_misses,
            self.issued_critical,
            self.issued_noncritical,
            self.pf_issued,
            self.pf_useful,
            self.pf_late,
        ]
    }

    /// Builds a sample from values in [`FIELD_NAMES`] order.
    pub fn from_values(v: [u64; SAMPLE_FIELDS]) -> TelemetrySample {
        TelemetrySample {
            cycle: v[0],
            interval_cycles: v[1],
            retired: v[2],
            rob: v[3],
            rs: v[4],
            loads: v[5],
            stores: v[6],
            mshr: v[7],
            dram_outstanding: v[8],
            cond_branches: v[9],
            mispredicts: v[10],
            l1i_accesses: v[11],
            l1i_misses: v[12],
            l1d_accesses: v[13],
            l1d_misses: v[14],
            llc_accesses: v[15],
            llc_misses: v[16],
            issued_critical: v[17],
            issued_noncritical: v[18],
            pf_issued: v[19],
            pf_useful: v[20],
            pf_late: v[21],
        }
    }

    /// Interval IPC.
    pub fn ipc(&self) -> f64 {
        self.retired as f64 / self.interval_cycles.max(1) as f64
    }

    /// Interval branch mispredictions per kilo-instruction.
    pub fn mpki(&self) -> f64 {
        1000.0 * self.mispredicts as f64 / self.retired.max(1) as f64
    }

    /// Interval L1D miss ratio in `[0, 1]`.
    pub fn l1d_miss_ratio(&self) -> f64 {
        self.l1d_misses as f64 / self.l1d_accesses.max(1) as f64
    }

    /// Interval LLC miss ratio in `[0, 1]`.
    pub fn llc_miss_ratio(&self) -> f64 {
        self.llc_misses as f64 / self.llc_accesses.max(1) as f64
    }

    /// Share of interval issues that were critical, in `[0, 1]`.
    pub fn critical_issue_share(&self) -> f64 {
        let total = self.issued_critical + self.issued_noncritical;
        self.issued_critical as f64 / total.max(1) as f64
    }

    fn words(&self, out: &mut Vec<u64>) {
        out.extend_from_slice(&self.values());
    }

    fn read(r: &mut Reader) -> Result<TelemetrySample, String> {
        let mut v = [0u64; SAMPLE_FIELDS];
        for x in &mut v {
            *x = r.u64()?;
        }
        Ok(TelemetrySample::from_values(v))
    }
}

/// The interval-telemetry log: the samples taken so far plus the previous
/// cumulative baseline the next sample will be differenced against. The
/// baseline is part of the snapshot state, so a checkpointed run resumes
/// sampling at exactly the cycles (and with exactly the deltas) the
/// straight-through run would have produced.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TelemetryLog {
    prev: TelemetryInputs,
    samples: Vec<TelemetrySample>,
}

impl TelemetryLog {
    /// The cycle of the last sample (0 before any sample): the engine
    /// samples when `now >= last_cycle() + interval`.
    pub fn last_cycle(&self) -> u64 {
        self.prev.cycle
    }

    /// Differences `cum` against the stored baseline, appends the
    /// resulting interval sample, and advances the baseline.
    pub fn record(&mut self, cum: TelemetryInputs) {
        let p = &self.prev;
        self.samples.push(TelemetrySample {
            cycle: cum.cycle,
            interval_cycles: cum.cycle.saturating_sub(p.cycle),
            retired: cum.retired.saturating_sub(p.retired),
            rob: cum.rob,
            rs: cum.rs,
            loads: cum.loads,
            stores: cum.stores,
            mshr: cum.mshr,
            dram_outstanding: cum.dram_outstanding,
            cond_branches: cum.cond_branches.saturating_sub(p.cond_branches),
            mispredicts: cum.mispredicts.saturating_sub(p.mispredicts),
            l1i_accesses: cum.l1i_accesses.saturating_sub(p.l1i_accesses),
            l1i_misses: cum.l1i_misses.saturating_sub(p.l1i_misses),
            l1d_accesses: cum.l1d_accesses.saturating_sub(p.l1d_accesses),
            l1d_misses: cum.l1d_misses.saturating_sub(p.l1d_misses),
            llc_accesses: cum.llc_accesses.saturating_sub(p.llc_accesses),
            llc_misses: cum.llc_misses.saturating_sub(p.llc_misses),
            issued_critical: cum.issued_critical.saturating_sub(p.issued_critical),
            issued_noncritical: cum.issued_noncritical.saturating_sub(p.issued_noncritical),
            pf_issued: cum.pf_issued.saturating_sub(p.pf_issued),
            pf_useful: cum.pf_useful.saturating_sub(p.pf_useful),
            pf_late: cum.pf_late.saturating_sub(p.pf_late),
        });
        // Occupancies are instantaneous, never differenced: zero them in
        // the stored baseline so it matches its snapshot encoding exactly.
        self.prev = TelemetryInputs {
            rob: 0,
            rs: 0,
            loads: 0,
            stores: 0,
            mshr: 0,
            dram_outstanding: 0,
            ..cum
        };
    }

    /// The samples taken so far, oldest first.
    pub fn samples(&self) -> &[TelemetrySample] {
        &self.samples
    }

    /// Whether any sample has been taken.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Serialises the log for checkpointing.
    pub fn snapshot_words(&self) -> Vec<u64> {
        let mut w = Vec::new();
        self.prev.words(&mut w);
        w.push(self.samples.len() as u64);
        for s in &self.samples {
            s.words(&mut w);
        }
        w
    }

    /// Restores a snapshot produced by [`TelemetryLog::snapshot_words`].
    ///
    /// # Errors
    ///
    /// Returns a message if the words are malformed.
    pub fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
        let mut r = Reader::new(words, "telemetry");
        self.prev = TelemetryInputs::read(&mut r)?;
        let n = r.count()?;
        self.samples.clear();
        for _ in 0..n {
            self.samples.push(TelemetrySample::read(&mut r)?);
        }
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_are_differenced_against_the_baseline() {
        let mut log = TelemetryLog::default();
        log.record(TelemetryInputs {
            cycle: 100,
            retired: 50,
            l1d_accesses: 20,
            l1d_misses: 4,
            rob: 12,
            issued_critical: 3,
            issued_noncritical: 40,
            ..TelemetryInputs::default()
        });
        log.record(TelemetryInputs {
            cycle: 200,
            retired: 150,
            l1d_accesses: 60,
            l1d_misses: 5,
            rob: 7,
            issued_critical: 6,
            issued_noncritical: 130,
            ..TelemetryInputs::default()
        });
        let s = log.samples();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].interval_cycles, 100);
        assert_eq!(s[0].retired, 50);
        assert_eq!(s[1].interval_cycles, 100);
        assert_eq!(s[1].retired, 100);
        assert_eq!(s[1].l1d_accesses, 40);
        assert_eq!(s[1].l1d_misses, 1);
        assert_eq!(s[1].rob, 7);
        assert_eq!(s[1].issued_critical, 3);
        assert!((s[1].ipc() - 1.0).abs() < 1e-12);
        assert_eq!(log.last_cycle(), 200);
    }

    #[test]
    fn values_round_trip_by_field_order() {
        let mut v = [0u64; SAMPLE_FIELDS];
        for (i, x) in v.iter_mut().enumerate() {
            *x = (i as u64 + 1) * 3;
        }
        let s = TelemetrySample::from_values(v);
        assert_eq!(s.values(), v);
        assert_eq!(FIELD_NAMES.len(), SAMPLE_FIELDS);
    }

    #[test]
    fn snapshot_round_trips() {
        let mut log = TelemetryLog::default();
        for i in 1..4u64 {
            log.record(TelemetryInputs {
                cycle: i * 100,
                retired: i * 80,
                mshr: i,
                ..TelemetryInputs::default()
            });
        }
        let w = log.snapshot_words();
        let mut fresh = TelemetryLog::default();
        fresh.restore_words(&w).unwrap();
        assert_eq!(fresh, log);
        assert!(fresh.restore_words(&w[..w.len() - 1]).is_err());
        let mut trailing = w.clone();
        trailing.push(1);
        assert!(fresh.restore_words(&trailing).is_err());
    }
}
