//! The pipeline flight recorder: a fixed-capacity ring buffer of
//! per-instruction lifecycle events behind a zero-cost-when-off enum.

use crate::wcodec::{push_opt_u64, Reader};
use std::collections::VecDeque;

/// Cache level that served a load's fill (annotated on
/// [`EventKind::Complete`] events and on ROB-head stall attribution).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FillLevel {
    /// Served by the L1 data cache (or store-to-load forwarding).
    L1,
    /// Served by the last-level cache.
    Llc,
    /// Served by DRAM.
    Dram,
}

impl FillLevel {
    /// Stable numeric code used by the snapshot codec.
    pub fn code(self) -> u64 {
        match self {
            FillLevel::L1 => 0,
            FillLevel::Llc => 1,
            FillLevel::Dram => 2,
        }
    }

    /// Inverse of [`FillLevel::code`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the bad code.
    pub fn from_code(code: u64) -> Result<FillLevel, String> {
        match code {
            0 => Ok(FillLevel::L1),
            1 => Ok(FillLevel::Llc),
            2 => Ok(FillLevel::Dram),
            v => Err(format!("bad fill-level code {v}")),
        }
    }

    /// Human-readable level name.
    pub fn label(self) -> &'static str {
        match self {
            FillLevel::L1 => "L1",
            FillLevel::Llc => "LLC",
            FillLevel::Dram => "DRAM",
        }
    }
}

/// One pipeline lifecycle stage transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// The instruction entered the fetch buffer.
    Fetch,
    /// The instruction was renamed and inserted into the ROB/RS
    /// (dispatch).
    Dispatch,
    /// The scheduler issued the instruction to a functional unit.
    Issue,
    /// Execution finished (for loads, annotated with the serving
    /// [`FillLevel`]). Recorded at issue time with the *future* completion
    /// cycle, so the event stream is not strictly cycle-sorted.
    Complete,
    /// The instruction retired from the ROB head.
    Retire,
    /// A mispredicted branch resolved and fetch was re-steered (the
    /// trace-driven engine never fetches wrong-path instructions, so this
    /// is the squash/flush annotation).
    Redirect,
}

impl EventKind {
    /// Stable numeric code used by the snapshot codec.
    pub fn code(self) -> u64 {
        match self {
            EventKind::Fetch => 0,
            EventKind::Dispatch => 1,
            EventKind::Issue => 2,
            EventKind::Complete => 3,
            EventKind::Retire => 4,
            EventKind::Redirect => 5,
        }
    }

    /// Inverse of [`EventKind::code`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the bad code.
    pub fn from_code(code: u64) -> Result<EventKind, String> {
        match code {
            0 => Ok(EventKind::Fetch),
            1 => Ok(EventKind::Dispatch),
            2 => Ok(EventKind::Issue),
            3 => Ok(EventKind::Complete),
            4 => Ok(EventKind::Retire),
            5 => Ok(EventKind::Redirect),
            v => Err(format!("bad event-kind code {v}")),
        }
    }

    /// Short stage mnemonic (also the Kanata lane-0 stage name).
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Fetch => "F",
            EventKind::Dispatch => "Ds",
            EventKind::Issue => "Is",
            EventKind::Complete => "Cm",
            EventKind::Retire => "R",
            EventKind::Redirect => "X",
        }
    }
}

/// One recorded pipeline event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Core cycle the transition happened (or, for
    /// [`EventKind::Complete`], will happen).
    pub cycle: u64,
    /// Program-order sequence number (equals the trace index).
    pub seq: u64,
    /// Program counter of the instruction.
    pub pc: u64,
    /// Which transition this is.
    pub kind: EventKind,
    /// Serving cache level, for load completions.
    pub fill: Option<FillLevel>,
}

impl TraceEvent {
    fn words(&self, out: &mut Vec<u64>) {
        out.push(self.cycle);
        out.push(self.seq);
        out.push(self.pc);
        out.push(self.kind.code());
        push_opt_u64(out, self.fill.map(FillLevel::code));
    }

    fn read(r: &mut Reader) -> Result<TraceEvent, String> {
        Ok(TraceEvent {
            cycle: r.u64()?,
            seq: r.u64()?,
            pc: r.u64()?,
            kind: EventKind::from_code(r.u64()?)?,
            fill: r.opt_u64()?.map(FillLevel::from_code).transpose()?,
        })
    }
}

/// Fixed-capacity ring buffer of [`TraceEvent`]s: once full, the oldest
/// event is dropped for each new one, so the buffer always holds the most
/// recent pipeline history.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlightRecorder {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl FlightRecorder {
    /// Builds a recorder holding at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest once at capacity.
    pub fn record(&mut self, ev: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.iter().copied().collect()
    }

    /// The most recent `n` events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<TraceEvent> {
        let skip = self.events.len().saturating_sub(n);
        self.events.iter().skip(skip).copied().collect()
    }

    /// Events evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no event has been recorded (or all were evicted).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serialises the recorder for checkpointing.
    pub fn snapshot_words(&self) -> Vec<u64> {
        let mut w = vec![self.capacity as u64, self.dropped, self.events.len() as u64];
        for e in &self.events {
            e.words(&mut w);
        }
        w
    }

    /// Restores a snapshot produced by [`FlightRecorder::snapshot_words`].
    ///
    /// # Errors
    ///
    /// Returns a message if the words are malformed or the snapshot's
    /// capacity disagrees with this recorder's (a snapshot from a
    /// differently-configured run must be rejected, not silently
    /// truncated).
    pub fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
        let mut r = Reader::new(words, "flight-recorder");
        let capacity = r.usize()?;
        if capacity != self.capacity {
            return Err(format!(
                "flight-recorder snapshot: capacity {capacity}, expected {}",
                self.capacity
            ));
        }
        self.dropped = r.u64()?;
        let n = r.count()?;
        if n > self.capacity {
            return Err(format!(
                "flight-recorder snapshot: {n} events exceed capacity {}",
                self.capacity
            ));
        }
        self.events.clear();
        for _ in 0..n {
            self.events.push_back(TraceEvent::read(&mut r)?);
        }
        r.finish()
    }
}

/// The tracer the engine records into: either disabled (the default — the
/// record call is a single discriminant test the optimiser can hoist) or
/// a live [`FlightRecorder`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum Tracer {
    /// Tracing disabled; every record call is a no-op.
    #[default]
    Off,
    /// Tracing into a ring buffer.
    Ring(FlightRecorder),
}

impl Tracer {
    /// A tracer recording into a fresh ring of `capacity` events.
    pub fn ring(capacity: usize) -> Tracer {
        Tracer::Ring(FlightRecorder::new(capacity))
    }

    /// Whether events are being kept.
    #[inline]
    pub fn is_on(&self) -> bool {
        matches!(self, Tracer::Ring(_))
    }

    /// Records one event; a no-op when off.
    #[inline]
    pub fn record(
        &mut self,
        cycle: u64,
        seq: u64,
        pc: u64,
        kind: EventKind,
        fill: Option<FillLevel>,
    ) {
        if let Tracer::Ring(ring) = self {
            ring.record(TraceEvent {
                cycle,
                seq,
                pc,
                kind,
                fill,
            });
        }
    }

    /// Events currently held, oldest first (empty when off).
    pub fn events(&self) -> Vec<TraceEvent> {
        match self {
            Tracer::Off => Vec::new(),
            Tracer::Ring(r) => r.events(),
        }
    }

    /// The most recent `n` events (empty when off).
    pub fn tail(&self, n: usize) -> Vec<TraceEvent> {
        match self {
            Tracer::Off => Vec::new(),
            Tracer::Ring(r) => r.tail(n),
        }
    }

    /// Serialises the tracer for checkpointing.
    pub fn snapshot_words(&self) -> Vec<u64> {
        match self {
            Tracer::Off => vec![0],
            Tracer::Ring(r) => {
                let mut w = vec![1];
                w.extend(r.snapshot_words());
                w
            }
        }
    }

    /// Restores a snapshot produced by [`Tracer::snapshot_words`].
    ///
    /// # Errors
    ///
    /// Returns a message if the words are malformed or the snapshot's
    /// enablement disagrees with this tracer's configuration.
    pub fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
        let Some((&flag, rest)) = words.split_first() else {
            return Err("tracer snapshot: empty input".to_string());
        };
        match (flag, &mut *self) {
            (0, Tracer::Off) => {
                if rest.is_empty() {
                    Ok(())
                } else {
                    Err(format!("tracer snapshot: {} trailing words", rest.len()))
                }
            }
            (1, Tracer::Ring(r)) => r.restore_words(rest),
            (0, Tracer::Ring(_)) => Err(
                "tracer snapshot: taken with tracing disabled, engine has it enabled".to_string(),
            ),
            (1, Tracer::Off) => Err(
                "tracer snapshot: taken with tracing enabled, engine has it disabled".to_string(),
            ),
            (v, _) => Err(format!("tracer snapshot: bad enable flag {v}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, seq: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            cycle,
            seq,
            pc: seq * 4,
            kind,
            fill: (kind == EventKind::Complete).then_some(FillLevel::Dram),
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut r = FlightRecorder::new(3);
        for i in 0..5 {
            r.record(ev(i, i, EventKind::Fetch));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let seqs: Vec<u64> = r.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [2, 3, 4]);
        assert_eq!(r.tail(2).iter().map(|e| e.seq).collect::<Vec<_>>(), [3, 4]);
    }

    #[test]
    fn recorder_snapshot_round_trips() {
        let mut r = FlightRecorder::new(4);
        for i in 0..6 {
            r.record(ev(
                i,
                i,
                if i % 2 == 0 {
                    EventKind::Issue
                } else {
                    EventKind::Complete
                },
            ));
        }
        let w = r.snapshot_words();
        let mut fresh = FlightRecorder::new(4);
        fresh.restore_words(&w).unwrap();
        assert_eq!(fresh, r);
        // Mismatched capacity is rejected.
        let mut other = FlightRecorder::new(8);
        assert!(other.restore_words(&w).unwrap_err().contains("capacity"));
        // Truncation is rejected.
        let mut fresh = FlightRecorder::new(4);
        assert!(fresh.restore_words(&w[..w.len() - 1]).is_err());
    }

    #[test]
    fn tracer_off_is_inert_and_round_trips() {
        let mut t = Tracer::Off;
        t.record(1, 2, 3, EventKind::Fetch, None);
        assert!(t.events().is_empty());
        let w = t.snapshot_words();
        let mut fresh = Tracer::Off;
        fresh.restore_words(&w).unwrap();
        assert_eq!(fresh, t);
        // Enablement mismatches are rejected both ways.
        let mut on = Tracer::ring(4);
        assert!(on.restore_words(&w).unwrap_err().contains("disabled"));
        let w_on = Tracer::ring(4).snapshot_words();
        let mut off = Tracer::Off;
        assert!(off.restore_words(&w_on).unwrap_err().contains("enabled"));
    }

    #[test]
    fn codes_round_trip() {
        for k in [
            EventKind::Fetch,
            EventKind::Dispatch,
            EventKind::Issue,
            EventKind::Complete,
            EventKind::Retire,
            EventKind::Redirect,
        ] {
            assert_eq!(EventKind::from_code(k.code()).unwrap(), k);
        }
        for l in [FillLevel::L1, FillLevel::Llc, FillLevel::Dram] {
            assert_eq!(FillLevel::from_code(l.code()).unwrap(), l);
        }
        assert!(EventKind::from_code(9).is_err());
        assert!(FillLevel::from_code(9).is_err());
    }
}
