//! Kanata/Konata pipeline-viewer export of flight-recorder events.
//!
//! The emitted text follows the Kanata 0004 command format the Konata
//! viewer parses: a `Kanata<TAB>0004` header, `C=`/`C` cycle commands, and
//! per-instruction `I` (begin), `L` (label), `S` (stage start) and `R`
//! (retire) commands. Stage starts implicitly end the previous stage in
//! the same lane, so the exporter never needs `E` commands.

use crate::recorder::{EventKind, TraceEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The format header line.
pub const KANATA_HEADER: &str = "Kanata\t0004";

/// Filters applied at export: only instructions with at least one event in
/// the cycle window (and, when set, a matching PC) are emitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceFilter {
    /// First cycle of the window (inclusive).
    pub min_cycle: u64,
    /// Last cycle of the window (inclusive).
    pub max_cycle: u64,
    /// When set, keep only instructions at this PC.
    pub pc: Option<u64>,
}

impl Default for TraceFilter {
    fn default() -> TraceFilter {
        TraceFilter {
            min_cycle: 0,
            max_cycle: u64::MAX,
            pc: None,
        }
    }
}

impl TraceFilter {
    fn keeps(&self, events: &[TraceEvent]) -> bool {
        let in_window = events
            .iter()
            .any(|e| e.cycle >= self.min_cycle && e.cycle <= self.max_cycle);
        let pc_ok = self.pc.is_none_or(|pc| events.iter().any(|e| e.pc == pc));
        in_window && pc_ok
    }
}

/// Renders flight-recorder events as a Kanata 0004 pipeline-viewer trace.
///
/// Events are regrouped by instruction and re-sorted by cycle, so the
/// recorder's completion events (stamped with their *future* cycle at
/// issue time) land in the right place. Instructions that pass the filter
/// are emitted whole.
pub fn render_kanata(events: &[TraceEvent], filter: &TraceFilter) -> String {
    // Group events per instruction (seq is program order).
    let mut per_inst: BTreeMap<u64, Vec<TraceEvent>> = BTreeMap::new();
    for e in events {
        per_inst.entry(e.seq).or_default().push(*e);
    }
    per_inst.retain(|_, evs| filter.keeps(evs));

    // Flatten into (cycle, order, command) lines. `order` keeps commands
    // of one cycle deterministic: instruction begin before stages, by seq.
    let mut commands: Vec<(u64, u64, u8, String)> = Vec::new();
    for (&seq, evs) in &per_inst {
        let mut evs = evs.clone();
        evs.sort_by_key(|e| (e.cycle, e.kind.code()));
        let first = evs[0];
        commands.push((first.cycle, seq, 0, format!("I\t{seq}\t{seq}\t0")));
        commands.push((
            first.cycle,
            seq,
            1,
            format!("L\t{seq}\t0\tseq={seq} pc={:#x}", first.pc),
        ));
        for e in &evs {
            match e.kind {
                EventKind::Retire => {
                    commands.push((e.cycle, seq, 2, format!("R\t{seq}\t{seq}\t0")));
                }
                EventKind::Redirect => {
                    commands.push((
                        e.cycle,
                        seq,
                        2,
                        format!("L\t{seq}\t1\tmispredict redirect at cycle {}", e.cycle),
                    ));
                }
                kind => {
                    commands.push((e.cycle, seq, 2, format!("S\t{seq}\t0\t{}", kind.label())));
                    if kind == EventKind::Complete {
                        if let Some(fill) = e.fill {
                            commands.push((
                                e.cycle,
                                seq,
                                3,
                                format!("L\t{seq}\t1\tfill={}", fill.label()),
                            ));
                        }
                    }
                }
            }
        }
    }
    commands.sort_by_key(|a| (a.0, a.1, a.2));

    let mut out = String::new();
    out.push_str(KANATA_HEADER);
    out.push('\n');
    let mut current_cycle: Option<u64> = None;
    for (cycle, _, _, cmd) in commands {
        match current_cycle {
            None => {
                let _ = writeln!(out, "C=\t{cycle}");
            }
            Some(c) if cycle > c => {
                let _ = writeln!(out, "C\t{}", cycle - c);
            }
            _ => {}
        }
        current_cycle = Some(cycle);
        out.push_str(&cmd);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::FillLevel;

    fn ev(cycle: u64, seq: u64, pc: u64, kind: EventKind, fill: Option<FillLevel>) -> TraceEvent {
        TraceEvent {
            cycle,
            seq,
            pc,
            kind,
            fill,
        }
    }

    fn tiny_trace() -> Vec<TraceEvent> {
        vec![
            ev(0, 0, 0x40, EventKind::Fetch, None),
            ev(5, 0, 0x40, EventKind::Dispatch, None),
            ev(6, 0, 0x40, EventKind::Issue, None),
            ev(40, 0, 0x40, EventKind::Complete, Some(FillLevel::Dram)),
            ev(41, 0, 0x40, EventKind::Retire, None),
            ev(1, 1, 0x44, EventKind::Fetch, None),
            ev(6, 1, 0x44, EventKind::Dispatch, None),
            ev(7, 1, 0x44, EventKind::Issue, None),
            ev(8, 1, 0x44, EventKind::Complete, None),
            ev(42, 1, 0x44, EventKind::Retire, None),
        ]
    }

    #[test]
    fn header_and_cycle_commands_are_well_formed() {
        let s = render_kanata(&tiny_trace(), &TraceFilter::default());
        let mut lines = s.lines();
        assert_eq!(lines.next().unwrap(), KANATA_HEADER);
        assert_eq!(lines.next().unwrap(), "C=\t0");
        assert!(s.contains("I\t0\t0\t0"));
        assert!(s.contains("S\t0\t0\tF"));
        assert!(s.contains("S\t0\t0\tCm"));
        assert!(s.contains("L\t0\t1\tfill=DRAM"));
        assert!(s.contains("R\t1\t1\t0"));
        // Cycle deltas must be monotone: replaying C=/C never rewinds.
        let mut cycle = 0u64;
        for line in s.lines().skip(1) {
            let mut parts = line.split('\t');
            match parts.next().unwrap() {
                "C=" => cycle = parts.next().unwrap().parse().unwrap(),
                "C" => cycle += parts.next().unwrap().parse::<u64>().unwrap(),
                _ => {}
            }
        }
        assert_eq!(cycle, 42);
    }

    #[test]
    fn filters_drop_whole_instructions() {
        let all = tiny_trace();
        let windowed = render_kanata(
            &all,
            &TraceFilter {
                min_cycle: 42,
                max_cycle: u64::MAX,
                pc: None,
            },
        );
        // Only seq 1 has an event at cycle >= 42; seq 0's last is 41.
        assert!(!windowed.contains("I\t0\t0\t0"), "{windowed}");
        assert!(windowed.contains("I\t1\t1\t0"));
        // But the kept instruction is emitted whole, from its fetch.
        assert!(windowed.contains("S\t1\t0\tF"));

        let by_pc = render_kanata(
            &all,
            &TraceFilter {
                pc: Some(0x40),
                ..TraceFilter::default()
            },
        );
        assert!(by_pc.contains("I\t0\t0\t0"));
        assert!(!by_pc.contains("I\t1\t1\t0"));
    }

    #[test]
    fn empty_input_is_just_the_header() {
        assert_eq!(
            render_kanata(&[], &TraceFilter::default()),
            format!("{KANATA_HEADER}\n")
        );
    }
}
