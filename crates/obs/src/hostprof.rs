//! Host-side engine self-profiler: where do *host* nanoseconds go while
//! the simulator runs?
//!
//! CRISP's methodology is profiling-first for the *simulated* machine;
//! this module applies the same discipline to the simulator itself so
//! ROADMAP's throughput work can attack measured hotspots instead of
//! guesses. The engine marks phase transitions with [`HostProf::enter`]
//! — a *mark-style* profiler: each mark takes one monotonic timestamp
//! and charges the elapsed time since the previous mark to the phase
//! that was current. By construction every measured nanosecond lands in
//! exactly one phase, so the report's attribution always sums to the
//! measured total (loop bookkeeping and anything unmarked accumulates
//! under [`Phase::Other`]).
//!
//! Alongside wall time the profiler tallies *structure-scan* counters —
//! RS slots walked per wakeup, age-matrix candidates examined per
//! select, LSQ disambiguation probes, MSHR/cache-port probes — the
//! work-per-cycle numbers that explain why a phase is hot.
//!
//! The disabled path is a single predicted branch per mark (the same
//! enum-dispatch pattern as [`crate::Tracer::Off`]) and is gated by the
//! `obs-overhead` micro-benchmark at ≤0.5 ns/call. Enabled runs pay one
//! `Instant::now()` per mark, so profiled simulations run slower;
//! relative attribution is the product, not absolute speed.

use std::time::Instant;

/// Engine phases that host time is attributed to. `Other` collects
/// everything between marked regions (poll points, per-cycle
/// accounting, loop control).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Instruction fetch: line gating, branch prediction, fetch-buffer
    /// fill (and FDIP prefetch walking).
    Fetch,
    /// Register renaming: mapping sources through the producer table.
    Rename,
    /// Dispatch: ROB/RS allocation and entry construction.
    Dispatch,
    /// Wakeup: the full reservation-station readiness scan.
    Wakeup,
    /// Select: age-matrix / priority picking and port binding.
    Select,
    /// Execute: latency computation and completion bookkeeping.
    Execute,
    /// Load/store-queue disambiguation scans.
    Lsq,
    /// MSHR and instruction-cache probes.
    Mshr,
    /// Data-side memory-hierarchy access (loads/stores entering the
    /// cache/DRAM model).
    Dram,
    /// Retire: ROB-head completion checks and commit bookkeeping.
    Retire,
    /// Unmarked time: poll points, stall accounting, loop control.
    Other,
}

/// Number of phases (including `Other`).
pub const PHASE_COUNT: usize = 11;

/// Phase names, indexed by `Phase as usize` — stable identifiers used
/// in reports and JSON artifacts.
pub const PHASE_NAMES: [&str; PHASE_COUNT] = [
    "fetch", "rename", "dispatch", "wakeup", "select", "execute", "lsq", "mshr", "dram", "retire",
    "other",
];

impl Phase {
    /// The phase's stable report name.
    pub fn name(self) -> &'static str {
        PHASE_NAMES[self as usize]
    }

    /// Parses a report name back into a phase (for artifact readers).
    pub fn from_name(name: &str) -> Option<Phase> {
        use Phase::*;
        const ALL: [Phase; PHASE_COUNT] = [
            Fetch, Rename, Dispatch, Wakeup, Select, Execute, Lsq, Mshr, Dram, Retire, Other,
        ];
        PHASE_NAMES.iter().position(|&n| n == name).map(|i| ALL[i])
    }
}

/// Live profiling state (boxed so the disabled variant stays one word).
#[derive(Clone, Debug)]
pub struct HostProfState {
    last: Instant,
    current: Phase,
    phase_ns: [u64; PHASE_COUNT],
    rs_slots_scanned: u64,
    age_compares: u64,
    lsq_probes: u64,
    mshr_probes: u64,
}

/// The self-profiler handle the engine marks against. [`HostProf::Off`]
/// makes every mark a no-op behind one predicted branch.
#[derive(Clone, Debug)]
pub enum HostProf {
    /// Disabled: marks and tallies are no-ops.
    Off,
    /// Enabled: timestamps and counters accumulate.
    On(Box<HostProfState>),
}

impl HostProf {
    /// An enabled or disabled profiler.
    pub fn new(enabled: bool) -> HostProf {
        if enabled {
            HostProf::On(Box::new(HostProfState {
                last: Instant::now(),
                current: Phase::Other,
                phase_ns: [0; PHASE_COUNT],
                rs_slots_scanned: 0,
                age_compares: 0,
                lsq_probes: 0,
                mshr_probes: 0,
            }))
        } else {
            HostProf::Off
        }
    }

    /// Whether marks are live. Callers use this to skip computing tally
    /// arguments (e.g. popcounts) on the disabled path.
    #[inline]
    pub fn is_on(&self) -> bool {
        matches!(self, HostProf::On(_))
    }

    /// Resets the mark clock without charging the elapsed gap anywhere
    /// — called once when measurement begins, so setup time (trace
    /// loading, layout building) is excluded.
    pub fn start(&mut self) {
        if let HostProf::On(s) = self {
            s.last = Instant::now();
            s.current = Phase::Other;
        }
    }

    /// Marks a phase transition: charges the time since the previous
    /// mark to the phase that was current, then makes `phase` current.
    #[inline]
    pub fn enter(&mut self, phase: Phase) {
        match self {
            HostProf::Off => {}
            HostProf::On(s) => {
                let now = Instant::now();
                s.phase_ns[s.current as usize] += now.duration_since(s.last).as_nanos() as u64;
                s.last = now;
                s.current = phase;
            }
        }
    }

    /// Tallies reservation-station slots walked by a wakeup scan.
    #[inline]
    pub fn rs_scanned(&mut self, n: u64) {
        if let HostProf::On(s) = self {
            s.rs_slots_scanned += n;
        }
    }

    /// Tallies age-matrix candidates examined by a select pick.
    #[inline]
    pub fn age_compared(&mut self, n: u64) {
        if let HostProf::On(s) = self {
            s.age_compares += n;
        }
    }

    /// Tallies load/store-queue disambiguation probes.
    #[inline]
    pub fn lsq_probed(&mut self, n: u64) {
        if let HostProf::On(s) = self {
            s.lsq_probes += n;
        }
    }

    /// Tallies MSHR / cache-port probes.
    #[inline]
    pub fn mshr_probed(&mut self, n: u64) {
        if let HostProf::On(s) = self {
            s.mshr_probes += n;
        }
    }

    /// Charges the tail since the last mark and produces the report.
    /// `cycles` and `retired` contextualize the per-cycle rates.
    pub fn finish(&mut self, cycles: u64, retired: u64) -> HostProfReport {
        match self {
            HostProf::Off => HostProfReport::default(),
            HostProf::On(s) => {
                let now = Instant::now();
                s.phase_ns[s.current as usize] += now.duration_since(s.last).as_nanos() as u64;
                s.last = now;
                HostProfReport {
                    enabled: true,
                    phase_ns: s.phase_ns,
                    cycles,
                    retired,
                    rs_slots_scanned: s.rs_slots_scanned,
                    age_compares: s.age_compares,
                    lsq_probes: s.lsq_probes,
                    mshr_probes: s.mshr_probes,
                }
            }
        }
    }
}

/// The finished self-profile: per-phase host nanoseconds plus
/// structure-scan counters. `Default` (all zeros, `enabled: false`) is
/// what un-profiled runs report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HostProfReport {
    /// Whether the run was profiled at all.
    pub enabled: bool,
    /// Host nanoseconds charged to each phase, indexed like
    /// [`PHASE_NAMES`].
    pub phase_ns: [u64; PHASE_COUNT],
    /// Simulated cycles the profile covers.
    pub cycles: u64,
    /// Instructions retired over the profile.
    pub retired: u64,
    /// Reservation-station slots walked by wakeup scans.
    pub rs_slots_scanned: u64,
    /// Age-matrix candidates examined by select picks.
    pub age_compares: u64,
    /// Load/store-queue disambiguation probes.
    pub lsq_probes: u64,
    /// MSHR / cache-port probes.
    pub mshr_probes: u64,
}

impl HostProfReport {
    /// Total measured host nanoseconds (all phases, including `other`).
    pub fn total_ns(&self) -> u64 {
        self.phase_ns.iter().sum()
    }

    /// Nanoseconds attributed to *named* phases (everything but
    /// `other`) — the acceptance metric is `named_ns / total_ns`.
    pub fn named_ns(&self) -> u64 {
        self.total_ns() - self.phase_ns[Phase::Other as usize]
    }

    /// `(name, ns)` for every phase, report order.
    pub fn phases(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        PHASE_NAMES.iter().zip(self.phase_ns).map(|(&n, v)| (n, v))
    }

    /// Sets one phase's time by report name (for artifact readers
    /// reconstructing a report from JSON). Returns `false` for unknown
    /// names, which readers should skip — forward compatibility.
    pub fn set_phase_ns(&mut self, name: &str, ns: u64) -> bool {
        match Phase::from_name(name) {
            Some(p) => {
                self.phase_ns[p as usize] = ns;
                true
            }
            None => false,
        }
    }

    /// Renders the hotspot table: phases sorted by time, share of
    /// total, per-cycle cost, then the scan-rate counters.
    pub fn render(&self) -> String {
        if !self.enabled {
            return "hostprof: disabled (enable with SimConfig.hostprof)\n".to_string();
        }
        let total = self.total_ns().max(1);
        let mut rows: Vec<(&str, u64)> = self.phases().collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        let per_cycle = |ns: u64| ns as f64 / self.cycles.max(1) as f64;
        let mut out = String::new();
        out.push_str(&format!(
            "host profile: {:.1} ms over {} cycles / {} instrs ({:.1} ns/cycle, {:.1}% in named phases)\n",
            total as f64 / 1e6,
            self.cycles,
            self.retired,
            per_cycle(total),
            self.named_ns() as f64 * 100.0 / total as f64,
        ));
        out.push_str(&format!(
            "{:<10} {:>12} {:>7} {:>10}\n",
            "phase", "ns", "share", "ns/cycle"
        ));
        for (name, ns) in rows {
            out.push_str(&format!(
                "{:<10} {:>12} {:>6.1}% {:>10.2}\n",
                name,
                ns,
                ns as f64 * 100.0 / total as f64,
                per_cycle(ns),
            ));
        }
        let rate = |n: u64| n as f64 / self.cycles.max(1) as f64;
        out.push_str(&format!(
            "scans/cycle: rs {:.2}, age {:.2}, lsq {:.2}, mshr {:.2}\n",
            rate(self.rs_slots_scanned),
            rate(self.age_compares),
            rate(self.lsq_probes),
            rate(self.mshr_probes),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_profiler_reports_nothing() {
        let mut p = HostProf::new(false);
        assert!(!p.is_on());
        p.enter(Phase::Fetch);
        p.rs_scanned(100);
        let r = p.finish(1000, 500);
        assert_eq!(r, HostProfReport::default());
        assert!(!r.enabled);
        assert_eq!(r.total_ns(), 0);
        assert!(r.render().contains("disabled"));
    }

    #[test]
    fn marks_attribute_all_time_to_phases() {
        let mut p = HostProf::new(true);
        assert!(p.is_on());
        p.start();
        p.enter(Phase::Retire);
        std::thread::sleep(std::time::Duration::from_millis(2));
        p.enter(Phase::Wakeup);
        std::thread::sleep(std::time::Duration::from_millis(1));
        p.rs_scanned(97);
        p.age_compared(12);
        p.lsq_probed(3);
        p.mshr_probed(5);
        let r = p.finish(10, 7);
        assert!(r.enabled);
        // The sleeps landed where they should.
        assert!(r.phase_ns[Phase::Retire as usize] >= 1_000_000);
        assert!(r.phase_ns[Phase::Wakeup as usize] >= 500_000);
        // Attribution is exhaustive: named + other == total.
        assert_eq!(
            r.named_ns() + r.phase_ns[Phase::Other as usize],
            r.total_ns()
        );
        assert_eq!(
            (
                r.rs_slots_scanned,
                r.age_compares,
                r.lsq_probes,
                r.mshr_probes
            ),
            (97, 12, 3, 5)
        );
        let txt = r.render();
        assert!(txt.contains("retire"), "{txt}");
        assert!(txt.contains("scans/cycle"), "{txt}");
    }

    #[test]
    fn phase_names_round_trip() {
        for (i, name) in PHASE_NAMES.iter().enumerate() {
            let p = Phase::from_name(name).unwrap();
            assert_eq!(p as usize, i);
            assert_eq!(p.name(), *name);
        }
        assert_eq!(Phase::from_name("warp-drive"), None);
        let mut r = HostProfReport::default();
        assert!(r.set_phase_ns("dram", 42));
        assert_eq!(r.phase_ns[Phase::Dram as usize], 42);
        assert!(!r.set_phase_ns("warp-drive", 1));
    }
}
