//! `crisp obs summarize`: parse a telemetry JSONL stream back into samples
//! and render per-interval tables plus an ASCII IPC-over-time sparkline.
//!
//! The JSONL reader here is deliberately minimal (flat objects of numbers
//! and strings, exactly what the bench harness emits) and duplicated from
//! `crisp-harness`'s hand-rolled writer on purpose: this crate sits below
//! the harness in the dependency graph, so it cannot import the writer.

use crate::telemetry::{TelemetrySample, FIELD_NAMES, SAMPLE_FIELDS};
use std::fmt::Write as _;

/// Skips one nested container value (`[...]` or `{...}`) and returns
/// the remainder. Quoted strings inside are honored so brackets in
/// string values don't unbalance the scan.
fn skip_container(rest: &str) -> Result<&str, String> {
    let bytes = rest.as_bytes();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        if in_str {
            match b {
                _ if escaped => escaped = false,
                b'\\' => escaped = true,
                b'"' => in_str = false,
                _ => {}
            }
            continue;
        }
        match b {
            b'"' => in_str = true,
            b'[' | b'{' => depth += 1,
            b']' | b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Ok(rest[i + 1..].trim_start());
                }
            }
            _ => {}
        }
    }
    Err(format!("unterminated container in `{rest}`"))
}

/// Parses one flat JSON object line into `(key, number)` pairs. String
/// values and nested containers are tolerated and skipped, so samples
/// from newer schemas (extra tags, structured fields) keep parsing.
fn parse_object_line(line: &str) -> Result<Vec<(String, f64)>, String> {
    let s = line.trim();
    let inner = s
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .ok_or_else(|| format!("not a JSON object: `{line}`"))?;
    let mut out = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        // Key.
        rest = rest
            .strip_prefix('"')
            .ok_or_else(|| format!("expected key quote in `{line}`"))?;
        let kend = rest
            .find('"')
            .ok_or_else(|| format!("unterminated key in `{line}`"))?;
        let key = rest[..kend].to_string();
        rest = rest[kend + 1..].trim_start();
        rest = rest
            .strip_prefix(':')
            .ok_or_else(|| format!("expected `:` after key `{key}`"))?
            .trim_start();
        // Value: a string or nested container (skipped) or a number.
        if let Some(t) = rest.strip_prefix('"') {
            let vend = t
                .find('"')
                .ok_or_else(|| format!("unterminated string value for `{key}`"))?;
            rest = t[vend + 1..].trim_start();
        } else if rest.starts_with('[') || rest.starts_with('{') {
            rest = skip_container(rest)?;
        } else {
            let vend = rest.find([',', '}']).unwrap_or(rest.len()).min(rest.len());
            let raw = rest[..vend].trim();
            let v: f64 = raw
                .parse()
                .map_err(|_| format!("bad numeric value `{raw}` for `{key}`"))?;
            out.push((key, v));
            rest = rest[vend..].trim_start();
        }
        match rest.strip_prefix(',') {
            Some(t) => rest = t.trim_start(),
            None if rest.is_empty() => break,
            None => return Err(format!("expected `,` between fields in `{line}`")),
        }
    }
    Ok(out)
}

/// Parses a telemetry JSONL stream (one sample object per line, blank
/// lines skipped) back into samples. The reader is forward- and
/// backward-compatible by construction: unknown fields (including
/// strings and nested containers) are skipped, and [`FIELD_NAMES`]
/// fields absent from a line default to zero — so artifacts from both
/// older and newer schemas keep parsing as the sample schema grows.
///
/// # Errors
///
/// Returns a message naming the first malformed line (1-based).
pub fn parse_jsonl(input: &str) -> Result<Vec<TelemetrySample>, String> {
    let mut samples = Vec::new();
    for (i, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields = parse_object_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let mut values = [0u64; SAMPLE_FIELDS];
        for (j, name) in FIELD_NAMES.iter().enumerate() {
            values[j] = fields
                .iter()
                .find(|(k, _)| k == name)
                .map_or(0, |&(_, v)| v as u64);
        }
        samples.push(TelemetrySample::from_values(values));
    }
    Ok(samples)
}

/// Renders `values` as a one-line block-character sparkline (empty input
/// renders empty).
pub fn render_sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().fold(0.0f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if max <= 0.0 {
                BARS[0]
            } else {
                let idx = ((v / max) * (BARS.len() - 1) as f64).round() as usize;
                BARS[idx.min(BARS.len() - 1)]
            }
        })
        .collect()
}

/// Renders the per-interval table and IPC sparkline for one telemetry
/// stream.
pub fn summarize(samples: &[TelemetrySample]) -> String {
    if samples.is_empty() {
        return "no telemetry samples\n".to_string();
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>12} {:>6} {:>5} {:>5} {:>5} {:>5} {:>6} {:>7} {:>7} {:>6}",
        "cycle", "ipc", "rob", "rs", "mshr", "mlp", "mpki", "l1d%", "llc%", "crit%"
    );
    for s in samples {
        let _ = writeln!(
            out,
            "{:>12} {:>6.3} {:>5} {:>5} {:>5} {:>5} {:>6.1} {:>7.2} {:>7.2} {:>6.1}",
            s.cycle,
            s.ipc(),
            s.rob,
            s.rs,
            s.mshr,
            s.dram_outstanding,
            s.mpki(),
            100.0 * s.l1d_miss_ratio(),
            100.0 * s.llc_miss_ratio(),
            100.0 * s.critical_issue_share(),
        );
    }
    let total_cycles: u64 = samples.iter().map(|s| s.interval_cycles).sum();
    let total_retired: u64 = samples.iter().map(|s| s.retired).sum();
    let _ = writeln!(
        out,
        "{} samples over {} cycles, mean IPC {:.3}",
        samples.len(),
        total_cycles,
        total_retired as f64 / total_cycles.max(1) as f64
    );
    let ipcs: Vec<f64> = samples.iter().map(TelemetrySample::ipc).collect();
    let _ = writeln!(out, "IPC over time: {}", render_sparkline(&ipcs));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::TelemetryInputs;
    use crate::telemetry::TelemetryLog;

    fn jsonl_line(s: &TelemetrySample, extra: &str) -> String {
        let mut fields: Vec<String> = s
            .values()
            .iter()
            .zip(FIELD_NAMES)
            .map(|(v, k)| format!("\"{k}\": {v}"))
            .collect();
        if !extra.is_empty() {
            fields.insert(0, extra.to_string());
        }
        format!("{{{}}}", fields.join(", "))
    }

    #[test]
    fn jsonl_round_trips_and_tolerates_extra_fields() {
        let mut log = TelemetryLog::default();
        log.record(TelemetryInputs {
            cycle: 8192,
            retired: 4000,
            l1d_accesses: 900,
            l1d_misses: 90,
            rob: 100,
            ..TelemetryInputs::default()
        });
        log.record(TelemetryInputs {
            cycle: 16384,
            retired: 9000,
            l1d_accesses: 2000,
            l1d_misses: 100,
            rob: 50,
            ..TelemetryInputs::default()
        });
        let text: String = log
            .samples()
            .iter()
            .map(|s| jsonl_line(s, "\"cell\": \"fig1/pointer_chase\""))
            .collect::<Vec<_>>()
            .join("\n");
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed, log.samples());
    }

    #[test]
    fn malformed_lines_are_named() {
        assert!(parse_jsonl("not json").unwrap_err().contains("line 1"));
        let bad_num = "{\"cycle\": xyz}";
        assert!(parse_jsonl(bad_num).unwrap_err().contains("bad numeric"));
        let torn = "{\"cycle\": 5, \"tags\": [1, 2";
        assert!(parse_jsonl(torn).unwrap_err().contains("line 1"));
    }

    #[test]
    fn parser_is_forward_compatible_with_schema_growth() {
        // A line from a hypothetical future schema: unknown scalar and
        // nested fields, a known field buried between them, and one
        // known field (`retired`) absent entirely.
        let future = "{\"schema\": 9, \"phases\": {\"fetch\": 10, \"tags\": \"[a]\"}, \
                      \"cycle\": 4096, \"hist\": [1, 2, 3], \"note\": \"ok\"}";
        let parsed = parse_jsonl(future).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].cycle, 4096);
        assert_eq!(parsed[0].retired, 0);
        // A line from an older schema missing newer fields still parses.
        let old = "{\"cycle\": 100, \"retired\": 42}";
        let parsed = parse_jsonl(old).unwrap();
        assert_eq!((parsed[0].cycle, parsed[0].retired), (100, 42));
    }

    #[test]
    fn summary_renders_table_and_sparkline() {
        let mut log = TelemetryLog::default();
        for i in 1..=4u64 {
            log.record(TelemetryInputs {
                cycle: i * 1000,
                retired: i * i * 300,
                ..TelemetryInputs::default()
            });
        }
        let s = summarize(log.samples());
        assert!(s.contains("cycle"), "{s}");
        assert!(s.contains("IPC over time:"), "{s}");
        assert!(s.contains("4 samples over 4000 cycles"), "{s}");
        // The sparkline rises with the rising IPC.
        let spark = s.lines().last().unwrap();
        assert!(spark.contains('█'), "{s}");
        assert_eq!(summarize(&[]), "no telemetry samples\n");
    }

    #[test]
    fn sparkline_handles_flat_and_empty_input() {
        assert_eq!(render_sparkline(&[]), "");
        assert_eq!(render_sparkline(&[0.0, 0.0]), "▁▁");
        assert_eq!(render_sparkline(&[1.0, 1.0]).chars().count(), 2);
    }
}
