//! A tiny checked cursor over `&[u64]` snapshot words.
//!
//! The same pattern (deliberately duplicated to avoid a cross-crate
//! dependency) appears in `crisp-sim`, `crisp-mem` and `crisp-uarch`.

/// A bounds-checked reader over snapshot words with a context label for
/// error messages.
pub(crate) struct Reader<'a> {
    words: &'a [u64],
    pos: usize,
    ctx: &'static str,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(words: &'a [u64], ctx: &'static str) -> Reader<'a> {
        Reader { words, pos: 0, ctx }
    }

    pub(crate) fn u64(&mut self) -> Result<u64, String> {
        let w = self
            .words
            .get(self.pos)
            .copied()
            .ok_or_else(|| format!("{} snapshot: truncated at word {}", self.ctx, self.pos))?;
        self.pos += 1;
        Ok(w)
    }

    pub(crate) fn usize(&mut self) -> Result<usize, String> {
        let w = self.u64()?;
        usize::try_from(w).map_err(|_| format!("{} snapshot: {w} overflows usize", self.ctx))
    }

    pub(crate) fn bool(&mut self) -> Result<bool, String> {
        match self.u64()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(format!("{} snapshot: bad flag {v}", self.ctx)),
        }
    }

    /// A count that prefixes per-item payloads: bounding it by the words
    /// remaining rejects forged lengths before any allocation.
    pub(crate) fn count(&mut self) -> Result<usize, String> {
        let n = self.usize()?;
        if n > self.words.len() - self.pos {
            return Err(format!(
                "{} snapshot: count {n} exceeds remaining input",
                self.ctx
            ));
        }
        Ok(n)
    }

    pub(crate) fn opt_u64(&mut self) -> Result<Option<u64>, String> {
        let present = self.bool()?;
        let v = self.u64()?;
        Ok(present.then_some(v))
    }

    pub(crate) fn finish(self) -> Result<(), String> {
        if self.pos != self.words.len() {
            return Err(format!(
                "{} snapshot: {} trailing words",
                self.ctx,
                self.words.len() - self.pos
            ));
        }
        Ok(())
    }
}

/// Appends `(present, value)` (the dual of [`Reader::opt_u64`]).
pub(crate) fn push_opt_u64(out: &mut Vec<u64>, v: Option<u64>) {
    out.push(u64::from(v.is_some()));
    out.push(v.unwrap_or(0));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_back_in_order() {
        let mut w = vec![7u64, 3, 1];
        push_opt_u64(&mut w, Some(9));
        push_opt_u64(&mut w, None);
        let mut r = Reader::new(&w, "test");
        assert_eq!(r.u64().unwrap(), 7);
        assert_eq!(r.usize().unwrap(), 3);
        assert!(r.bool().unwrap());
        assert_eq!(r.opt_u64().unwrap(), Some(9));
        assert_eq!(r.opt_u64().unwrap(), None);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_and_trailing_words_are_rejected() {
        let mut r = Reader::new(&[], "test");
        assert!(r.u64().unwrap_err().contains("truncated"));
        let mut r = Reader::new(&[2], "test");
        assert!(r.bool().unwrap_err().contains("bad flag"));
        let mut r = Reader::new(&[100, 0], "test");
        assert!(r.count().unwrap_err().contains("exceeds remaining"));
        let r = Reader::new(&[1], "test");
        assert!(r.finish().unwrap_err().contains("trailing"));
    }
}
