//! Per-PC stall attribution: every ROB-head stall cycle is charged to the
//! blocking instruction's PC and a stall class, PMU/PEBS-style — the
//! simulated analogue of the profiling evidence CRISP's Section 3.2
//! classifier consumes.

use crate::wcodec::Reader;
use std::collections::HashMap;

/// Why the ROB head could not retire this cycle (or, for
/// [`StallClass::Frontend`], why the ROB was empty).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StallClass {
    /// Head is a load served by the L1 (includes store-forwarded loads).
    LoadL1,
    /// Head is a load served by the LLC.
    LoadLlc,
    /// Head is a load served by DRAM (an LLC miss).
    LoadDram,
    /// Head is a store draining.
    Store,
    /// Head is a mispredicted branch (unissued or resolving).
    BranchMispredict,
    /// Head is waiting for operands or a functional unit, or executing a
    /// non-memory operation.
    Fu,
    /// The ROB was empty: the frontend starved the backend. Charged to the
    /// next PC fetch will deliver; *not* part of the ROB-head stall total.
    Frontend,
}

/// Every class, in report-column order.
pub const STALL_CLASSES: [StallClass; 7] = [
    StallClass::LoadL1,
    StallClass::LoadLlc,
    StallClass::LoadDram,
    StallClass::Store,
    StallClass::BranchMispredict,
    StallClass::Fu,
    StallClass::Frontend,
];

impl StallClass {
    /// Column index in a per-PC row.
    pub fn index(self) -> usize {
        match self {
            StallClass::LoadL1 => 0,
            StallClass::LoadLlc => 1,
            StallClass::LoadDram => 2,
            StallClass::Store => 3,
            StallClass::BranchMispredict => 4,
            StallClass::Fu => 5,
            StallClass::Frontend => 6,
        }
    }

    /// Short column label.
    pub fn label(self) -> &'static str {
        match self {
            StallClass::LoadL1 => "load-l1",
            StallClass::LoadLlc => "load-llc",
            StallClass::LoadDram => "load-dram",
            StallClass::Store => "store",
            StallClass::BranchMispredict => "br-misp",
            StallClass::Fu => "fu",
            StallClass::Frontend => "frontend",
        }
    }
}

/// One PC's row in a top-K report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StallRow {
    /// The charged program counter.
    pub pc: u64,
    /// Cycles per class, indexed by [`StallClass::index`].
    pub cycles: [u64; 7],
    /// Backend cycles (all classes except frontend).
    pub backend: u64,
}

/// The per-PC stall-attribution table.
///
/// Invariant (asserted by the engine's conservation test): the sum of all
/// backend-class cycles equals the engine's measured
/// `rob_head_stall_cycles` exactly — attribution never invents or loses a
/// cycle. Frontend (ROB-empty) cycles are tallied separately.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StallTable {
    rows: HashMap<u64, [u64; 7]>,
}

impl StallTable {
    /// Charges one stall cycle to `pc` under `class`.
    #[inline]
    pub fn charge(&mut self, pc: u64, class: StallClass) {
        self.rows.entry(pc).or_default()[class.index()] += 1;
    }

    /// Cycles charged to backend classes (everything except frontend):
    /// must equal the engine's ROB-head stall counter.
    pub fn backend_cycles(&self) -> u64 {
        self.rows.values().map(|r| r[..6].iter().sum::<u64>()).sum()
    }

    /// Cycles charged to the frontend (ROB-empty) class.
    pub fn frontend_cycles(&self) -> u64 {
        self.rows.values().map(|r| r[6]).sum()
    }

    /// Number of distinct charged PCs.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether nothing has been charged.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Cycles charged to one PC, per class.
    pub fn row(&self, pc: u64) -> Option<[u64; 7]> {
        self.rows.get(&pc).copied()
    }

    /// The `k` PCs with the most backend stall cycles, descending (ties
    /// broken by ascending PC so the report is deterministic).
    pub fn top_k(&self, k: usize) -> Vec<StallRow> {
        let mut rows: Vec<StallRow> = self
            .rows
            .iter()
            .map(|(&pc, &cycles)| StallRow {
                pc,
                cycles,
                backend: cycles[..6].iter().sum(),
            })
            .collect();
        rows.sort_by(|a, b| b.backend.cmp(&a.backend).then(a.pc.cmp(&b.pc)));
        rows.truncate(k);
        rows
    }

    /// Renders the top-K delinquent-PC report as an aligned text table.
    pub fn render_top_k(&self, k: usize) -> String {
        let rows = self.top_k(k);
        let backend_total = self.backend_cycles().max(1);
        let mut out = String::from("      pc    stall-cycles  share  ");
        for c in &STALL_CLASSES[..6] {
            out.push_str(&format!("{:>10}", c.label()));
        }
        out.push('\n');
        for r in &rows {
            out.push_str(&format!(
                "{:>8}  {:>14}  {:>4.1}%  ",
                format!("{:#x}", r.pc),
                r.backend,
                100.0 * r.backend as f64 / backend_total as f64
            ));
            for i in 0..6 {
                out.push_str(&format!("{:>10}", r.cycles[i]));
            }
            out.push('\n');
        }
        if self.frontend_cycles() > 0 {
            out.push_str(&format!(
                "frontend (ROB-empty) cycles: {}\n",
                self.frontend_cycles()
            ));
        }
        out
    }

    /// Serialises the table (sorted by PC, so equal tables encode
    /// identically) for checkpointing.
    pub fn snapshot_words(&self) -> Vec<u64> {
        let mut pcs: Vec<u64> = self.rows.keys().copied().collect();
        pcs.sort_unstable();
        let mut w = vec![pcs.len() as u64];
        for pc in pcs {
            w.push(pc);
            w.extend_from_slice(&self.rows[&pc]);
        }
        w
    }

    /// Restores a snapshot produced by [`StallTable::snapshot_words`].
    ///
    /// # Errors
    ///
    /// Returns a message if the words are malformed.
    pub fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
        let mut r = Reader::new(words, "stall-table");
        let n = r.count()?;
        self.rows.clear();
        for _ in 0..n {
            let pc = r.u64()?;
            let mut cycles = [0u64; 7];
            for c in &mut cycles {
                *c = r.u64()?;
            }
            if self.rows.insert(pc, cycles).is_some() {
                return Err(format!("stall-table snapshot: duplicate pc {pc:#x}"));
            }
        }
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_sum_and_rank() {
        let mut t = StallTable::default();
        for _ in 0..5 {
            t.charge(0x40, StallClass::LoadDram);
        }
        t.charge(0x40, StallClass::Fu);
        for _ in 0..3 {
            t.charge(0x44, StallClass::Store);
        }
        t.charge(0x48, StallClass::Frontend);
        assert_eq!(t.backend_cycles(), 9);
        assert_eq!(t.frontend_cycles(), 1);
        let top = t.top_k(2);
        assert_eq!(top[0].pc, 0x40);
        assert_eq!(top[0].backend, 6);
        assert_eq!(top[0].cycles[StallClass::LoadDram.index()], 5);
        assert_eq!(top[1].pc, 0x44);
        let report = t.render_top_k(2);
        assert!(report.contains("0x40"), "{report}");
        assert!(
            report.contains("frontend (ROB-empty) cycles: 1"),
            "{report}"
        );
    }

    #[test]
    fn snapshot_round_trips_and_rejects_garbage() {
        let mut t = StallTable::default();
        t.charge(0x10, StallClass::LoadLlc);
        t.charge(0x20, StallClass::BranchMispredict);
        t.charge(0x20, StallClass::BranchMispredict);
        let w = t.snapshot_words();
        let mut fresh = StallTable::default();
        fresh.restore_words(&w).unwrap();
        assert_eq!(fresh, t);
        assert!(fresh.restore_words(&w[..w.len() - 1]).is_err());
        let mut trailing = w.clone();
        trailing.push(0);
        assert!(fresh.restore_words(&trailing).is_err());
        // Duplicate PCs are rejected.
        let mut dup = vec![2u64];
        dup.push(7);
        dup.extend_from_slice(&[1, 0, 0, 0, 0, 0, 0]);
        dup.push(7);
        dup.extend_from_slice(&[0, 1, 0, 0, 0, 0, 0]);
        assert!(fresh.restore_words(&dup).unwrap_err().contains("duplicate"));
    }

    #[test]
    fn ties_break_by_pc() {
        let mut t = StallTable::default();
        t.charge(0x30, StallClass::Fu);
        t.charge(0x20, StallClass::Fu);
        let top = t.top_k(2);
        assert_eq!(top[0].pc, 0x20);
        assert_eq!(top[1].pc, 0x30);
    }
}
