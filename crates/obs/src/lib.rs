//! # crisp-obs
//!
//! The observability layer of the CRISP reproduction: a pipeline *flight
//! recorder* (fixed-capacity ring buffer of per-instruction lifecycle
//! events, exportable as a Kanata/Konata pipeline-viewer trace), periodic
//! *interval telemetry* (IPC, occupancies, MSHR pressure, MLP, MPKI, miss
//! rates, critical-issue mix), and a per-PC *stall-attribution* table that
//! charges every ROB-head stall cycle to the blocking instruction's PC and
//! stall class.
//!
//! The crate sits *below* `crisp-sim` in the dependency graph and holds no
//! dependencies of its own: the engine records into these types, and the
//! harness/bench/CLI layers render or persist them. PCs are plain `u64`
//! here so the crate stays free-standing.
//!
//! All persistent state (`Tracer`, `StallTable`, `TelemetryLog`) supports
//! the workspace-wide word-vector snapshot protocol (`snapshot_words` /
//! `restore_words`), so checkpoint/restore and the `--audit-restore`
//! byte-identity proof cover observability state exactly like machine
//! state.
//!
//! ## Example
//!
//! ```
//! use crisp_obs::{EventKind, Tracer};
//! let mut t = Tracer::ring(16);
//! t.record(5, 0, 0x40, EventKind::Fetch, None);
//! assert_eq!(t.events().len(), 1);
//! assert!(Tracer::Off.events().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hostprof;
mod kanata;
mod recorder;
mod spans;
mod stall;
mod summarize;
mod telemetry;
mod wcodec;

pub use hostprof::{HostProf, HostProfReport, HostProfState, Phase, PHASE_COUNT, PHASE_NAMES};
pub use kanata::{render_kanata, TraceFilter, KANATA_HEADER};
pub use recorder::{EventKind, FillLevel, FlightRecorder, TraceEvent, Tracer};
pub use spans::{render_spans, SpanRec};
pub use stall::{StallClass, StallRow, StallTable, STALL_CLASSES};
pub use summarize::{parse_jsonl, render_sparkline, summarize};
pub use telemetry::{TelemetryInputs, TelemetryLog, TelemetrySample, FIELD_NAMES, SAMPLE_FIELDS};
