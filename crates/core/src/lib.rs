//! # crisp-core
//!
//! The end-to-end CRISP feedback-driven-optimization pipeline (paper
//! Figure 5) and the experiment runner behind every figure reproduction:
//!
//! 1. **Profile** — run the workload's *train* input on the baseline core,
//!    collecting per-PC load and branch statistics (the simulated
//!    PMU/PEBS pass);
//! 2. **Classify** — pick delinquent loads and hard branches
//!    (`crisp-profile`, Section 3.2);
//! 3. **Trace & slice** — extract backward load/branch slices with
//!    register *and memory* dependencies (`crisp-slicer`, Section 3.3/3.4);
//! 4. **Filter** — keep each slice's critical path (Section 3.5);
//! 5. **Annotate** — merge slices under the critical-ratio budget into a
//!    [`CriticalityMap`] (the post-link rewriting stand-in);
//! 6. **Evaluate** — run the *ref* input on the baseline scheduler and on
//!    the CRISP scheduler with the map, and report both.
//!
//! The [`run_ibda`] runner trains the hardware IBDA baseline on the same
//! train window and evaluates it the same way, for the Figure 7
//! comparison.
//!
//! ## Example
//!
//! ```no_run
//! use crisp_core::{PipelineConfig, run_crisp_pipeline};
//!
//! let cfg = PipelineConfig::quick();
//! let result = run_crisp_pipeline("pointer_chase", &cfg).expect("known workload");
//! println!(
//!     "baseline IPC {:.3} -> CRISP IPC {:.3} ({:+.1}%)",
//!     result.baseline.ipc(),
//!     result.crisp.ipc(),
//!     result.crisp.speedup_over(&result.baseline)
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod faults;
mod pipeline;
mod report;

pub use error::CrispError;
pub use pipeline::{
    run_crisp_pipeline, run_ibda, run_ibda_many, IbdaResult, PipelineConfig, PipelineError,
    PipelineResult, SliceMode,
};
pub use report::{Coverage, Table};

// Re-export the pieces callers need to parameterise experiments.
pub use crisp_ibda::IbdaConfig;
pub use crisp_isa::ConfigError;
pub use crisp_profile::ClassifierConfig;
pub use crisp_sim::{DeadlockReport, SchedulerKind, SimConfig, SimError, SimResult};
pub use crisp_slicer::{CriticalityMap, FootprintReport, SliceConfig};
pub use crisp_workloads::{all_names, build, build_all, Input, UnknownWorkload, Workload};
