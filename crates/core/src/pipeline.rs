use crate::error::CrispError;
use crisp_emu::Emulator;
use crisp_ibda::{Ibda, IbdaConfig};
use crisp_isa::{ConfigError, Pc, Trace};
use crisp_profile::{
    amat_map, classify_branches, classify_loads, classify_slow_ops, ClassifierConfig,
    DelinquentLoad, HardBranch,
};
use crisp_sim::{SchedulerKind, SimConfig, SimResult, Simulator};
use crisp_slicer::{
    critical_path_filter, extract_slices, Annotator, CriticalityMap, DepGraph, FootprintReport,
    LatencyModel, Slice, SliceConfig,
};
use crisp_workloads::{build, Input, Workload};
use std::collections::{HashMap, HashSet};

/// Which slice families the pipeline tags (the Figure 8 ablation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SliceMode {
    /// Load slices only.
    LoadsOnly,
    /// Branch slices only.
    BranchesOnly,
    /// Both (the full CRISP configuration).
    #[default]
    Both,
}

/// Configuration of one pipeline run.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Instructions emulated for the profiling (train) window.
    pub train_instructions: u64,
    /// Instructions emulated for the evaluation (ref) window.
    pub eval_instructions: u64,
    /// Classifier thresholds (Section 3.2; Figure 10 sweeps
    /// `miss_contribution_threshold`).
    pub classifier: ClassifierConfig,
    /// Slice-extraction parameters.
    pub slice: SliceConfig,
    /// Critical-path keep fraction (Section 3.5).
    pub critical_path_fraction: f64,
    /// Annotation budget.
    pub annotator: Annotator,
    /// Which slice families to tag.
    pub mode: SliceMode,
    /// Also tag high-latency arithmetic (divides) and their slices — the
    /// paper's Section 6.1 extension (off by default, as in the paper).
    pub include_slow_ops: bool,
    /// Machine configuration (Table 1 unless sweeping).
    pub sim: SimConfig,
}

impl PipelineConfig {
    /// The paper's evaluation setup at full (multi-million-instruction)
    /// window sizes.
    pub fn paper() -> PipelineConfig {
        PipelineConfig {
            train_instructions: 1_000_000,
            eval_instructions: 2_000_000,
            classifier: ClassifierConfig::default(),
            slice: SliceConfig::default(),
            critical_path_fraction: 0.5,
            annotator: Annotator::default(),
            mode: SliceMode::Both,
            include_slow_ops: false,
            sim: SimConfig::skylake(),
        }
    }

    /// A fast configuration for tests and examples (hundreds of thousands
    /// of instructions).
    pub fn quick() -> PipelineConfig {
        PipelineConfig {
            train_instructions: 150_000,
            eval_instructions: 250_000,
            ..PipelineConfig::paper()
        }
    }

    /// Validates the whole pipeline configuration: its own knobs plus the
    /// nested classifier, slicer and machine configs. Zero-instruction
    /// train/eval windows are *valid* (they produce empty traces and
    /// degenerate-but-well-defined results).
    ///
    /// # Errors
    ///
    /// Returns the first rejected field, with nested configs reported
    /// under `classifier`, `slice` and `sim`.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.critical_path_fraction.is_finite()
            || !(0.0..=1.0).contains(&self.critical_path_fraction)
        {
            return Err(ConfigError::new(
                "critical_path_fraction",
                format!(
                    "keep fraction must be in [0, 1] (got {})",
                    self.critical_path_fraction
                ),
            ));
        }
        if !self.annotator.max_dynamic_ratio.is_finite()
            || !(0.0..=1.0).contains(&self.annotator.max_dynamic_ratio)
        {
            return Err(ConfigError::new(
                "annotator.max_dynamic_ratio",
                format!(
                    "critical-instruction budget must be in [0, 1] (got {})",
                    self.annotator.max_dynamic_ratio
                ),
            ));
        }
        self.classifier
            .validate()
            .map_err(|e| e.nested("classifier"))?;
        self.slice.validate().map_err(|e| e.nested("slice"))?;
        self.sim.validate().map_err(|e| e.nested("sim"))?;
        Ok(())
    }
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig::paper()
    }
}

/// Errors from the pipeline runner — an alias of the workspace-wide
/// [`CrispError`]; the historical name is kept for callers.
pub type PipelineError = CrispError;

/// Everything one pipeline run produces.
#[derive(Clone, Debug)]
pub struct PipelineResult {
    /// Workload name.
    pub name: &'static str,
    /// Profiling (train-input) run on the baseline core.
    pub profile: SimResult,
    /// Evaluation (ref-input) run, baseline scheduler, untagged binary.
    pub baseline: SimResult,
    /// Evaluation run, CRISP scheduler, tagged binary.
    pub crisp: SimResult,
    /// The classified delinquent loads (sorted by miss contribution).
    pub delinquent: Vec<DelinquentLoad>,
    /// The classified hard branches.
    pub hard_branches: Vec<HardBranch>,
    /// Raw (unfiltered) load slices — Figure 4's input.
    pub load_slices: Vec<Slice>,
    /// The final annotation.
    pub map: CriticalityMap,
    /// Static/dynamic footprint impact — Figure 12's input.
    pub footprint: FootprintReport,
}

impl PipelineResult {
    /// CRISP's IPC speedup over the baseline, in percent.
    pub fn speedup_pct(&self) -> f64 {
        self.crisp.speedup_over(&self.baseline)
    }

    /// Mean unfiltered dynamic load-slice length (Figure 4).
    pub fn mean_load_slice_len(&self) -> f64 {
        let with_instances: Vec<&Slice> = self
            .load_slices
            .iter()
            .filter(|s| s.instances > 0)
            .collect();
        if with_instances.is_empty() {
            return 0.0;
        }
        with_instances
            .iter()
            .map(|s| s.mean_dynamic_len)
            .sum::<f64>()
            / with_instances.len() as f64
    }
}

/// Traces a workload for `budget` instructions.
fn trace_workload(w: &Workload, budget: u64) -> Trace {
    Emulator::new(&w.program, w.memory.clone()).run(budget)
}

/// Per-PC dynamic execution counts of a trace (annotation budget input).
fn exec_counts(trace: &Trace) -> HashMap<Pc, u64> {
    let mut counts = HashMap::new();
    for rec in trace {
        *counts.entry(rec.pc).or_insert(0) += 1;
    }
    counts
}

/// Runs the full CRISP pipeline (profile → classify → slice → filter →
/// annotate → evaluate) for one workload.
///
/// # Errors
///
/// Returns [`PipelineError::UnknownWorkload`] for unregistered names.
pub fn run_crisp_pipeline(
    name: &str,
    cfg: &PipelineConfig,
) -> Result<PipelineResult, PipelineError> {
    cfg.validate()?;
    let train = build(name, Input::Train)?;
    let eval = build(name, Input::Ref)?;

    // (1) Profile on the train input with the baseline scheduler.
    let train_trace = trace_workload(&train, cfg.train_instructions);
    let mut profile_sim = cfg.sim.clone();
    profile_sim.scheduler = SchedulerKind::OldestReadyFirst;
    profile_sim.collect_pc_stats = true;
    let profile = Simulator::try_new(profile_sim)?.try_run(&train.program, &train_trace, None)?;

    // (2) Classify.
    let delinquent = classify_loads(&profile, &cfg.classifier);
    let hard_branches = classify_branches(&profile, &cfg.classifier);

    // (3) Slice.
    let graph = DepGraph::build(&train.program, &train_trace);
    let load_roots: Vec<Pc> = delinquent.iter().map(|d| d.pc).collect();
    let branch_roots: Vec<Pc> = hard_branches.iter().map(|b| b.pc).collect();
    let load_slices = extract_slices(
        &train.program,
        &train_trace,
        &graph,
        &load_roots,
        &cfg.slice,
    );
    let branch_slices = extract_slices(
        &train.program,
        &train_trace,
        &graph,
        &branch_roots,
        &cfg.slice,
    );

    // (4) Critical-path filter, (5) annotate under the budget. Slices are
    // already importance-ordered by the classifier.
    let model = LatencyModel::new(
        amat_map(&profile),
        f64::from(cfg.sim.memory.l1d_latency as u32),
    );
    let mut ordered: Vec<HashSet<Pc>> = Vec::new();
    if cfg.mode != SliceMode::BranchesOnly {
        for s in &load_slices {
            ordered.push(critical_path_filter(
                &train.program,
                s,
                &model,
                cfg.critical_path_fraction,
            ));
        }
    }
    if cfg.mode != SliceMode::LoadsOnly {
        for s in &branch_slices {
            ordered.push(critical_path_filter(
                &train.program,
                s,
                &model,
                cfg.critical_path_fraction,
            ));
        }
    }
    if cfg.include_slow_ops {
        // Section 6.1 extension: divides and their input slices.
        let slow_roots: Vec<Pc> = classify_slow_ops(&train.program, &train_trace, 0.002)
            .into_iter()
            .map(|s| s.pc)
            .collect();
        for s in extract_slices(
            &train.program,
            &train_trace,
            &graph,
            &slow_roots,
            &cfg.slice,
        ) {
            ordered.push(critical_path_filter(
                &train.program,
                &s,
                &model,
                cfg.critical_path_fraction,
            ));
        }
    }
    let counts = exec_counts(&train_trace);
    let map = cfg.annotator.annotate(&train.program, &ordered, &counts);
    let footprint = Annotator::footprint(&train.program, &map, &counts);

    // (6) Evaluate on the ref input. The annotation was built for this
    // very binary, so a length mismatch is a pipeline bug worth surfacing.
    if map.len() != eval.program.len() {
        return Err(PipelineError::Annotation(format!(
            "criticality map covers {} instructions but the eval binary has {}",
            map.len(),
            eval.program.len()
        )));
    }
    let eval_trace = trace_workload(&eval, cfg.eval_instructions);
    let mut eval_sim = cfg.sim.clone();
    eval_sim.collect_pc_stats = false;
    let baseline = Simulator::try_new(
        eval_sim
            .clone()
            .with_scheduler(SchedulerKind::OldestReadyFirst),
    )?
    .try_run(&eval.program, &eval_trace, None)?;
    let crisp = Simulator::try_new(eval_sim.with_scheduler(SchedulerKind::Crisp))?.try_run(
        &eval.program,
        &eval_trace,
        Some(map.as_slice()),
    )?;

    Ok(PipelineResult {
        name: train.name,
        profile,
        baseline,
        crisp,
        delinquent,
        hard_branches,
        load_slices,
        map,
        footprint,
    })
}

/// Result of an IBDA baseline run.
#[derive(Clone, Debug)]
pub struct IbdaResult {
    /// Workload name.
    pub name: &'static str,
    /// Evaluation run with the IBDA-learned criticality.
    pub result: SimResult,
    /// Number of instructions IBDA tagged.
    pub tagged: usize,
}

/// Trains IBDA on the train window (hardware-style online learning) and
/// evaluates on the ref input with the priority scheduler — the Figure 7
/// comparison baseline.
///
/// # Errors
///
/// Returns [`PipelineError::UnknownWorkload`] for unregistered names.
pub fn run_ibda(
    name: &str,
    ibda_config: IbdaConfig,
    cfg: &PipelineConfig,
) -> Result<IbdaResult, PipelineError> {
    run_ibda_many(name, &[ibda_config], cfg).map(|mut v| v.remove(0))
}

/// Like [`run_ibda`] for several IST configurations at once, sharing the
/// profiling run and the train/eval traces — the whole Figure 7 IBDA
/// column set in one pass.
///
/// # Errors
///
/// Returns [`PipelineError::UnknownWorkload`] for unregistered names.
pub fn run_ibda_many(
    name: &str,
    ibda_configs: &[IbdaConfig],
    cfg: &PipelineConfig,
) -> Result<Vec<IbdaResult>, PipelineError> {
    cfg.validate()?;
    let train = build(name, Input::Train)?;
    let eval = build(name, Input::Ref)?;

    // The hardware observes its own cache misses: profile once to learn
    // which loads miss at all (instance-level behaviour is frequency-
    // approximated inside the DLT).
    let train_trace = trace_workload(&train, cfg.train_instructions);
    let mut profile_sim = cfg.sim.clone();
    profile_sim.scheduler = SchedulerKind::OldestReadyFirst;
    profile_sim.collect_pc_stats = true;
    let profile = Simulator::try_new(profile_sim)?.try_run(&train.program, &train_trace, None)?;
    let missing: Vec<Pc> = profile
        .load_pc_stats
        .iter()
        .filter(|(_, s)| s.llc_misses > 0)
        .map(|(&pc, _)| pc)
        .collect();

    let eval_trace = trace_workload(&eval, cfg.eval_instructions);
    let mut eval_sim = cfg.sim.clone();
    eval_sim.collect_pc_stats = false;
    let sim = Simulator::try_new(eval_sim.with_scheduler(SchedulerKind::Crisp))?;

    ibda_configs
        .iter()
        .map(|&ibda_config| {
            let mut ibda = Ibda::new(ibda_config, &missing);
            ibda.train(&train.program, &train_trace);
            let map = ibda.criticality_map(eval.program.len());
            let tagged = map.iter().filter(|&&b| b).count();
            let result = sim.try_run(&eval.program, &eval_trace, Some(&map))?;
            Ok(IbdaResult {
                name: eval.name,
                result,
                tagged,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PipelineConfig {
        PipelineConfig {
            train_instructions: 60_000,
            eval_instructions: 80_000,
            ..PipelineConfig::paper()
        }
    }

    #[test]
    fn unknown_workload_is_an_error() {
        assert_eq!(
            run_crisp_pipeline("no_such_app", &tiny()).unwrap_err(),
            PipelineError::UnknownWorkload("no_such_app".into())
        );
        assert!(run_ibda("no_such_app", IbdaConfig::ist_1k(), &tiny()).is_err());
    }

    #[test]
    fn pipeline_config_validation_covers_nested_configs() {
        tiny().validate().expect("defaults are valid");

        let mut cfg = tiny();
        cfg.critical_path_fraction = 2.0;
        assert_eq!(cfg.validate().unwrap_err().field, "critical_path_fraction");

        let mut cfg = tiny();
        cfg.annotator.max_dynamic_ratio = -1.0;
        assert_eq!(
            cfg.validate().unwrap_err().field,
            "annotator.max_dynamic_ratio"
        );

        let mut cfg = tiny();
        cfg.classifier.llc_miss_ratio_threshold = 9.0;
        assert_eq!(cfg.validate().unwrap_err().field, "classifier");

        let mut cfg = tiny();
        cfg.slice.instances_per_root = 0;
        assert_eq!(cfg.validate().unwrap_err().field, "slice");

        let mut cfg = tiny();
        cfg.sim.rob_entries = 0;
        assert_eq!(cfg.validate().unwrap_err().field, "sim");
    }

    #[test]
    fn invalid_config_rejected_before_any_simulation() {
        let mut cfg = tiny();
        cfg.sim.rs_entries = cfg.sim.rob_entries + 1;
        let err = run_crisp_pipeline("pointer_chase", &cfg).unwrap_err();
        let PipelineError::Config(c) = err else {
            panic!("expected config error, got {err}");
        };
        assert_eq!(c.field, "sim");
        assert!(c.message.contains("RS cannot exceed ROB"));
    }

    #[test]
    fn zero_instruction_windows_complete_cleanly() {
        // The degenerate-but-valid edge: empty train and eval traces must
        // flow through classify/slice/annotate/evaluate without error.
        let cfg = PipelineConfig {
            train_instructions: 0,
            eval_instructions: 0,
            ..PipelineConfig::paper()
        };
        let r = run_crisp_pipeline("pointer_chase", &cfg).expect("empty windows are valid");
        assert_eq!(r.baseline.retired, 0);
        assert_eq!(r.crisp.retired, 0);
        assert_eq!(r.map.count(), 0);
        assert!(r.delinquent.is_empty());
    }

    #[test]
    fn pointer_chase_pipeline_finds_and_exploits_the_chase() {
        let r = run_crisp_pipeline("pointer_chase", &tiny()).expect("runs");
        assert!(
            !r.delinquent.is_empty(),
            "the node loads must classify as delinquent"
        );
        assert!(r.map.count() >= 1, "something must be tagged");
        assert!(
            r.footprint.dynamic_overhead_pct() >= 0.0 && r.footprint.static_overhead_pct() >= 0.0
        );
        assert!(
            r.speedup_pct() > 1.0,
            "CRISP should speed up pointer_chase: {:+.2}% (base {:.3}, crisp {:.3})",
            r.speedup_pct(),
            r.baseline.ipc(),
            r.crisp.ipc()
        );
        assert!(r.mean_load_slice_len() >= 1.0);
    }

    #[test]
    fn slice_mode_ablation_runs_all_modes() {
        for mode in [
            SliceMode::LoadsOnly,
            SliceMode::BranchesOnly,
            SliceMode::Both,
        ] {
            let cfg = PipelineConfig { mode, ..tiny() };
            let r = run_crisp_pipeline("memcached", &cfg).expect("runs");
            assert!(r.baseline.retired > 0 && r.crisp.retired > 0);
        }
    }

    #[test]
    fn ibda_runs_and_tags_something_on_mcf() {
        let r = run_ibda("mcf", IbdaConfig::ist_1k(), &tiny()).expect("runs");
        assert!(r.tagged > 0, "IBDA should tag the chase slice");
        assert!(r.result.retired > 0);
    }

    #[test]
    fn slow_op_extension_tags_divides_on_nab() {
        // nab's force block divides; the Section 6.1 extension should tag
        // at least as many instructions as the base configuration.
        let base = run_crisp_pipeline("nab", &tiny()).expect("runs");
        let cfg = PipelineConfig {
            include_slow_ops: true,
            ..tiny()
        };
        let ext = run_crisp_pipeline("nab", &cfg).expect("runs");
        assert!(ext.map.count() >= base.map.count());
        assert!(ext.baseline.retired > 0);
    }
}
