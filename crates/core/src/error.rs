//! The top-level error type of the CRISP pipeline: everything that can go
//! wrong between "workload name" and "speedup number", with enough context
//! for the CLI to print an actionable message and pick an exit code.

use crisp_emu::EmuError;
use crisp_isa::ConfigError;
use crisp_sim::SimError;
use crisp_workloads::UnknownWorkload;
use std::fmt;

/// Any failure of the end-to-end pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CrispError {
    /// The workload name is not registered.
    UnknownWorkload(String),
    /// A configuration was rejected by validation.
    Config(ConfigError),
    /// The functional emulator failed (wild jump, fuel exhaustion).
    Emulation(EmuError),
    /// The cycle simulator failed (deadlock, invariant violation).
    Simulation(SimError),
    /// The annotation stage produced an unusable criticality map.
    Annotation(String),
    /// A checkpoint could not be written, read or restored (torn file,
    /// fingerprint/version mismatch, or a snapshot that fails to apply).
    Checkpoint(String),
}

impl fmt::Display for CrispError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrispError::UnknownWorkload(n) => write!(f, "unknown workload: {n}"),
            CrispError::Config(e) => write!(f, "{e}"),
            CrispError::Emulation(e) => write!(f, "emulation failed: {e}"),
            CrispError::Simulation(e) => write!(f, "simulation failed: {e}"),
            CrispError::Annotation(m) => write!(f, "annotation failed: {m}"),
            CrispError::Checkpoint(m) => write!(f, "checkpoint failed: {m}"),
        }
    }
}

impl std::error::Error for CrispError {}

impl From<ConfigError> for CrispError {
    fn from(e: ConfigError) -> CrispError {
        CrispError::Config(e)
    }
}

impl From<UnknownWorkload> for CrispError {
    fn from(e: UnknownWorkload) -> CrispError {
        CrispError::UnknownWorkload(e.name)
    }
}

impl From<EmuError> for CrispError {
    fn from(e: EmuError) -> CrispError {
        CrispError::Emulation(e)
    }
}

impl From<SimError> for CrispError {
    fn from(e: SimError) -> CrispError {
        // A rejected SimConfig is a configuration problem, not a runtime
        // simulation failure; keep the distinction for exit codes.
        match e {
            SimError::Config(c) => CrispError::Config(c),
            other => CrispError::Simulation(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_config_errors_fold_into_config() {
        let e: CrispError = SimError::Config(ConfigError::new("rob_entries", "zero")).into();
        assert!(matches!(e, CrispError::Config(_)));
        let e: CrispError = SimError::CriticalityMapLength {
            expected: 3,
            actual: 5,
        }
        .into();
        assert!(matches!(e, CrispError::Simulation(_)));
    }

    #[test]
    fn registry_errors_fold_into_unknown_workload() {
        let e: CrispError = UnknownWorkload { name: "foo".into() }.into();
        assert_eq!(e, CrispError::UnknownWorkload("foo".into()));
    }

    #[test]
    fn display_is_prefixed_by_stage() {
        let e = CrispError::Emulation(EmuError::PcOutOfRange(7));
        assert!(e.to_string().starts_with("emulation failed:"));
        assert_eq!(
            CrispError::UnknownWorkload("foo".into()).to_string(),
            "unknown workload: foo"
        );
    }
}
