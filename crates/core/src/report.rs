use std::fmt;

/// A minimal aligned-text table for experiment reports (the figures binary
/// prints every reproduced table/figure through this).
///
/// # Example
///
/// ```
/// use crisp_core::Table;
/// let mut t = Table::new(vec!["workload", "IPC"]);
/// t.row(vec!["mcf".into(), format!("{:.3}", 0.412)]);
/// let s = t.to_string();
/// assert!(s.contains("workload"));
/// assert!(s.contains("0.412"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width mismatches header"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    write!(f, "  ")?;
                }
                // Left-align the first column, right-align the rest.
                if c == 0 {
                    write!(f, "{cell:<width$}", width = widths[c])?;
                } else {
                    write!(f, "{cell:>width$}", width = widths[c])?;
                }
            }
            writeln!(f)
        };
        print_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer-name".into(), "123.456".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('-'));
        // Right-aligned numeric column: both rows end at the same offset.
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_is_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
