use std::fmt;

/// How much of a sweep's cells actually completed — the salvage annotation
/// every figure carries when some workloads failed permanently. Renders as
/// an empty string when coverage is full, so complete reports stay
/// byte-identical to the pre-supervisor output.
///
/// # Example
///
/// ```
/// use crisp_core::Coverage;
/// assert_eq!(Coverage::new(15, 15).to_string(), "");
/// assert_eq!(
///     Coverage::new(13, 15).to_string(),
///     " [DEGRADED (13/15 workloads)]"
/// );
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Coverage {
    /// Cells that completed and contributed real numbers.
    pub completed: usize,
    /// Cells the sweep attempted.
    pub total: usize,
}

impl Coverage {
    /// Creates a coverage annotation for `completed` of `total` cells.
    pub fn new(completed: usize, total: usize) -> Coverage {
        Coverage { completed, total }
    }

    /// Whether every cell completed.
    pub fn is_full(&self) -> bool {
        self.completed >= self.total
    }
}

impl fmt::Display for Coverage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_full() {
            Ok(())
        } else {
            write!(
                f,
                " [DEGRADED ({}/{} workloads)]",
                self.completed, self.total
            )
        }
    }
}

/// A minimal aligned-text table for experiment reports (the figures binary
/// prints every reproduced table/figure through this).
///
/// # Example
///
/// ```
/// use crisp_core::Table;
/// let mut t = Table::new(vec!["workload", "IPC"]);
/// t.row(vec!["mcf".into(), format!("{:.3}", 0.412)]);
/// let s = t.to_string();
/// assert!(s.contains("workload"));
/// assert!(s.contains("0.412"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width mismatches header"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    write!(f, "  ")?;
                }
                // Left-align the first column, right-align the rest.
                if c == 0 {
                    write!(f, "{cell:<width$}", width = widths[c])?;
                } else {
                    write!(f, "{cell:>width$}", width = widths[c])?;
                }
            }
            writeln!(f)
        };
        print_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer-name".into(), "123.456".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('-'));
        // Right-aligned numeric column: both rows end at the same offset.
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_is_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn coverage_annotates_only_partial_sweeps() {
        assert!(Coverage::new(3, 3).is_full());
        assert_eq!(Coverage::new(3, 3).to_string(), "");
        let partial = Coverage::new(1, 4);
        assert!(!partial.is_full());
        assert_eq!(partial.to_string(), " [DEGRADED (1/4 workloads)]");
    }
}
