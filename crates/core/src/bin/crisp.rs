//! `crisp` — the command-line front end to the CRISP reproduction.
//!
//! ```text
//! crisp list
//! crisp trace <workload> [--ref] [-n INSTRS] [-o FILE]
//! crisp profile <workload> [-n INSTRS]
//! crisp simulate <workload> [--ref] [--scheduler crisp|oldest|random] [-n INSTRS]
//! crisp pipeline <workload> [--fast] [--loads-only|--branches-only]
//! crisp pipeview <workload> [--crisp] [-n INSTRS] [--from SEQ] [--len COUNT]
//! ```

use crisp_core::{
    build, run_crisp_pipeline, ClassifierConfig, Input, PipelineConfig, SchedulerKind, SimConfig,
    SliceMode, Table,
};
use crisp_emu::Emulator;
use crisp_profile::{classify_branches, classify_loads, ProfileSummary};
use crisp_sim::Simulator;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  crisp list\n  crisp trace <workload> [--ref] [-n INSTRS] [-o FILE]\n  \
         crisp profile <workload> [-n INSTRS]\n  \
         crisp simulate <workload> [--ref] [--scheduler crisp|oldest|random] [-n INSTRS]\n  \
         crisp pipeline <workload> [--fast] [--loads-only|--branches-only]\n  \
         crisp pipeview <workload> [--crisp] [-n INSTRS] [--from SEQ] [--len COUNT]"
    );
    ExitCode::from(2)
}

struct Args {
    positional: Vec<String>,
    flags: Vec<String>,
    n: u64,
    from: Option<u64>,
    len: Option<u64>,
    out: Option<String>,
    scheduler: SchedulerKind,
}

fn parse(args: &[String]) -> Option<Args> {
    let mut out = Args {
        positional: Vec::new(),
        flags: Vec::new(),
        n: 200_000,
        from: None,
        len: None,
        out: None,
        scheduler: SchedulerKind::OldestReadyFirst,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-n" => out.n = it.next()?.parse().ok()?,
            "--from" => out.from = Some(it.next()?.parse().ok()?),
            "--len" => out.len = Some(it.next()?.parse().ok()?),
            "-o" => out.out = Some(it.next()?.clone()),
            "--scheduler" => {
                out.scheduler = match it.next()?.as_str() {
                    "crisp" => SchedulerKind::Crisp,
                    "oldest" => SchedulerKind::OldestReadyFirst,
                    "random" => SchedulerKind::RandomReady,
                    _ => return None,
                }
            }
            f if f.starts_with("--") => out.flags.push(f.to_string()),
            p => out.positional.push(p.to_string()),
        }
    }
    Some(out)
}

fn input_of(args: &Args) -> Input {
    if args.flags.iter().any(|f| f == "--ref") {
        Input::Ref
    } else {
        Input::Train
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        return usage();
    };
    let Some(args) = parse(rest) else {
        return usage();
    };

    match cmd.as_str() {
        "list" => {
            let mut t = Table::new(vec!["workload", "reproduces"]);
            for name in crisp_core::all_names() {
                let w = build(name, Input::Train).expect("registered");
                t.row(vec![name.to_string(), w.description.to_string()]);
            }
            println!("{t}");
            ExitCode::SUCCESS
        }
        "trace" => {
            let Some(name) = args.positional.first() else {
                return usage();
            };
            let Some(w) = build(name, input_of(&args)) else {
                eprintln!("unknown workload: {name}");
                return ExitCode::FAILURE;
            };
            let trace = Emulator::new(&w.program, w.memory.clone()).run(args.n);
            let stats = trace.stats(&w.program);
            println!("{name}: {stats}");
            if let Some(path) = &args.out {
                if let Err(e) = trace.save(path) {
                    eprintln!("failed to write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("wrote {path} ({} records)", trace.len());
            }
            ExitCode::SUCCESS
        }
        "profile" => {
            let Some(name) = args.positional.first() else {
                return usage();
            };
            let Some(w) = build(name, Input::Train) else {
                eprintln!("unknown workload: {name}");
                return ExitCode::FAILURE;
            };
            let trace = Emulator::new(&w.program, w.memory.clone()).run(args.n);
            let mut cfg = SimConfig::skylake();
            cfg.collect_pc_stats = true;
            let res = Simulator::new(cfg).run(&w.program, &trace, None);
            let summary = ProfileSummary::from_result(&res);
            println!(
                "{name}: IPC {:.3}, load fraction {:.2}, LLC load MPKI {:.2}, branch MPKI {:.2}",
                summary.ipc,
                summary.load_fraction,
                res.llc_load_mpki(),
                res.branch_mpki()
            );
            let classifier = ClassifierConfig::default();
            let mut t = Table::new(vec!["load pc", "miss ratio", "AMAT", "MLP", "miss share"]);
            for d in classify_loads(&res, &classifier) {
                t.row(vec![
                    format!("{}", d.pc),
                    format!("{:.2}", d.llc_miss_ratio),
                    format!("{:.0}", d.amat),
                    format!("{:.1}", d.mlp),
                    format!("{:.2}", d.miss_contribution),
                ]);
            }
            println!("\ndelinquent loads:\n{t}");
            let mut t = Table::new(vec!["branch pc", "mispredict ratio", "execs"]);
            for b in classify_branches(&res, &classifier) {
                t.row(vec![
                    format!("{}", b.pc),
                    format!("{:.2}", b.mispredict_ratio),
                    format!("{}", b.execs),
                ]);
            }
            println!("hard branches:\n{t}");
            ExitCode::SUCCESS
        }
        "simulate" => {
            let Some(name) = args.positional.first() else {
                return usage();
            };
            let Some(w) = build(name, input_of(&args)) else {
                eprintln!("unknown workload: {name}");
                return ExitCode::FAILURE;
            };
            let trace = Emulator::new(&w.program, w.memory.clone()).run(args.n);
            let cfg = SimConfig::skylake().with_scheduler(args.scheduler);
            // A bare scheduler swap without annotation: criticality comes
            // from the pipeline; here everything-critical approximates it.
            let critical = vec![true; w.program.len()];
            let map = (args.scheduler == SchedulerKind::Crisp).then_some(critical.as_slice());
            let res = Simulator::new(cfg).run(&w.program, &trace, map);
            println!(
                "{name} [{:?}]: IPC {:.3} over {} cycles; ROB-head stalls {:.1}%, \
                 branch MPKI {:.2}, LLC load MPKI {:.2}",
                args.scheduler,
                res.ipc(),
                res.cycles,
                res.rob_head_stall_cycles as f64 / res.cycles.max(1) as f64 * 100.0,
                res.branch_mpki(),
                res.llc_load_mpki()
            );
            ExitCode::SUCCESS
        }
        "pipeview" => {
            let Some(name) = args.positional.first() else {
                return usage();
            };
            let Some(w) = build(name, Input::Train) else {
                eprintln!("unknown workload: {name}");
                return ExitCode::FAILURE;
            };
            let n = args.n.min(20_000);
            let trace = Emulator::new(&w.program, w.memory.clone()).run(n);
            let mut cfg = SimConfig::skylake();
            cfg.record_pipeview = true;
            cfg.collect_pc_stats = false;
            let use_crisp = args.flags.iter().any(|f| f == "--crisp");
            if use_crisp {
                cfg.scheduler = SchedulerKind::Crisp;
            }
            let critical = vec![true; w.program.len()];
            let map = use_crisp.then_some(critical.as_slice());
            let res = Simulator::new(cfg).run(&w.program, &trace, map);
            let from = args.from.unwrap_or(n / 2);
            let len = args.len.unwrap_or(40);
            println!(
                "{name} [{}] seq {from}..{} (f=fetch d=dispatch-wait i=issue ==execute .=await-retire r=retire)\n",
                if use_crisp { "CRISP" } else { "OOO" },
                from + len
            );
            print!("{}", res.pipeview.render(from, from + len));
            ExitCode::SUCCESS
        }
        "pipeline" => {
            let Some(name) = args.positional.first() else {
                return usage();
            };
            let mut cfg = if args.flags.iter().any(|f| f == "--fast") {
                PipelineConfig::quick()
            } else {
                PipelineConfig::paper()
            };
            if args.flags.iter().any(|f| f == "--loads-only") {
                cfg.mode = SliceMode::LoadsOnly;
            }
            if args.flags.iter().any(|f| f == "--branches-only") {
                cfg.mode = SliceMode::BranchesOnly;
            }
            match run_crisp_pipeline(name, &cfg) {
                Ok(r) => {
                    println!(
                        "{name}: baseline IPC {:.3} -> CRISP IPC {:.3} ({:+.2}%); \
                         {} delinquent loads, {} hard branches, {} tagged instructions \
                         ({:.1}% static, {:.2}% dynamic footprint overhead)",
                        r.baseline.ipc(),
                        r.crisp.ipc(),
                        r.speedup_pct(),
                        r.delinquent.len(),
                        r.hard_branches.len(),
                        r.map.count(),
                        r.map.static_ratio() * 100.0,
                        r.footprint.dynamic_overhead_pct()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
