//! Deterministic fault injection for robustness testing.
//!
//! CRISP's contract is that criticality hints are *advisory*: a corrupted,
//! stale or truncated annotation may cost performance but must never
//! affect correctness (the scheduler still only reorders ready
//! instructions). This module manufactures exactly those damaged inputs —
//! bit-flipped maps, tags remapped to random PCs, maps from a different
//! binary, traces cut off mid-flight — so the integration suite
//! (`tests/faults.rs`) can assert graceful degradation.
//!
//! All corruption is seeded and reproducible: a failing seed can be
//! replayed in a debugger.

use crisp_isa::Trace;
use crisp_slicer::CriticalityMap;

/// SplitMix64: a tiny deterministic generator for fault placement. Kept
/// local so corruption patterns cannot drift when the workspace RNG
/// changes.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Returns a copy of `map` with `flips` random bit positions toggled
/// (positions may repeat — exactly like independent upsets). An empty map
/// is returned unchanged.
pub fn flip_bits(map: &CriticalityMap, flips: usize, seed: u64) -> CriticalityMap {
    let mut out = map.clone();
    if map.is_empty() {
        return out;
    }
    let mut rng = SplitMix64(seed);
    for _ in 0..flips {
        out.toggle(rng.below(map.len()) as u32);
    }
    out
}

/// Returns a copy of `map` whose bits have been shuffled to random PCs
/// (a Fisher–Yates permutation): the same *number* of tags, all pointing
/// at the wrong instructions — the worst-case mis-annotation.
pub fn remap_pcs(map: &CriticalityMap, seed: u64) -> CriticalityMap {
    let mut bits = map.as_slice().to_vec();
    let mut rng = SplitMix64(seed);
    for i in (1..bits.len()).rev() {
        bits.swap(i, rng.below(i + 1));
    }
    CriticalityMap::from_bits(bits)
}

/// Returns `map` cut to its first `len` bits — a partially written
/// annotation file.
pub fn truncate_map(map: &CriticalityMap, len: usize) -> CriticalityMap {
    map.resized(len.min(map.len()))
}

/// Forces a map built for one binary onto another of `target_len`
/// instructions — the stale-profile scenario (the binary was recompiled,
/// the annotation was not). Tags beyond the target are dropped; missing
/// coverage is non-critical.
pub fn stale_map(donor: &CriticalityMap, target_len: usize) -> CriticalityMap {
    donor.resized(target_len)
}

/// Returns the first `len` records of `trace` — an emulation that died
/// mid-run (disk full, killed process).
pub fn truncate_trace(trace: &Trace, len: usize) -> Trace {
    let mut out = Trace::with_capacity(len.min(trace.len()));
    for &rec in trace.as_slice().iter().take(len) {
        out.push(rec);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_of(bits: &[bool]) -> CriticalityMap {
        CriticalityMap::from_bits(bits.to_vec())
    }

    #[test]
    fn flips_are_deterministic_and_bounded() {
        let m = map_of(&[false; 64]);
        let a = flip_bits(&m, 10, 7);
        let b = flip_bits(&m, 10, 7);
        assert_eq!(a, b, "same seed, same damage");
        assert_ne!(a, m, "10 flips on 64 zero bits must change something");
        assert_eq!(a.len(), m.len());
        let c = flip_bits(&m, 10, 8);
        assert_ne!(a, c, "different seed, different damage");
    }

    #[test]
    fn empty_map_survives_flips() {
        let m = CriticalityMap::new(0);
        assert_eq!(flip_bits(&m, 100, 1).len(), 0);
    }

    #[test]
    fn remap_preserves_tag_count() {
        let mut bits = vec![false; 100];
        for i in (0..100).step_by(7) {
            bits[i] = true;
        }
        let m = map_of(&bits);
        let shuffled = remap_pcs(&m, 42);
        assert_eq!(shuffled.count(), m.count());
        assert_eq!(shuffled.len(), m.len());
        assert_ne!(shuffled, m, "a 100-bit shuffle virtually never fixes");
    }

    #[test]
    fn truncation_never_grows() {
        let m = map_of(&[true; 10]);
        assert_eq!(truncate_map(&m, 3).len(), 3);
        assert_eq!(truncate_map(&m, 50).len(), 10);
        assert_eq!(truncate_map(&m, 0).len(), 0);
    }

    #[test]
    fn stale_map_matches_target_length() {
        let donor = map_of(&[true, true, true]);
        assert_eq!(stale_map(&donor, 5).len(), 5);
        assert_eq!(stale_map(&donor, 5).count(), 3);
        assert_eq!(stale_map(&donor, 2).len(), 2);
        assert_eq!(stale_map(&donor, 2).count(), 2);
    }

    #[test]
    fn trace_truncation() {
        let mut t = Trace::new();
        for pc in 0..10u32 {
            t.push(crisp_isa::DynInst::simple(pc, pc + 1));
        }
        assert_eq!(truncate_trace(&t, 4).len(), 4);
        assert_eq!(truncate_trace(&t, 99).len(), 10);
        assert_eq!(truncate_trace(&t, 0).len(), 0);
    }
}
