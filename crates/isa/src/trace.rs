use crate::{DynInst, Opcode, Program, Seq};
use std::fmt;

/// An in-memory execution trace: the retired dynamic instruction stream of
/// one program run.
///
/// Traces are produced by the functional emulator (`crisp-emu`), consumed
/// forward by the cycle simulator and profiler, and *backward* by the slice
/// extractor (paper Section 3.3).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    records: Vec<DynInst>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Creates an empty trace with reserved capacity.
    pub fn with_capacity(n: usize) -> Trace {
        Trace {
            records: Vec::with_capacity(n),
        }
    }

    /// Appends a record.
    #[inline]
    pub fn push(&mut self, rec: DynInst) {
        self.records.push(rec);
    }

    /// Number of dynamic instructions.
    #[inline]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record at dynamic position `seq`.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range.
    #[inline]
    pub fn record(&self, seq: Seq) -> &DynInst {
        &self.records[seq as usize]
    }

    /// The record at dynamic position `seq`, or `None` if out of range.
    #[inline]
    pub fn get(&self, seq: Seq) -> Option<&DynInst> {
        self.records.get(seq as usize)
    }

    /// Iterates forward over the records.
    pub fn iter(&self) -> std::slice::Iter<'_, DynInst> {
        self.records.iter()
    }

    /// The records as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[DynInst] {
        &self.records
    }

    /// Computes summary statistics of the trace against its program.
    pub fn stats(&self, program: &Program) -> TraceStats {
        let mut s = TraceStats {
            instructions: self.records.len() as u64,
            ..TraceStats::default()
        };
        for rec in &self.records {
            let inst = program.inst(rec.pc);
            match inst.op {
                Opcode::Load => s.loads += 1,
                Opcode::Store => s.stores += 1,
                Opcode::Branch(_) => {
                    s.cond_branches += 1;
                    if rec.taken {
                        s.taken_branches += 1;
                    }
                }
                op if op.is_ctrl() => s.other_ctrl += 1,
                _ => {}
            }
        }
        s
    }
}

impl Extend<DynInst> for Trace {
    fn extend<T: IntoIterator<Item = DynInst>>(&mut self, iter: T) {
        self.records.extend(iter);
    }
}

impl FromIterator<DynInst> for Trace {
    fn from_iter<T: IntoIterator<Item = DynInst>>(iter: T) -> Trace {
        Trace {
            records: Vec::from_iter(iter),
        }
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a DynInst;
    type IntoIter = std::slice::Iter<'a, DynInst>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

/// Instruction-mix summary of a [`Trace`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total dynamic instructions.
    pub instructions: u64,
    /// Dynamic loads.
    pub loads: u64,
    /// Dynamic stores.
    pub stores: u64,
    /// Dynamic conditional branches.
    pub cond_branches: u64,
    /// Taken conditional branches.
    pub taken_branches: u64,
    /// Other control transfers (jumps, calls, returns).
    pub other_ctrl: u64,
}

impl TraceStats {
    /// Fraction of dynamic instructions that are loads.
    pub fn load_ratio(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.loads as f64 / self.instructions as f64
        }
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} insts: {} loads, {} stores, {} cond-branches ({} taken), {} other-ctrl",
            self.instructions,
            self.loads,
            self.stores,
            self.cond_branches,
            self.taken_branches,
            self.other_ctrl
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AluOp, Cond, ProgramBuilder, Reg};

    fn loop_program() -> Program {
        let mut b = ProgramBuilder::new();
        let r1 = Reg::new(1);
        let r2 = Reg::new(2);
        b.li(r1, 2);
        let top = b.label();
        b.bind(top);
        b.load(r2, r1, 0, 8);
        b.store(r1, 8, r2, 8);
        b.alu_ri(AluOp::Sub, r1, r1, 1);
        b.branch(Cond::Ne, r1, Reg::ZERO, top);
        b.halt();
        b.build()
    }

    fn sample_trace() -> Trace {
        // Hand-rolled dynamic stream for two iterations of loop_program.
        let mut t = Trace::new();
        t.push(DynInst::simple(0, 1));
        for iter in 0..2u32 {
            t.push(DynInst {
                pc: 1,
                next_pc: 2,
                addr: 0x100,
                taken: false,
            });
            t.push(DynInst {
                pc: 2,
                next_pc: 3,
                addr: 0x108,
                taken: false,
            });
            t.push(DynInst::simple(3, 4));
            let last = iter == 1;
            t.push(DynInst {
                pc: 4,
                next_pc: if last { 5 } else { 1 },
                addr: 0,
                taken: !last,
            });
        }
        t.push(DynInst::simple(5, 6));
        t
    }

    #[test]
    fn stats_count_instruction_mix() {
        let p = loop_program();
        let t = sample_trace();
        let s = t.stats(&p);
        assert_eq!(s.instructions, 10);
        assert_eq!(s.loads, 2);
        assert_eq!(s.stores, 2);
        assert_eq!(s.cond_branches, 2);
        assert_eq!(s.taken_branches, 1);
        assert_eq!(s.other_ctrl, 0);
        assert!((s.load_ratio() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn collect_and_iterate() {
        let t: Trace = (0..5).map(|i| DynInst::simple(i, i + 1)).collect();
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
        assert_eq!(t.record(3).pc, 3);
        assert_eq!(t.get(99), None);
        let pcs: Vec<u32> = t.iter().map(|d| d.pc).collect();
        assert_eq!(pcs, vec![0, 1, 2, 3, 4]);
        let borrowed: Vec<u32> = (&t).into_iter().map(|d| d.pc).collect();
        assert_eq!(borrowed, pcs);
    }

    #[test]
    fn extend_appends() {
        let mut t = Trace::with_capacity(4);
        t.extend((0..3).map(|i| DynInst::simple(i, i + 1)));
        assert_eq!(t.len(), 3);
        assert_eq!(t.as_slice().len(), 3);
    }

    #[test]
    fn empty_trace_stats_are_zero() {
        let p = loop_program();
        let s = Trace::new().stats(&p);
        assert_eq!(s.instructions, 0);
        assert_eq!(s.load_ratio(), 0.0);
        assert!(!s.to_string().is_empty());
    }
}

// --- binary serialization -------------------------------------------------

/// Magic bytes of the binary trace format.
const TRACE_MAGIC: &[u8; 4] = b"CTRC";
/// Current format version.
const TRACE_VERSION: u32 = 1;

impl Trace {
    /// Writes the trace in the compact binary format (17 bytes per record
    /// plus a 16-byte header). Pass `&mut writer` to keep using the writer
    /// afterwards.
    ///
    /// The paper's FDO flow materialises traces between the tracing and
    /// slicing steps (Section 4.1, ~1.6 GB compressed per 100 M
    /// instructions); this format serves the same role for tooling built
    /// on this crate.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        w.write_all(TRACE_MAGIC)?;
        w.write_all(&TRACE_VERSION.to_le_bytes())?;
        w.write_all(&(self.records.len() as u64).to_le_bytes())?;
        for r in &self.records {
            w.write_all(&r.pc.to_le_bytes())?;
            w.write_all(&r.next_pc.to_le_bytes())?;
            w.write_all(&r.addr.to_le_bytes())?;
            w.write_all(&[u8::from(r.taken)])?;
        }
        Ok(())
    }

    /// Reads a trace previously written by [`Trace::write_to`]. Pass
    /// `&mut reader` to keep using the reader afterwards.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on a bad magic, unsupported version, or
    /// truncated stream, and propagates I/O errors.
    pub fn read_from<R: std::io::Read>(mut r: R) -> std::io::Result<Trace> {
        use std::io::{Error, ErrorKind};
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != TRACE_MAGIC {
            return Err(Error::new(ErrorKind::InvalidData, "not a CRISP trace"));
        }
        let mut word = [0u8; 4];
        r.read_exact(&mut word)?;
        let version = u32::from_le_bytes(word);
        if version != TRACE_VERSION {
            return Err(Error::new(
                ErrorKind::InvalidData,
                format!("unsupported trace version {version}"),
            ));
        }
        let mut dword = [0u8; 8];
        r.read_exact(&mut dword)?;
        let count = u64::from_le_bytes(dword);
        let mut records = Vec::with_capacity(count.min(1 << 24) as usize);
        let mut rec = [0u8; 17];
        for _ in 0..count {
            r.read_exact(&mut rec)?;
            records.push(DynInst {
                pc: u32::from_le_bytes(rec[0..4].try_into().expect("4 bytes")),
                next_pc: u32::from_le_bytes(rec[4..8].try_into().expect("4 bytes")),
                addr: u64::from_le_bytes(rec[8..16].try_into().expect("8 bytes")),
                taken: rec[16] != 0,
            });
        }
        Ok(Trace { records })
    }

    /// Saves the trace to a file (see [`Trace::write_to`]).
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write errors.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let f = std::fs::File::create(path)?;
        self.write_to(std::io::BufWriter::new(f))
    }

    /// Loads a trace from a file (see [`Trace::read_from`]).
    ///
    /// # Errors
    ///
    /// Propagates file-open errors and format errors.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Trace> {
        let f = std::fs::File::open(path)?;
        Trace::read_from(std::io::BufReader::new(f))
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;

    fn sample() -> Trace {
        (0..100u32)
            .map(|i| DynInst {
                pc: i,
                next_pc: i + 1,
                addr: u64::from(i) * 0x1001,
                taken: i % 3 == 0,
            })
            .collect()
    }

    #[test]
    fn round_trip_through_memory() {
        let t = sample();
        let mut buf = Vec::new();
        t.write_to(&mut buf).expect("write");
        assert_eq!(buf.len(), 16 + 17 * t.len());
        let back = Trace::read_from(buf.as_slice()).expect("read");
        assert_eq!(t, back);
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = Trace::new();
        let mut buf = Vec::new();
        t.write_to(&mut buf).expect("write");
        assert_eq!(Trace::read_from(buf.as_slice()).expect("read"), t);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = Trace::read_from(&b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut buf = Vec::new();
        sample().write_to(&mut buf).expect("write");
        buf[4] = 99;
        let err = Trace::read_from(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let mut buf = Vec::new();
        sample().write_to(&mut buf).expect("write");
        buf.truncate(buf.len() - 5);
        assert!(Trace::read_from(buf.as_slice()).is_err());
    }

    #[test]
    fn file_save_load_round_trip() {
        let t = sample();
        let path = std::env::temp_dir().join("crisp_trace_test.ctrc");
        t.save(&path).expect("save");
        let back = Trace::load(&path).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(t, back);
    }
}
