//! # crisp-isa
//!
//! The mini-ISA underpinning the CRISP reproduction: architectural
//! registers, opcodes with functional-unit classes and latencies, static
//! [`Program`]s, and the compact dynamic-instruction records
//! ([`DynInst`]) that form execution traces.
//!
//! The ISA is a load/store RISC machine with x86-flavoured *variable
//! instruction byte sizes* so that the one-byte CRISP `critical` prefix has a
//! measurable effect on code footprint and instruction-cache behaviour
//! (paper Section 5.7 / Figure 12).
//!
//! ## Example
//!
//! ```
//! use crisp_isa::{ProgramBuilder, Reg, Cond};
//!
//! // A loop that sums a 16-element array.
//! let mut b = ProgramBuilder::new();
//! let ptr = Reg::new(1);
//! let acc = Reg::new(2);
//! let cnt = Reg::new(3);
//! let tmp = Reg::new(4);
//! b.li(ptr, 0x1000);
//! b.li(acc, 0);
//! b.li(cnt, 16);
//! let top = b.label();
//! b.bind(top);
//! b.load(tmp, ptr, 0, 8);
//! b.alu_rr(crisp_isa::AluOp::Add, acc, acc, tmp);
//! b.alu_ri(crisp_isa::AluOp::Add, ptr, ptr, 8);
//! b.alu_ri(crisp_isa::AluOp::Sub, cnt, cnt, 1);
//! b.branch(Cond::Ne, cnt, Reg::ZERO, top);
//! b.halt();
//! let program = b.build();
//! assert_eq!(program.len(), 9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dyninst;
mod error;
mod inst;
mod op;
mod program;
mod reg;
mod trace;

pub use dyninst::{DynInst, Seq};
pub use error::ConfigError;
pub use inst::{CtrlKind, MemWidth, StaticInst};
pub use op::{AluOp, Cond, FuClass, Opcode};
pub use program::{Layout, Pc, Program, ProgramBuilder, ProgramError};
pub use reg::Reg;
pub use trace::{Trace, TraceStats};
