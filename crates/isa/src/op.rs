use std::fmt;

/// The functional-unit class an instruction executes on.
///
/// Port counts come from Table 1 of the paper: 4 ALU, 2 load, 1 store.
/// Long-latency arithmetic (`Mul`, `Div`, floating point) shares the ALU
/// ports, as on Skylake, but with their own latencies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// Simple and complex arithmetic, branches.
    Alu,
    /// Load-port operations (address generation + cache access).
    Load,
    /// Store-port operations.
    Store,
}

impl fmt::Display for FuClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuClass::Alu => "alu",
            FuClass::Load => "load",
            FuClass::Store => "store",
        };
        f.write_str(s)
    }
}

/// Integer ALU operation selector for [`Opcode::Alu`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (modulo 64).
    Shl,
    /// Logical shift right (modulo 64).
    Shr,
    /// Set-if-less-than, unsigned: `dst = (a < b) as u64`.
    Sltu,
    /// Set-if-less-than, signed.
    Slt,
    /// Copy of the first source (plus immediate).
    Mov,
}

/// Branch condition, evaluated over two register sources.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Cond {
    /// `a == b`
    Eq,
    /// `a != b`
    Ne,
    /// `a < b`, signed.
    Lt,
    /// `a >= b`, signed.
    Ge,
    /// `a < b`, unsigned.
    Ltu,
    /// `a >= b`, unsigned.
    Geu,
}

impl Cond {
    /// Evaluates the condition on two operand values.
    ///
    /// # Example
    ///
    /// ```
    /// use crisp_isa::Cond;
    /// assert!(Cond::Lt.eval(u64::MAX, 0)); // -1 < 0 signed
    /// assert!(!Cond::Ltu.eval(u64::MAX, 0));
    /// ```
    #[inline]
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => (a as i64) < (b as i64),
            Cond::Ge => (a as i64) >= (b as i64),
            Cond::Ltu => a < b,
            Cond::Geu => a >= b,
        }
    }

    /// The condition with inverted truth value.
    #[inline]
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Ge => Cond::Lt,
            Cond::Ltu => Cond::Geu,
            Cond::Geu => Cond::Ltu,
        }
    }
}

/// Instruction opcode.
///
/// Latencies are fixed per opcode following the paper's Section 3.5
/// ("we assign a fixed latency according to the processor implementation")
/// with values taken from Skylake instruction tables; load latency is
/// dynamic (cache hierarchy) and the value reported here is only the
/// address-generation component.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// Integer ALU operation; 1-cycle latency.
    Alu(AluOp),
    /// Integer multiply; 3-cycle latency.
    Mul,
    /// Integer divide; 20-cycle latency, unpipelined.
    Div,
    /// Floating-point add/sub; 4-cycle latency.
    FAdd,
    /// Floating-point multiply; 4-cycle latency.
    FMul,
    /// Fused multiply-add; 4-cycle latency.
    FMa,
    /// Floating-point divide; 14-cycle latency, unpipelined.
    FDiv,
    /// Memory load: `dst = mem[src0 + imm]`.
    Load,
    /// Memory store: `mem[src0 + imm] = src1`.
    Store,
    /// Conditional direct branch on two register operands.
    Branch(Cond),
    /// Unconditional direct jump.
    Jump,
    /// Indirect jump through a register (e.g. dispatch tables).
    JumpInd,
    /// Direct call; writes the return address to [`crate::Reg::LINK`].
    Call,
    /// Return through the link register.
    Ret,
    /// No operation (used for padding / alignment studies).
    Nop,
    /// Terminates execution.
    Halt,
}

impl Opcode {
    /// The functional-unit class this opcode occupies.
    #[inline]
    pub fn fu_class(self) -> FuClass {
        match self {
            Opcode::Load => FuClass::Load,
            Opcode::Store => FuClass::Store,
            _ => FuClass::Alu,
        }
    }

    /// Fixed execution latency in cycles (for loads: address-generation
    /// only; the cache hierarchy adds the access latency dynamically).
    #[inline]
    pub fn latency(self) -> u32 {
        match self {
            Opcode::Alu(_) | Opcode::Nop | Opcode::Halt => 1,
            Opcode::Branch(_) | Opcode::Jump | Opcode::JumpInd | Opcode::Call | Opcode::Ret => 1,
            Opcode::Mul => 3,
            Opcode::Div => 20,
            Opcode::FAdd => 4,
            Opcode::FMul => 4,
            Opcode::FMa => 4,
            Opcode::FDiv => 14,
            Opcode::Load => 1,
            Opcode::Store => 1,
        }
    }

    /// Whether the FU is blocked for the whole latency (unpipelined).
    #[inline]
    pub fn unpipelined(self) -> bool {
        matches!(self, Opcode::Div | Opcode::FDiv)
    }

    /// Whether this opcode redirects control flow (conditionally or not).
    #[inline]
    pub fn is_ctrl(self) -> bool {
        matches!(
            self,
            Opcode::Branch(_) | Opcode::Jump | Opcode::JumpInd | Opcode::Call | Opcode::Ret
        )
    }

    /// Whether this is a conditional branch.
    #[inline]
    pub fn is_cond_branch(self) -> bool {
        matches!(self, Opcode::Branch(_))
    }

    /// Whether this opcode's target comes from a register (indirect).
    #[inline]
    pub fn is_indirect(self) -> bool {
        matches!(self, Opcode::JumpInd | Opcode::Ret)
    }

    /// Whether this is a memory operation.
    #[inline]
    pub fn is_mem(self) -> bool {
        matches!(self, Opcode::Load | Opcode::Store)
    }

    /// Short mnemonic for display.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Alu(AluOp::Add) => "add",
            Opcode::Alu(AluOp::Sub) => "sub",
            Opcode::Alu(AluOp::And) => "and",
            Opcode::Alu(AluOp::Or) => "or",
            Opcode::Alu(AluOp::Xor) => "xor",
            Opcode::Alu(AluOp::Shl) => "shl",
            Opcode::Alu(AluOp::Shr) => "shr",
            Opcode::Alu(AluOp::Sltu) => "sltu",
            Opcode::Alu(AluOp::Slt) => "slt",
            Opcode::Alu(AluOp::Mov) => "mov",
            Opcode::Mul => "mul",
            Opcode::Div => "div",
            Opcode::FAdd => "fadd",
            Opcode::FMul => "fmul",
            Opcode::FMa => "fma",
            Opcode::FDiv => "fdiv",
            Opcode::Load => "ld",
            Opcode::Store => "st",
            Opcode::Branch(Cond::Eq) => "beq",
            Opcode::Branch(Cond::Ne) => "bne",
            Opcode::Branch(Cond::Lt) => "blt",
            Opcode::Branch(Cond::Ge) => "bge",
            Opcode::Branch(Cond::Ltu) => "bltu",
            Opcode::Branch(Cond::Geu) => "bgeu",
            Opcode::Jump => "jmp",
            Opcode::JumpInd => "jmpi",
            Opcode::Call => "call",
            Opcode::Ret => "ret",
            Opcode::Nop => "nop",
            Opcode::Halt => "halt",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_eval_signed_vs_unsigned() {
        assert!(Cond::Lt.eval(u64::MAX, 0));
        assert!(!Cond::Ltu.eval(u64::MAX, 0));
        assert!(Cond::Geu.eval(u64::MAX, 0));
        assert!(!Cond::Ge.eval(u64::MAX, 0));
        assert!(Cond::Eq.eval(5, 5));
        assert!(Cond::Ne.eval(5, 6));
    }

    #[test]
    fn cond_negate_is_involution_and_inverts() {
        let conds = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Ltu, Cond::Geu];
        for c in conds {
            assert_eq!(c.negate().negate(), c);
            for (a, b) in [(0u64, 0u64), (1, 2), (u64::MAX, 1), (7, 7)] {
                assert_ne!(c.eval(a, b), c.negate().eval(a, b));
            }
        }
    }

    #[test]
    fn fu_classes() {
        assert_eq!(Opcode::Load.fu_class(), FuClass::Load);
        assert_eq!(Opcode::Store.fu_class(), FuClass::Store);
        assert_eq!(Opcode::Mul.fu_class(), FuClass::Alu);
        assert_eq!(Opcode::Branch(Cond::Eq).fu_class(), FuClass::Alu);
    }

    #[test]
    fn latencies_are_positive_and_div_is_longest_int() {
        for op in [
            Opcode::Alu(AluOp::Add),
            Opcode::Mul,
            Opcode::Div,
            Opcode::FAdd,
            Opcode::FDiv,
            Opcode::Load,
            Opcode::Store,
            Opcode::Nop,
        ] {
            assert!(op.latency() >= 1);
        }
        assert!(Opcode::Div.latency() > Opcode::Mul.latency());
        assert!(Opcode::Mul.latency() > Opcode::Alu(AluOp::Add).latency());
    }

    #[test]
    fn ctrl_classification() {
        assert!(Opcode::Branch(Cond::Eq).is_ctrl());
        assert!(Opcode::Branch(Cond::Eq).is_cond_branch());
        assert!(Opcode::Jump.is_ctrl());
        assert!(!Opcode::Jump.is_cond_branch());
        assert!(Opcode::Ret.is_indirect());
        assert!(Opcode::JumpInd.is_indirect());
        assert!(!Opcode::Call.is_indirect());
        assert!(!Opcode::Load.is_ctrl());
        assert!(Opcode::Load.is_mem());
        assert!(Opcode::Store.is_mem());
        assert!(!Opcode::Mul.is_mem());
    }

    #[test]
    fn unpipelined_ops() {
        assert!(Opcode::Div.unpipelined());
        assert!(Opcode::FDiv.unpipelined());
        assert!(!Opcode::Mul.unpipelined());
    }

    #[test]
    fn mnemonics_unique_for_distinct_ops() {
        let ops = [
            Opcode::Alu(AluOp::Add),
            Opcode::Alu(AluOp::Sub),
            Opcode::Mul,
            Opcode::Div,
            Opcode::Load,
            Opcode::Store,
            Opcode::Jump,
            Opcode::Ret,
            Opcode::Halt,
        ];
        for (i, a) in ops.iter().enumerate() {
            for b in ops.iter().skip(i + 1) {
                assert_ne!(a.mnemonic(), b.mnemonic());
            }
        }
    }
}
