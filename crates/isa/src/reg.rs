use std::fmt;

/// An architectural general-purpose register, `r0`..`r31`.
///
/// `r0` ([`Reg::ZERO`]) is hard-wired to zero, RISC-style: writes to it are
/// discarded by the functional emulator and it never creates a data
/// dependency (the slicer treats it as a constant source, matching the
/// paper's slice-termination rule for constant operands).
///
/// # Example
///
/// ```
/// use crisp_isa::Reg;
/// let r = Reg::new(7);
/// assert_eq!(r.index(), 7);
/// assert_eq!(r.to_string(), "r7");
/// assert!(Reg::ZERO.is_zero());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Number of architectural registers.
    pub const COUNT: usize = 32;

    /// The hard-wired zero register, `r0`.
    pub const ZERO: Reg = Reg(0);

    /// The stack pointer by convention, `r30`. Workloads use it for
    /// register spills so that slices exercise dependencies through memory.
    pub const SP: Reg = Reg(30);

    /// The link register by convention, `r31`, written by `call`.
    pub const LINK: Reg = Reg(31);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= Reg::COUNT`.
    #[inline]
    pub fn new(index: u8) -> Reg {
        assert!(
            (index as usize) < Reg::COUNT,
            "register index {index} out of range"
        );
        Reg(index)
    }

    /// Creates a register in const context.
    ///
    /// # Panics
    ///
    /// Panics (at compile time when const-evaluated) if `index >= 32`.
    pub const fn new_const(index: u8) -> Reg {
        assert!(index < Reg::COUNT as u8, "register index out of range");
        Reg(index)
    }

    /// The register's index in `0..Reg::COUNT`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hard-wired zero register.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterates over every architectural register.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..Reg::COUNT as u8).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_index_round_trip() {
        for i in 0..Reg::COUNT as u8 {
            assert_eq!(Reg::new(i).index(), i as usize);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range() {
        let _ = Reg::new(32);
    }

    #[test]
    fn zero_register_identity() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::new(1).is_zero());
        assert_eq!(Reg::ZERO, Reg::new(0));
    }

    #[test]
    fn all_yields_each_register_once() {
        let regs: Vec<Reg> = Reg::all().collect();
        assert_eq!(regs.len(), Reg::COUNT);
        for (i, r) in regs.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Reg::new(13).to_string(), "r13");
        assert_eq!(format!("{:?}", Reg::ZERO), "r0");
    }
}
