use crate::{Cond, FuClass, Opcode, Pc, Reg};
use std::fmt;

/// Access width of a memory operation, in bytes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// 1 byte.
    B1,
    /// 2 bytes.
    B2,
    /// 4 bytes.
    B4,
    /// 8 bytes (default).
    #[default]
    B8,
}

impl MemWidth {
    /// The width in bytes.
    #[inline]
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::B1 => 1,
            MemWidth::B2 => 2,
            MemWidth::B4 => 4,
            MemWidth::B8 => 8,
        }
    }
}

/// Control-transfer kind, used by the branch-target buffer and the
/// return-address stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CtrlKind {
    /// Conditional direct branch.
    CondBranch,
    /// Unconditional direct jump.
    Jump,
    /// Indirect jump.
    IndirectJump,
    /// Direct call (pushes the return-address stack).
    Call,
    /// Return (pops the return-address stack).
    Ret,
}

/// A static (decoded) instruction of the mini-ISA.
///
/// The instruction's program counter is its index in the owning
/// [`crate::Program`]; byte addresses are derived from the program
/// [`crate::Layout`], which accounts for the variable [`StaticInst::size`]
/// and for injected CRISP criticality prefixes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StaticInst {
    /// The opcode.
    pub op: Opcode,
    /// Destination register, if the instruction writes one.
    pub dst: Option<Reg>,
    /// Up to three source registers. `None` slots and [`Reg::ZERO`] do not
    /// create data dependencies.
    pub srcs: [Option<Reg>; 3],
    /// Immediate operand (ALU immediate, memory displacement).
    pub imm: i64,
    /// Direct control-transfer target (instruction index), if any.
    pub target: Option<Pc>,
    /// Memory access width (meaningful for loads and stores only).
    pub width: MemWidth,
    /// Encoded size in bytes (x86-flavoured, 2..=8). The CRISP prefix adds
    /// one byte on top of this when the instruction is tagged critical.
    pub size: u8,
}

impl StaticInst {
    /// Creates an instruction with no operands (e.g. `nop`, `halt`).
    pub fn nullary(op: Opcode) -> StaticInst {
        StaticInst {
            op,
            dst: None,
            srcs: [None; 3],
            imm: 0,
            target: None,
            width: MemWidth::B8,
            size: default_size(op),
        }
    }

    /// The functional-unit class of this instruction.
    #[inline]
    pub fn fu_class(&self) -> FuClass {
        self.op.fu_class()
    }

    /// Iterates over the source registers that create true data
    /// dependencies (skips empty slots and the zero register).
    pub fn dep_srcs(&self) -> impl Iterator<Item = Reg> + '_ {
        self.srcs.iter().flatten().copied().filter(|r| !r.is_zero())
    }

    /// The destination register if it creates a dependency (writes to the
    /// zero register are discarded).
    #[inline]
    pub fn dep_dst(&self) -> Option<Reg> {
        self.dst.filter(|r| !r.is_zero())
    }

    /// Control-transfer kind, or `None` for non-control instructions.
    pub fn ctrl_kind(&self) -> Option<CtrlKind> {
        match self.op {
            Opcode::Branch(_) => Some(CtrlKind::CondBranch),
            Opcode::Jump => Some(CtrlKind::Jump),
            Opcode::JumpInd => Some(CtrlKind::IndirectJump),
            Opcode::Call => Some(CtrlKind::Call),
            Opcode::Ret => Some(CtrlKind::Ret),
            _ => None,
        }
    }

    /// The branch condition, if this is a conditional branch.
    pub fn cond(&self) -> Option<Cond> {
        match self.op {
            Opcode::Branch(c) => Some(c),
            _ => None,
        }
    }

    /// Whether this instruction reads memory.
    #[inline]
    pub fn is_load(&self) -> bool {
        self.op == Opcode::Load
    }

    /// Whether this instruction writes memory.
    #[inline]
    pub fn is_store(&self) -> bool {
        self.op == Opcode::Store
    }
}

/// A plausible x86-flavoured encoded size for each opcode.
pub(crate) fn default_size(op: Opcode) -> u8 {
    match op {
        Opcode::Nop => 1,
        Opcode::Alu(_) => 3,
        Opcode::Mul | Opcode::Div => 4,
        Opcode::FAdd | Opcode::FMul | Opcode::FMa | Opcode::FDiv => 5,
        Opcode::Load | Opcode::Store => 4,
        Opcode::Branch(_) => 3,
        Opcode::Jump | Opcode::Call => 5,
        Opcode::JumpInd => 3,
        Opcode::Ret => 1,
        Opcode::Halt => 2,
    }
}

impl fmt::Display for StaticInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.op)?;
        if let Some(d) = self.dst {
            write!(f, " {d}")?;
        }
        for s in self.srcs.iter().flatten() {
            write!(f, " {s}")?;
        }
        if self.imm != 0 || self.op.is_mem() {
            write!(f, " #{}", self.imm)?;
        }
        if let Some(t) = self.target {
            write!(f, " @{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AluOp;

    fn add_inst() -> StaticInst {
        StaticInst {
            op: Opcode::Alu(AluOp::Add),
            dst: Some(Reg::new(1)),
            srcs: [Some(Reg::new(2)), Some(Reg::ZERO), None],
            imm: 0,
            target: None,
            width: MemWidth::B8,
            size: 3,
        }
    }

    #[test]
    fn dep_srcs_skips_zero_and_none() {
        let i = add_inst();
        let deps: Vec<Reg> = i.dep_srcs().collect();
        assert_eq!(deps, vec![Reg::new(2)]);
    }

    #[test]
    fn dep_dst_skips_zero() {
        let mut i = add_inst();
        assert_eq!(i.dep_dst(), Some(Reg::new(1)));
        i.dst = Some(Reg::ZERO);
        assert_eq!(i.dep_dst(), None);
    }

    #[test]
    fn ctrl_kind_mapping() {
        assert_eq!(
            StaticInst::nullary(Opcode::Jump).ctrl_kind(),
            Some(CtrlKind::Jump)
        );
        assert_eq!(
            StaticInst::nullary(Opcode::Ret).ctrl_kind(),
            Some(CtrlKind::Ret)
        );
        assert_eq!(
            StaticInst::nullary(Opcode::Branch(Cond::Eq)).ctrl_kind(),
            Some(CtrlKind::CondBranch)
        );
        assert_eq!(StaticInst::nullary(Opcode::Load).ctrl_kind(), None);
    }

    #[test]
    fn mem_width_bytes() {
        assert_eq!(MemWidth::B1.bytes(), 1);
        assert_eq!(MemWidth::B2.bytes(), 2);
        assert_eq!(MemWidth::B4.bytes(), 4);
        assert_eq!(MemWidth::B8.bytes(), 8);
        assert_eq!(MemWidth::default(), MemWidth::B8);
    }

    #[test]
    fn default_sizes_in_encodable_range() {
        for op in [
            Opcode::Nop,
            Opcode::Alu(AluOp::Add),
            Opcode::Mul,
            Opcode::Load,
            Opcode::Store,
            Opcode::Branch(Cond::Eq),
            Opcode::Jump,
            Opcode::Ret,
            Opcode::Halt,
        ] {
            let s = default_size(op);
            assert!((1..=8).contains(&s), "{op}: size {s}");
        }
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!add_inst().to_string().is_empty());
        assert!(StaticInst::nullary(Opcode::Halt)
            .to_string()
            .contains("halt"));
    }
}
