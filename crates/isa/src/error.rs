use std::fmt;

/// A rejected configuration value.
///
/// Every `validate()` method in the workspace reports failures through
/// this type so callers (and the `crisp` CLI) can tell the user exactly
/// which knob is wrong. `field` is the struct-field path of the offending
/// value (e.g. `"rs_entries"` or `"memory.llc"`), `message` the human
/// explanation including the rejected value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError {
    /// Dotted path of the offending field.
    pub field: &'static str,
    /// What is wrong with it, including the rejected value.
    pub message: String,
}

impl ConfigError {
    /// Builds an error for `field`.
    pub fn new(field: &'static str, message: impl Into<String>) -> ConfigError {
        ConfigError {
            field,
            message: message.into(),
        }
    }

    /// Prefixes the field path with a parent struct name (used when a
    /// nested config's error bubbles up, e.g. `memory.llc`).
    pub fn nested(self, parent: &'static str) -> ConfigError {
        // The child's own path is kept in the message so no information is
        // lost; `field` stays a static path for programmatic matching.
        ConfigError {
            field: parent,
            message: format!("{}: {}", self.field, self.message),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}: {}", self.field, self.message)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_field() {
        let e = ConfigError::new("rob_entries", "must be nonzero (got 0)");
        assert_eq!(
            e.to_string(),
            "invalid configuration: rob_entries: must be nonzero (got 0)"
        );
    }

    #[test]
    fn nesting_prefixes_the_path() {
        let e = ConfigError::new("llc", "set count 3 is not a power of two").nested("memory");
        assert_eq!(e.field, "memory");
        assert!(e.message.contains("llc"));
    }
}
