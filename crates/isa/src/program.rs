use crate::inst::default_size;
use crate::{AluOp, Cond, MemWidth, Opcode, Reg, StaticInst};
use std::collections::HashMap;
use std::fmt;

/// Program counter: the index of an instruction within its [`Program`].
///
/// Byte addresses (needed by the instruction cache and the footprint
/// analysis) are derived through [`Layout`].
pub type Pc = u32;

/// Errors produced while assembling a [`Program`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramError {
    /// A label was referenced but never bound to a location.
    UnboundLabel(u32),
    /// A label was bound more than once.
    RebindLabel(u32),
    /// The program contains no `halt` instruction.
    MissingHalt,
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::UnboundLabel(l) => write!(f, "label L{l} referenced but never bound"),
            ProgramError::RebindLabel(l) => write!(f, "label L{l} bound twice"),
            ProgramError::MissingHalt => write!(f, "program has no halt instruction"),
        }
    }
}

impl std::error::Error for ProgramError {}

/// A label handle returned by [`ProgramBuilder::label`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(u32);

/// An immutable static program: a sequence of [`StaticInst`]s indexed by
/// [`Pc`].
///
/// Constructed through [`ProgramBuilder`]. A program always ends with at
/// least one reachable `halt`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    insts: Vec<StaticInst>,
    entry: Pc,
}

impl Program {
    /// The instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    #[inline]
    pub fn inst(&self, pc: Pc) -> &StaticInst {
        &self.insts[pc as usize]
    }

    /// The instruction at `pc`, or `None` if out of range.
    #[inline]
    pub fn get(&self, pc: Pc) -> Option<&StaticInst> {
        self.insts.get(pc as usize)
    }

    /// Number of static instructions.
    #[inline]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program is empty (never true for built programs).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The entry point.
    #[inline]
    pub fn entry(&self) -> Pc {
        self.entry
    }

    /// Iterates over `(pc, inst)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Pc, &StaticInst)> {
        self.insts.iter().enumerate().map(|(i, x)| (i as Pc, x))
    }

    /// Total static code size in bytes, without criticality prefixes.
    pub fn static_bytes(&self) -> u64 {
        self.insts.iter().map(|i| i.size as u64).sum()
    }

    /// Computes the byte-address layout of the program, optionally with a
    /// one-byte CRISP prefix on the instructions for which
    /// `is_critical(pc)` returns true (paper Section 5.7).
    pub fn layout(&self, mut is_critical: impl FnMut(Pc) -> bool) -> Layout {
        let mut offsets = Vec::with_capacity(self.insts.len() + 1);
        let mut off = 0u64;
        for (pc, inst) in self.insts.iter().enumerate() {
            offsets.push(off);
            let prefix = u64::from(is_critical(pc as Pc));
            off += inst.size as u64 + prefix;
        }
        offsets.push(off);
        Layout { offsets }
    }
}

impl std::fmt::Display for Program {
    /// Renders a disassembly listing: one instruction per line with its
    /// pc, e.g. for debugging workload builders.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (pc, inst) in self.iter() {
            writeln!(f, "{pc:>6}: {inst}")?;
        }
        Ok(())
    }
}

/// Byte-address layout of a [`Program`]: maps each [`Pc`] to the byte
/// address of its first encoded byte.
///
/// Two layouts of the same program differ when criticality prefixes are
/// injected; comparing their [`Layout::code_bytes`] yields the static
/// footprint overhead of Figure 12.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Layout {
    offsets: Vec<u64>,
}

impl Layout {
    /// Byte address of the instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    #[inline]
    pub fn addr(&self, pc: Pc) -> u64 {
        self.offsets[pc as usize]
    }

    /// Encoded size in bytes of the instruction at `pc` (including any
    /// criticality prefix).
    #[inline]
    pub fn size(&self, pc: Pc) -> u64 {
        self.offsets[pc as usize + 1] - self.offsets[pc as usize]
    }

    /// Total code bytes.
    #[inline]
    pub fn code_bytes(&self) -> u64 {
        *self.offsets.last().expect("layout is never empty")
    }
}

/// Incremental assembler for [`Program`]s.
///
/// Control flow uses forward-referencable labels:
///
/// ```
/// use crisp_isa::{ProgramBuilder, Reg, Cond, AluOp};
/// let mut b = ProgramBuilder::new();
/// let done = b.label();
/// b.branch(Cond::Eq, Reg::new(1), Reg::ZERO, done);
/// b.alu_ri(AluOp::Add, Reg::new(2), Reg::new(2), 1);
/// b.bind(done);
/// b.halt();
/// let p = b.build();
/// assert_eq!(p.inst(0).target, Some(2));
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    insts: Vec<StaticInst>,
    labels: HashMap<u32, Pc>,
    fixups: Vec<(Pc, u32)>,
    next_label: u32,
    has_halt: bool,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Current instruction index (the pc the next emitted instruction will
    /// receive).
    #[inline]
    pub fn here(&self) -> Pc {
        self.insts.len() as Pc
    }

    /// Allocates a fresh, not-yet-bound label.
    pub fn label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Binds `label` to the current location.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        let prev = self.labels.insert(label.0, self.here());
        assert!(prev.is_none(), "label L{} bound twice", label.0);
    }

    /// Emits a raw instruction and returns its pc.
    pub fn push(&mut self, inst: StaticInst) -> Pc {
        let pc = self.here();
        if inst.op == Opcode::Halt {
            self.has_halt = true;
        }
        self.insts.push(inst);
        pc
    }

    fn push_ctrl(&mut self, op: Opcode, srcs: [Option<Reg>; 3], label: Label) -> Pc {
        let pc = self.push(StaticInst {
            op,
            dst: if op == Opcode::Call {
                Some(Reg::LINK)
            } else {
                None
            },
            srcs,
            imm: 0,
            target: None,
            width: MemWidth::B8,
            size: default_size(op),
        });
        self.fixups.push((pc, label.0));
        pc
    }

    /// Emits `dst = a <op> b`.
    pub fn alu_rr(&mut self, op: AluOp, dst: Reg, a: Reg, b: Reg) -> Pc {
        self.push(StaticInst {
            op: Opcode::Alu(op),
            dst: Some(dst),
            srcs: [Some(a), Some(b), None],
            imm: 0,
            target: None,
            width: MemWidth::B8,
            size: default_size(Opcode::Alu(op)),
        })
    }

    /// Emits `dst = a <op> imm`.
    pub fn alu_ri(&mut self, op: AluOp, dst: Reg, a: Reg, imm: i64) -> Pc {
        self.push(StaticInst {
            op: Opcode::Alu(op),
            dst: Some(dst),
            srcs: [Some(a), None, None],
            imm,
            target: None,
            width: MemWidth::B8,
            size: default_size(Opcode::Alu(op)),
        })
    }

    /// Emits a load-immediate: `dst = imm`.
    pub fn li(&mut self, dst: Reg, imm: i64) -> Pc {
        self.alu_ri(AluOp::Mov, dst, Reg::ZERO, imm)
    }

    /// Emits `dst = a * b` (integer multiply).
    pub fn mul(&mut self, dst: Reg, a: Reg, b: Reg) -> Pc {
        self.push(StaticInst {
            op: Opcode::Mul,
            dst: Some(dst),
            srcs: [Some(a), Some(b), None],
            imm: 0,
            target: None,
            width: MemWidth::B8,
            size: default_size(Opcode::Mul),
        })
    }

    /// Emits `dst = a / b` (integer divide; division by zero yields zero in
    /// the emulator).
    pub fn div(&mut self, dst: Reg, a: Reg, b: Reg) -> Pc {
        self.push(StaticInst {
            op: Opcode::Div,
            dst: Some(dst),
            srcs: [Some(a), Some(b), None],
            imm: 0,
            target: None,
            width: MemWidth::B8,
            size: default_size(Opcode::Div),
        })
    }

    /// Emits a floating-point style operation (`FAdd`, `FMul`, `FMa`,
    /// `FDiv`); semantics are integer but latency is floating-point.
    pub fn fp(&mut self, op: Opcode, dst: Reg, a: Reg, b: Reg) -> Pc {
        debug_assert!(matches!(
            op,
            Opcode::FAdd | Opcode::FMul | Opcode::FMa | Opcode::FDiv
        ));
        self.push(StaticInst {
            op,
            dst: Some(dst),
            srcs: [Some(a), Some(b), None],
            imm: 0,
            target: None,
            width: MemWidth::B8,
            size: default_size(op),
        })
    }

    /// Emits `dst = mem[base + off]` with the given access width in bytes
    /// (1, 2, 4 or 8).
    pub fn load(&mut self, dst: Reg, base: Reg, off: i64, width_bytes: u8) -> Pc {
        self.push(StaticInst {
            op: Opcode::Load,
            dst: Some(dst),
            srcs: [Some(base), None, None],
            imm: off,
            target: None,
            width: width_from_bytes(width_bytes),
            size: default_size(Opcode::Load),
        })
    }

    /// Emits `dst = mem[base + index + off]` (two-register addressing).
    pub fn load_idx(&mut self, dst: Reg, base: Reg, index: Reg, off: i64, width_bytes: u8) -> Pc {
        self.push(StaticInst {
            op: Opcode::Load,
            dst: Some(dst),
            srcs: [Some(base), Some(index), None],
            imm: off,
            target: None,
            width: width_from_bytes(width_bytes),
            size: default_size(Opcode::Load),
        })
    }

    /// Emits `mem[base + off] = data`.
    pub fn store(&mut self, base: Reg, off: i64, data: Reg, width_bytes: u8) -> Pc {
        self.push(StaticInst {
            op: Opcode::Store,
            dst: None,
            srcs: [Some(base), None, Some(data)],
            imm: off,
            target: None,
            width: width_from_bytes(width_bytes),
            size: default_size(Opcode::Store),
        })
    }

    /// Emits `mem[base + index + off] = data`.
    pub fn store_idx(&mut self, base: Reg, index: Reg, off: i64, data: Reg, width_bytes: u8) -> Pc {
        self.push(StaticInst {
            op: Opcode::Store,
            dst: None,
            srcs: [Some(base), Some(index), Some(data)],
            imm: off,
            target: None,
            width: width_from_bytes(width_bytes),
            size: default_size(Opcode::Store),
        })
    }

    /// Emits a conditional branch to `label` taken when `cond(a, b)` holds.
    pub fn branch(&mut self, cond: Cond, a: Reg, b: Reg, label: Label) -> Pc {
        self.push_ctrl(Opcode::Branch(cond), [Some(a), Some(b), None], label)
    }

    /// Emits an unconditional jump to `label`.
    pub fn jump(&mut self, label: Label) -> Pc {
        self.push_ctrl(Opcode::Jump, [None; 3], label)
    }

    /// Emits an indirect jump through `target_reg`. The register holds an
    /// *instruction index* (pc), not a byte address.
    pub fn jump_ind(&mut self, target_reg: Reg) -> Pc {
        self.push(StaticInst {
            op: Opcode::JumpInd,
            dst: None,
            srcs: [Some(target_reg), None, None],
            imm: 0,
            target: None,
            width: MemWidth::B8,
            size: default_size(Opcode::JumpInd),
        })
    }

    /// Emits a direct call to `label`; the return pc is written to
    /// [`Reg::LINK`].
    pub fn call(&mut self, label: Label) -> Pc {
        self.push_ctrl(Opcode::Call, [None; 3], label)
    }

    /// Emits a return through [`Reg::LINK`].
    pub fn ret(&mut self) -> Pc {
        self.push(StaticInst {
            op: Opcode::Ret,
            dst: None,
            srcs: [Some(Reg::LINK), None, None],
            imm: 0,
            target: None,
            width: MemWidth::B8,
            size: default_size(Opcode::Ret),
        })
    }

    /// Emits a `nop`.
    pub fn nop(&mut self) -> Pc {
        self.push(StaticInst::nullary(Opcode::Nop))
    }

    /// Emits a `halt`.
    pub fn halt(&mut self) -> Pc {
        self.push(StaticInst::nullary(Opcode::Halt))
    }

    /// Resolves labels and produces the program.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::UnboundLabel`] if a referenced label was
    /// never bound, or [`ProgramError::MissingHalt`] if no `halt` was
    /// emitted.
    pub fn try_build(mut self) -> Result<Program, ProgramError> {
        if !self.has_halt {
            return Err(ProgramError::MissingHalt);
        }
        for (pc, label) in &self.fixups {
            let target = *self
                .labels
                .get(label)
                .ok_or(ProgramError::UnboundLabel(*label))?;
            self.insts[*pc as usize].target = Some(target);
        }
        Ok(Program {
            insts: self.insts,
            entry: 0,
        })
    }

    /// Resolves labels and produces the program.
    ///
    /// # Panics
    ///
    /// Panics on the error conditions of [`ProgramBuilder::try_build`].
    pub fn build(self) -> Program {
        self.try_build().expect("program assembly failed")
    }
}

fn width_from_bytes(bytes: u8) -> MemWidth {
    match bytes {
        1 => MemWidth::B1,
        2 => MemWidth::B2,
        4 => MemWidth::B4,
        8 => MemWidth::B8,
        _ => panic!("unsupported memory width: {bytes} bytes"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_loop() -> Program {
        let mut b = ProgramBuilder::new();
        let r1 = Reg::new(1);
        b.li(r1, 4);
        let top = b.label();
        b.bind(top);
        b.alu_ri(AluOp::Sub, r1, r1, 1);
        b.branch(Cond::Ne, r1, Reg::ZERO, top);
        b.halt();
        b.build()
    }

    #[test]
    fn backward_label_resolution() {
        let p = tiny_loop();
        assert_eq!(p.inst(2).target, Some(1));
    }

    #[test]
    fn forward_label_resolution() {
        let mut b = ProgramBuilder::new();
        let done = b.label();
        b.branch(Cond::Eq, Reg::ZERO, Reg::ZERO, done);
        b.nop();
        b.bind(done);
        b.halt();
        let p = b.build();
        assert_eq!(p.inst(0).target, Some(2));
    }

    #[test]
    fn unbound_label_is_error() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.jump(l);
        b.halt();
        assert!(matches!(b.try_build(), Err(ProgramError::UnboundLabel(_))));
    }

    #[test]
    fn missing_halt_is_error() {
        let mut b = ProgramBuilder::new();
        b.nop();
        assert_eq!(b.try_build().unwrap_err(), ProgramError::MissingHalt);
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn rebinding_label_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn layout_without_prefixes_matches_static_bytes() {
        let p = tiny_loop();
        let layout = p.layout(|_| false);
        assert_eq!(layout.code_bytes(), p.static_bytes());
        // Offsets are strictly increasing by instruction size.
        for (pc, inst) in p.iter() {
            assert_eq!(layout.size(pc), inst.size as u64);
        }
    }

    #[test]
    fn layout_with_prefixes_adds_one_byte_per_critical_inst() {
        let p = tiny_loop();
        let base = p.layout(|_| false);
        let tagged = p.layout(|pc| pc == 1 || pc == 2);
        assert_eq!(tagged.code_bytes(), base.code_bytes() + 2);
        assert_eq!(tagged.size(1), base.size(1) + 1);
        assert_eq!(tagged.addr(0), base.addr(0));
        assert_eq!(tagged.addr(2), base.addr(2) + 1);
    }

    #[test]
    fn call_writes_link_register() {
        let mut b = ProgramBuilder::new();
        let f = b.label();
        b.call(f);
        b.halt();
        b.bind(f);
        b.ret();
        let p = b.build();
        assert_eq!(p.inst(0).dst, Some(Reg::LINK));
        assert_eq!(p.inst(0).target, Some(2));
        assert_eq!(p.inst(2).srcs[0], Some(Reg::LINK));
    }

    #[test]
    fn entry_is_zero_and_iter_covers_all() {
        let p = tiny_loop();
        assert_eq!(p.entry(), 0);
        assert_eq!(p.iter().count(), p.len());
        assert!(!p.is_empty());
    }

    #[test]
    #[should_panic(expected = "unsupported memory width")]
    fn bad_width_panics() {
        let mut b = ProgramBuilder::new();
        b.load(Reg::new(1), Reg::new(2), 0, 3);
    }

    #[test]
    fn display_lists_every_instruction() {
        let p = tiny_loop();
        let txt = p.to_string();
        assert_eq!(txt.lines().count(), p.len());
        assert!(txt.contains("halt"));
        assert!(txt.contains("0:"));
    }
}
