use crate::Pc;

/// Dynamic sequence number: the position of a dynamic instruction in the
/// retired instruction stream.
pub type Seq = u64;

/// One retired dynamic instruction: the compact trace record produced by the
/// functional emulator and consumed by the cycle-level simulator, the
/// profiler and the slicer.
///
/// The static operands (opcode, registers, immediate) are looked up through
/// the owning [`crate::Program`] via [`DynInst::pc`]; the record carries only
/// the execution-dependent facts: the effective memory address, the branch
/// outcome and the next pc.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DynInst {
    /// Static instruction index.
    pub pc: Pc,
    /// The pc of the next dynamic instruction (fall-through or branch
    /// target).
    pub next_pc: Pc,
    /// Effective memory address (valid only for loads and stores; zero
    /// otherwise).
    pub addr: u64,
    /// Whether a conditional branch was taken (false for everything else).
    pub taken: bool,
}

impl DynInst {
    /// A non-memory, non-branch record.
    pub fn simple(pc: Pc, next_pc: Pc) -> DynInst {
        DynInst {
            pc,
            next_pc,
            addr: 0,
            taken: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_constructor_zeroes_execution_facts() {
        let d = DynInst::simple(3, 4);
        assert_eq!(d.pc, 3);
        assert_eq!(d.next_pc, 4);
        assert_eq!(d.addr, 0);
        assert!(!d.taken);
    }

    #[test]
    fn record_is_compact() {
        // The trace format must stay small: multi-million-instruction
        // windows are held in memory during slicing.
        assert!(std::mem::size_of::<DynInst>() <= 24);
    }
}
