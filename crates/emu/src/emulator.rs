use crate::Memory;
use crisp_isa::{AluOp, DynInst, Opcode, Pc, Program, Reg, Trace};
use std::fmt;

/// Why the emulator stopped producing records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// A `halt` instruction retired.
    Halted,
    /// The per-run instruction budget was exhausted.
    BudgetExhausted,
}

/// Errors raised during emulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EmuError {
    /// Control transferred outside the program text.
    PcOutOfRange(Pc),
    /// A [`Emulator::run_to_halt`] fuel watchdog fired: the program did
    /// not halt within its fuel, i.e. it hung or looped forever.
    FuelExhausted {
        /// The pc where emulation was cut off.
        pc: Pc,
        /// Instructions retired before the cutoff.
        retired: u64,
        /// The fuel the run was given.
        fuel: u64,
    },
    /// A store pushed the sparse memory image past the configured
    /// page budget ([`Emulator::with_page_budget`]): the workload is
    /// touching more memory than the harness is willing to host.
    PageBudgetExceeded {
        /// The pc of the offending store.
        pc: Pc,
        /// Pages allocated after the store.
        pages: usize,
        /// The configured budget.
        budget: usize,
    },
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::PcOutOfRange(pc) => write!(f, "pc {pc} outside program text"),
            EmuError::FuelExhausted { pc, retired, fuel } => write!(
                f,
                "program did not halt within {fuel} instructions (stopped at pc {pc} after retiring {retired}): \
                 likely an infinite loop"
            ),
            EmuError::PageBudgetExceeded { pc, pages, budget } => write!(
                f,
                "store at pc {pc} grew the memory image to {pages} pages, over the {budget}-page budget"
            ),
        }
    }
}

impl std::error::Error for EmuError {}

/// The functional emulator.
///
/// Executes instructions architecturally (no timing) and yields one
/// [`DynInst`] per retired instruction. See the crate docs for an example.
#[derive(Clone, Debug)]
pub struct Emulator<'p> {
    program: &'p Program,
    regs: [u64; Reg::COUNT],
    mem: Memory,
    pc: Pc,
    halted: bool,
    retired: u64,
    page_budget: Option<usize>,
}

impl<'p> Emulator<'p> {
    /// Creates an emulator at the program entry with the given initial
    /// memory image and zeroed registers.
    pub fn new(program: &'p Program, mem: Memory) -> Emulator<'p> {
        Emulator {
            program,
            regs: [0; Reg::COUNT],
            mem,
            pc: program.entry(),
            halted: false,
            retired: 0,
            page_budget: None,
        }
    }

    /// Caps the sparse memory image at `pages` 4 KiB pages. A store that
    /// allocates past the cap fails with [`EmuError::PageBudgetExceeded`]
    /// instead of growing without bound — a runaway workload then degrades
    /// into a typed per-cell failure rather than taking down the whole
    /// worker pool. The initial image may already exceed the budget; only
    /// growth during emulation is policed.
    #[must_use]
    pub fn with_page_budget(mut self, pages: usize) -> Emulator<'p> {
        self.page_budget = Some(pages);
        self
    }

    /// The configured page budget, if any.
    pub fn page_budget(&self) -> Option<usize> {
        self.page_budget
    }

    /// The current architectural register file.
    pub fn regs(&self) -> &[u64; Reg::COUNT] {
        &self.regs
    }

    /// Reads one register.
    #[inline]
    pub fn reg(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Writes one register (writes to `r0` are discarded).
    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// The memory image.
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Mutable access to the memory image (e.g. to patch inputs between
    /// runs).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Whether a `halt` has retired.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// The next pc to execute.
    pub fn pc(&self) -> Pc {
        self.pc
    }

    /// Executes one instruction and returns its trace record, or `None`
    /// once halted.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::PcOutOfRange`] if control leaves the program
    /// text (e.g. a wild indirect jump).
    pub fn step(&mut self) -> Result<Option<DynInst>, EmuError> {
        if self.halted {
            return Ok(None);
        }
        let pc = self.pc;
        let inst = *self.program.get(pc).ok_or(EmuError::PcOutOfRange(pc))?;
        let fallthrough = pc + 1;
        let mut rec = DynInst::simple(pc, fallthrough);

        let src = |slot: usize, this: &Emulator<'_>| -> u64 {
            inst.srcs[slot].map_or(0, |r| this.reg(r))
        };

        match inst.op {
            Opcode::Alu(op) => {
                let a = src(0, self);
                // Register second operand if present, immediate otherwise.
                let b = match inst.srcs[1] {
                    Some(r) => self.reg(r),
                    None => inst.imm as u64,
                };
                let v = match op {
                    AluOp::Add => a.wrapping_add(b),
                    AluOp::Sub => a.wrapping_sub(b),
                    AluOp::And => a & b,
                    AluOp::Or => a | b,
                    AluOp::Xor => a ^ b,
                    AluOp::Shl => a.wrapping_shl((b & 63) as u32),
                    AluOp::Shr => a.wrapping_shr((b & 63) as u32),
                    AluOp::Sltu => u64::from(a < b),
                    AluOp::Slt => u64::from((a as i64) < (b as i64)),
                    AluOp::Mov => a.wrapping_add(b),
                };
                if let Some(d) = inst.dst {
                    self.set_reg(d, v);
                }
            }
            Opcode::Mul => {
                let v = src(0, self).wrapping_mul(src(1, self));
                self.set_reg(inst.dst.expect("mul has dst"), v);
            }
            Opcode::Div => {
                let v = src(0, self).checked_div(src(1, self)).unwrap_or(0);
                self.set_reg(inst.dst.expect("div has dst"), v);
            }
            Opcode::FAdd => {
                let v = src(0, self).wrapping_add(src(1, self));
                self.set_reg(inst.dst.expect("fadd has dst"), v);
            }
            Opcode::FMul => {
                let v = src(0, self).wrapping_mul(src(1, self));
                self.set_reg(inst.dst.expect("fmul has dst"), v);
            }
            Opcode::FMa => {
                let a = src(0, self);
                let b = src(1, self);
                let v = a.wrapping_mul(b).wrapping_add(b);
                self.set_reg(inst.dst.expect("fma has dst"), v);
            }
            Opcode::FDiv => {
                let v = src(0, self).checked_div(src(1, self)).unwrap_or(0);
                self.set_reg(inst.dst.expect("fdiv has dst"), v);
            }
            Opcode::Load => {
                let addr = self.effective_addr(&inst);
                rec.addr = addr;
                let v = self.mem.read(addr, inst.width.bytes());
                self.set_reg(inst.dst.expect("load has dst"), v);
            }
            Opcode::Store => {
                let addr = self.effective_addr(&inst);
                rec.addr = addr;
                let data = src(2, self);
                self.mem.write(addr, data, inst.width.bytes());
                if let Some(budget) = self.page_budget {
                    let pages = self.mem.page_count();
                    if pages > budget {
                        return Err(EmuError::PageBudgetExceeded { pc, pages, budget });
                    }
                }
            }
            Opcode::Branch(cond) => {
                let taken = cond.eval(src(0, self), src(1, self));
                rec.taken = taken;
                if taken {
                    rec.next_pc = inst.target.expect("branch has target");
                }
            }
            Opcode::Jump => {
                rec.next_pc = inst.target.expect("jump has target");
            }
            Opcode::JumpInd => {
                rec.next_pc = src(0, self) as Pc;
            }
            Opcode::Call => {
                self.set_reg(Reg::LINK, u64::from(fallthrough));
                rec.next_pc = inst.target.expect("call has target");
            }
            Opcode::Ret => {
                rec.next_pc = src(0, self) as Pc;
            }
            Opcode::Nop => {}
            Opcode::Halt => {
                self.halted = true;
                rec.next_pc = pc;
            }
        }

        self.pc = rec.next_pc;
        self.retired += 1;
        Ok(Some(rec))
    }

    /// Effective address of a memory instruction: `src0 + src1 + imm`
    /// where the index register slot (`src1` for loads, `src1` for
    /// stores — the data register lives in `src2`) is optional.
    fn effective_addr(&self, inst: &crisp_isa::StaticInst) -> u64 {
        let base = inst.srcs[0].map_or(0, |r| self.reg(r));
        let index = inst.srcs[1].map_or(0, |r| self.reg(r));
        base.wrapping_add(index).wrapping_add(inst.imm as u64)
    }

    /// Runs up to `budget` instructions, collecting the trace.
    ///
    /// # Panics
    ///
    /// Panics on [`EmuError`] — workload programs are trusted; use
    /// [`Emulator::try_run`] for untrusted programs.
    pub fn run(&mut self, budget: u64) -> Trace {
        self.try_run(budget).expect("emulation error").0
    }

    /// Runs up to `budget` instructions.
    ///
    /// # Errors
    ///
    /// Propagates the first [`EmuError`].
    pub fn try_run(&mut self, budget: u64) -> Result<(Trace, StopReason), EmuError> {
        let mut trace = Trace::with_capacity(budget.min(1 << 22) as usize);
        for _ in 0..budget {
            match self.step()? {
                Some(rec) => trace.push(rec),
                None => return Ok((trace, StopReason::Halted)),
            }
        }
        Ok((
            trace,
            if self.halted {
                StopReason::Halted
            } else {
                StopReason::BudgetExhausted
            },
        ))
    }

    /// Runs until `halt` retires, treating fuel exhaustion as an *error*
    /// rather than a truncated-but-valid trace: the watchdog for workloads
    /// that are supposed to terminate (hung emulation shows up as a
    /// diagnostic instead of a silently short trace).
    ///
    /// # Errors
    ///
    /// [`EmuError::FuelExhausted`] if no `halt` retires within `fuel`
    /// instructions, or any error from [`Emulator::step`].
    pub fn run_to_halt(&mut self, fuel: u64) -> Result<Trace, EmuError> {
        let (trace, stop) = self.try_run(fuel)?;
        match stop {
            StopReason::Halted => Ok(trace),
            StopReason::BudgetExhausted => Err(EmuError::FuelExhausted {
                pc: self.pc,
                retired: self.retired,
                fuel,
            }),
        }
    }

    /// Serialises the architectural state — pc, halt flag, retirement
    /// count, register file and the sparse memory image — as a flat word
    /// vector. The program text is *not* captured; a restore target must
    /// be constructed over the same program.
    pub fn snapshot_words(&self) -> Vec<u64> {
        let mut words = Vec::with_capacity(3 + Reg::COUNT);
        words.push(u64::from(self.pc));
        words.push(u64::from(self.halted));
        words.push(self.retired);
        words.extend_from_slice(&self.regs);
        words.extend(self.mem.snapshot_words());
        words
    }

    /// Restores state captured by [`Emulator::snapshot_words`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem; the
    /// emulator should be discarded on error (state may be partial).
    pub fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
        if words.len() < 3 + Reg::COUNT {
            return Err("emulator snapshot: truncated header".to_string());
        }
        let pc =
            Pc::try_from(words[0]).map_err(|_| "emulator snapshot: pc overflow".to_string())?;
        self.halted = match words[1] {
            0 => false,
            1 => true,
            v => return Err(format!("emulator snapshot: bad halt flag {v}")),
        };
        self.pc = pc;
        self.retired = words[2];
        self.regs.copy_from_slice(&words[3..3 + Reg::COUNT]);
        self.mem.restore_words(&words[3 + Reg::COUNT..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_isa::{Cond, ProgramBuilder};

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn arithmetic_loop_sums_array() {
        let mut b = ProgramBuilder::new();
        b.li(r(1), 0x1000); // ptr
        b.li(r(2), 0); // acc
        b.li(r(3), 8); // count
        let top = b.label();
        b.bind(top);
        b.load(r(4), r(1), 0, 8);
        b.alu_rr(AluOp::Add, r(2), r(2), r(4));
        b.alu_ri(AluOp::Add, r(1), r(1), 8);
        b.alu_ri(AluOp::Sub, r(3), r(3), 1);
        b.branch(Cond::Ne, r(3), Reg::ZERO, top);
        b.halt();
        let p = b.build();

        let mut mem = Memory::new();
        mem.write_u64_slice(0x1000, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut emu = Emulator::new(&p, mem);
        let (trace, stop) = emu.try_run(10_000).unwrap();
        assert_eq!(stop, StopReason::Halted);
        assert_eq!(emu.reg(r(2)), 36);
        // 3 setup + 8*5 loop + 1 halt
        assert_eq!(trace.len(), 3 + 40 + 1);
    }

    #[test]
    fn pointer_chase_follows_links() {
        // Nodes: {next, val} at 0x1000, 0x2000, 0x3000, terminated by 0.
        let mut mem = Memory::new();
        mem.write_u64(0x1000, 0x2000);
        mem.write_u64(0x1008, 10);
        mem.write_u64(0x2000, 0x3000);
        mem.write_u64(0x2008, 20);
        mem.write_u64(0x3000, 0);
        mem.write_u64(0x3008, 30);

        let mut b = ProgramBuilder::new();
        b.li(r(1), 0x1000); // cur
        b.li(r(2), 0); // sum
        let top = b.label();
        let done = b.label();
        b.bind(top);
        b.branch(Cond::Eq, r(1), Reg::ZERO, done);
        b.load(r(3), r(1), 8, 8); // val
        b.alu_rr(AluOp::Add, r(2), r(2), r(3));
        b.load(r(1), r(1), 0, 8); // next
        b.jump(top);
        b.bind(done);
        b.halt();
        let p = b.build();

        let mut emu = Emulator::new(&p, mem);
        emu.run(1_000);
        assert_eq!(emu.reg(r(2)), 60);
        assert_eq!(emu.reg(r(1)), 0);
        assert!(emu.is_halted());
    }

    #[test]
    fn trace_records_addresses_and_branch_outcomes() {
        let mut b = ProgramBuilder::new();
        b.li(r(1), 0x1000);
        b.load(r(2), r(1), 0x10, 8);
        let skip = b.label();
        b.branch(Cond::Eq, r(2), Reg::ZERO, skip);
        b.nop();
        b.bind(skip);
        b.halt();
        let p = b.build();
        let mut emu = Emulator::new(&p, Memory::new());
        let trace = emu.run(100);
        assert_eq!(trace.record(1).addr, 0x1010);
        assert!(trace.record(2).taken); // loaded 0 == 0
        assert_eq!(trace.record(2).next_pc, 4);
        // The nop at pc 3 was skipped.
        assert_eq!(trace.len(), 4);
    }

    #[test]
    fn call_and_ret_round_trip() {
        let mut b = ProgramBuilder::new();
        let f = b.label();
        b.call(f); // 0
        b.halt(); // 1
        b.bind(f);
        b.li(r(5), 99); // 2
        b.ret(); // 3
        let p = b.build();
        let mut emu = Emulator::new(&p, Memory::new());
        let trace = emu.run(100);
        assert_eq!(emu.reg(r(5)), 99);
        let pcs: Vec<u32> = trace.iter().map(|d| d.pc).collect();
        assert_eq!(pcs, vec![0, 2, 3, 1]);
    }

    #[test]
    fn indirect_jump_through_register() {
        let mut b = ProgramBuilder::new();
        b.li(r(1), 3);
        b.jump_ind(r(1)); // to pc 3
        b.nop(); // skipped
        b.halt();
        let p = b.build();
        let mut emu = Emulator::new(&p, Memory::new());
        let trace = emu.run(100);
        let pcs: Vec<u32> = trace.iter().map(|d| d.pc).collect();
        assert_eq!(pcs, vec![0, 1, 3]);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let mut b = ProgramBuilder::new();
        let top = b.label();
        b.bind(top);
        b.jump(top);
        b.halt(); // unreachable but satisfies the builder
        let p = b.build();
        let mut emu = Emulator::new(&p, Memory::new());
        let (trace, stop) = emu.try_run(50).unwrap();
        assert_eq!(stop, StopReason::BudgetExhausted);
        assert_eq!(trace.len(), 50);
        assert!(!emu.is_halted());
    }

    #[test]
    fn run_to_halt_flags_infinite_loops() {
        let mut b = ProgramBuilder::new();
        let top = b.label();
        b.bind(top);
        b.jump(top);
        b.halt();
        let p = b.build();
        let mut emu = Emulator::new(&p, Memory::new());
        let err = emu.run_to_halt(1000).unwrap_err();
        let EmuError::FuelExhausted { retired, fuel, .. } = err else {
            panic!("expected fuel exhaustion, got {err}");
        };
        assert_eq!(retired, 1000);
        assert_eq!(fuel, 1000);
    }

    #[test]
    fn run_to_halt_returns_full_trace_of_terminating_programs() {
        let mut b = ProgramBuilder::new();
        b.li(r(1), 7);
        b.halt();
        let p = b.build();
        let mut emu = Emulator::new(&p, Memory::new());
        let trace = emu.run_to_halt(1000).expect("halts");
        assert_eq!(trace.len(), 2);
        assert!(emu.is_halted());
    }

    #[test]
    fn wild_indirect_jump_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.li(r(1), 1_000_000);
        b.jump_ind(r(1));
        b.halt();
        let p = b.build();
        let mut emu = Emulator::new(&p, Memory::new());
        assert_eq!(
            emu.try_run(10).unwrap_err(),
            EmuError::PcOutOfRange(1_000_000)
        );
    }

    #[test]
    fn division_by_zero_yields_zero() {
        let mut b = ProgramBuilder::new();
        b.li(r(1), 10);
        b.div(r(2), r(1), Reg::ZERO);
        b.halt();
        let p = b.build();
        let mut emu = Emulator::new(&p, Memory::new());
        emu.run(10);
        assert_eq!(emu.reg(r(2)), 0);
    }

    #[test]
    fn writes_to_zero_register_discarded() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::ZERO, 42);
        b.halt();
        let p = b.build();
        let mut emu = Emulator::new(&p, Memory::new());
        emu.run(10);
        assert_eq!(emu.reg(Reg::ZERO), 0);
    }

    #[test]
    fn page_budget_stops_runaway_stores() {
        // A loop storing to a new page every iteration.
        let mut b = ProgramBuilder::new();
        b.li(r(1), 0x1_0000); // ptr
        let top = b.label();
        b.bind(top);
        b.store(r(1), 0, r(1), 8);
        b.alu_ri(AluOp::Add, r(1), r(1), 4096);
        b.jump(top);
        b.halt();
        let p = b.build();
        let mut emu = Emulator::new(&p, Memory::new()).with_page_budget(4);
        let err = emu.try_run(1_000_000).unwrap_err();
        let EmuError::PageBudgetExceeded { pages, budget, .. } = err else {
            panic!("expected page-budget error, got {err}");
        };
        assert_eq!(budget, 4);
        assert_eq!(pages, 5);
        assert_eq!(emu.memory().page_count(), 5);
    }

    #[test]
    fn page_budget_allows_bounded_workloads() {
        let mut b = ProgramBuilder::new();
        b.li(r(1), 0x1000);
        b.store(r(1), 0, r(1), 8);
        b.store(r(1), 8, r(1), 8); // same page: no growth
        b.halt();
        let p = b.build();
        let mut emu = Emulator::new(&p, Memory::new()).with_page_budget(1);
        let (_, stop) = emu.try_run(100).unwrap();
        assert_eq!(stop, StopReason::Halted);
    }

    #[test]
    fn snapshot_restore_resumes_mid_run() {
        let mut b = ProgramBuilder::new();
        b.li(r(1), 0x1000);
        b.li(r(2), 0);
        b.li(r(3), 8);
        let top = b.label();
        b.bind(top);
        b.load(r(4), r(1), 0, 8);
        b.alu_rr(AluOp::Add, r(2), r(2), r(4));
        b.alu_ri(AluOp::Add, r(1), r(1), 8);
        b.alu_ri(AluOp::Sub, r(3), r(3), 1);
        b.branch(Cond::Ne, r(3), Reg::ZERO, top);
        b.halt();
        let p = b.build();
        let mut mem = Memory::new();
        mem.write_u64_slice(0x1000, &[1, 2, 3, 4, 5, 6, 7, 8]);

        // Straight-through reference.
        let mut reference = Emulator::new(&p, mem.clone());
        reference.run(10_000);

        // Run half-way, snapshot, restore into a fresh emulator, finish.
        let mut first = Emulator::new(&p, mem);
        first.run(20);
        let words = first.snapshot_words();
        let mut second = Emulator::new(&p, Memory::new());
        second.restore_words(&words).unwrap();
        assert_eq!(second.retired(), 20);
        second.run(10_000);

        assert_eq!(second.reg(r(2)), reference.reg(r(2)));
        assert_eq!(second.retired(), reference.retired());
        assert_eq!(second.snapshot_words(), reference.snapshot_words());
    }

    #[test]
    fn snapshot_rejects_garbage() {
        let mut b = ProgramBuilder::new();
        b.halt();
        let p = b.build();
        let mut emu = Emulator::new(&p, Memory::new());
        assert!(emu.restore_words(&[]).is_err());
        assert!(emu.restore_words(&[u64::MAX; 40]).is_err());
    }

    #[test]
    fn halt_record_self_loops_and_stops() {
        let mut b = ProgramBuilder::new();
        b.halt();
        let p = b.build();
        let mut emu = Emulator::new(&p, Memory::new());
        let rec = emu.step().unwrap().unwrap();
        assert_eq!(rec.next_pc, rec.pc);
        assert_eq!(emu.step().unwrap(), None);
        assert_eq!(emu.retired(), 1);
    }
}
