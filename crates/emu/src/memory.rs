use std::collections::HashMap;

const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// Sparse, paged byte-addressable memory.
///
/// Pages (4 KiB) are allocated on first touch and zero-initialised, so
/// reads from untouched addresses return zero — convenient for workload
/// images that only initialise the interesting structures.
///
/// # Example
///
/// ```
/// use crisp_emu::Memory;
/// let mut m = Memory::new();
/// m.write_u64(0xdead_b000, 7);
/// assert_eq!(m.read_u64(0xdead_b000), 7);
/// assert_eq!(m.read_u64(0x42), 0); // untouched => zero
/// ```
#[derive(Clone, Debug, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Creates an empty memory image.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Number of allocated (touched) pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(page) => page[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads `width` bytes little-endian, zero-extended to 64 bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than 8.
    pub fn read(&self, addr: u64, width: u64) -> u64 {
        assert!((1..=8).contains(&width), "bad read width {width}");
        // Fast path: aligned 8-byte read fully inside a page.
        if width == 8 && addr & 7 == 0 {
            if let Some(page) = self.pages.get(&(addr >> PAGE_SHIFT)) {
                let o = (addr & PAGE_MASK) as usize;
                return u64::from_le_bytes(page[o..o + 8].try_into().expect("8-byte slice"));
            }
            return 0;
        }
        let mut v = 0u64;
        for i in 0..width {
            v |= u64::from(self.read_u8(addr.wrapping_add(i))) << (8 * i);
        }
        v
    }

    /// Writes the low `width` bytes of `value` little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than 8.
    pub fn write(&mut self, addr: u64, value: u64, width: u64) {
        assert!((1..=8).contains(&width), "bad write width {width}");
        if width == 8 && addr & 7 == 0 {
            let page = self
                .pages
                .entry(addr >> PAGE_SHIFT)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            let o = (addr & PAGE_MASK) as usize;
            page[o..o + 8].copy_from_slice(&value.to_le_bytes());
            return;
        }
        for i in 0..width {
            self.write_u8(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }

    /// Reads an aligned-or-not 64-bit little-endian word.
    #[inline]
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read(addr, 8)
    }

    /// Writes a 64-bit little-endian word.
    #[inline]
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write(addr, value, 8)
    }

    /// Writes a slice of 64-bit words at consecutive 8-byte locations
    /// starting at `addr`.
    pub fn write_u64_slice(&mut self, addr: u64, values: &[u64]) {
        for (i, v) in values.iter().enumerate() {
            self.write_u64(addr + 8 * i as u64, *v);
        }
    }

    /// Serialises the allocated pages as a flat word vector:
    /// `[page_count, (page_index, 512 data words)...]`.
    ///
    /// Pages are emitted in ascending index order so the encoding is
    /// deterministic regardless of hash-map iteration order — a
    /// requirement for byte-identical checkpoint round-trips.
    pub fn snapshot_words(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self.pages.keys().copied().collect();
        keys.sort_unstable();
        let mut words = Vec::with_capacity(1 + keys.len() * (1 + PAGE_SIZE / 8));
        words.push(keys.len() as u64);
        for k in keys {
            words.push(k);
            let page = &self.pages[&k];
            for chunk in page.chunks_exact(8) {
                words.push(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
            }
        }
        words
    }

    /// Rebuilds the image from [`Memory::snapshot_words`] output,
    /// replacing all current contents.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem (truncated
    /// data, duplicate page, trailing words) without modifying guarantees
    /// about partial state — callers should discard the image on error.
    pub fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
        let (&count, mut rest) = words
            .split_first()
            .ok_or_else(|| "memory snapshot: empty".to_string())?;
        self.pages.clear();
        for _ in 0..count {
            let (&idx, after) = rest
                .split_first()
                .ok_or_else(|| "memory snapshot: truncated page header".to_string())?;
            if after.len() < PAGE_SIZE / 8 {
                return Err("memory snapshot: truncated page data".to_string());
            }
            let (data, tail) = after.split_at(PAGE_SIZE / 8);
            let mut page = Box::new([0u8; PAGE_SIZE]);
            for (i, w) in data.iter().enumerate() {
                page[8 * i..8 * i + 8].copy_from_slice(&w.to_le_bytes());
            }
            if self.pages.insert(idx, page).is_some() {
                return Err(format!("memory snapshot: duplicate page {idx:#x}"));
            }
            rest = tail;
        }
        if !rest.is_empty() {
            return Err("memory snapshot: trailing words".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read_u64(0), 0);
        assert_eq!(m.read_u8(u64::MAX), 0);
        assert_eq!(m.page_count(), 0);
    }

    #[test]
    fn read_write_round_trip_all_widths() {
        let mut m = Memory::new();
        for width in [1u64, 2, 4, 8] {
            let addr = 0x1000 + width * 64;
            let value = 0x1122_3344_5566_7788u64;
            m.write(addr, value, width);
            let mask = if width == 8 {
                u64::MAX
            } else {
                (1u64 << (8 * width)) - 1
            };
            assert_eq!(m.read(addr, width), value & mask, "width {width}");
        }
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = 0x1FFC; // straddles the 0x1000/0x2000 page boundary
        m.write(addr, 0xAABB_CCDD_EEFF_0011, 8);
        assert_eq!(m.read(addr, 8), 0xAABB_CCDD_EEFF_0011);
        assert_eq!(m.page_count(), 2);
    }

    #[test]
    fn partial_writes_do_not_clobber_neighbours() {
        let mut m = Memory::new();
        m.write_u64(0x100, u64::MAX);
        m.write(0x102, 0, 2);
        assert_eq!(m.read_u64(0x100), 0xFFFF_FFFF_0000_FFFF);
    }

    #[test]
    fn write_slice_lays_out_consecutively() {
        let mut m = Memory::new();
        m.write_u64_slice(0x2000, &[1, 2, 3]);
        assert_eq!(m.read_u64(0x2000), 1);
        assert_eq!(m.read_u64(0x2008), 2);
        assert_eq!(m.read_u64(0x2010), 3);
    }

    #[test]
    #[should_panic(expected = "bad read width")]
    fn zero_width_read_panics() {
        Memory::new().read(0, 0);
    }

    #[test]
    #[should_panic(expected = "bad write width")]
    fn oversized_write_panics() {
        Memory::new().write(0, 0, 9);
    }

    #[test]
    fn snapshot_round_trip_is_byte_identical() {
        let mut m = Memory::new();
        m.write_u64(0x1000, 0xDEAD);
        m.write_u64(0x9_F000, 0xBEEF);
        m.write_u8(0x42, 7);
        let words = m.snapshot_words();
        let mut n = Memory::new();
        n.restore_words(&words).unwrap();
        assert_eq!(n.read_u64(0x1000), 0xDEAD);
        assert_eq!(n.read_u64(0x9_F000), 0xBEEF);
        assert_eq!(n.read_u8(0x42), 7);
        assert_eq!(n.snapshot_words(), words);
    }

    #[test]
    fn restore_replaces_existing_contents() {
        let mut src = Memory::new();
        src.write_u64(0x2000, 11);
        let words = src.snapshot_words();
        let mut dst = Memory::new();
        dst.write_u64(0x7000, 99);
        dst.restore_words(&words).unwrap();
        assert_eq!(dst.read_u64(0x7000), 0, "stale page must be dropped");
        assert_eq!(dst.read_u64(0x2000), 11);
        assert_eq!(dst.page_count(), 1);
    }

    #[test]
    fn truncated_snapshot_is_rejected() {
        let mut m = Memory::new();
        m.write_u64(0x1000, 1);
        let mut words = m.snapshot_words();
        words.truncate(words.len() - 1);
        assert!(Memory::new().restore_words(&words).is_err());
        assert!(Memory::new().restore_words(&[]).is_err());
    }
}
