use std::collections::HashMap;

const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// Sparse, paged byte-addressable memory.
///
/// Pages (4 KiB) are allocated on first touch and zero-initialised, so
/// reads from untouched addresses return zero — convenient for workload
/// images that only initialise the interesting structures.
///
/// # Example
///
/// ```
/// use crisp_emu::Memory;
/// let mut m = Memory::new();
/// m.write_u64(0xdead_b000, 7);
/// assert_eq!(m.read_u64(0xdead_b000), 7);
/// assert_eq!(m.read_u64(0x42), 0); // untouched => zero
/// ```
#[derive(Clone, Debug, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Creates an empty memory image.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Number of allocated (touched) pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(page) => page[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads `width` bytes little-endian, zero-extended to 64 bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than 8.
    pub fn read(&self, addr: u64, width: u64) -> u64 {
        assert!((1..=8).contains(&width), "bad read width {width}");
        // Fast path: aligned 8-byte read fully inside a page.
        if width == 8 && addr & 7 == 0 {
            if let Some(page) = self.pages.get(&(addr >> PAGE_SHIFT)) {
                let o = (addr & PAGE_MASK) as usize;
                return u64::from_le_bytes(page[o..o + 8].try_into().expect("8-byte slice"));
            }
            return 0;
        }
        let mut v = 0u64;
        for i in 0..width {
            v |= u64::from(self.read_u8(addr.wrapping_add(i))) << (8 * i);
        }
        v
    }

    /// Writes the low `width` bytes of `value` little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than 8.
    pub fn write(&mut self, addr: u64, value: u64, width: u64) {
        assert!((1..=8).contains(&width), "bad write width {width}");
        if width == 8 && addr & 7 == 0 {
            let page = self
                .pages
                .entry(addr >> PAGE_SHIFT)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            let o = (addr & PAGE_MASK) as usize;
            page[o..o + 8].copy_from_slice(&value.to_le_bytes());
            return;
        }
        for i in 0..width {
            self.write_u8(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }

    /// Reads an aligned-or-not 64-bit little-endian word.
    #[inline]
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read(addr, 8)
    }

    /// Writes a 64-bit little-endian word.
    #[inline]
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write(addr, value, 8)
    }

    /// Writes a slice of 64-bit words at consecutive 8-byte locations
    /// starting at `addr`.
    pub fn write_u64_slice(&mut self, addr: u64, values: &[u64]) {
        for (i, v) in values.iter().enumerate() {
            self.write_u64(addr + 8 * i as u64, *v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read_u64(0), 0);
        assert_eq!(m.read_u8(u64::MAX), 0);
        assert_eq!(m.page_count(), 0);
    }

    #[test]
    fn read_write_round_trip_all_widths() {
        let mut m = Memory::new();
        for width in [1u64, 2, 4, 8] {
            let addr = 0x1000 + width * 64;
            let value = 0x1122_3344_5566_7788u64;
            m.write(addr, value, width);
            let mask = if width == 8 {
                u64::MAX
            } else {
                (1u64 << (8 * width)) - 1
            };
            assert_eq!(m.read(addr, width), value & mask, "width {width}");
        }
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = 0x1FFC; // straddles the 0x1000/0x2000 page boundary
        m.write(addr, 0xAABB_CCDD_EEFF_0011, 8);
        assert_eq!(m.read(addr, 8), 0xAABB_CCDD_EEFF_0011);
        assert_eq!(m.page_count(), 2);
    }

    #[test]
    fn partial_writes_do_not_clobber_neighbours() {
        let mut m = Memory::new();
        m.write_u64(0x100, u64::MAX);
        m.write(0x102, 0, 2);
        assert_eq!(m.read_u64(0x100), 0xFFFF_FFFF_0000_FFFF);
    }

    #[test]
    fn write_slice_lays_out_consecutively() {
        let mut m = Memory::new();
        m.write_u64_slice(0x2000, &[1, 2, 3]);
        assert_eq!(m.read_u64(0x2000), 1);
        assert_eq!(m.read_u64(0x2008), 2);
        assert_eq!(m.read_u64(0x2010), 3);
    }

    #[test]
    #[should_panic(expected = "bad read width")]
    fn zero_width_read_panics() {
        Memory::new().read(0, 0);
    }

    #[test]
    #[should_panic(expected = "bad write width")]
    fn oversized_write_panics() {
        Memory::new().write(0, 0, 9);
    }
}
