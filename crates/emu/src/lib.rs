//! # crisp-emu
//!
//! Functional (architectural) emulator for the CRISP mini-ISA. It executes a
//! [`crisp_isa::Program`] against a sparse [`Memory`] image and yields the
//! retired dynamic instruction stream — the trace that drives the
//! cycle-level simulator, the profiler and the slice extractor.
//!
//! This plays the role DynamoRIO's Memtrace (or Intel PT with `PTWRITE`)
//! plays in the paper: every record carries the effective memory address, so
//! downstream analyses can observe *dependencies through memory*.
//!
//! ## Example
//!
//! ```
//! use crisp_isa::{ProgramBuilder, Reg, AluOp};
//! use crisp_emu::{Emulator, Memory};
//!
//! let mut b = ProgramBuilder::new();
//! b.li(Reg::new(1), 0x1000);
//! b.load(Reg::new(2), Reg::new(1), 0, 8);
//! b.alu_ri(AluOp::Add, Reg::new(2), Reg::new(2), 1);
//! b.store(Reg::new(1), 0, Reg::new(2), 8);
//! b.halt();
//! let program = b.build();
//!
//! let mut mem = Memory::new();
//! mem.write_u64(0x1000, 41);
//! let mut emu = Emulator::new(&program, mem);
//! let trace = emu.run(1_000);
//! assert_eq!(trace.len(), 5);
//! assert_eq!(emu.memory().read_u64(0x1000), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod emulator;
mod memory;

pub use emulator::{EmuError, Emulator, StopReason};
pub use memory::Memory;
