//! # crisp-sim
//!
//! A trace-driven, cycle-level out-of-order core simulator — the Scarab
//! substitute for the CRISP reproduction. It models the structures the
//! paper's mechanism depends on at the granularity the paper's evaluation
//! needs:
//!
//! * a decoupled frontend with TAGE direction prediction, an 8K-entry BTB,
//!   a return-address stack, an indirect-target predictor and FDIP-style
//!   instruction prefetching through a fetch-target queue;
//! * rename/dispatch into a reorder buffer and a unified reservation
//!   station;
//! * an **age-matrix scheduler** (paper Section 4.2 / Figure 6) with the
//!   one-bit CRISP PRIO extension, plus an oldest-ready-first baseline and
//!   a random-pick ablation;
//! * per-class functional units (4 ALU, 2 load, 1 store — Table 1),
//!   unpipelined dividers;
//! * exact memory disambiguation with store-to-load forwarding, load/store
//!   buffers, and the `crisp-mem` cache/DRAM hierarchy behind the load
//!   ports;
//! * retirement with ROB-head stall accounting (the paper's Section 5.2
//!   confirmation metric) and an optional per-cycle UPC timeline
//!   (Figure 1).
//!
//! The simulator consumes the *correct-path* dynamic instruction stream
//! produced by `crisp-emu`; branch mispredictions are modelled by stalling
//! fetch until the branch resolves plus a redirect penalty (standard
//! trace-driven methodology — wrong-path execution is not replayed).
//!
//! ## Example
//!
//! ```
//! use crisp_isa::{ProgramBuilder, Reg, AluOp, Cond};
//! use crisp_emu::{Emulator, Memory};
//! use crisp_sim::{Simulator, SimConfig};
//!
//! // Build and trace a short loop...
//! let mut b = ProgramBuilder::new();
//! let (r1, r2) = (Reg::new(1), Reg::new(2));
//! b.li(r1, 2000);
//! let top = b.label();
//! b.bind(top);
//! b.alu_ri(AluOp::Add, r2, r2, 3);
//! b.alu_ri(AluOp::Sub, r1, r1, 1);
//! b.branch(Cond::Ne, r1, Reg::ZERO, top);
//! b.halt();
//! let program = b.build();
//! let trace = crisp_emu::Emulator::new(&program, crisp_emu::Memory::new()).run(10_000);
//!
//! // ...and measure its IPC on the Table 1 core.
//! let result = Simulator::new(SimConfig::skylake()).run(&program, &trace, None);
//! assert!(result.ipc() > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod age_matrix;
mod bpu;
mod cancel;
mod config;
mod engine;
mod error;
mod snapshot;
mod stats;
mod wcodec;

pub use age_matrix::{AgeMatrix, BitSet};
pub use bpu::{BpuConfig, BranchOutcome, BranchPredictionUnit};
pub use cancel::{AbortReason, CancelToken, ProgressBeacon};
pub use config::{SchedulerKind, SimConfig};
pub use engine::Simulator;
pub use error::{ConfigError, DeadlockReport, HeadState, SimError};
pub use snapshot::{CheckpointSink, RestoreAudit, SimSnapshot, Snapshot};
pub use stats::{BranchPcStats, LoadPcStats, PipeRecord, Pipeview, SimResult, UpcTimeline};

// Re-exported for convenience: the memory config lives in crisp-mem.
pub use crisp_mem::{
    HierarchyConfig, PrefetchEffect, PrefetcherRegistry, PrefetcherSpec, MAX_PREFETCHERS,
};

// Re-exported for convenience: the observability types carried by
// [`SimResult`] (flight recorder, stall attribution, interval telemetry,
// host-side self-profile) live in crisp-obs.
pub use crisp_obs::{
    EventKind, FillLevel, HostProf, HostProfReport, StallClass, StallTable, TelemetryLog,
    TraceEvent, Tracer,
};
