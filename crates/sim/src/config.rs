use crisp_mem::HierarchyConfig;

/// Which instruction-scheduler policy the reservation station uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Table 1 baseline: issue the N oldest ready instructions each cycle
    /// (age-matrix pick without priority).
    #[default]
    OldestReadyFirst,
    /// CRISP: oldest ready *critical* instructions first, falling back to
    /// oldest ready (Figure 6's PRIO extension).
    Crisp,
    /// Ablation: a pure RAND scheduler with no age matrix — picks ready
    /// instructions in slot order (effectively random w.r.t. age).
    RandomReady,
}

/// Full configuration of the simulated core (paper Table 1 defaults via
/// [`SimConfig::skylake`]).
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Frontend fetch/decode width (instructions per cycle).
    pub fetch_width: usize,
    /// Retirement width (instructions per cycle).
    pub retire_width: usize,
    /// Maximum instructions issued to functional units per cycle.
    pub issue_width: usize,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Unified reservation-station entries.
    pub rs_entries: usize,
    /// Load-buffer entries (in-flight loads).
    pub load_buffer: usize,
    /// Store-buffer entries (in-flight stores).
    pub store_buffer: usize,
    /// ALU ports (also execute branches, mul/div, FP).
    pub alu_ports: usize,
    /// Load ports.
    pub load_ports: usize,
    /// Store ports.
    pub store_ports: usize,
    /// Scheduler policy.
    pub scheduler: SchedulerKind,
    /// Fetch-to-dispatch pipeline depth in cycles.
    pub frontend_depth: u64,
    /// Extra cycles to re-steer fetch after a resolved misprediction.
    pub redirect_penalty: u64,
    /// Fetch-bubble cycles when a taken control transfer misses the BTB.
    pub btb_miss_penalty: u64,
    /// Store-to-load forwarding latency in cycles.
    pub forward_latency: u64,
    /// Fetch-target-queue depth for FDIP instruction prefetching
    /// (instructions of lookahead; Table 1: 128 entries).
    pub ftq_entries: usize,
    /// Decoupled fetch-buffer (instruction queue) entries between fetch
    /// and dispatch.
    pub fetch_queue_entries: usize,
    /// Enable FDIP instruction prefetching.
    pub fdip: bool,
    /// Model every conditional branch as correctly predicted (the paper's
    /// perfect-BP analysis in Section 5.3).
    pub perfect_branch_prediction: bool,
    /// Memory-hierarchy configuration.
    pub memory: HierarchyConfig,
    /// Record the per-cycle retired-µop timeline (Figure 1). Costs memory
    /// proportional to cycles; off by default.
    pub record_upc_timeline: bool,
    /// Collect per-PC load/branch statistics (profiling runs).
    pub collect_pc_stats: bool,
    /// Record per-instruction pipeline timestamps for the pipeline viewer
    /// (costs memory proportional to instructions; off by default).
    pub record_pipeview: bool,
}

impl SimConfig {
    /// The paper's Table 1 machine: 6-wide Skylake-like core, 224-entry
    /// ROB, 96-entry unified RS, 4 ALU / 2 load / 1 store ports, TAGE +
    /// 8K BTB, FDIP with a 128-entry FTQ, BOP + stream prefetching,
    /// DDR4-2400.
    pub fn skylake() -> SimConfig {
        SimConfig {
            fetch_width: 6,
            retire_width: 6,
            issue_width: 6,
            rob_entries: 224,
            rs_entries: 96,
            load_buffer: 64,
            store_buffer: 128,
            alu_ports: 4,
            load_ports: 2,
            store_ports: 1,
            scheduler: SchedulerKind::OldestReadyFirst,
            frontend_depth: 5,
            redirect_penalty: 10,
            btb_miss_penalty: 2,
            forward_latency: 5,
            ftq_entries: 128,
            fetch_queue_entries: 64,
            fdip: true,
            perfect_branch_prediction: false,
            memory: HierarchyConfig::skylake_like(),
            record_upc_timeline: false,
            collect_pc_stats: true,
            record_pipeview: false,
        }
    }

    /// The Figure 9 sensitivity points: the Skylake core with RS/ROB set
    /// to `(rs, rob)` — e.g. (64, 180), (96, 224), (144, 336), (192, 448).
    pub fn with_window(rs: usize, rob: usize) -> SimConfig {
        SimConfig {
            rs_entries: rs,
            rob_entries: rob,
            ..SimConfig::skylake()
        }
    }

    /// Returns a copy with the scheduler replaced.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> SimConfig {
        self.scheduler = scheduler;
        self
    }

    /// Validates structural invariants.
    ///
    /// # Panics
    ///
    /// Panics if widths or structure sizes are zero, or the RS is larger
    /// than the ROB.
    pub fn validate(&self) {
        assert!(self.fetch_width > 0 && self.retire_width > 0 && self.issue_width > 0);
        assert!(self.rob_entries > 0 && self.rs_entries > 0);
        assert!(
            self.rs_entries <= self.rob_entries,
            "RS cannot exceed ROB"
        );
        assert!(self.alu_ports + self.load_ports + self.store_ports > 0);
        assert!(self.load_buffer > 0 && self.store_buffer > 0);
    }
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig::skylake()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skylake_matches_table1() {
        let c = SimConfig::skylake();
        assert_eq!(c.fetch_width, 6);
        assert_eq!(c.rob_entries, 224);
        assert_eq!(c.rs_entries, 96);
        assert_eq!(c.alu_ports, 4);
        assert_eq!(c.load_ports, 2);
        assert_eq!(c.store_ports, 1);
        assert_eq!(c.load_buffer, 64);
        assert_eq!(c.store_buffer, 128);
        assert_eq!(c.ftq_entries, 128);
        assert_eq!(c.scheduler, SchedulerKind::OldestReadyFirst);
        c.validate();
    }

    #[test]
    fn window_sweep_constructor() {
        let c = SimConfig::with_window(144, 336);
        assert_eq!(c.rs_entries, 144);
        assert_eq!(c.rob_entries, 336);
        c.validate();
    }

    #[test]
    fn with_scheduler_swaps_policy() {
        let c = SimConfig::skylake().with_scheduler(SchedulerKind::Crisp);
        assert_eq!(c.scheduler, SchedulerKind::Crisp);
    }

    #[test]
    #[should_panic(expected = "RS cannot exceed ROB")]
    fn rs_larger_than_rob_rejected() {
        SimConfig::with_window(300, 224).validate();
    }
}
