use crate::cancel::CancelToken;
use crisp_isa::ConfigError;
use crisp_mem::HierarchyConfig;

/// Which instruction-scheduler policy the reservation station uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Table 1 baseline: issue the N oldest ready instructions each cycle
    /// (age-matrix pick without priority).
    #[default]
    OldestReadyFirst,
    /// CRISP: oldest ready *critical* instructions first, falling back to
    /// oldest ready (Figure 6's PRIO extension).
    Crisp,
    /// Ablation: a pure RAND scheduler with no age matrix — picks ready
    /// instructions in slot order (effectively random w.r.t. age).
    RandomReady,
}

/// Full configuration of the simulated core (paper Table 1 defaults via
/// [`SimConfig::skylake`]).
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Frontend fetch/decode width (instructions per cycle).
    pub fetch_width: usize,
    /// Retirement width (instructions per cycle).
    pub retire_width: usize,
    /// Maximum instructions issued to functional units per cycle.
    pub issue_width: usize,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Unified reservation-station entries.
    pub rs_entries: usize,
    /// Load-buffer entries (in-flight loads).
    pub load_buffer: usize,
    /// Store-buffer entries (in-flight stores).
    pub store_buffer: usize,
    /// ALU ports (also execute branches, mul/div, FP).
    pub alu_ports: usize,
    /// Load ports.
    pub load_ports: usize,
    /// Store ports.
    pub store_ports: usize,
    /// Scheduler policy.
    pub scheduler: SchedulerKind,
    /// Fetch-to-dispatch pipeline depth in cycles.
    pub frontend_depth: u64,
    /// Extra cycles to re-steer fetch after a resolved misprediction.
    pub redirect_penalty: u64,
    /// Fetch-bubble cycles when a taken control transfer misses the BTB.
    pub btb_miss_penalty: u64,
    /// Store-to-load forwarding latency in cycles.
    pub forward_latency: u64,
    /// Fetch-target-queue depth for FDIP instruction prefetching
    /// (instructions of lookahead; Table 1: 128 entries).
    pub ftq_entries: usize,
    /// Decoupled fetch-buffer (instruction queue) entries between fetch
    /// and dispatch.
    pub fetch_queue_entries: usize,
    /// Enable FDIP instruction prefetching.
    pub fdip: bool,
    /// Model every conditional branch as correctly predicted (the paper's
    /// perfect-BP analysis in Section 5.3).
    pub perfect_branch_prediction: bool,
    /// Memory-hierarchy configuration.
    pub memory: HierarchyConfig,
    /// Record the per-cycle retired-µop timeline (Figure 1). Costs memory
    /// proportional to cycles; off by default.
    pub record_upc_timeline: bool,
    /// Collect per-PC load/branch statistics (profiling runs).
    pub collect_pc_stats: bool,
    /// Record per-instruction pipeline timestamps for the pipeline viewer
    /// (costs memory proportional to instructions; off by default).
    pub record_pipeview: bool,
    /// No-retire-progress watchdog: abort the run with a
    /// [`crate::DeadlockReport`] if no instruction retires for this many
    /// cycles. Must be nonzero.
    pub watchdog_cycles: u64,
    /// Opt-in invariant checker (`crisp --check`): verify per-instruction
    /// stage ordering, ROB/RS/LSQ occupancy bounds, age-matrix/RS
    /// consistency every cycle and MSHR leak-freedom at drain. Costs
    /// roughly one extra window scan per cycle; off by default.
    pub check_invariants: bool,
    /// Fault-injection hook for testing the watchdog: the scheduler stops
    /// issuing once this many instructions have retired, freezing the
    /// machine. `None` (the default) disables the hook.
    pub freeze_scheduler_after: Option<u64>,
    /// Cooperative cancellation: when set, the engine polls the token
    /// every [`SimConfig::cancel_check_interval`] cycles and aborts with
    /// [`crate::SimError::Cancelled`] / [`crate::SimError::DeadlineExceeded`]
    /// instead of being killed from outside. `None` (the default) never
    /// aborts.
    pub cancel: Option<CancelToken>,
    /// How often (in cycles) the cancellation token is polled. Polling
    /// costs one `Instant::now()` per check; the default (8192) keeps that
    /// overhead unmeasurable while bounding cancellation latency to a few
    /// microseconds of simulated work. Must be nonzero.
    pub cancel_check_interval: u64,
    /// Hard cap on simulated cycles: the run aborts with
    /// [`crate::SimError::CycleBudgetExhausted`] when `now` reaches the
    /// budget. Unlike the no-progress watchdog this also bounds *slow but
    /// live* runs. `None` (the default) is unlimited; `Some(0)` is
    /// rejected by validation.
    pub cycle_budget: Option<u64>,
    /// Cooperative checkpointing: when set (together with
    /// [`SimConfig::checkpoint_sink`]), the engine emits a full-machine
    /// [`crate::SimSnapshot`] roughly every this many cycles. Emission
    /// happens on the cancellation poll path, so the actual cadence is
    /// rounded up to the next multiple of
    /// [`SimConfig::cancel_check_interval`]. Must be nonzero when set;
    /// `None` (the default) never checkpoints.
    pub checkpoint_interval: Option<u64>,
    /// Receives the checkpoints emitted under
    /// [`SimConfig::checkpoint_interval`]. Without a sink, the interval is
    /// inert.
    pub checkpoint_sink: Option<crate::snapshot::CheckpointSink>,
    /// Resume state: a snapshot previously emitted by a checkpointing run
    /// of the *same* program, trace, criticality map and configuration.
    /// The engine restores it before executing any cycle and continues the
    /// workload to completion; restoring into a mismatched machine fails
    /// with [`crate::SimError::SnapshotRestore`].
    pub restore: Option<std::sync::Arc<crate::snapshot::SimSnapshot>>,
    /// Flight-recorder capacity in pipeline events: when set, the engine
    /// records per-instruction lifecycle events into a ring buffer of this
    /// many entries (exported via `SimResult::tracer`). `None` (the
    /// default) keeps the zero-overhead disabled path; `Some(0)` is
    /// rejected by validation.
    pub tracer_capacity: Option<usize>,
    /// Interval telemetry: when set, the engine samples IPC, occupancies,
    /// MSHR pressure, MLP, MPKI, miss rates and the critical-issue mix
    /// roughly every this many cycles. Sampling rides the cancellation
    /// poll path, so the actual cadence is rounded up to the next multiple
    /// of [`SimConfig::cancel_check_interval`]. Must be nonzero when set;
    /// `None` (the default) never samples.
    pub telemetry_interval: Option<u64>,
    /// Charge every ROB-head stall cycle to the blocking instruction's PC
    /// and stall class in `SimResult::stall_table` (and tally ROB-empty
    /// cycles as frontend stalls). Off by default: the table costs a hash
    /// update per stall cycle.
    pub stall_attribution: bool,
    /// Progress beacon: when set, the engine publishes (cycle, retired)
    /// through this shared handle on every cancellation poll, so an
    /// external supervisor can journal heartbeat records for a run it
    /// cannot otherwise observe.
    pub progress: Option<crate::cancel::ProgressBeacon>,
    /// Host-side self-profiling: attribute the simulator's *host* time
    /// to engine phases (fetch/rename/dispatch/wakeup/select/execute/
    /// lsq/mshr/dram/retire) and tally structure-scan counters, exported
    /// via `SimResult::hostprof`. Off by default: enabled runs pay one
    /// monotonic-clock read per phase transition, so absolute throughput
    /// of a profiled run is not meaningful — the attribution is.
    pub hostprof: bool,
}

impl SimConfig {
    /// The paper's Table 1 machine: 6-wide Skylake-like core, 224-entry
    /// ROB, 96-entry unified RS, 4 ALU / 2 load / 1 store ports, TAGE +
    /// 8K BTB, FDIP with a 128-entry FTQ, BOP + stream prefetching,
    /// DDR4-2400.
    pub fn skylake() -> SimConfig {
        SimConfig {
            fetch_width: 6,
            retire_width: 6,
            issue_width: 6,
            rob_entries: 224,
            rs_entries: 96,
            load_buffer: 64,
            store_buffer: 128,
            alu_ports: 4,
            load_ports: 2,
            store_ports: 1,
            scheduler: SchedulerKind::OldestReadyFirst,
            frontend_depth: 5,
            redirect_penalty: 10,
            btb_miss_penalty: 2,
            forward_latency: 5,
            ftq_entries: 128,
            fetch_queue_entries: 64,
            fdip: true,
            perfect_branch_prediction: false,
            memory: HierarchyConfig::skylake_like(),
            record_upc_timeline: false,
            collect_pc_stats: true,
            record_pipeview: false,
            watchdog_cycles: 2_000_000,
            check_invariants: false,
            freeze_scheduler_after: None,
            cancel: None,
            cancel_check_interval: 8192,
            cycle_budget: None,
            checkpoint_interval: None,
            checkpoint_sink: None,
            restore: None,
            tracer_capacity: None,
            telemetry_interval: None,
            stall_attribution: false,
            progress: None,
            hostprof: false,
        }
    }

    /// The Figure 9 sensitivity points: the Skylake core with RS/ROB set
    /// to `(rs, rob)` — e.g. (64, 180), (96, 224), (144, 336), (192, 448).
    pub fn with_window(rs: usize, rob: usize) -> SimConfig {
        SimConfig {
            rs_entries: rs,
            rob_entries: rob,
            ..SimConfig::skylake()
        }
    }

    /// Returns a copy with the scheduler replaced.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> SimConfig {
        self.scheduler = scheduler;
        self
    }

    /// Validates structural invariants: nonzero widths and window
    /// structures, a RS no larger than the ROB, an issue width the RS can
    /// feed, at least one port of every execution class (a machine with no
    /// load ports deadlocks on its first load), and a coherent memory
    /// hierarchy.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.fetch_width == 0 {
            return Err(ConfigError::new("fetch_width", "must be nonzero (got 0)"));
        }
        if self.retire_width == 0 {
            return Err(ConfigError::new("retire_width", "must be nonzero (got 0)"));
        }
        if self.issue_width == 0 {
            return Err(ConfigError::new("issue_width", "must be nonzero (got 0)"));
        }
        if self.rob_entries == 0 {
            return Err(ConfigError::new("rob_entries", "must be nonzero (got 0)"));
        }
        if self.rs_entries == 0 {
            return Err(ConfigError::new("rs_entries", "must be nonzero (got 0)"));
        }
        if self.rs_entries > self.rob_entries {
            return Err(ConfigError::new(
                "rs_entries",
                format!(
                    "RS cannot exceed ROB ({} > {})",
                    self.rs_entries, self.rob_entries
                ),
            ));
        }
        if self.issue_width > self.rs_entries {
            return Err(ConfigError::new(
                "issue_width",
                format!(
                    "cannot exceed rs_entries ({} > {}): the scheduler picks from the RS",
                    self.issue_width, self.rs_entries
                ),
            ));
        }
        if self.alu_ports == 0 {
            return Err(ConfigError::new(
                "alu_ports",
                "must be nonzero: ALU/branch instructions could never issue",
            ));
        }
        if self.load_ports == 0 {
            return Err(ConfigError::new(
                "load_ports",
                "must be nonzero: loads could never issue",
            ));
        }
        if self.store_ports == 0 {
            return Err(ConfigError::new(
                "store_ports",
                "must be nonzero: stores could never issue",
            ));
        }
        if self.load_buffer == 0 {
            return Err(ConfigError::new("load_buffer", "must be nonzero (got 0)"));
        }
        if self.store_buffer == 0 {
            return Err(ConfigError::new("store_buffer", "must be nonzero (got 0)"));
        }
        if self.fetch_queue_entries == 0 {
            return Err(ConfigError::new(
                "fetch_queue_entries",
                "must be nonzero (got 0)",
            ));
        }
        if self.watchdog_cycles == 0 {
            return Err(ConfigError::new(
                "watchdog_cycles",
                "must be nonzero (got 0): a zero watchdog aborts every run",
            ));
        }
        if self.cancel_check_interval == 0 {
            return Err(ConfigError::new(
                "cancel_check_interval",
                "must be nonzero (got 0): the poll cadence divides the cycle count",
            ));
        }
        if self.cycle_budget == Some(0) {
            return Err(ConfigError::new(
                "cycle_budget",
                "must be nonzero when set: a zero budget aborts every run at cycle 0",
            ));
        }
        if self.checkpoint_interval == Some(0) {
            return Err(ConfigError::new(
                "checkpoint_interval",
                "must be nonzero when set: a zero interval checkpoints every poll",
            ));
        }
        if self.tracer_capacity == Some(0) {
            return Err(ConfigError::new(
                "tracer_capacity",
                "must be nonzero when set: a zero-entry ring records nothing",
            ));
        }
        if self.telemetry_interval == Some(0) {
            return Err(ConfigError::new(
                "telemetry_interval",
                "must be nonzero when set: a zero interval samples every poll",
            ));
        }
        self.memory
            .validate()
            .map_err(|m| ConfigError::new("memory", m))?;
        Ok(())
    }
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig::skylake()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skylake_matches_table1() {
        let c = SimConfig::skylake();
        assert_eq!(c.fetch_width, 6);
        assert_eq!(c.rob_entries, 224);
        assert_eq!(c.rs_entries, 96);
        assert_eq!(c.alu_ports, 4);
        assert_eq!(c.load_ports, 2);
        assert_eq!(c.store_ports, 1);
        assert_eq!(c.load_buffer, 64);
        assert_eq!(c.store_buffer, 128);
        assert_eq!(c.ftq_entries, 128);
        assert_eq!(c.scheduler, SchedulerKind::OldestReadyFirst);
        c.validate().expect("Table 1 machine is valid");
    }

    #[test]
    fn window_sweep_constructor() {
        let c = SimConfig::with_window(144, 336);
        assert_eq!(c.rs_entries, 144);
        assert_eq!(c.rob_entries, 336);
        c.validate().expect("sweep point is valid");
    }

    #[test]
    fn with_scheduler_swaps_policy() {
        let c = SimConfig::skylake().with_scheduler(SchedulerKind::Crisp);
        assert_eq!(c.scheduler, SchedulerKind::Crisp);
    }

    #[test]
    fn rs_larger_than_rob_rejected() {
        let err = SimConfig::with_window(300, 224).validate().unwrap_err();
        assert_eq!(err.field, "rs_entries");
        assert!(err.message.contains("RS cannot exceed ROB"));
    }

    #[test]
    fn degenerate_machines_name_the_offending_field() {
        type Mutate = fn(&mut SimConfig);
        let cases: [(&str, Mutate); 15] = [
            ("fetch_width", |c| c.fetch_width = 0),
            ("issue_width", |c| c.issue_width = 0),
            ("rob_entries", |c| c.rob_entries = 0),
            ("rs_entries", |c| c.rs_entries = 0),
            ("alu_ports", |c| c.alu_ports = 0),
            ("load_ports", |c| c.load_ports = 0),
            ("store_ports", |c| c.store_ports = 0),
            ("load_buffer", |c| c.load_buffer = 0),
            ("store_buffer", |c| c.store_buffer = 0),
            ("watchdog_cycles", |c| c.watchdog_cycles = 0),
            ("cancel_check_interval", |c| c.cancel_check_interval = 0),
            ("cycle_budget", |c| c.cycle_budget = Some(0)),
            ("checkpoint_interval", |c| c.checkpoint_interval = Some(0)),
            ("tracer_capacity", |c| c.tracer_capacity = Some(0)),
            ("telemetry_interval", |c| c.telemetry_interval = Some(0)),
        ];
        for (field, mutate) in cases {
            let mut c = SimConfig::skylake();
            mutate(&mut c);
            let err = c.validate().unwrap_err();
            assert_eq!(err.field, field, "wrong field for {field}: {err}");
        }
    }

    #[test]
    fn issue_width_cannot_exceed_rs() {
        let mut c = SimConfig::skylake();
        c.issue_width = c.rs_entries + 1;
        let err = c.validate().unwrap_err();
        assert_eq!(err.field, "issue_width");
    }

    #[test]
    fn nonzero_cycle_budget_and_cancel_token_are_valid() {
        let mut c = SimConfig::skylake();
        c.cycle_budget = Some(1_000_000);
        c.cancel = Some(CancelToken::new());
        c.validate()
            .expect("budgeted, cancellable machine is valid");
    }

    #[test]
    fn bad_memory_geometry_surfaces_as_memory_field() {
        let mut c = SimConfig::skylake();
        c.memory.l1d_latency = 0;
        let err = c.validate().unwrap_err();
        assert_eq!(err.field, "memory");
    }
}
