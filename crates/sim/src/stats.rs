use crisp_isa::Pc;
use crisp_mem::MemStats;
use std::collections::HashMap;

/// Per-static-load statistics collected during a simulation (the simulated
/// PEBS/PMU stream the profiler consumes).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LoadPcStats {
    /// Dynamic executions of this load.
    pub execs: u64,
    /// Executions served by L1.
    pub l1_hits: u64,
    /// Executions served by the LLC.
    pub llc_hits: u64,
    /// Executions that went to DRAM (LLC misses).
    pub llc_misses: u64,
    /// Total observed load-to-use latency in cycles.
    pub total_latency: u64,
    /// Sum over LLC misses of concurrently outstanding DRAM loads
    /// (including this one) — MLP at miss time.
    pub mlp_sum: u64,
}

impl LoadPcStats {
    /// The load's LLC miss ratio.
    pub fn llc_miss_ratio(&self) -> f64 {
        if self.execs == 0 {
            0.0
        } else {
            self.llc_misses as f64 / self.execs as f64
        }
    }

    /// Average memory access time in cycles.
    pub fn amat(&self) -> f64 {
        if self.execs == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.execs as f64
        }
    }

    /// Average memory-level parallelism observed at this load's misses.
    pub fn avg_mlp(&self) -> f64 {
        if self.llc_misses == 0 {
            0.0
        } else {
            self.mlp_sum as f64 / self.llc_misses as f64
        }
    }
}

/// Per-static-branch statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BranchPcStats {
    /// Dynamic executions.
    pub execs: u64,
    /// Mispredictions.
    pub mispredicts: u64,
}

impl BranchPcStats {
    /// The branch's misprediction ratio.
    pub fn mispredict_ratio(&self) -> f64 {
        if self.execs == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.execs as f64
        }
    }
}

/// The per-cycle retired-instruction timeline of Figure 1.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UpcTimeline {
    counts: Vec<u8>,
}

impl UpcTimeline {
    pub(crate) fn push(&mut self, retired: usize) {
        self.counts.push(retired.min(255) as u8);
    }

    /// Retired instructions at each cycle.
    pub fn as_slice(&self) -> &[u8] {
        &self.counts
    }

    /// Average µops retired per cycle over a window.
    pub fn average(&self, from: usize, to: usize) -> f64 {
        let to = to.min(self.counts.len());
        if from >= to {
            return 0.0;
        }
        let sum: u64 = self.counts[from..to].iter().map(|&c| u64::from(c)).sum();
        sum as f64 / (to - from) as f64
    }

    /// Serialises the per-cycle counts as a word vector.
    pub fn snapshot_words(&self) -> Vec<u64> {
        let mut w = vec![self.counts.len() as u64];
        w.extend(self.counts.iter().map(|&c| u64::from(c)));
        w
    }

    /// Restores state captured by [`UpcTimeline::snapshot_words`],
    /// replacing the current timeline.
    ///
    /// # Errors
    ///
    /// Rejects malformed input.
    pub fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
        let mut r = crate::wcodec::Reader::new(words, "upc-timeline");
        let n = r.count()?;
        let mut counts = Vec::with_capacity(n);
        for _ in 0..n {
            let v = r.u64()?;
            counts.push(
                u8::try_from(v).map_err(|_| format!("upc-timeline snapshot: count {v} > 255"))?,
            );
        }
        r.finish()?;
        self.counts = counts;
        Ok(())
    }

    /// Downsamples the timeline into `buckets` averages (for plotting).
    pub fn bucketed(&self, buckets: usize) -> Vec<f64> {
        if self.counts.is_empty() || buckets == 0 {
            return Vec::new();
        }
        let per = self.counts.len().div_ceil(buckets);
        self.counts
            .chunks(per)
            .map(|c| c.iter().map(|&x| f64::from(x)).sum::<f64>() / c.len() as f64)
            .collect()
    }
}

/// Per-instruction pipeline timestamps for the pipeline viewer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipeRecord {
    /// Dynamic sequence number.
    pub seq: u64,
    /// Static pc.
    pub pc: Pc,
    /// Cycle fetched into the fetch buffer.
    pub fetch: u64,
    /// Cycle dispatched into ROB/RS.
    pub dispatch: u64,
    /// Cycle issued to a functional unit.
    pub issue: u64,
    /// Cycle the result became available.
    pub complete: u64,
    /// Cycle retired.
    pub retire: u64,
}

/// A gem5-O3-pipeview-style textual renderer over [`PipeRecord`]s.
///
/// Each instruction renders as one lane:
/// `f` fetch, `d` dispatch wait, `i` issue wait, `=` executing,
/// `.` completed-waiting-to-retire, `r` retire.
#[derive(Clone, Debug, Default)]
pub struct Pipeview {
    records: Vec<PipeRecord>,
}

impl Pipeview {
    pub(crate) fn push(&mut self, rec: PipeRecord) {
        self.records.push(rec);
    }

    /// The raw records.
    pub fn records(&self) -> &[PipeRecord] {
        &self.records
    }

    /// Serialises the records as a word vector.
    pub fn snapshot_words(&self) -> Vec<u64> {
        let mut w = vec![self.records.len() as u64];
        for r in &self.records {
            w.extend_from_slice(&[
                r.seq,
                u64::from(r.pc),
                r.fetch,
                r.dispatch,
                r.issue,
                r.complete,
                r.retire,
            ]);
        }
        w
    }

    /// Restores state captured by [`Pipeview::snapshot_words`], replacing
    /// the current records.
    ///
    /// # Errors
    ///
    /// Rejects malformed input.
    pub fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
        let mut r = crate::wcodec::Reader::new(words, "pipeview");
        let n = r.count()?;
        let mut records = Vec::with_capacity(n);
        for _ in 0..n {
            let seq = r.u64()?;
            let pc = r.u64()?;
            let pc = Pc::try_from(pc).map_err(|_| format!("pipeview snapshot: bad pc {pc}"))?;
            records.push(PipeRecord {
                seq,
                pc,
                fetch: r.u64()?,
                dispatch: r.u64()?,
                issue: r.u64()?,
                complete: r.u64()?,
                retire: r.u64()?,
            });
        }
        r.finish()?;
        self.records = records;
        Ok(())
    }

    /// Renders the instructions whose sequence numbers fall in
    /// `[from, to)`, one lane per instruction, time flowing rightward from
    /// the earliest fetch in the window.
    pub fn render(&self, from: u64, to: u64) -> String {
        let window: Vec<&PipeRecord> = self
            .records
            .iter()
            .filter(|r| (from..to).contains(&r.seq))
            .collect();
        let Some(origin) = window.iter().map(|r| r.fetch).min() else {
            return String::new();
        };
        let mut out = String::new();
        for r in window {
            let col = |c: u64| (c - origin) as usize;
            let width = col(r.retire) + 1;
            let mut lane = vec![b' '; width];
            for (a, b, ch) in [
                (r.fetch, r.dispatch, b'f'),
                (r.dispatch, r.issue, b'd'),
                (r.issue, r.issue, b'i'),
                (r.issue + 1, r.complete, b'='),
                (r.complete, r.retire, b'.'),
            ] {
                for slot in lane.iter_mut().take(col(b).min(width)).skip(col(a)) {
                    *slot = ch;
                }
            }
            lane[col(r.issue).min(width - 1)] = b'i';
            lane[width - 1] = b'r';
            out.push_str(&format!(
                "{:>6} pc{:<5} |{}\n",
                r.seq,
                r.pc,
                String::from_utf8(lane).expect("ascii")
            ));
        }
        out
    }
}

/// The complete result of one simulation run.
#[derive(Clone, Debug, Default)]
pub struct SimResult {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub retired: u64,
    /// Cycles where the ROB was non-empty but its head had not completed
    /// (the paper's ROB-head stall metric).
    pub rob_head_stall_cycles: u64,
    /// Cycles where fetch was blocked waiting for a mispredicted branch to
    /// resolve (plus redirect).
    pub fetch_stall_mispredict_cycles: u64,
    /// Cycles where fetch was blocked on the instruction cache.
    pub fetch_stall_icache_cycles: u64,
    /// Conditional branches fetched.
    pub cond_branches: u64,
    /// Conditional-branch mispredictions.
    pub cond_mispredicts: u64,
    /// Indirect-target mispredictions (jumps + returns).
    pub indirect_mispredicts: u64,
    /// Memory hierarchy counters.
    pub mem: MemStats,
    /// Per-load-PC statistics (empty unless `collect_pc_stats`).
    pub load_pc_stats: HashMap<Pc, LoadPcStats>,
    /// Per-branch-PC statistics (empty unless `collect_pc_stats`).
    pub branch_pc_stats: HashMap<Pc, BranchPcStats>,
    /// Per-cycle retired counts (empty unless `record_upc_timeline`).
    pub upc: UpcTimeline,
    /// Per-instruction pipeline timestamps (empty unless
    /// `record_pipeview`).
    pub pipeview: Pipeview,
    /// Critical instructions issued (the CRISP scheduler's priority
    /// class); with [`SimResult::issued_noncritical`] this is the
    /// telemetry issue-mix numerator.
    pub issued_critical: u64,
    /// Non-critical instructions issued.
    pub issued_noncritical: u64,
    /// The pipeline flight recorder ([`crisp_obs::Tracer::Off`] unless
    /// `tracer_capacity` is set).
    pub tracer: crisp_obs::Tracer,
    /// Per-PC ROB-head stall attribution (empty unless
    /// `stall_attribution`).
    pub stall_table: crisp_obs::StallTable,
    /// Interval telemetry samples (empty unless `telemetry_interval`).
    pub telemetry: crisp_obs::TelemetryLog,
    /// Host-side self-profile (all-zero unless `SimConfig::hostprof`).
    /// Deliberately *excluded* from [`SimResult::snapshot_words`]: host
    /// nanoseconds are nondeterministic, and the snapshot encoding is
    /// the byte-identity witness behind `--audit-restore`.
    pub hostprof: crisp_obs::HostProfReport,
}

impl SimResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Conditional-branch mispredictions per kilo-instruction.
    pub fn branch_mpki(&self) -> f64 {
        if self.retired == 0 {
            0.0
        } else {
            self.cond_mispredicts as f64 * 1000.0 / self.retired as f64
        }
    }

    /// Demand-load LLC misses per kilo-instruction.
    pub fn llc_load_mpki(&self) -> f64 {
        if self.retired == 0 {
            0.0
        } else {
            self.mem.load_llc_misses as f64 * 1000.0 / self.retired as f64
        }
    }

    /// Instruction-cache misses per kilo-instruction (Figure 12's
    /// worst-case metric).
    pub fn icache_mpki(&self) -> f64 {
        if self.retired == 0 {
            0.0
        } else {
            self.mem.l1i.misses as f64 * 1000.0 / self.retired as f64
        }
    }

    /// Data-prefetch accuracy across every configured unit: the fraction
    /// of issued prefetches a demand access later consumed. 0 when no
    /// prefetches were issued.
    pub fn prefetch_accuracy(&self) -> f64 {
        let t = self.mem.prefetch_totals();
        if t.issued == 0 {
            0.0
        } else {
            t.useful as f64 / t.issued as f64
        }
    }

    /// Data-prefetch timeliness: the fraction of *useful* prefetches that
    /// fully hid the miss latency (the demand found the line resident
    /// rather than merging into the in-flight fill). 0 when nothing was
    /// useful.
    pub fn prefetch_timeliness(&self) -> f64 {
        let t = self.mem.prefetch_totals();
        if t.useful == 0 {
            0.0
        } else {
            (t.useful - t.late) as f64 / t.useful as f64
        }
    }

    /// Data-prefetch coverage against a no-prefetch baseline run: the
    /// fraction of the baseline's demand-load LLC misses this run
    /// eliminated. Clamped at 0 (a polluting prefetcher can add misses).
    pub fn prefetch_coverage_vs(&self, nopf: &SimResult) -> f64 {
        if nopf.mem.load_llc_misses == 0 {
            0.0
        } else {
            let base = nopf.mem.load_llc_misses as f64;
            ((base - self.mem.load_llc_misses as f64) / base).max(0.0)
        }
    }

    /// Relative IPC speedup of `self` over `baseline`, in percent.
    pub fn speedup_over(&self, baseline: &SimResult) -> f64 {
        let base = baseline.ipc();
        if base == 0.0 {
            0.0
        } else {
            (self.ipc() / base - 1.0) * 100.0
        }
    }

    /// Serialises every counter, the per-PC maps (sorted by PC so the
    /// encoding is deterministic), the UPC timeline and the pipeview
    /// records as a word vector.
    pub fn snapshot_words(&self) -> Vec<u64> {
        let mut w = vec![
            self.cycles,
            self.retired,
            self.rob_head_stall_cycles,
            self.fetch_stall_mispredict_cycles,
            self.fetch_stall_icache_cycles,
            self.cond_branches,
            self.cond_mispredicts,
            self.indirect_mispredicts,
        ];
        w.extend_from_slice(&[
            self.mem.loads,
            self.mem.stores,
            self.mem.fetches,
            self.mem.load_llc_misses,
            self.mem.load_merges,
            self.mem.prefetches_issued,
        ]);
        for c in [&self.mem.l1i, &self.mem.l1d, &self.mem.llc] {
            w.extend_from_slice(&[
                c.accesses,
                c.misses,
                c.prefetch_fills,
                c.prefetch_hits,
                c.prefetch_probes,
                c.prefetch_misses,
            ]);
        }
        for e in &self.mem.prefetch {
            w.extend_from_slice(&[e.issued, e.useful, e.late, e.polluting]);
        }
        w.extend_from_slice(&[
            self.mem.dram.requests,
            self.mem.dram.row_hits,
            self.mem.dram.row_misses,
            self.mem.dram.row_conflicts,
            self.mem.dram.total_latency,
        ]);
        let mut loads: Vec<(&Pc, &LoadPcStats)> = self.load_pc_stats.iter().collect();
        loads.sort_by_key(|(pc, _)| **pc);
        w.push(loads.len() as u64);
        for (pc, s) in loads {
            w.extend_from_slice(&[
                u64::from(*pc),
                s.execs,
                s.l1_hits,
                s.llc_hits,
                s.llc_misses,
                s.total_latency,
                s.mlp_sum,
            ]);
        }
        let mut branches: Vec<(&Pc, &BranchPcStats)> = self.branch_pc_stats.iter().collect();
        branches.sort_by_key(|(pc, _)| **pc);
        w.push(branches.len() as u64);
        for (pc, s) in branches {
            w.extend_from_slice(&[u64::from(*pc), s.execs, s.mispredicts]);
        }
        crate::wcodec::push_section(&mut w, self.upc.snapshot_words());
        crate::wcodec::push_section(&mut w, self.pipeview.snapshot_words());
        w.push(self.issued_critical);
        w.push(self.issued_noncritical);
        crate::wcodec::push_section(&mut w, self.tracer.snapshot_words());
        crate::wcodec::push_section(&mut w, self.stall_table.snapshot_words());
        crate::wcodec::push_section(&mut w, self.telemetry.snapshot_words());
        w
    }

    /// Restores state captured by [`SimResult::snapshot_words`]. On error
    /// the result's state is unspecified.
    ///
    /// # Errors
    ///
    /// Rejects malformed input, including duplicate per-PC entries.
    pub fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
        let mut r = crate::wcodec::Reader::new(words, "sim-result");
        self.cycles = r.u64()?;
        self.retired = r.u64()?;
        self.rob_head_stall_cycles = r.u64()?;
        self.fetch_stall_mispredict_cycles = r.u64()?;
        self.fetch_stall_icache_cycles = r.u64()?;
        self.cond_branches = r.u64()?;
        self.cond_mispredicts = r.u64()?;
        self.indirect_mispredicts = r.u64()?;
        self.mem.loads = r.u64()?;
        self.mem.stores = r.u64()?;
        self.mem.fetches = r.u64()?;
        self.mem.load_llc_misses = r.u64()?;
        self.mem.load_merges = r.u64()?;
        self.mem.prefetches_issued = r.u64()?;
        for c in [&mut self.mem.l1i, &mut self.mem.l1d, &mut self.mem.llc] {
            c.accesses = r.u64()?;
            c.misses = r.u64()?;
            c.prefetch_fills = r.u64()?;
            c.prefetch_hits = r.u64()?;
            c.prefetch_probes = r.u64()?;
            c.prefetch_misses = r.u64()?;
        }
        for e in &mut self.mem.prefetch {
            e.issued = r.u64()?;
            e.useful = r.u64()?;
            e.late = r.u64()?;
            e.polluting = r.u64()?;
        }
        self.mem.dram.requests = r.u64()?;
        self.mem.dram.row_hits = r.u64()?;
        self.mem.dram.row_misses = r.u64()?;
        self.mem.dram.row_conflicts = r.u64()?;
        self.mem.dram.total_latency = r.u64()?;
        let bad_pc = |pc: u64| format!("sim-result snapshot: bad pc {pc}");
        let n = r.count()?;
        self.load_pc_stats = HashMap::with_capacity(n);
        for _ in 0..n {
            let pc = r.u64()?;
            let pc = Pc::try_from(pc).map_err(|_| bad_pc(pc))?;
            let s = LoadPcStats {
                execs: r.u64()?,
                l1_hits: r.u64()?,
                llc_hits: r.u64()?,
                llc_misses: r.u64()?,
                total_latency: r.u64()?,
                mlp_sum: r.u64()?,
            };
            if self.load_pc_stats.insert(pc, s).is_some() {
                return Err(format!("sim-result snapshot: duplicate load pc {pc}"));
            }
        }
        let n = r.count()?;
        self.branch_pc_stats = HashMap::with_capacity(n);
        for _ in 0..n {
            let pc = r.u64()?;
            let pc = Pc::try_from(pc).map_err(|_| bad_pc(pc))?;
            let s = BranchPcStats {
                execs: r.u64()?,
                mispredicts: r.u64()?,
            };
            if self.branch_pc_stats.insert(pc, s).is_some() {
                return Err(format!("sim-result snapshot: duplicate branch pc {pc}"));
            }
        }
        self.upc.restore_words(r.section()?)?;
        self.pipeview.restore_words(r.section()?)?;
        self.issued_critical = r.u64()?;
        self.issued_noncritical = r.u64()?;
        self.tracer.restore_words(r.section()?)?;
        self.stall_table.restore_words(r.section()?)?;
        self.telemetry.restore_words(r.section()?)?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_pc_stats_ratios() {
        let s = LoadPcStats {
            execs: 10,
            l1_hits: 5,
            llc_hits: 2,
            llc_misses: 3,
            total_latency: 700,
            mlp_sum: 9,
        };
        assert!((s.llc_miss_ratio() - 0.3).abs() < 1e-12);
        assert!((s.amat() - 70.0).abs() < 1e-12);
        assert!((s.avg_mlp() - 3.0).abs() < 1e-12);
        assert_eq!(LoadPcStats::default().amat(), 0.0);
        assert_eq!(LoadPcStats::default().avg_mlp(), 0.0);
    }

    #[test]
    fn branch_stats_ratio() {
        let b = BranchPcStats {
            execs: 8,
            mispredicts: 2,
        };
        assert!((b.mispredict_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(BranchPcStats::default().mispredict_ratio(), 0.0);
    }

    #[test]
    fn upc_timeline_average_and_buckets() {
        let mut t = UpcTimeline::default();
        for c in [6, 6, 0, 0, 6, 6] {
            t.push(c);
        }
        assert!((t.average(0, 6) - 4.0).abs() < 1e-12);
        assert!((t.average(2, 4)).abs() < 1e-12);
        assert_eq!(t.average(4, 4), 0.0);
        let b = t.bucketed(3);
        assert_eq!(b, vec![6.0, 0.0, 6.0]);
        assert!(t.bucketed(0).is_empty());
    }

    #[test]
    fn result_derived_metrics() {
        let mut r = SimResult {
            cycles: 1000,
            retired: 2000,
            cond_mispredicts: 10,
            ..SimResult::default()
        };
        r.mem.load_llc_misses = 20;
        assert!((r.ipc() - 2.0).abs() < 1e-12);
        assert!((r.branch_mpki() - 5.0).abs() < 1e-12);
        assert!((r.llc_load_mpki() - 10.0).abs() < 1e-12);

        let base = SimResult {
            cycles: 1000,
            retired: 1000,
            ..SimResult::default()
        };
        assert!((r.speedup_over(&base) - 100.0).abs() < 1e-9);
        assert_eq!(SimResult::default().ipc(), 0.0);
    }

    #[test]
    fn sim_result_snapshot_round_trips_every_field() {
        let mut r = SimResult {
            cycles: 1000,
            retired: 2000,
            rob_head_stall_cycles: 5,
            fetch_stall_mispredict_cycles: 6,
            fetch_stall_icache_cycles: 7,
            cond_branches: 8,
            cond_mispredicts: 9,
            indirect_mispredicts: 10,
            ..SimResult::default()
        };
        r.mem.loads = 11;
        r.mem.l1d.accesses = 12;
        r.mem.dram.row_hits = 13;
        r.load_pc_stats.insert(
            42,
            LoadPcStats {
                execs: 3,
                llc_misses: 1,
                ..LoadPcStats::default()
            },
        );
        r.load_pc_stats.insert(7, LoadPcStats::default());
        r.branch_pc_stats.insert(
            9,
            BranchPcStats {
                execs: 4,
                mispredicts: 2,
            },
        );
        r.upc.push(6);
        r.upc.push(0);
        r.pipeview.push(PipeRecord {
            seq: 0,
            pc: 1,
            fetch: 2,
            dispatch: 3,
            issue: 4,
            complete: 5,
            retire: 6,
        });
        r.issued_critical = 14;
        r.issued_noncritical = 15;
        r.stall_table.charge(42, crisp_obs::StallClass::LoadDram);
        r.stall_table.charge(9, crisp_obs::StallClass::Fu);
        r.telemetry.record(crisp_obs::TelemetryInputs {
            cycle: 100,
            retired: 80,
            mshr: 3,
            ..crisp_obs::TelemetryInputs::default()
        });
        let words = r.snapshot_words();
        let mut s = SimResult::default();
        s.restore_words(&words).unwrap();
        assert_eq!(s.snapshot_words(), words);
        assert_eq!(s.retired, 2000);
        assert_eq!(s.mem.dram.row_hits, 13);
        assert_eq!(s.load_pc_stats, r.load_pc_stats);
        assert_eq!(s.branch_pc_stats, r.branch_pc_stats);
        assert_eq!(s.upc, r.upc);
        assert_eq!(s.pipeview.records(), r.pipeview.records());
        assert_eq!(s.issued_critical, 14);
        assert_eq!(s.issued_noncritical, 15);
        assert_eq!(s.stall_table, r.stall_table);
        assert_eq!(s.telemetry, r.telemetry);
        // Truncated and trailing inputs are rejected.
        assert!(SimResult::default()
            .restore_words(&words[..words.len() - 1])
            .is_err());
        let mut trailing = words.clone();
        trailing.push(0);
        assert!(SimResult::default().restore_words(&trailing).is_err());
    }

    #[test]
    fn sim_result_snapshot_round_trips_a_live_tracer() {
        let mut r = SimResult {
            tracer: crisp_obs::Tracer::ring(8),
            ..SimResult::default()
        };
        r.tracer
            .record(5, 0, 0x40, crisp_obs::EventKind::Fetch, None);
        r.tracer.record(
            9,
            0,
            0x40,
            crisp_obs::EventKind::Complete,
            Some(crisp_obs::FillLevel::Llc),
        );
        let words = r.snapshot_words();
        let mut s = SimResult {
            tracer: crisp_obs::Tracer::ring(8),
            ..SimResult::default()
        };
        s.restore_words(&words).unwrap();
        assert_eq!(s.tracer, r.tracer);
        // Restoring a traced snapshot into an untraced result is rejected:
        // the configurations disagree.
        let err = SimResult::default().restore_words(&words).unwrap_err();
        assert!(err.contains("enabled"), "{err}");
    }

    #[test]
    fn pipeview_renders_lanes_in_window() {
        let mut pv = Pipeview::default();
        pv.push(PipeRecord {
            seq: 0,
            pc: 7,
            fetch: 10,
            dispatch: 15,
            issue: 16,
            complete: 20,
            retire: 22,
        });
        pv.push(PipeRecord {
            seq: 1,
            pc: 8,
            fetch: 11,
            dispatch: 15,
            issue: 17,
            complete: 18,
            retire: 22,
        });
        let txt = pv.render(0, 2);
        let lines: Vec<&str> = txt.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('f') && lines[0].contains('i'));
        assert!(lines[0].trim_end().ends_with('r'));
        assert!(lines[1].contains("pc8"));
        // Out-of-window render is empty.
        assert!(pv.render(5, 9).is_empty());
        assert_eq!(pv.records().len(), 2);
    }
}
